"""Algorithm 1 (CHECKICA) semantics: the cone decisions vs the exact test.

These properties pin the heart of the paper: for any voxel, tool pose,
and pivot, the two cone comparisons must *never* contradict the exact
``CHECKBOX`` — a 'yes' (angle <= ica1 of the inscribed sphere) implies a
true intersection, a 'no' (angle >= ica2 of the circumscribed sphere)
implies a true miss, and only the corner band may remain undecided.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.aabb import AABB
from repro.geometry.cylinder import Cylinder
from repro.geometry.orientation import direction_from_angles
from repro.geometry.predicates import tool_cylinders_aabb_intersects
from repro.ica.cone import COS_NEVER, ica_bounds_cos
from repro.ica.table import SQRT3
from repro.tool.tool import Tool, ball_end_mill, paper_tool


@st.composite
def checkica_case(draw):
    tool = draw(st.sampled_from([paper_tool(), ball_end_mill()]))
    phi = draw(st.floats(0.01, np.pi - 0.01))
    gamma = draw(st.floats(0, 2 * np.pi))
    center = np.array(
        [draw(st.floats(-60, 60)), draw(st.floats(-60, 60)), draw(st.floats(-60, 60))]
    )
    half = draw(st.floats(0.05, 6.0))
    return tool, direction_from_angles(phi, gamma), center, half


class TestCheckIcaNeverContradictsCheckBox:
    @given(checkica_case())
    @settings(max_examples=150)
    def test_decisions_sound(self, case):
        tool, d, center, half = case
        pivot = np.zeros(3)
        dist = float(np.linalg.norm(center))
        cos_angle = float(np.clip(d @ center / max(dist, 1e-300), -1, 1))
        if dist == 0.0:
            cos_angle = 1.0

        cos1, _ = ica_bounds_cos(
            tool.z0, tool.z1, tool.radius, np.array([dist]), np.array([half])
        )
        _, cos2 = ica_bounds_cos(
            tool.z0, tool.z1, tool.radius, np.array([dist]), np.array([SQRT3 * half])
        )

        box = AABB.cube(center, half)
        cyls = [
            Cylinder(pivot, d, float(a), float(b), float(r))
            for a, b, r in zip(tool.z0, tool.z1, tool.radius)
        ]

        margin = 1e-9  # exclude exact-touch boundaries from the property
        if cos_angle >= cos1[0] + margin:
            assert tool_cylinders_aabb_intersects(cyls, box), (
                "CHECKICA claimed a definite hit that CHECKBOX denies"
            )
        if cos_angle <= cos2[0] - margin:
            assert not tool_cylinders_aabb_intersects(cyls, box), (
                "CHECKICA claimed a definite miss that CHECKBOX denies"
            )

    @given(checkica_case())
    @settings(max_examples=60)
    def test_band_ordering(self, case):
        tool, d, center, half = case
        dist = float(np.linalg.norm(center))
        cos1, _ = ica_bounds_cos(
            tool.z0, tool.z1, tool.radius, np.array([dist]), np.array([half])
        )
        _, cos2 = ica_bounds_cos(
            tool.z0, tool.z1, tool.radius, np.array([dist]), np.array([SQRT3 * half])
        )
        # the yes-region (cos >= cos1) and no-region (cos <= cos2) never
        # overlap: cos2 <= cos1 always (larger sphere -> larger cone)
        assert cos2[0] <= cos1[0] + 1e-12 or cos1[0] == COS_NEVER


class TestCornerBandShrinksWithVoxelSize:
    def test_band_measure_decreases(self):
        tool = paper_tool()
        dist = 60.0
        widths = []
        for half in (8.0, 4.0, 2.0, 1.0, 0.5, 0.25):
            cos1, _ = ica_bounds_cos(
                tool.z0, tool.z1, tool.radius, np.array([dist]), np.array([half])
            )
            _, cos2 = ica_bounds_cos(
                tool.z0,
                tool.z1,
                tool.radius,
                np.array([dist]),
                np.array([SQRT3 * half]),
            )
            lo = np.arccos(np.clip(cos1[0], -1, 1)) if cos1[0] <= 1.0 else 0.0
            hi = np.arccos(np.clip(cos2[0], -1, 1))
            widths.append(max(hi - lo, 0.0))
        # Figure 9's monotonicity: smaller voxels, narrower corner band.
        assert all(b <= a + 1e-12 for a, b in zip(widths, widths[1:]))
        assert widths[-1] < 0.05


class TestCustomToolShapes:
    """ICA decisions hold for unusual tool stacks, not just the paper's."""

    @pytest.mark.parametrize(
        "segments",
        [
            [(0.5, 100.0)],  # long needle
            [(30.0, 10.0)],  # flat puck
            [(5.0, 10.0), (1.0, 50.0), (20.0, 10.0)],  # waisted
        ],
    )
    def test_sound_for_shape(self, segments, rng):
        tool = Tool.from_segments(segments)
        pivot = np.zeros(3)
        for _ in range(40):
            d = direction_from_angles(rng.uniform(0.01, np.pi - 0.01), rng.uniform(0, 2 * np.pi))
            center = rng.uniform(-80, 80, 3)
            half = rng.uniform(0.1, 5.0)
            dist = float(np.linalg.norm(center))
            ca = float(np.clip(d @ center / max(dist, 1e-300), -1, 1))
            cos1, _ = ica_bounds_cos(
                tool.z0, tool.z1, tool.radius, np.array([dist]), np.array([half])
            )
            _, cos2 = ica_bounds_cos(
                tool.z0, tool.z1, tool.radius, np.array([dist]), np.array([SQRT3 * half])
            )
            box = AABB.cube(center, half)
            cyls = tool.cylinders(pivot, d)
            if ca >= cos1[0] + 1e-9:
                assert tool_cylinders_aabb_intersects(cyls, box)
            if ca <= cos2[0] - 1e-9:
                assert not tool_cylinders_aabb_intersects(cyls, box)
