"""Virtual GPU: devices, cost model, counters, and the SIMT scheduler."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.engine.costs import DEFAULT_COSTS, CostModel
from repro.engine.counters import StageBreakdown, ThreadCounters
from repro.engine.device import DEVICES, GTX_1080, GTX_1080_TI, DeviceSpec, scaled_device
from repro.engine.simt import makespan_cycles, simulate_kernel, simulate_stage, warp_costs


class TestDevice:
    def test_paper_table2_values(self):
        assert GTX_1080_TI.cuda_cores == 3548
        assert GTX_1080_TI.clock_ghz == 1.68
        assert GTX_1080.cuda_cores == 2560
        assert GTX_1080.clock_ghz == 1.77
        assert set(DEVICES) == {"GTX 1080 Ti", "GTX 1080"}

    def test_warp_slots(self):
        assert GTX_1080_TI.warp_slots == 3548 // 32
        assert GTX_1080.warp_slots == 80

    def test_seconds_per_op(self):
        assert GTX_1080_TI.seconds_per_op == pytest.approx(1 / 1.68e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec("tiny", cuda_cores=16, clock_ghz=1.0)
        with pytest.raises(ValueError):
            DeviceSpec("bad", cuda_cores=64, clock_ghz=0.0)

    def test_scaled_device(self):
        d = scaled_device(GTX_1080_TI, 32)
        assert d.cuda_cores == 3548 // 32
        assert d.clock_ghz == GTX_1080_TI.clock_ghz
        assert scaled_device(GTX_1080_TI, 1) is GTX_1080_TI
        with pytest.raises(ValueError):
            scaled_device(GTX_1080_TI, 0)


class TestCostModel:
    def test_paper_constants(self):
        c = DEFAULT_COSTS
        assert c.checkbox(4) == 216 * 4
        assert c.checkica_fly(4) == 10 * 4 + 3
        assert c.checkica_memo(4) == 3
        assert c.ica_precompute(4) == 40

    def test_checkbox_derivation(self):
        """216 = 6 faces * 4 segments * 9-op rotation (Section 2)."""
        assert DEFAULT_COSTS.box_per_cyl == 6 * 4 * 9

    def test_ica_derivation(self):
        """10 = 2 spheres * 5 expanded-rectangle components (Section 3.3)."""
        assert DEFAULT_COSTS.ica_fly_per_cyl == 2 * 5
        assert DEFAULT_COSTS.ica_fly_base == 3

    def test_scaled_override(self):
        c = DEFAULT_COSTS.scaled(box_per_cyl=100)
        assert c.checkbox(2) == 200
        assert DEFAULT_COSTS.box_per_cyl == 216  # frozen original


class TestThreadCounters:
    def test_add_threads_bincount(self):
        c = ThreadCounters(n_threads=4, n_cyl=4)
        c.add_threads("box_checks", np.array([0, 0, 2]), 4)
        np.testing.assert_array_equal(c.box_checks, [2, 0, 1, 0])

    def test_add_threads_empty(self):
        c = ThreadCounters(n_threads=4, n_cyl=4)
        c.add_threads("box_checks", np.zeros(0, dtype=int), 4)
        assert c.box_checks.sum() == 0

    def test_thread_ops(self):
        c = ThreadCounters(n_threads=2, n_cyl=4)
        c.box_checks[:] = [1, 0]
        c.ica_memo_checks[:] = [0, 10]
        c.nodes_visited[:] = [1, 10]
        ops = c.thread_ops(DEFAULT_COSTS)
        assert ops[0] == 216 * 4 + 4
        assert ops[1] == 10 * 3 + 10 * 4

    def test_efficiency(self):
        c = ThreadCounters(n_threads=1, n_cyl=4)
        c.box_checks[:] = 1
        c.ica_memo_checks[:] = 99
        assert c.ica_efficiency() == pytest.approx(0.99)
        assert c.box_check_fraction() == pytest.approx(0.01)

    def test_efficiency_no_checks(self):
        c = ThreadCounters(n_threads=1, n_cyl=4)
        assert c.ica_efficiency() == 1.0

    def test_merged(self):
        a = ThreadCounters(n_threads=2, n_cyl=4)
        b = ThreadCounters(n_threads=2, n_cyl=4)
        a.box_checks[:] = [1, 2]
        b.box_checks[:] = [10, 20]
        m = a.merged_with(b)
        np.testing.assert_array_equal(m.box_checks, [11, 22])
        with pytest.raises(ValueError):
            a.merged_with(ThreadCounters(n_threads=3, n_cyl=4))

    def test_critical_thread(self):
        c = ThreadCounters(n_threads=3, n_cyl=1)
        c.nodes_visited[:] = [5, 50, 7]
        assert c.critical_thread() == 1

    def test_stage_breakdown_total(self):
        s = StageBreakdown(ica_precompute_s=1.0, cd_tests_s=2.0, wall_s=99.0)
        assert s.total_s == 3.0  # wall time is reported, not added


class TestWarpCosts:
    def test_max_within_warp(self):
        ops = np.zeros(64)
        ops[5] = 100.0
        ops[40] = 7.0
        w = warp_costs(ops, 32)
        np.testing.assert_array_equal(w, [100.0, 7.0])

    def test_padding(self):
        w = warp_costs(np.array([3.0, 9.0]), 32)
        assert w.shape == (1,)
        assert w[0] == 9.0

    def test_empty(self):
        assert warp_costs(np.zeros(0), 32).size == 0


class TestMakespan:
    def test_fewer_warps_than_slots_is_max(self):
        assert makespan_cycles(np.array([5.0, 9.0, 2.0]), 10) == 9.0

    def test_uniform_warps_divide_evenly(self):
        # 20 unit warps on 10 slots -> 2 rounds
        assert makespan_cycles(np.ones(20), 10) == pytest.approx(2.0)

    def test_lpt_bounds(self):
        rng = np.random.default_rng(0)
        w = rng.uniform(1, 100, 400)
        slots = 7
        m = makespan_cycles(w, slots)
        lower = max(w.sum() / slots, w.max())
        assert lower <= m <= lower * 4 / 3 + w.max()

    @given(arrays(np.float64, st.integers(1, 200), elements=st.floats(0, 1000)))
    def test_monotone_in_costs(self, w):
        m1 = makespan_cycles(w, 5)
        m2 = makespan_cycles(w * 2.0, 5)
        assert m2 >= m1 - 1e-9

    def test_empty(self):
        assert makespan_cycles(np.zeros(0), 4) == 0.0


class TestSimulateKernel:
    def test_single_warp_is_critical_thread(self):
        ops = np.array([10.0, 500.0, 3.0])
        t = simulate_kernel(ops, GTX_1080_TI)
        assert t == pytest.approx(500.0 / 1.68e9)

    def test_flat_below_core_count(self):
        """The Fig 5 flat region: more threads, same time, while M <= cores."""
        ops_small = np.full(32, 100.0)
        ops_big = np.full(GTX_1080_TI.warp_slots * 32, 100.0)
        assert simulate_kernel(ops_small, GTX_1080_TI) == pytest.approx(
            simulate_kernel(ops_big, GTX_1080_TI)
        )

    def test_linear_beyond_core_count(self):
        """The Fig 5/17 linear region: 4x threads ~ 4x time."""
        n = GTX_1080_TI.warp_slots * 32 * 8
        t1 = simulate_kernel(np.full(n, 50.0), GTX_1080_TI)
        t4 = simulate_kernel(np.full(4 * n, 50.0), GTX_1080_TI)
        assert t4 / t1 == pytest.approx(4.0, rel=0.01)

    def test_clock_tradeoff(self):
        """Latency-bound work prefers the higher-clocked GTX 1080."""
        ops = np.full(64, 1000.0)  # 2 warps: latency bound on both cards
        assert simulate_kernel(ops, GTX_1080) < simulate_kernel(ops, GTX_1080_TI)

    def test_core_count_tradeoff(self):
        """Throughput-bound work prefers the many-core GTX 1080 Ti."""
        ops = np.full(3548 * 40, 1000.0)
        assert simulate_kernel(ops, GTX_1080_TI) < simulate_kernel(ops, GTX_1080)


class TestSimulateStage:
    def test_zero_threads(self):
        assert simulate_stage(10.0, 0, GTX_1080_TI) == 0.0

    def test_one_round(self):
        t = simulate_stage(40.0, 32, GTX_1080_TI)
        assert t == pytest.approx(40.0 / 1.68e9)

    def test_rounds_scale(self):
        full = GTX_1080_TI.warp_slots * 32
        t1 = simulate_stage(40.0, full, GTX_1080_TI)
        t3 = simulate_stage(40.0, 3 * full, GTX_1080_TI)
        assert t3 == pytest.approx(3 * t1)

    def test_matches_kernel_for_uniform(self):
        n = 2048
        a = simulate_stage(40.0, n, GTX_1080_TI)
        b = simulate_kernel(np.full(n, 40.0), GTX_1080_TI)
        assert a == pytest.approx(b, rel=1e-9)
