"""The motivating application: voxel-based milling simulation.

Figure 1 of the paper frames the CD problem inside a milling pipeline:
start from a block of stock, repeatedly position the tool at path points
in collision-free orientations, and remove material until the target
part remains.  The CD library answers "which orientations are safe?";
this package closes the loop with the two missing pieces:

* :mod:`repro.milling.stock` — a dense voxel stock model with vectorized
  material removal for a tool pose (the cutter's swept cells) and
  gouge accounting against the target part;
* :mod:`repro.milling.planner` — a greedy accessibility-driven roughing
  pass: at each path point, pick an orientation from the accessibility
  map (via :mod:`repro.cd`) and cut.

This is intentionally the *simplest correct* closure of the loop — the
paper's SculptPrint host does vastly more — but it exercises the public
CD API exactly the way a CAM system does: many pivots, one octree,
repeated accessibility queries, safety margins.
"""

from repro.milling.stock import VoxelStock
from repro.milling.planner import GreedyRougher, RoughingReport

__all__ = ["VoxelStock", "GreedyRougher", "RoughingReport"]
