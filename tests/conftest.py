"""Shared fixtures: small scenes, cached octrees, deterministic RNG.

Heavy artifacts (octrees, paths) are built once per session and shared;
tests that mutate state must copy.  Hypothesis settings are centralized
here: the kernels are exact, so property tests use modest example counts
with no deadline (this CI box is slow, not flaky).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(autouse=True, scope="session")
def _quiet_access_log():
    # The serving tier's access log defaults to stderr; silence the
    # ambient one so server-backed tests don't spray JSON lines over the
    # pytest progress output.  Tests that assert on log lines install
    # their own via ``use_access_log``.
    from repro.obs.log import NULL_ACCESS_LOG, set_access_log

    set_access_log(NULL_ACCESS_LOG)
    yield


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def head():
    from repro.solids.models import head_model

    return head_model()


@pytest.fixture(scope="session")
def head_tree_32(head):
    from repro.octree.build import build_from_sdf

    return build_from_sdf(head.sdf, head.domain, 32)


@pytest.fixture(scope="session")
def head_tree_64(head):
    from repro.octree.build import build_from_sdf

    return build_from_sdf(head.sdf, head.domain, 64)


@pytest.fixture(scope="session")
def head_tree_64_expanded(head_tree_64):
    from repro.octree.build import expand_top

    return expand_top(head_tree_64, 5)


@pytest.fixture(scope="session")
def head_scene(head_tree_64_expanded):
    from repro.cd.scene import Scene
    from repro.tool.tool import paper_tool

    return Scene(head_tree_64_expanded, paper_tool(), np.array([0.0, -30.0, 5.0]))


@pytest.fixture(scope="session")
def sphere_scene():
    """Tiny analytic scene: 20 mm sphere, pivot just above the pole."""
    from repro.cd.scene import Scene
    from repro.geometry.aabb import AABB
    from repro.octree.build import build_from_sdf, expand_top
    from repro.solids.sdf import SphereSDF
    from repro.tool.tool import paper_tool

    domain = AABB((-40.0, -40.0, -40.0), (40.0, 40.0, 40.0))
    tree = expand_top(build_from_sdf(SphereSDF((0, 0, 0), 20.0), domain, 32), 5)
    return Scene(tree, paper_tool(), np.array([0.0, 0.0, 21.0]))


@pytest.fixture(scope="session")
def paper_tool_arrays():
    from repro.tool.tool import paper_tool

    t = paper_tool()
    return t.z0, t.z1, t.radius
