"""Unified observability: tracing, metrics, and structured run reports.

Three layers, importable independently (``repro.obs`` never imports the
engine — the engine imports *it* — so instrumentation can live anywhere
without cycles):

* :mod:`repro.obs.trace` — nested spans over the pipeline stages, a
  no-op by default so benchmark numbers are unaffected;
* :mod:`repro.obs.context` — W3C trace-context identity and propagation
  (``traceparent`` codec, deterministic head sampling, ambient
  per-thread context);
* :mod:`repro.obs.otlp` — OTLP/JSON trace export plus a strict
  validating parser (no collector required);
* :mod:`repro.obs.metrics` — counters / gauges / histograms the CD runs
  accumulate into (check counts, table sizes, per-thread distributions);
* :mod:`repro.obs.report` — serializes one run to JSON and diffs two
  runs for regressions (``repro-bench compare``);
* :mod:`repro.obs.timeline` — exports a finished trace as
  Chrome/Perfetto trace-event JSON or collapsed flamegraph stacks;
* :mod:`repro.obs.profile` — pool utilization/imbalance accounting,
  peak-RSS memory telemetry, and the opt-in progress heartbeat;
* :mod:`repro.obs.log` — request IDs and the structured JSON access log
  the serving tier writes (``REPRO_ACCESS_LOG``);
* :mod:`repro.obs.expo` — the metrics registry rendered in Prometheus
  text exposition format (plus a validating parser);
* :mod:`repro.obs.window` — sliding-window request statistics (rolling
  RPS, error rate, latency quantiles) for live serving.

The ``repro-obs`` console script (:mod:`repro.obs.cli`) drives the
timeline exports, report diffs, and the live ``watch`` dashboard from
the command line.
"""

from repro.obs.context import (
    TraceContext,
    current_trace_context,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    sample_rate_from_env,
    set_trace_context,
    trace_sampled,
    use_trace_context,
)
from repro.obs.expo import (
    parse_prometheus,
    prometheus_name,
    render_prometheus,
    snapshot_parity_problems,
)
from repro.obs.log import (
    NULL_ACCESS_LOG,
    AccessLog,
    NullAccessLog,
    get_access_log,
    new_request_id,
    set_access_log,
    use_access_log,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
    use_metrics,
)
from repro.obs.otlp import (
    otlp_json,
    otlp_spans,
    to_otlp,
    validate_otlp,
)
from repro.obs.report import (
    Comparison,
    Delta,
    RunReport,
    build_report,
    compare,
    load_report,
)
from repro.obs.profile import (
    Heartbeat,
    PoolStats,
    peak_rss_bytes,
    progress_enabled,
    record_memory_metrics,
)
from repro.obs.timeline import (
    perfetto_json,
    span_tracks,
    to_collapsed,
    to_perfetto,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    Tracer,
    get_tracer,
    set_tracer,
    tracing_enabled,
    use_tracer,
)
from repro.obs.window import RequestWindow

__all__ = [
    "TraceContext",
    "current_trace_context",
    "format_traceparent",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "sample_rate_from_env",
    "set_trace_context",
    "trace_sampled",
    "use_trace_context",
    "otlp_json",
    "otlp_spans",
    "to_otlp",
    "validate_otlp",
    "AccessLog",
    "NullAccessLog",
    "NULL_ACCESS_LOG",
    "get_access_log",
    "new_request_id",
    "set_access_log",
    "use_access_log",
    "parse_prometheus",
    "prometheus_name",
    "render_prometheus",
    "snapshot_parity_problems",
    "RequestWindow",
    "Heartbeat",
    "PoolStats",
    "peak_rss_bytes",
    "progress_enabled",
    "record_memory_metrics",
    "perfetto_json",
    "span_tracks",
    "to_collapsed",
    "to_perfetto",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "use_metrics",
    "Comparison",
    "Delta",
    "RunReport",
    "build_report",
    "compare",
    "load_report",
    "NULL_TRACER",
    "NullTracer",
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "tracing_enabled",
    "use_tracer",
]
