"""repro.service: registry, cache, broker, and end-to-end equivalence.

The load-bearing guarantee is that the service is *transparent*: a map
served through any reuse tier (fresh compute, coalesced join, result
cache, registry artifacts, long-lived pools) is byte-identical to a
direct ``run_cd`` / ``run_along_path`` call — for all five methods, at
any worker count.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.cd.ammaps import merge_accessible
from repro.cd.methods import METHODS, method_by_name
from repro.cd.pathrun import run_along_path
from repro.cd.scene import Scene
from repro.cd.traversal import run_cd
from repro.geometry.orientation import OrientationGrid
from repro.obs.metrics import MetricsRegistry, get_metrics, use_metrics
from repro.service import (
    Backpressure,
    QueryBroker,
    QuerySpec,
    ResultCache,
    SceneRegistry,
    Service,
    UnknownSceneError,
)

GRID = OrientationGrid(12, 12)
METHOD_NAMES = [cls.name for cls in METHODS]


# ---------------------------------------------------------------------------
# Scene content digests
# ---------------------------------------------------------------------------


class TestContentDigest:
    def test_stable_across_io_roundtrip(self, sphere_scene, tmp_path):
        from repro.octree.io import load_octree, save_octree

        path = tmp_path / "tree.npz"
        save_octree(sphere_scene.tree, path)
        reloaded = Scene(load_octree(path), sphere_scene.tool, sphere_scene.pivot)
        assert reloaded.content_digest() == sphere_scene.content_digest()

    def test_pivot_changes_digest(self, sphere_scene):
        moved = sphere_scene.with_pivot((0.0, 0.0, 25.0))
        assert moved.content_digest() != sphere_scene.content_digest()

    def test_with_pivot_normalizes_once(self, sphere_scene):
        # __post_init__ owns normalization; with_pivot must not pre-convert.
        moved = sphere_scene.with_pivot([0, 0, 25])
        assert moved.pivot.dtype == np.float64
        assert moved.pivot.shape == (3,)
        direct = Scene(sphere_scene.tree, sphere_scene.tool, np.array([0.0, 0.0, 25.0]))
        assert moved.content_digest() == direct.content_digest()


# ---------------------------------------------------------------------------
# Scene registry
# ---------------------------------------------------------------------------


class TestSceneRegistry:
    def test_register_is_idempotent(self, sphere_scene):
        reg = SceneRegistry(max_scenes=4)
        d1 = reg.register(sphere_scene)
        d2 = reg.register(sphere_scene)
        assert d1 == d2 and len(reg) == 1
        assert reg.get(d1) is sphere_scene

    def test_unknown_scene(self):
        reg = SceneRegistry()
        with pytest.raises(UnknownSceneError):
            reg.get("deadbeef")

    def test_lru_eviction_destroys_arenas(self, sphere_scene):
        with use_metrics(MetricsRegistry()) as metrics:
            reg = SceneRegistry(max_scenes=2)
            d1 = reg.register(sphere_scene)
            arena = reg.get_arena(d1)  # tree-only arena for the victim
            reg.register(sphere_scene.with_pivot((0, 0, 25.0)))
            reg.register(sphere_scene.with_pivot((0, 0, 30.0)))
            assert len(reg) == 2 and d1 not in reg
            with pytest.raises(UnknownSceneError):
                reg.get(d1)
            assert metrics.counter("service.registry.evictions").value == 1
            # The evicted scene's shared-memory arena is gone: re-attaching
            # by manifest must fail.
            from repro.engine.pool import SharedScene

            with pytest.raises(Exception):
                SharedScene.attach(arena.manifest)
            reg.close()

    def test_table_built_once(self, sphere_scene):
        with use_metrics(MetricsRegistry()) as metrics:
            reg = SceneRegistry()
            digest = reg.register(sphere_scene)
            t1 = reg.get_table(digest, 8)
            t2 = reg.get_table(digest, 8)
            assert t1 is t2
            assert metrics.counter("service.registry.table_builds").value == 1
            # A different S is a different table.
            t3 = reg.get_table(digest, 3)
            assert t3 is not t1 and t3.levels == 3
            reg.close()

    def test_table_warm_start_from_disk(self, sphere_scene, tmp_path):
        with use_metrics(MetricsRegistry()) as metrics:
            reg = SceneRegistry(table_dir=tmp_path)
            digest = reg.register(sphere_scene)
            built = reg.get_table(digest, 8)
            assert list(tmp_path.glob("ica-*.npz"))
            reg.close()

            # A fresh registry (fresh process, conceptually) warm-starts.
            reg2 = SceneRegistry(table_dir=tmp_path)
            reg2.register(sphere_scene)
            warm = reg2.get_table(digest, 8)
            assert metrics.counter("service.registry.table_warm_starts").value == 1
            assert metrics.counter("service.registry.table_builds").value == 1
            assert warm.levels == built.levels
            for a, b in zip(warm.cos1, built.cos1):
                assert np.array_equal(a, b)
            for a, b in zip(warm.cos2, built.cos2):
                assert np.array_equal(a, b)
            reg2.close()

    def test_arena_built_once_and_embeds_table(self, sphere_scene):
        reg = SceneRegistry()
        digest = reg.register(sphere_scene)
        a1 = reg.get_arena(digest, 8)
        a2 = reg.get_arena(digest, 8)
        assert a1 is a2
        assert reg.get_arena(digest) is not a1  # tree-only arena is separate
        reg.close()


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------


class TestResultCache:
    def test_hit_miss_counters(self):
        with use_metrics(MetricsRegistry()) as metrics:
            cache = ResultCache(max_entries=4)
            assert cache.get("a") is None
            cache.put("a", {"x": 1}, nbytes=10)
            assert cache.get("a") == {"x": 1}
            assert metrics.counter("service.cache.misses").value == 1
            assert metrics.counter("service.cache.hits").value == 1

    def test_entry_bound_evicts_lru(self):
        with use_metrics(MetricsRegistry()) as metrics:
            cache = ResultCache(max_entries=2)
            cache.put("a", 1, nbytes=1)
            cache.put("b", 2, nbytes=1)
            cache.get("a")  # refresh: b is now LRU
            cache.put("c", 3, nbytes=1)
            assert cache.get("b") is None and cache.get("a") == 1
            assert metrics.counter("service.cache.evictions").value == 1

    def test_byte_bound(self):
        cache = ResultCache(max_entries=100, max_bytes=100)
        cache.put("a", 1, nbytes=60)
        cache.put("b", 2, nbytes=60)  # 120 > 100: a evicted
        assert cache.get("a") is None and cache.get("b") == 2
        assert cache.nbytes == 60

    def test_oversize_payload_not_cached(self):
        cache = ResultCache(max_entries=4, max_bytes=100)
        cache.put("big", 1, nbytes=1000)
        assert len(cache) == 0 and cache.get("big") is None


# ---------------------------------------------------------------------------
# Query broker
# ---------------------------------------------------------------------------


class TestQueryBroker:
    def test_coalesces_inflight_key(self):
        with use_metrics(MetricsRegistry()) as metrics:
            broker = QueryBroker(dispatch_threads=1, max_queue=4)
            release = threading.Event()
            f1, c1 = broker.submit("k", lambda: release.wait(10) and 41 + 1)
            f2, c2 = broker.submit("k", lambda: pytest.fail("must not run"))
            assert (c1, c2) == (False, True) and f1 is f2
            assert metrics.counter("service.coalesced").value == 1
            release.set()
            assert f1.result(timeout=10) == 42
            broker.shutdown()

    def test_backpressure_when_full(self):
        with use_metrics(MetricsRegistry()) as metrics:
            broker = QueryBroker(dispatch_threads=1, max_queue=1)
            release = threading.Event()
            broker.submit("a", lambda: release.wait(10))
            with pytest.raises(Backpressure) as exc:
                broker.submit("b", lambda: None)
            assert exc.value.retry_after_s > 0
            assert metrics.counter("service.rejected").value == 1
            release.set()
            broker.shutdown()
            assert broker.depth == 0

    def test_distinct_keys_do_not_coalesce(self):
        broker = QueryBroker(dispatch_threads=2, max_queue=8)
        f1, c1 = broker.submit("a", lambda: 1)
        f2, c2 = broker.submit("b", lambda: 2)
        assert not c1 and not c2
        assert f1.result(10) == 1 and f2.result(10) == 2
        broker.shutdown()


# ---------------------------------------------------------------------------
# Query specs
# ---------------------------------------------------------------------------


class TestQuerySpec:
    def test_digest_ignores_workers_and_method_case(self):
        a = QuerySpec(scene="d", grid=(8, 8), method="AICA", workers=1)
        b = QuerySpec(scene="d", grid=(8, 8), method="aica", workers=4)
        assert a.digest() == b.digest()

    def test_digest_sensitive_to_inputs(self):
        base = QuerySpec(scene="d", grid=(8, 8), method="AICA")
        assert base.digest() != QuerySpec(scene="e", grid=(8, 8)).digest()
        assert base.digest() != QuerySpec(scene="d", grid=(8, 9)).digest()
        assert base.digest() != QuerySpec(scene="d", grid=(8, 8), method="MICA").digest()
        assert (
            base.digest()
            != QuerySpec(scene="d", grid=(8, 8), pivot=(0, 0, 1)).digest()
        )
        assert (
            base.digest()
            != QuerySpec(scene="d", grid=(8, 8), memo_levels=3).digest()
        )

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown query field"):
            QuerySpec.from_dict({"scene": "d", "gird": [8, 8]})

    def test_validation(self):
        with pytest.raises(ValueError, match="method"):
            QuerySpec(scene="d", method="NOPE")
        with pytest.raises(ValueError, match="merge"):
            QuerySpec(scene="d", merge="xor")
        with pytest.raises(ValueError, match="not both"):
            QuerySpec(scene="d", pivot=(0, 0, 1), pivots=((0, 0, 1),))
        with pytest.raises(ValueError, match="grid"):
            QuerySpec(scene="d", grid=(0, 8))

    def test_roundtrip(self):
        spec = QuerySpec(scene="d", grid=(4, 6), method="MICA", pivot=(1, 2, 3))
        again = QuerySpec.from_dict(spec.to_dict())
        assert again.digest() == spec.digest()


# ---------------------------------------------------------------------------
# End-to-end service behavior
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def serial_service(sphere_scene):
    with Service(workers=1) as svc:
        yield svc, svc.register_scene(sphere_scene)


@pytest.fixture(scope="module")
def parallel_service(sphere_scene):
    with Service(workers=2) as svc:
        yield svc, svc.register_scene(sphere_scene)


class TestServiceEquivalence:
    @pytest.mark.parametrize("method", METHOD_NAMES)
    def test_serial_matches_direct_run_cd(self, serial_service, sphere_scene, method):
        svc, digest = serial_service
        result = svc.query(QuerySpec(scene=digest, grid=GRID.shape, method=method))
        direct = run_cd(sphere_scene, GRID, method_by_name(method))
        assert np.array_equal(result.accessible, direct.accessibility_map)
        assert result.payload["n_accessible"] == direct.n_accessible

    @pytest.mark.parametrize("method", METHOD_NAMES)
    def test_parallel_matches_direct_run_cd(self, parallel_service, sphere_scene, method):
        svc, digest = parallel_service
        result = svc.query(QuerySpec(scene=digest, grid=GRID.shape, method=method))
        direct = run_cd(sphere_scene, GRID, method_by_name(method))
        assert np.array_equal(result.accessible, direct.accessibility_map)
        assert result.payload["n_accessible"] == direct.n_accessible

    @pytest.mark.parametrize("merge", ["intersection", "union"])
    def test_path_query_matches_direct(self, serial_service, sphere_scene, merge):
        svc, digest = serial_service
        pivots = ((0.0, 0.0, 21.0), (0.0, 0.0, 24.0), (0.0, 2.0, 22.0))
        result = svc.query(
            QuerySpec(scene=digest, grid=GRID.shape, method="AICA",
                      pivots=pivots, merge=merge)
        )
        pr = run_along_path(
            sphere_scene.tree, sphere_scene.tool, np.asarray(pivots),
            GRID, method_by_name("AICA"),
        )
        merged = merge_accessible([r.accessibility_map for r in pr.results], merge)
        assert np.array_equal(result.accessible, merged)
        assert result.payload["per_pivot_accessible"] == [
            r.n_accessible for r in pr.results
        ]

    def test_pivot_override_matches_direct(self, serial_service, sphere_scene):
        svc, digest = serial_service
        result = svc.query(
            QuerySpec(scene=digest, grid=GRID.shape, method="PBoxOpt",
                      pivot=(0.0, 0.0, 26.0))
        )
        direct = run_cd(
            sphere_scene.with_pivot((0.0, 0.0, 26.0)), GRID, method_by_name("PBoxOpt")
        )
        assert np.array_equal(result.accessible, direct.accessibility_map)


class TestServiceReuse:
    def test_repeat_query_hits_cache_with_zero_traversals(self, sphere_scene):
        with use_metrics(MetricsRegistry()) as metrics, Service(workers=1) as svc:
            digest = svc.register_scene(sphere_scene)
            spec = QuerySpec(scene=digest, grid=(6, 6), method="AICA")
            first = svc.query(spec)
            assert not first.cached
            runs_after_first = metrics.counter("cd.runs").value
            assert runs_after_first == 1
            second = svc.query(spec)
            assert second.cached and not second.coalesced
            assert metrics.counter("cd.runs").value == runs_after_first
            assert second.payload is first.payload  # served from memory
            assert metrics.counter("service.requests.cache").value == 1

    def test_concurrent_identical_queries_traverse_once(self, sphere_scene):
        with use_metrics(MetricsRegistry()) as metrics, Service(workers=1) as svc:
            digest = svc.register_scene(sphere_scene)
            spec = QuerySpec(scene=digest, grid=(6, 6), method="MICA")

            # Park the single dispatch thread so both queries are
            # submitted while the computation is provably still pending.
            release = threading.Event()
            svc.broker.submit("__blocker__", lambda: release.wait(10))

            results = []

            def ask():
                results.append(svc.query(spec, timeout=30))

            t1 = threading.Thread(target=ask)
            t2 = threading.Thread(target=ask)
            t1.start()
            t2.start()
            deadline = time.time() + 10
            while (
                metrics.counter("service.coalesced").value < 1
                and time.time() < deadline
            ):
                time.sleep(0.01)
            assert metrics.counter("service.coalesced").value == 1
            release.set()
            t1.join(30)
            t2.join(30)

            assert len(results) == 2
            assert metrics.counter("cd.runs").value == 1  # exactly one traversal
            assert {r.coalesced for r in results} == {False, True}
            assert np.array_equal(results[0].accessible, results[1].accessible)

    def test_full_queue_returns_backpressure(self, sphere_scene):
        with Service(workers=1, max_queue=1) as svc:
            digest = svc.register_scene(sphere_scene)
            release = threading.Event()
            svc.broker.submit("__blocker__", lambda: release.wait(10))
            with pytest.raises(Backpressure):
                svc.query(QuerySpec(scene=digest, grid=(6, 6), method="PBox"))
            release.set()

    def test_unknown_scene_fails_fast(self):
        with Service(workers=1) as svc:
            with pytest.raises(UnknownSceneError):
                svc.query(QuerySpec(scene="0" * 64, grid=(6, 6)))

    def test_closed_service_rejects_queries(self, sphere_scene):
        svc = Service(workers=1)
        digest = svc.register_scene(sphere_scene)
        svc.close()
        with pytest.raises(RuntimeError, match="closed"):
            svc.query(QuerySpec(scene=digest, grid=(6, 6)))
