"""``repro-bench`` command-line entry point.

Usage::

    repro-bench list                  # available experiments
    repro-bench fig16                 # run one experiment and print it
    repro-bench fig16 --json out.json # also write a structured run report
    repro-bench all                   # run everything (respects scale)
    repro-bench fig16 --workers 4     # shard CD runs over 4 processes
    repro-bench wallclock --backend numpy_portable  # array-backend axis
    repro-bench compare a.json b.json # regression gate between two reports
    repro-bench fig16 --progress      # heartbeat per thread-block/pivot
    REPRO_BENCH_SCALE=medium repro-bench fig05
    REPRO_WORKERS=4 repro-bench fig16 # env equivalent of --workers

Saved ``--json`` reports are analyzed offline with ``repro-obs``
(:mod:`repro.obs.cli`): span trees, hotspots, Perfetto/flamegraph
exports, and full report diffs.

Exit codes: ``0`` success, ``1`` an experiment crashed (``all`` keeps
going and aggregates) or ``compare`` flagged a regression, ``2`` usage
errors (unknown experiment, unreadable report).

``--json`` installs a real tracer + fresh metrics registry for the run
and serializes spans, metrics, and the experiment tables through
:mod:`repro.obs.report`; without it (and without ``--trace`` or
``REPRO_TRACE=1``) tracing stays the no-op default so timings are
unperturbed.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
import traceback

import numpy as np

from repro.bench.config import SCALES, current_scale
from repro.bench.experiments import ALL_EXPERIMENTS
from repro.engine.backend import BackendUnavailable, get_backend, resolve_backend
from repro.engine.pool import resolve_workers
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.profile import record_memory_metrics
from repro.obs.report import build_report, compare, load_report
from repro.obs.trace import Tracer, get_tracer, use_tracer

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "compare":
        return _main_compare(argv[1:])
    return _main_run(argv)


# ---------------------------------------------------------------------------
# repro-bench <experiment> [--scale S] [--json PATH] [--trace]
# ---------------------------------------------------------------------------


def _blas_info() -> str | None:
    """Short BLAS build identifier for report meta (host comparability).

    Wall-clock baselines depend on the numpy build's BLAS as much as on
    the machine; recording it makes cross-host report diffs explainable.
    Best-effort: ``None`` when the build config is not introspectable.
    """
    try:
        cfg = np.show_config(mode="dicts")
        blas = cfg.get("Build Dependencies", {}).get("blas", {})
        name = blas.get("name")
        version = blas.get("version")
        if name:
            return f"{name} {version}" if version else str(name)
    except Exception:
        pass
    return None


def _main_run(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's tables and figures "
        "(AICA collision detection, ICPP 2019).",
        epilog="Use 'repro-bench compare BASELINE CURRENT' to diff two --json reports.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig16), 'all', or 'list'",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="override REPRO_BENCH_SCALE for this run",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write a structured run report (spans + metrics + tables) to PATH",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="enable tracing and print a span summary (implied by --json)",
    )
    parser.add_argument(
        "--workers",
        metavar="N",
        default=None,
        help="worker processes for CD runs (int or 'auto'; overrides "
        "REPRO_WORKERS; default 1 = serial)",
    )
    parser.add_argument(
        "--backend",
        metavar="NAME",
        default=None,
        help="array backend for the v2 panel kernels (numpy, "
        "numpy_portable, array_api_strict, cupy, torch; overrides "
        "REPRO_BACKEND; default numpy)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print a heartbeat line per completed thread-block/pivot "
        "with ETA (same as REPRO_PROGRESS=1)",
    )
    args = parser.parse_args(argv)
    if args.progress:
        os.environ["REPRO_PROGRESS"] = "1"

    try:
        workers = resolve_workers(args.workers)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.workers is not None:
        # Experiments build their own TraversalConfig instances; the env
        # variable is the channel every run_cd resolves its default from.
        os.environ["REPRO_WORKERS"] = str(workers)

    try:
        backend = resolve_backend(args.backend)
        get_backend(backend)  # fail fast if the library is not importable
    except (ValueError, BackendUnavailable) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.backend is not None:
        # Same channel as --workers: every run_cd resolves its default
        # backend from the env (and pins it into worker configs).
        os.environ["REPRO_BACKEND"] = backend

    scale = SCALES[args.scale] if args.scale else current_scale()

    if args.experiment == "list":
        for name, fn in ALL_EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:22s} {doc}")
        return 0

    names = list(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2

    want_obs = args.json is not None or args.trace
    tracer = Tracer() if want_obs else get_tracer()
    metrics = MetricsRegistry()
    completed = []
    failures = []
    with use_tracer(tracer), use_metrics(metrics):
        for name in names:
            t0 = time.perf_counter()
            try:
                with tracer.span("bench.experiment", experiment=name):
                    result = ALL_EXPERIMENTS[name](scale)
            except Exception:
                # One crashing experiment must not abort the rest of `all`;
                # record it and fold into the exit code at the end.
                failures.append(name)
                print(f"[{name} FAILED]", file=sys.stderr)
                traceback.print_exc()
                continue
            dt = time.perf_counter() - t0
            print(result.render())
            print(f"\n[{name} completed in {dt:.1f}s at scale={scale.name}]\n")
            completed.append(result)

    if args.trace and tracer.enabled:
        print(_span_summary(tracer), file=sys.stderr)

    if args.json is not None:
        record_memory_metrics(metrics)  # parent peak RSS into every report
        report = build_report(
            args.experiment,
            tracer=tracer,
            metrics=metrics,
            meta={
                "scale": scale.name,
                "workers": workers,
                "backend": backend,
                "numpy": np.__version__,
                "blas": _blas_info(),
                "experiments": [r.exp_id for r in completed],
                "failed": failures,
                "argv": argv,
            },
            results=[
                {"exp_id": r.exp_id, "title": r.title, "headers": r.headers, "rows": r.rows}
                for r in completed
            ],
        )
        try:
            report.save(args.json)
        except OSError as exc:
            print(f"cannot write report: {exc}", file=sys.stderr)
            return 2
        print(f"[report written to {args.json}]")

    if failures:
        print(f"[{len(failures)} experiment(s) failed: {', '.join(failures)}]", file=sys.stderr)
        return 1
    return 0


def _span_summary(tracer: Tracer, top: int = 15) -> str:
    totals = tracer.totals()
    order = sorted(totals, key=lambda n: totals[n]["wall_s"], reverse=True)[:top]
    width = max((len(n) for n in order), default=4)
    lines = [f"-- trace summary (top {len(order)} spans by wall time) --"]
    for name in order:
        agg = totals[name]
        lines.append(
            f"{name:{width}s}  x{agg['count']:<6d} wall {agg['wall_s']:.3f}s "
            f"cpu {agg['cpu_s']:.3f}s"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# repro-bench compare <baseline.json> <current.json>
# ---------------------------------------------------------------------------


def _main_compare(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench compare",
        description="Diff two --json run reports and exit nonzero on regression.",
    )
    parser.add_argument("baseline", help="baseline report (repro-bench ... --json)")
    parser.add_argument("current", help="current report to check against the baseline")
    parser.add_argument(
        "--time-threshold",
        type=float,
        default=0.25,
        help="relative tolerance for timing metrics (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--count-threshold",
        type=float,
        default=0.01,
        help="relative tolerance for check-count metrics (default 0.01 = 1%%)",
    )
    parser.add_argument(
        "--min-time-delta",
        type=float,
        default=0.01,
        metavar="SECONDS",
        help="absolute floor below which timing movement is ignored (default 0.01s)",
    )
    args = parser.parse_args(argv)

    try:
        baseline = load_report(args.baseline)
        current = load_report(args.current)
    except (OSError, ValueError) as exc:
        print(f"cannot load report: {exc}", file=sys.stderr)
        return 2

    result = compare(
        baseline,
        current,
        time_threshold=args.time_threshold,
        count_threshold=args.count_threshold,
        min_time_delta_s=args.min_time_delta,
    )
    print(f"baseline: {args.baseline} ({baseline.label})")
    print(f"current:  {args.current} ({current.label})")
    print(result.render())
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
