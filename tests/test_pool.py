"""The multi-process execution engine (`repro.engine.pool`).

The contract under test is determinism: any worker count must produce
byte-identical accessibility maps and identical merged counters for
every method, with metrics and trace reports that a serial run's
consumers can read unchanged.
"""

import numpy as np
import pytest

from repro.cd.methods import METHODS, AICA, MICA
from repro.cd.pathrun import run_along_path
from repro.cd.traversal import TraversalConfig, run_cd
from repro.engine.counters import ThreadCounters
from repro.engine.pool import SharedScene, WorkerPool, resolve_workers
from repro.geometry.orientation import OrientationGrid
from repro.ica.table import build_ica_table
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.trace import Tracer, use_tracer
from repro.tool.tool import paper_tool


GRID = OrientationGrid.square(6)


def _same_counters(a: ThreadCounters, b: ThreadCounters) -> None:
    assert a.n_threads == b.n_threads and a.n_cyl == b.n_cyl
    for name in ThreadCounters.COUNTER_FIELDS:
        np.testing.assert_array_equal(
            getattr(a, name), getattr(b, name), err_msg=name
        )


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() == 1
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert resolve_workers() == 4
        assert resolve_workers(None) == 4

    def test_auto_is_cpu_count(self, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_WORKERS", "auto")
        assert resolve_workers() == (os.cpu_count() or 1)
        assert resolve_workers("auto") == (os.cpu_count() or 1)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            resolve_workers("many")
        with pytest.raises(ValueError):
            resolve_workers(-2)


class TestSharedScene:
    def test_tree_roundtrip(self, sphere_scene):
        tree = sphere_scene.tree
        shared = SharedScene.create(tree)
        try:
            attached, table = SharedScene.attach(shared.manifest)
            assert table is None
            assert attached.depth == tree.depth
            np.testing.assert_array_equal(attached.domain.lo, tree.domain.lo)
            for l in range(tree.depth + 1):
                np.testing.assert_array_equal(
                    attached.levels[l].codes, tree.levels[l].codes
                )
                np.testing.assert_array_equal(
                    attached.levels[l].status, tree.levels[l].status
                )
                np.testing.assert_array_equal(
                    attached.levels[l].child_start, tree.levels[l].child_start
                )
                np.testing.assert_array_equal(
                    attached.levels[l].child_count, tree.levels[l].child_count
                )
        finally:
            shared.destroy()

    def test_table_roundtrip(self, sphere_scene):
        tree = sphere_scene.tree
        table = build_ica_table(tree, sphere_scene.tool, sphere_scene.pivot)
        shared = SharedScene.create(tree, table)
        try:
            _, attached = SharedScene.attach(shared.manifest)
            assert attached.levels == table.levels
            assert attached.n_entries == table.n_entries
            for l in range(len(table.cos1)):
                np.testing.assert_array_equal(attached.cos1[l], table.cos1[l])
                np.testing.assert_array_equal(attached.cos2[l], table.cos2[l])
        finally:
            shared.destroy()

    def test_attached_views_are_readonly(self, sphere_scene):
        shared = SharedScene.create(sphere_scene.tree)
        try:
            attached, _ = SharedScene.attach(shared.manifest)
            with pytest.raises(ValueError):
                attached.levels[0].codes[...] = 0
        finally:
            shared.destroy()

    def test_destroy_idempotent(self, sphere_scene):
        shared = SharedScene.create(sphere_scene.tree)
        shared.destroy()
        shared.destroy()


class TestRunCdEquivalence:
    """Serial vs workers=2 vs workers=4, all five methods (fixed scene)."""

    @pytest.fixture(scope="class")
    def serial(self, sphere_scene):
        return {
            cls.name: run_cd(sphere_scene, GRID, cls(), workers=1) for cls in METHODS
        }

    @pytest.mark.parametrize("n_workers", [2, 4])
    @pytest.mark.parametrize("method_cls", METHODS, ids=[c.name for c in METHODS])
    def test_byte_identical(self, sphere_scene, serial, method_cls, n_workers):
        ref = serial[method_cls.name]
        par = run_cd(sphere_scene, GRID, method_cls(), workers=n_workers)
        np.testing.assert_array_equal(par.collides, ref.collides)
        _same_counters(par.counters, ref.counters)
        assert par.table_entries == ref.table_entries
        assert par.timing.cd_tests_s == ref.timing.cd_tests_s
        assert par.timing.ica_precompute_s == ref.timing.ica_precompute_s

    def test_config_workers_field_is_honored(self, sphere_scene, serial):
        cfg = TraversalConfig(workers=2)
        par = run_cd(sphere_scene, GRID, AICA(), config=cfg)
        np.testing.assert_array_equal(par.collides, serial["AICA"].collides)

    def test_env_workers_is_honored(self, sphere_scene, serial, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        par = run_cd(sphere_scene, GRID, MICA())
        np.testing.assert_array_equal(par.collides, serial["MICA"].collides)
        _same_counters(par.counters, serial["MICA"].counters)

    def test_more_workers_than_orientations(self, sphere_scene):
        g = OrientationGrid(2, 2)
        ref = run_cd(sphere_scene, g, AICA(), workers=1)
        par = run_cd(sphere_scene, g, AICA(), workers=16)
        np.testing.assert_array_equal(par.collides, ref.collides)
        _same_counters(par.counters, ref.counters)

    def test_metrics_counts_match_serial(self, sphere_scene):
        with use_metrics(MetricsRegistry()) as serial_reg:
            run_cd(sphere_scene, GRID, AICA(), workers=1)
        with use_metrics(MetricsRegistry()) as par_reg:
            run_cd(sphere_scene, GRID, AICA(), workers=2)
        a, b = serial_reg.as_dict(), par_reg.as_dict()
        # Every serial metric exists in the pooled registry with the same
        # counts; the pooled run adds its engine.pool.* telemetry on top.
        # Workspace arena and array-backend telemetry are host-side (one
        # arena/backend per serial run vs one per worker) so they live in
        # per-path namespaces — engine.{workspace,backend}.* serial,
        # engine.pool.{workspace,backend}.* pooled — and are exempt from
        # the cross-path comparison.
        host_only = {
            n for n in a
            if n.startswith(("engine.workspace.", "engine.backend."))
        }
        assert set(a) - host_only <= set(b)
        assert all(n.startswith(("engine.pool.", "proc.")) for n in set(b) - set(a))
        for name in set(a) - host_only:
            if a[name]["type"] == "counter" and not name.endswith(("_s", "_ms")):
                assert a[name]["value"] == b[name]["value"], name

    def test_trace_is_folded_and_schema_compatible(self, sphere_scene):
        with use_tracer(Tracer()) as tr:
            run_cd(sphere_scene, GRID, MICA(), workers=2)
        records = tr.to_dicts()
        names = {r["name"] for r in records}
        assert {"cd.run", "ica.table.build", "pool.share", "cd.traversal", "cd.level"} <= names
        for i, rec in enumerate(records):
            assert rec["parent"] == -1 or 0 <= rec["parent"] < len(records)
            if rec["parent"] >= 0:
                assert records[rec["parent"]]["depth"] == rec["depth"] - 1
        workers_seen = {
            r["attrs"]["pool_worker"] for r in records if "pool_worker" in r["attrs"]
        }
        assert len(workers_seen) == 2


class TestPathRunEquivalence:
    @pytest.fixture(scope="class")
    def pivots(self):
        rng = np.random.default_rng(42)
        base = np.array([0.0, 0.0, 21.0])
        return base + rng.uniform(-1.5, 1.5, size=(3, 3)) * np.array([1, 1, 0.3])

    @pytest.fixture(scope="class")
    def serial(self, sphere_scene, pivots):
        return run_along_path(
            sphere_scene.tree, paper_tool(), pivots, GRID, AICA(), workers=1
        )

    def test_pivot_sharded_identical(self, sphere_scene, pivots, serial):
        par = run_along_path(
            sphere_scene.tree, paper_tool(), pivots, GRID, AICA(), workers=2
        )
        assert len(par.results) == len(serial.results)
        for a, b in zip(serial.results, par.results):
            np.testing.assert_array_equal(b.collides, a.collides)
            _same_counters(b.counters, a.counters)
            assert b.table_entries == a.table_entries
        np.testing.assert_array_equal(par.overlaps, serial.overlaps)

    def test_metrics_counts_match_serial(self, sphere_scene, pivots):
        with use_metrics(MetricsRegistry()) as serial_reg:
            run_along_path(
                sphere_scene.tree, paper_tool(), pivots, GRID, MICA(), workers=1
            )
        with use_metrics(MetricsRegistry()) as par_reg:
            run_along_path(
                sphere_scene.tree, paper_tool(), pivots, GRID, MICA(), workers=2
            )
        a, b = serial_reg.as_dict(), par_reg.as_dict()
        # Same exemption as the run_cd variant, but covering both arena
        # namespaces: under REPRO_WORKERS the "serial" path run still
        # orientation-shards its inner run_cd calls (exporting
        # engine.pool.workspace.*), while the pivot-sharded run forces
        # its inner runs serial — arena/backend telemetry is per-path,
        # host-side.
        host_only = {
            n for n in a
            if n.startswith((
                "engine.workspace.", "engine.pool.workspace.",
                "engine.backend.", "engine.pool.backend.",
            ))
        }
        assert set(a) - host_only <= set(b)
        assert all(n.startswith(("engine.pool.", "proc.")) for n in set(b) - set(a))
        for name in set(a) - host_only:
            if a[name]["type"] == "counter" and not name.endswith(("_s", "_ms")):
                assert a[name]["value"] == b[name]["value"], name

    def test_trace_has_per_pivot_spans(self, sphere_scene, pivots):
        with use_tracer(Tracer()) as tr:
            run_along_path(
                sphere_scene.tree, paper_tool(), pivots, GRID, AICA(), workers=2
            )
        names = {r["name"] for r in tr.to_dicts()}
        assert {"cd.path.pool", "cd.pivot", "cd.run", "cd.traversal"} <= names
        pivot_spans = [r for r in tr.to_dicts() if r["name"] == "cd.pivot"]
        assert len(pivot_spans) == 3
        assert all(r["wall_s"] > 0 for r in pivot_spans), "re-timed from workers"

    def test_reported_config_is_callers(self, sphere_scene, pivots):
        cfg = TraversalConfig(workers=2)
        par = run_along_path(
            sphere_scene.tree, paper_tool(), pivots, GRID, AICA(), config=cfg
        )
        assert all(r.config == cfg for r in par.results)


class TestMergedWith:
    def _random_counters(self, rng, n=16, n_cyl=4):
        c = ThreadCounters(n_threads=n, n_cyl=n_cyl)
        for name in ThreadCounters.COUNTER_FIELDS:
            setattr(c, name, rng.integers(0, 1000, size=n).astype(np.int64))
        return c

    def test_commutative(self, rng):
        a, b = self._random_counters(rng), self._random_counters(rng)
        _same_counters(a.merged_with(b), b.merged_with(a))

    def test_associative(self, rng):
        a, b, c = (self._random_counters(rng) for _ in range(3))
        _same_counters(
            a.merged_with(b).merged_with(c), a.merged_with(b.merged_with(c))
        )

    def test_identity(self, rng):
        a = self._random_counters(rng)
        zero = ThreadCounters(n_threads=a.n_threads, n_cyl=a.n_cyl)
        _same_counters(a.merged_with(zero), a)

    def test_shape_mismatch_raises(self, rng):
        a = self._random_counters(rng, n=8)
        b = self._random_counters(rng, n=9)
        with pytest.raises(ValueError):
            a.merged_with(b)
        c = ThreadCounters(n_threads=8, n_cyl=5)
        with pytest.raises(ValueError):
            a.merged_with(c)


class TestWorkerPool:
    def test_map_preserves_order(self):
        with WorkerPool(2) as pool:
            out = pool.map(_square, list(range(8)))
        assert out == [i * i for i in range(8)]


def _square(x):
    return x * x
