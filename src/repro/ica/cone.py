"""Exact inaccessible-cone-angle computation (GETTOOLICA).

Geometry
--------
Work in the 2D (axial, radial) half-plane containing the tool axis and
the sphere center.  The tool's generating profile is a union of
rectangles ``[z0_c, z1_c] x [0, R_c]``; the sphere of radius ``r`` at
distance ``d`` from the pivot touches the tool at orientation angle
``theta`` (angle between tool axis and pivot-to-center vector) iff the
point ``(d cos(theta), d sin(theta))`` lies within distance ``r`` of
some rectangle — i.e. inside the rectangle expanded (Minkowski sum) by a
disk of radius ``r``.  Each expanded rectangle is convex, so the arc of
radius ``d`` meets it in a single sub-arc; restricted to ``theta in
[0, pi]`` that is at most two intervals per cylinder, and the tool's
*inaccessible set* is the union over cylinders.

The paper defines a single ICA value ("the largest touching angle");
that is only sound when the inaccessible set is the interval
``[0, ica]``, which fails for voxels beyond the tool's reach or behind
the pivot.  We therefore return two sound bounds:

* ``ica_lo`` — the upper end of the inaccessible component containing
  ``theta = 0`` (sentinel ``-1`` when ``theta = 0`` is itself
  accessible), so ``theta <= ica_lo  =>  collision``;
* ``ica_hi`` — the supremum of the whole inaccessible set (``0`` when it
  is empty), so ``theta >= ica_hi  =>  no collision``.

``CHECKICA`` uses ``ica_lo`` of the voxel's *inscribed* sphere and
``ica_hi`` of its *circumscribed* sphere (Algorithm 1 / Figure 8).

Implementation
--------------
Everything is computed in **cosine space**: candidate crossing angles
between the arc and the five boundary components of each expanded
rectangle (two cap lines, the top line, two corner circles) have
closed-form cosines requiring only arithmetic and square roots — no
trigonometric calls, which dominate the cost otherwise.  Cosine is
strictly decreasing on ``[0, pi]``, so sorting cosines descending orders
candidates by increasing angle, and the *mean* of two consecutive
cosines is an interior sample of the segment between them (all that
membership evaluation needs).  Spurious candidates (crossings with a
component's extension outside its valid range) merely split a segment in
two and are harmless.

The cos-space results are exposed directly (:func:`ica_bounds_cos`) for
hot paths that also keep their query angles as cosines; the angle-space
API applies a single ``arccos`` per output.
"""

from __future__ import annotations

import numpy as np

from repro.tool.tool import Tool

__all__ = [
    "ica_bounds_cos",
    "ica_bounds_arrays",
    "tool_ica_batch",
    "tool_ica",
    "inaccessible_intervals",
    "ACCESSIBLE_SENTINEL",
    "COS_NEVER",
]

#: ``ica_lo`` (angle space) meaning "no collision guaranteed at any angle".
ACCESSIBLE_SENTINEL = -1.0

#: ``cos_lo`` (cos space) sentinel with the same meaning: query cosines
#: are <= 1, so ``cos_angle >= COS_NEVER`` never fires.
COS_NEVER = 2.0


def _member_cos(z0, z1, R, d, r, c) -> np.ndarray:
    """Touching test at cosine samples ``c (B, S)``; tool ``(C,)``, ``d``/``r`` ``(B,)``.

    ``z = d*c``, ``rho = d*sqrt(1 - c^2)`` (the ``theta in [0, pi]``
    branch), then 2D distance to each rectangle vs ``r``.
    """
    cc = np.clip(c, -1.0, 1.0)
    z = (d[:, None] * cc)[:, :, None]  # (B, S, 1)
    rho = (d[:, None] * np.sqrt(1.0 - cc * cc))[:, :, None]
    dz = np.maximum(z0 - z, 0.0) + np.maximum(z - z1, 0.0)  # (B, S, C)
    drho = np.maximum(rho - R, 0.0)
    rr = r[:, None, None]
    return ((dz * dz + drho * drho) <= rr * rr).any(axis=-1)


def _candidate_cos(z0, z1, R, d, r) -> np.ndarray:
    """Cosines of all potential arc/boundary crossings, shape ``(B, 8C + 2)``.

    Per cylinder: 2 cap-line crossings, 2 top-line crossings, 2 + 2
    corner-circle crossings; plus the global endpoints ``cos 0 = 1`` and
    ``cos pi = -1``.  Out-of-range values are clipped into ``[-1, 1]``,
    yielding degenerate (harmless) candidates.  All closed form:

    * cap line ``z = z1 + r``:  ``cos = (z1 + r) / d``;
    * top line ``rho = R + r``: ``cos = +-sqrt(1 - ((R + r)/d)^2)``;
    * corner circle at ``q = (zc, R)``: by the law of cosines the angle
      ``delta`` between the corner direction and the crossing satisfies
      ``cos delta = (d^2 + |q|^2 - r^2) / (2 d |q|)``, and
      ``cos(alpha +- delta)`` expands with ``cos alpha = zc/|q|``,
      ``sin alpha = R/|q|`` — arithmetic only.
    """
    B = d.shape[0]
    d_ = np.maximum(d, 1e-300)[:, None]  # guard the d = 0 degenerate case
    r_ = r[:, None]

    cap_hi = np.clip((z1 + r_) / d_, -1.0, 1.0)  # (B, C)
    cap_lo = np.clip((z0 - r_) / d_, -1.0, 1.0)
    s_top = np.clip((R + r_) / d_, 0.0, 1.0)
    c_top = np.sqrt(1.0 - s_top * s_top)

    parts = [cap_hi, cap_lo, c_top, -c_top]
    for cz in (z0, z1):
        Dq = np.hypot(cz, R)[None, :]  # (1, C) pivot-to-corner distance
        Dq_safe = np.maximum(Dq, 1e-300)
        cos_a = cz / Dq_safe
        sin_a = R / Dq_safe
        cos_delta = np.clip(
            (d_ * d_ + Dq_safe * Dq_safe - r_ * r_) / (2.0 * d_ * Dq_safe), -1.0, 1.0
        )
        sin_delta = np.sqrt(1.0 - cos_delta * cos_delta)
        parts.append(np.clip(cos_a * cos_delta + sin_a * sin_delta, -1.0, 1.0))
        parts.append(np.clip(cos_a * cos_delta - sin_a * sin_delta, -1.0, 1.0))

    cand = np.concatenate(parts, axis=1)  # (B, 8C)
    ends = np.broadcast_to(np.array([1.0, -1.0]), (B, 2))
    return np.concatenate([cand, ends], axis=1)


def ica_bounds_cos(
    z0, z1, R, dist, sphere_r, *, chunk: int = 65536
) -> tuple[np.ndarray, np.ndarray]:
    """Cos-space GETTOOLICA over batches.

    Returns ``(cos_lo, cos_hi)`` with the guarantees (for query cosine
    ``ca = cos(theta)``):

    * ``ca >= cos_lo``  =>  collision (``cos_lo = COS_NEVER`` if theta=0
      itself is accessible — never fires);
    * ``ca <= cos_hi``  =>  no collision (``cos_hi = 1`` when nothing is
      inaccessible).

    Batches larger than ``chunk`` are processed in slices so the
    ``(B, 8C+1, C)`` membership intermediates stay cache-sized instead of
    ballooning to hundreds of MB on deep traversal frontiers.
    """
    z0 = np.atleast_1d(np.asarray(z0, dtype=np.float64))
    z1 = np.atleast_1d(np.asarray(z1, dtype=np.float64))
    R = np.atleast_1d(np.asarray(R, dtype=np.float64))
    d, r = np.broadcast_arrays(
        np.asarray(dist, dtype=np.float64), np.asarray(sphere_r, dtype=np.float64)
    )
    shape = d.shape
    d = d.ravel()
    r = r.ravel()
    if np.any(r < 0.0):
        raise ValueError("sphere radius must be non-negative")

    if d.size > chunk:
        lo = np.empty(d.size)
        hi = np.empty(d.size)
        for start in range(0, d.size, chunk):
            sl = slice(start, min(start + chunk, d.size))
            lo[sl], hi[sl] = ica_bounds_cos(z0, z1, R, d[sl], r[sl], chunk=chunk)
        return lo.reshape(shape), hi.reshape(shape)

    # Descending cosine == ascending angle.
    cand = -np.sort(-_candidate_cos(z0, z1, R, d, r), axis=1)  # (B, K)
    mids = 0.5 * (cand[:, :-1] + cand[:, 1:])  # interior cos samples
    member = _member_cos(z0, z1, R, d, r, mids)  # (B, K-1)

    # Supremum of the inaccessible set: the far (smaller-cos) edge of the
    # last member segment; cos 0 = 1 when the set is empty.
    cos_hi = np.min(np.where(member, cand[:, 1:], COS_NEVER), axis=1)
    cos_hi = np.where(cos_hi == COS_NEVER, 1.0, cos_hi)

    # End of the member run starting at theta = 0.
    first_false = np.argmax(~member, axis=1)
    all_true = member.all(axis=1)
    row = np.arange(len(d))
    cos_lo = np.where(all_true, -1.0, cand[row, first_false])
    cos_lo = np.where(member[:, 0], cos_lo, COS_NEVER)

    return cos_lo.reshape(shape), cos_hi.reshape(shape)


def ica_bounds_arrays(z0, z1, R, dist, sphere_r) -> tuple[np.ndarray, np.ndarray]:
    """Angle-space GETTOOLICA (see module docstring for the guarantees)."""
    cos_lo, cos_hi = ica_bounds_cos(z0, z1, R, dist, sphere_r)
    lo = np.where(
        cos_lo >= COS_NEVER,
        ACCESSIBLE_SENTINEL,
        np.arccos(np.clip(cos_lo, -1.0, 1.0)),
    )
    hi = np.arccos(np.clip(cos_hi, -1.0, 1.0))
    return lo, hi


def tool_ica_batch(tool: Tool, dist, sphere_r) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized GETTOOLICA for a :class:`Tool`; returns ``(ica_lo, ica_hi)``
    in radians, broadcasting ``dist`` and ``sphere_r``."""
    return ica_bounds_arrays(tool.z0, tool.z1, tool.radius, dist, sphere_r)


def tool_ica(tool: Tool, dist: float, sphere_r: float) -> tuple[float, float]:
    """Scalar convenience wrapper around :func:`tool_ica_batch`."""
    lo, hi = tool_ica_batch(tool, np.asarray([dist]), np.asarray([sphere_r]))
    return float(lo[0]), float(hi[0])


def inaccessible_intervals(tool: Tool, dist: float, sphere_r: float) -> list[tuple[float, float]]:
    """The full inaccessible angle set as merged closed intervals.

    Mostly a test/diagnostic helper: :func:`tool_ica_batch` only needs the
    two bounds, but the intervals expose the complete structure (e.g. the
    detached interval of a voxel reachable only by the tool's side).
    """
    d = np.asarray([float(dist)])
    r = np.asarray([float(sphere_r)])
    cand = -np.sort(-_candidate_cos(tool.z0, tool.z1, tool.radius, d, r), axis=1)
    mids = 0.5 * (cand[:, :-1] + cand[:, 1:])
    member = _member_cos(tool.z0, tool.z1, tool.radius, d, r, mids)[0]
    edges = np.arccos(np.clip(cand[0], -1.0, 1.0))
    out: list[tuple[float, float]] = []
    for seg in range(len(member)):
        if not member[seg]:
            continue
        a, b = float(edges[seg]), float(edges[seg + 1])
        if out and a <= out[-1][1] + 1e-12:
            out[-1] = (out[-1][0], b)
        else:
            out.append((a, b))
    return out
