"""Table 1 + Table 2: benchmark statistics and the simulated platforms."""

from repro.bench.experiments import table1, table2


def test_table1(benchmark, scale, record):
    result = benchmark.pedantic(table1, args=(scale,), rounds=1, iterations=1)
    record(result)
    rows = result.rows
    assert len(rows) == 4 * len(scale.resolutions)
    # octree node counts grow superlinearly (surface ~ resolution^2)
    by_model: dict[str, list] = {}
    for r in rows:
        by_model.setdefault(r[0], []).append(r[2])
    for model, counts in by_model.items():
        assert all(b > 2 * a for a, b in zip(counts, counts[1:])), (
            f"{model}: node counts {counts} should roughly quadruple per 2x "
            "resolution"
        )
    # path points double per resolution doubling (Table 1's linear scaling)
    for r0, r1 in zip(rows, rows[1:]):
        if r0[0] == r1[0]:
            assert 1.5 < r1[6] / r0[6] < 2.5


def test_table2(benchmark, record):
    result = benchmark.pedantic(table2, rounds=1, iterations=1)
    record(result)
    devices = {row[0]: row for row in result.rows}
    # Table 2's tension: the 1080 Ti has more cores, the 1080 a higher clock
    assert devices["GTX 1080 Ti"][1] > devices["GTX 1080"][1]
    assert devices["GTX 1080 Ti"][2] < devices["GTX 1080"][2]
