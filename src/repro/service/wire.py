"""Shared JSON-over-HTTP wire plumbing for the serving tier.

Every HTTP front end in the repo — the replica server
(:mod:`repro.service.http`), the cluster router
(:mod:`repro.cluster.router`), and the client sides of ``repro-loadgen``
and the router's health probes — speaks the same small dialect: JSON
bodies, ``X-Request-Id`` correlation, W3C ``traceparent`` propagation,
a JSON ``500`` error fence, and ``Retry-After``-honoring backpressure.
This module owns that dialect once, so the router does not re-implement
the replica's encoding (and cannot drift from it).

Server side — :class:`JsonRequestHandler`, a
:class:`~http.server.BaseHTTPRequestHandler` subclass carrying all the
request-scoped plumbing the replica front end grew over PRs 4–8:
response encoding with request-ID / trace-context echo, the inbound
``X-Request-Id`` allowlist fence, the unhandled-exception fence
(JSON ``500`` + error counters, never a dead thread), the sliding
request window feed, and one structured access-log line per request.
Subclasses implement only routes (``_route_get`` / ``_route_post``).

Client side — :func:`http_json` / :func:`http_text` with **typed
failures**: transport-level problems (connection refused, DNS, reset,
timeout) raise :class:`ServiceUnreachable` / :class:`ServiceTimeout`
instead of being folded into HTTP statuses or escaping as whatever
:mod:`urllib` felt like raising.  An HTTP error *response* is not an
exception — it returns ``(status, payload, headers)`` like any other
answer.  That distinction is what lets a health prober say "the replica
is down" (transport error) versus "the replica is overloaded" (a 503 it
answered), and lets the load generator report each failure class
separately instead of catching broad ``Exception``.
"""

from __future__ import annotations

import json
import os
import re
import socket
import time
import urllib.error
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler

from repro.obs.context import (
    TRACEPARENT_HEADER,
    TRACESTATE_HEADER,
    TraceContext,
    new_trace_id,
    parse_traceparent,
    sample_rate_from_env,
    trace_sampled,
)
from repro.obs.log import get_access_log, new_request_id
from repro.obs.metrics import get_metrics

__all__ = [
    "TransportError",
    "ServiceUnreachable",
    "ServiceTimeout",
    "http_json",
    "http_text",
    "retry_after_from",
    "REQUEST_ID_RE",
    "JsonRequestHandler",
]

# Inbound X-Request-Id values are echoed into response headers and
# access-log lines; anything outside this allowlist (length-bounded,
# no CR/LF or exotic bytes) is replaced with a freshly minted ID so a
# hostile client can't inject headers or forge log lines.
REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")


# ---------------------------------------------------------------------------
# Client side: JSON/text requests with typed transport failures
# ---------------------------------------------------------------------------


class TransportError(Exception):
    """The request never produced an HTTP response.

    Base class for failures *below* HTTP: the peer was unreachable or
    too slow to answer.  ``url`` names the attempted endpoint.  HTTP
    error statuses (4xx/5xx) are **not** transport errors — they are
    answers, returned as values.
    """

    def __init__(self, url: str, reason: str):
        self.url = url
        self.reason = reason
        super().__init__(f"{reason} ({url})")


class ServiceUnreachable(TransportError):
    """Connection refused / reset / DNS failure: nobody is listening."""


class ServiceTimeout(TransportError):
    """The peer accepted the connection but did not answer in time."""


def _request(url: str, data: bytes | None, headers: dict | None, timeout: float):
    req = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json", **(headers or {})}
    )
    try:
        return urllib.request.urlopen(req, timeout=timeout)
    except urllib.error.HTTPError:
        raise  # an HTTP answer: the caller turns it into (status, payload)
    except socket.timeout as exc:  # pre-3.10 spelling of TimeoutError
        raise ServiceTimeout(url, f"timed out after {timeout:g}s") from exc
    except urllib.error.URLError as exc:
        if isinstance(exc.reason, (TimeoutError, socket.timeout)):
            raise ServiceTimeout(url, f"timed out after {timeout:g}s") from exc
        raise ServiceUnreachable(url, f"unreachable: {exc.reason}") from exc
    except (ConnectionError, OSError) as exc:
        raise ServiceUnreachable(url, f"unreachable: {exc}") from exc


def http_json(
    url: str,
    body: dict | None = None,
    *,
    timeout: float = 300.0,
    headers: dict | None = None,
):
    """One JSON request; returns ``(status, payload, headers)``.

    ``body is None`` sends a GET, anything else a POST.  HTTP error
    statuses come back as values (payload is the decoded error body, or
    ``{"error": ...}`` when the body is not JSON).  Transport failures
    raise :class:`ServiceUnreachable` / :class:`ServiceTimeout`.
    """
    data = None if body is None else json.dumps(body).encode("utf-8")
    try:
        with _request(url, data, headers, timeout) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8")), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        try:
            payload = json.loads(exc.read().decode("utf-8"))
        except Exception:
            payload = {"error": str(exc)}
        return exc.code, payload, dict(exc.headers or {})


def http_text(
    url: str, *, timeout: float = 60.0, headers: dict | None = None
) -> tuple[int, str]:
    """One raw-text GET (e.g. the Prometheus exposition is not JSON)."""
    try:
        with _request(url, None, headers, timeout) as resp:
            return resp.status, resp.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8", errors="replace")


def retry_after_from(headers: dict, payload, default: float = 0.2) -> float:
    """The backoff a 503 response asked for, in seconds.

    Precedence: the ``Retry-After`` HTTP header (the standard signal,
    delta-seconds form), then the JSON body's ``retry_after_s`` (this
    service's own convention), then ``default``.  Never negative.
    """
    for name, value in (headers or {}).items():
        if name.lower() == "retry-after":
            try:
                return max(0.0, float(str(value).strip()))
            except ValueError:
                break  # an HTTP-date (or garbage): fall through to the body
    if isinstance(payload, dict):
        try:
            return max(0.0, float(payload.get("retry_after_s", default)))
        except (TypeError, ValueError):
            pass
    return max(0.0, float(default))


# ---------------------------------------------------------------------------
# Server side: the request-scoped plumbing every front end shares
# ---------------------------------------------------------------------------


class JsonRequestHandler(BaseHTTPRequestHandler):
    """JSON request handler with the serving tier's standard plumbing.

    Subclasses set :attr:`known_routes` (for bounded-cardinality error
    labels) and :attr:`error_counter` (the unhandled-exception counter
    namespace), and implement ``_route_get(path)`` / ``_route_post(path)``.
    Everything request-scoped is inherited:

    * request ID: inbound ``X-Request-Id`` honored against
      :data:`REQUEST_ID_RE`, else minted; echoed on every response;
    * trace context: inbound ``traceparent`` honored (sampling flag
      included), else minted + head-sampled per ``REPRO_TRACE_SAMPLE``;
      the response echoes whatever ``self._response_traceparent`` holds;
    * error fence: an unhandled route exception answers a JSON ``500``
      with the request ID and bumps ``<error_counter>`` /
      ``<error_counter>.<route>.500`` — the thread and the process live on;
    * request window: every finished request (minus
      :attr:`unwindowed_routes`) lands in the server's
      :class:`~repro.obs.window.RequestWindow`, when it has one;
    * access log: one structured line per request via
      :mod:`repro.obs.log`, carrying the trace ID and any extras a route
      stashed in ``self._log_fields``.

    The owning server object may expose ``window`` (a
    :class:`~repro.obs.window.RequestWindow`) and ``extra_headers`` (a
    dict stamped on every response — the router uses it for its identity
    header).
    """

    protocol_version = "HTTP/1.1"

    #: Routes that get their own error-counter label; others are "other".
    known_routes: frozenset = frozenset()
    #: Routes whose own traffic must not pollute the request window
    #: (health probes and scrapers poll them constantly).
    unwindowed_routes: frozenset = frozenset({"/v1/healthz", "/v1/metrics"})
    #: Namespace for the unhandled-exception counters.
    error_counter: str = "service.errors"

    # -- plumbing ---------------------------------------------------------

    def log_message(self, fmt, *args) -> None:  # noqa: A003 - stdlib hook
        # The structured JSON access log (repro.obs.log) supersedes the
        # stdlib per-request line; REPRO_HTTP_LOG=1 re-enables the latter.
        if os.environ.get("REPRO_HTTP_LOG", "").strip() == "1":
            super().log_message(fmt, *args)

    def _route_label(self, path: str) -> str:
        """A bounded-cardinality metric label for a request path
        (``/v1/cd`` -> ``v1.cd``; anything unknown -> ``other``)."""
        if path in self.known_routes:
            return path.strip("/").replace("/", ".")
        return "other"

    def _send_json(self, code: int, obj, *, headers: dict | None = None) -> None:
        data = json.dumps(obj).encode("utf-8")
        self._send_bytes(code, data, "application/json", headers)

    def _send_text(self, code: int, text: str, content_type: str) -> None:
        self._send_bytes(code, text.encode("utf-8"), content_type, None)

    def _send_bytes(
        self, code: int, data: bytes, content_type: str, headers: dict | None
    ) -> None:
        self._status = code
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.send_header("X-Request-Id", self._request_id)
        if self._response_traceparent:
            self.send_header(TRACEPARENT_HEADER, self._response_traceparent)
            if self._trace_ctx is not None and self._trace_ctx.tracestate:
                self.send_header(TRACESTATE_HEADER, self._trace_ctx.tracestate)
        for name, value in getattr(self.server, "extra_headers", {}).items():
            self.send_header(name, value)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ValueError("request needs a JSON body")
        body = json.loads(self.rfile.read(length).decode("utf-8"))
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        return body

    # -- request-scoped dispatch ------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._handle("GET", self._route_get)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._handle("POST", self._route_post)

    def _trace_context(self) -> TraceContext:
        """The request's trace context: inbound ``traceparent`` honored
        (including its ``sampled`` flag), anything malformed or absent
        minted fresh with the head-sampling decision from
        ``REPRO_TRACE_SAMPLE``.  ``tracestate`` rides along verbatim."""
        ctx = parse_traceparent(self.headers.get(TRACEPARENT_HEADER))
        if ctx is None:
            trace_id = new_trace_id()
            ctx = TraceContext(
                trace_id=trace_id,
                sampled=trace_sampled(trace_id, sample_rate_from_env()),
            )
        tracestate = (self.headers.get(TRACESTATE_HEADER) or "").strip()
        if tracestate:
            ctx = TraceContext(
                trace_id=ctx.trace_id, span_id=ctx.span_id,
                sampled=ctx.sampled, tracestate=tracestate,
            )
        return ctx

    def _handle(self, verb: str, route_fn) -> None:
        """Wrap one request: ID, timing, error fence, window, access log."""
        t0 = time.perf_counter()
        raw_id = (self.headers.get("X-Request-Id") or "").strip()
        self._request_id = raw_id if REQUEST_ID_RE.match(raw_id) else new_request_id()
        self._status: int | None = None
        self._trace_ctx = self._trace_context()
        self._response_traceparent: str | None = None
        self._log_fields: dict = {"trace_id": self._trace_ctx.trace_id}
        path = urllib.parse.urlsplit(self.path).path
        try:
            route_fn(path)
        except Exception as exc:  # the fence: no dead threads, no bare tracebacks
            metrics = get_metrics()
            metrics.counter(self.error_counter).inc()
            metrics.counter(
                f"{self.error_counter}.{self._route_label(path)}.500"
            ).inc()
            self._log_fields["error"] = f"{type(exc).__name__}: {exc}"
            # The connection may hold a half-written response; don't reuse it.
            self.close_connection = True
            if self._status is None:
                try:
                    self._send_json(500, {
                        "error": f"internal error: {type(exc).__name__}: {exc}",
                        "request_id": self._request_id,
                    })
                except OSError:
                    pass  # client already gone; the log line still records it
        finally:
            ms = (time.perf_counter() - t0) * 1e3
            status = self._status if self._status is not None else 500
            window = getattr(self.server, "window", None)
            if window is not None and path not in self.unwindowed_routes:
                window.record(ms, error=status >= 500)
            get_access_log().request(
                id=self._request_id,
                route=path,
                method=verb,
                status=status,
                ms=ms,
                **self._log_fields,
            )

    # -- shared routes ----------------------------------------------------

    def _route_metrics(self) -> None:
        """``GET /v1/metrics``: the ambient registry, JSON or Prometheus."""
        from repro.obs.expo import CONTENT_TYPE as _PROM_CONTENT_TYPE
        from repro.obs.expo import render_prometheus

        params = urllib.parse.parse_qs(urllib.parse.urlsplit(self.path).query)
        fmt = params.get("format", ["json"])[-1]
        # Refresh the window gauges so both encodings carry the rolling
        # stats a scraper can alert on.
        window = getattr(self.server, "window", None)
        if window is not None:
            window.export_gauges(get_metrics())
        if fmt == "prometheus":
            self._send_text(200, render_prometheus(get_metrics()), _PROM_CONTENT_TYPE)
        elif fmt == "json":
            self._send_json(200, get_metrics().as_dict())
        else:
            self._send_json(
                400, {"error": f"unknown format {fmt!r} (json or prometheus)"}
            )

    # -- routes (subclass responsibility) ---------------------------------

    def _route_get(self, path: str) -> None:
        self._send_json(404, {"error": f"no route {path!r}"})

    def _route_post(self, path: str) -> None:
        self._send_json(404, {"error": f"no route {path!r}"})
