"""SDF primitives and CSG: sign exactness and clearance soundness.

The octree build relies on two contracts (see the module docstring of
:mod:`repro.solids.sdf`): signs classify inside/outside exactly, and
``clearance`` never exceeds the true distance to the boundary.  Both are
property-tested here against analytically known solids.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.solids.sdf import (
    BoxSDF,
    CapsuleSDF,
    CylinderSDF,
    Difference,
    EllipsoidSDF,
    HalfSpaceSDF,
    Intersection,
    RevolvedPolygonSDF,
    Rotate,
    Scale,
    SphereSDF,
    TorusSDF,
    Translate,
    Union,
    union_all,
)

pt = st.tuples(st.floats(-30, 30), st.floats(-30, 30), st.floats(-30, 30)).map(np.asarray)


class TestPrimitiveDistances:
    @given(pt)
    def test_sphere_exact(self, p):
        s = SphereSDF((1, 2, 3), 5.0)
        expected = np.linalg.norm(p - np.array([1, 2, 3])) - 5.0
        assert float(s.value(p)) == pytest.approx(expected, abs=1e-12)

    @given(pt)
    def test_box_sign(self, p):
        b = BoxSDF((0, 0, 0), (4, 5, 6))
        inside = np.all(np.abs(p) <= [4, 5, 6])
        v = float(b.value(p))
        if v < -1e-12:
            assert inside
        if v > 1e-12:
            assert not inside

    @given(pt)
    def test_box_distance_outside_exact(self, p):
        b = BoxSDF((0, 0, 0), (4, 5, 6))
        d = np.maximum(np.abs(p) - np.array([4, 5, 6]), 0.0)
        if (d > 0).any():
            assert float(b.value(p)) == pytest.approx(np.linalg.norm(d), abs=1e-12)

    @given(pt)
    def test_cylinder_matches_geometry_kernel(self, p):
        from repro.geometry.cylinder import Cylinder

        sdf = CylinderSDF((1.0, -2.0), -3.0, 7.0, 4.0)
        cyl = Cylinder(np.array([1.0, -2.0, 0.0]), [0, 0, 1], -3.0, 7.0, 4.0)
        outside = float(cyl.distance_to_point(p))
        v = float(sdf.value(p))
        if outside > 0:
            assert v == pytest.approx(outside, abs=1e-12)
        else:
            assert v <= 1e-12

    @given(pt)
    def test_capsule_exact(self, p):
        a, b, r = np.array([0, 0, 0.0]), np.array([0, 0, 10.0]), 2.0
        c = CapsuleSDF(a, b, r)
        t = np.clip(p[2] / 10.0, 0, 1)
        expected = np.linalg.norm(p - np.array([0, 0, 10 * t])) - r
        assert float(c.value(p)) == pytest.approx(expected, abs=1e-12)

    @given(pt)
    def test_torus_exact(self, p):
        t = TorusSDF((0, 0, 0), 8.0, 2.0)
        q = np.hypot(np.hypot(p[0], p[1]) - 8.0, p[2]) - 2.0
        assert float(t.value(p)) == pytest.approx(q, abs=1e-12)

    def test_halfspace(self):
        h = HalfSpaceSDF([0, 0, 2.0], 4.0)  # z <= 2 (normalized offset)
        assert float(h.value(np.array([0, 0, 0.0]))) < 0
        assert float(h.value(np.array([0, 0, 3.0]))) > 0

    @given(pt)
    def test_ellipsoid_clearance_sound(self, p):
        e = EllipsoidSDF((0, 0, 0), (6.0, 3.0, 2.0))
        c = float(e.clearance(p))
        # true distance to the boundary, estimated by dense surface sampling
        u = np.linspace(0, 2 * np.pi, 60)
        v = np.linspace(0, np.pi, 30)
        U, V = np.meshgrid(u, v)
        surf = np.stack(
            [6 * np.sin(V) * np.cos(U), 3 * np.sin(V) * np.sin(U), 2 * np.cos(V)],
            axis=-1,
        ).reshape(-1, 3)
        true = np.linalg.norm(surf - p, axis=1).min()
        assert c <= true + 0.05  # sampling slack

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            SphereSDF((0, 0, 0), 0.0)
        with pytest.raises(ValueError):
            BoxSDF((0, 0, 0), (1, -1, 1))
        with pytest.raises(ValueError):
            CylinderSDF((0, 0), 3.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            TorusSDF((0, 0, 0), 1.0, 2.0)
        with pytest.raises(ValueError):
            EllipsoidSDF((0, 0, 0), (1, 0, 1))


class TestRevolvedPolygon:
    def test_matches_cylinder(self):
        """A rectangle profile revolved = a cylinder."""
        prof = np.array([(0.0, 0.0), (3.0, 0.0), (3.0, 5.0), (0.0, 5.0)])
        rev = RevolvedPolygonSDF((0, 0, 0), prof)
        cyl = CylinderSDF((0.0, 0.0), 0.0, 5.0, 3.0)
        rng = np.random.default_rng(3)
        pts = rng.uniform(-8, 10, (300, 3))
        np.testing.assert_allclose(rev.value(pts), cyl.value(pts), atol=1e-9)

    def test_rejects_negative_rho(self):
        with pytest.raises(ValueError):
            RevolvedPolygonSDF((0, 0, 0), [(-1.0, 0.0), (1.0, 0.0), (1.0, 1.0)])

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            RevolvedPolygonSDF((0, 0, 0), [(0.0, 0.0), (1.0, 0.0)])


class TestCSG:
    @given(pt)
    def test_union_sign(self, p):
        a = SphereSDF((0, 0, 0), 5.0)
        b = SphereSDF((7, 0, 0), 5.0)
        u = Union(a, b)
        inside = (np.linalg.norm(p) <= 5.0) or (np.linalg.norm(p - [7, 0, 0]) <= 5.0)
        assert bool(u.contains(p)) == inside

    @given(pt)
    def test_intersection_sign(self, p):
        a = SphereSDF((0, 0, 0), 5.0)
        b = SphereSDF((4, 0, 0), 5.0)
        i = Intersection(a, b)
        inside = (np.linalg.norm(p) <= 5.0) and (np.linalg.norm(p - [4, 0, 0]) <= 5.0)
        assert bool(i.contains(p)) == inside

    @given(pt)
    def test_difference_sign(self, p):
        a = SphereSDF((0, 0, 0), 8.0)
        b = SphereSDF((0, 0, 0), 4.0)
        d = Difference(a, b)
        r = np.linalg.norm(p)
        inside = (r <= 8.0) and (r >= 4.0)  # hollow shell (closed/open edges aside)
        if 4.0 + 1e-9 < r < 8.0 - 1e-9:
            assert d.contains(p)
        if r < 4.0 - 1e-9 or r > 8.0 + 1e-9:
            assert not d.contains(p)
        del inside

    @given(pt)
    def test_csg_clearance_sound_union(self, p):
        """min-clearance is a lower bound on distance to the union boundary."""
        a = SphereSDF((0, 0, 0), 5.0)
        b = BoxSDF((6, 0, 0), (2, 2, 2))
        u = Union(a, b)
        c = float(u.clearance(p))
        # distance to boundary of union >= clearance: test via the implicit
        # sign: any point within distance < c of p must have the same sign.
        rng = np.random.default_rng(1)
        offs = rng.normal(size=(60, 3))
        offs = offs / np.linalg.norm(offs, axis=1, keepdims=True) * (c * 0.999)
        if c > 1e-9:
            signs = u.value(p + offs) <= 0
            assert signs.all() or (~signs).all()

    def test_operator_sugar(self):
        a = SphereSDF((0, 0, 0), 5.0)
        b = SphereSDF((2, 0, 0), 3.0)
        assert isinstance(a | b, Union)
        assert isinstance(a & b, Intersection)
        assert isinstance(a - b, Difference)

    def test_union_all_balanced(self):
        solids = [SphereSDF((i * 3.0, 0, 0), 1.0) for i in range(9)]
        u = union_all(solids)
        for i in range(9):
            assert u.contains(np.array([i * 3.0, 0, 0]))
        assert not u.contains(np.array([1.5, 0, 0]))

    def test_union_all_empty_raises(self):
        with pytest.raises(ValueError):
            union_all([])


class TestTransforms:
    def test_translate(self):
        s = Translate(SphereSDF((0, 0, 0), 2.0), (5, 0, 0))
        assert s.contains(np.array([5.0, 0, 0]))
        assert not s.contains(np.array([0.0, 0, 0]))

    def test_rotate_rejects_non_orthonormal(self):
        with pytest.raises(ValueError):
            Rotate(SphereSDF((0, 0, 0), 1.0), np.eye(3) * 2.0)

    def test_rotate_moves_feature(self):
        box = BoxSDF((5, 0, 0), (1, 1, 1))
        Rz90 = np.array([[0.0, -1, 0], [1, 0, 0], [0, 0, 1]])
        r = Rotate(box, Rz90)
        assert r.contains(np.array([0.0, 5.0, 0.0]))
        assert not r.contains(np.array([5.0, 0.0, 0.0]))

    def test_scale(self):
        s = Scale(SphereSDF((0, 0, 0), 2.0), 3.0)
        assert s.contains(np.array([5.9, 0, 0]))
        assert not s.contains(np.array([6.1, 0, 0]))
        # distances scale too
        assert float(s.value(np.array([9.0, 0, 0]))) == pytest.approx(3.0, abs=1e-12)

    def test_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Scale(SphereSDF((0, 0, 0), 1.0), 0.0)
