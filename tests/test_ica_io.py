"""ICA-table serialization (repro.ica.io) and precomputed-table runs."""

import numpy as np
import pytest

from repro.cd.methods import method_by_name
from repro.cd.traversal import TraversalConfig, run_cd
from repro.geometry.orientation import OrientationGrid
from repro.ica.io import load_ica_table, save_ica_table
from repro.ica.table import build_ica_table


@pytest.fixture(scope="module")
def table(sphere_scene):
    return build_ica_table(
        sphere_scene.tree, sphere_scene.tool, sphere_scene.pivot, levels=8
    )


class TestIcaTableIO:
    def test_roundtrip(self, table, tmp_path):
        p = tmp_path / "table.npz"
        save_ica_table(table, p)
        loaded = load_ica_table(p)
        assert loaded.levels == table.levels
        assert loaded.n_entries == table.n_entries
        np.testing.assert_array_equal(loaded.pivot, table.pivot)
        assert len(loaded.cos1) == len(table.cos1)
        for a, b in zip(loaded.cos1, table.cos1):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(loaded.cos2, table.cos2):
            np.testing.assert_array_equal(a, b)

    def test_version_check(self, table, tmp_path):
        p = tmp_path / "table.npz"
        save_ica_table(table, p)
        data = dict(np.load(p))
        data["format_version"] = np.asarray(99)
        np.savez(p, **data)
        with pytest.raises(ValueError, match="version"):
            load_ica_table(p)

    def test_missing_array_is_clear_value_error(self, table, tmp_path):
        p = tmp_path / "table.npz"
        save_ica_table(table, p)
        data = dict(np.load(p))
        del data["cos2_1"]
        np.savez(p, **data)
        with pytest.raises(ValueError, match=r"cos2_1"):
            load_ica_table(p)

    def test_loaded_table_reproduces_cd_results(self, sphere_scene, table, tmp_path):
        p = tmp_path / "table.npz"
        save_ica_table(table, p)
        loaded = load_ica_table(p)
        grid = OrientationGrid(8, 8)
        fresh = run_cd(sphere_scene, grid, method_by_name("AICA"))
        warm = run_cd(sphere_scene, grid, method_by_name("AICA"), table=loaded)
        np.testing.assert_array_equal(fresh.collides, warm.collides)
        # The memo/fly split must match too: the loaded table covers the
        # same S levels the fresh build would.
        np.testing.assert_array_equal(
            warm.counters.ica_memo_checks, fresh.counters.ica_memo_checks
        )
        np.testing.assert_array_equal(
            warm.counters.ica_fly_checks, fresh.counters.ica_fly_checks
        )


class TestTableValidation:
    def test_wrong_pivot_rejected(self, sphere_scene, table):
        moved = sphere_scene.with_pivot((0.0, 0.0, 30.0))
        with pytest.raises(ValueError, match="pivot"):
            run_cd(moved, OrientationGrid(4, 4), method_by_name("AICA"), table=table)

    def test_wrong_levels_rejected(self, sphere_scene, table):
        config = TraversalConfig(memo_levels=2)
        with pytest.raises(ValueError, match="S="):
            run_cd(
                sphere_scene, OrientationGrid(4, 4), method_by_name("AICA"),
                config=config, table=table,
            )

    def test_table_ignored_by_non_table_methods(self, sphere_scene, table):
        # PBox has needs_table=False: a supplied table (even a wrong one)
        # is irrelevant and must not be validated or used.
        moved = sphere_scene.with_pivot((0.0, 0.0, 30.0))
        grid = OrientationGrid(4, 4)
        a = run_cd(moved, grid, method_by_name("PBox"))
        b = run_cd(moved, grid, method_by_name("PBox"), table=table)
        np.testing.assert_array_equal(a.collides, b.collides)
