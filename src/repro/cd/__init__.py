"""Collision-detection algorithms: the paper's five evaluated methods.

All methods compute the identical accessibility map — they differ only
in how much work each CD test costs and how that work parallelizes:

* :class:`PBox` — the baseline: every octree node gets the exact
  216-op-per-cylinder ``CHECKBOX`` (Figure 4).
* :class:`PBoxOpt` — "optimized PBox": an AABB cull after the rotation
  step skips provably-missing boxes (the SculptPrint state of the art).
* :class:`PICA` — ``CHECKICA`` with cone angles computed on the fly
  (Section 3), falling back to ``CHECKBOX`` on corner cases.
* :class:`MICA` — adds the stage-1 parallel ICA precompute: memoized
  ``(ica1, ica2)`` for the top ``S`` levels (Section 4.2).
* :class:`AICA` — adds the corner-case optimization: expand inconclusive
  voxels into children instead of calling ``CHECKBOX`` (Section 4.3).

Entry point: :func:`run_cd` in :mod:`repro.cd.traversal`.
"""

from repro.cd.scene import Scene
from repro.cd.result import CDResult
from repro.cd.methods import PBox, PBoxOpt, PICA, MICA, AICA, METHODS, method_by_name
from repro.cd.traversal import run_cd, TraversalConfig
from repro.cd.pathrun import PathRunResult, map_overlap, run_along_path
from repro.cd.verify import brute_force_map, verify_result
from repro.cd.sweep import SweepResult, check_rotation_sweep

__all__ = [
    "Scene",
    "CDResult",
    "PathRunResult",
    "map_overlap",
    "run_along_path",
    "brute_force_map",
    "verify_result",
    "SweepResult",
    "check_rotation_sweep",
    "PBox",
    "PBoxOpt",
    "PICA",
    "MICA",
    "AICA",
    "METHODS",
    "method_by_name",
    "run_cd",
    "TraversalConfig",
]
