"""repro.cluster — multi-replica serving: the "millions of users" tier.

The paper shards collision-detection work across parallel lanes inside
one machine; this package applies the same idea one layer up, sharding
whole *scenes* across N ``repro-serve`` replicas so aggregate
throughput scales with replica count while every served map stays
byte-identical to a direct ``run_cd`` call:

* :mod:`~repro.cluster.ring` — deterministic consistent-hash placement
  of ``Scene.content_digest`` onto replicas (virtual nodes, exact
  minimal-remap guarantees on membership change);
* :mod:`~repro.cluster.health` — per-replica health state machine fed
  by active ``/v1/healthz`` probes and passive request outcomes, with
  exponential-backoff re-probing of down replicas;
* :mod:`~repro.cluster.router` — the ``repro-router`` front end:
  forwards ``/v1/scenes`` / ``/v1/cd`` to the owning replica, retries
  503s honoring ``Retry-After``, hedges slow requests to the next ring
  replica, fails over (re-registering scenes) when the owner dies, and
  propagates request IDs and W3C trace context so router→replica hops
  land on one trace.

See ``docs/serving.md`` ("Scaling out") and the ``repro-router``
console script; ``repro-loadgen --cluster`` drives a whole cluster and
emits one aggregate report with per-replica breakdowns.
"""

from repro.cluster.health import HealthMonitor, ReplicaHealth, ReplicaState, replica_label
from repro.cluster.ring import HashRing, remapped_fraction
from repro.cluster.router import (
    ClusterRouter,
    RouterHTTPServer,
    serve_router,
)

__all__ = [
    "ClusterRouter",
    "HashRing",
    "HealthMonitor",
    "ReplicaHealth",
    "ReplicaState",
    "RouterHTTPServer",
    "remapped_fraction",
    "replica_label",
    "serve_router",
]
