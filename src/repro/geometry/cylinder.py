"""Finite (flat-capped) cylinders — the tool bounding volumes.

A tool (Figure 1 of the paper) is a stack of bounding cylinders sharing
one axis that passes through the pivot point.  Each cylinder is stored
in *tool coordinates*: an axial interval ``[z0, z1]`` measured from the
pivot along the tool direction, plus a radius.  Orienting the tool then
only changes the (shared) axis direction, never the cylinder parameters,
which is the property the ICA abstraction exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.vec import as_vec3, normalize

__all__ = ["Cylinder"]


@dataclass(frozen=True)
class Cylinder:
    """Solid cylinder ``{p + z*d + w : z in [z0, z1], w ⟂ d, |w| <= radius}``.

    ``pivot`` is the anchoring point, ``direction`` the (normalized on
    construction) axis.  ``z0 <= z1`` delimit the axial span; ``z0`` may be
    negative (cylinder extends behind the pivot).
    """

    pivot: np.ndarray
    direction: np.ndarray
    z0: float
    z1: float
    radius: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "pivot", as_vec3(self.pivot).astype(np.float64))
        object.__setattr__(self, "direction", normalize(as_vec3(self.direction)))
        object.__setattr__(self, "z0", float(self.z0))
        object.__setattr__(self, "z1", float(self.z1))
        object.__setattr__(self, "radius", float(self.radius))
        if self.pivot.shape != (3,):
            raise ValueError("Cylinder pivot must be a single 3-vector")
        if self.z1 < self.z0:
            raise ValueError(f"inverted axial span [{self.z0}, {self.z1}]")
        if self.radius < 0.0:
            raise ValueError(f"negative radius {self.radius}")

    @property
    def height(self) -> float:
        return self.z1 - self.z0

    @property
    def base_center(self) -> np.ndarray:
        """Center of the cap at ``z0``."""
        return self.pivot + self.z0 * self.direction

    @property
    def top_center(self) -> np.ndarray:
        """Center of the cap at ``z1``."""
        return self.pivot + self.z1 * self.direction

    def axial_radial(self, points) -> tuple[np.ndarray, np.ndarray]:
        """Decompose point(s) into (axial, radial) cylinder coordinates.

        ``axial`` is the signed distance along the axis from the pivot;
        ``radial`` the distance from the axis line.  This is the 2D
        reduction at the heart of the ICA abstraction: for any solid of
        revolution about the axis, membership depends only on this pair.
        """
        p = np.asarray(points, dtype=np.float64) - self.pivot
        axial = np.einsum("...i,i->...", p, self.direction)
        radial_vec = p - axial[..., None] * self.direction
        radial = np.sqrt(np.einsum("...i,...i->...", radial_vec, radial_vec))
        return axial, radial

    def contains(self, points) -> np.ndarray:
        """Broadcasted membership test for the closed solid cylinder."""
        axial, radial = self.axial_radial(points)
        return (axial >= self.z0) & (axial <= self.z1) & (radial <= self.radius)

    def distance_to_point(self, points) -> np.ndarray:
        """Broadcasted distance from point(s) to the closed solid (0 inside).

        Computed exactly in the 2D (axial, radial) plane: the distance to
        the rectangle ``[z0, z1] x [0, radius]``.
        """
        axial, radial = self.axial_radial(points)
        dz = np.maximum(self.z0 - axial, 0.0) + np.maximum(axial - self.z1, 0.0)
        dr = np.maximum(radial - self.radius, 0.0)
        return np.hypot(dz, dr)

    def aabb_world(self):
        """Tight world-space AABB of this cylinder (used by PBoxOpt culling).

        For a finite cylinder with unit axis ``d``, the half-extent along
        world axis ``a`` of the circular cross-section is
        ``radius * sqrt(1 - d[a]^2)``.
        """
        from repro.geometry.aabb import AABB  # local import: avoid cycle

        d = self.direction
        lateral = self.radius * np.sqrt(np.clip(1.0 - d * d, 0.0, 1.0))
        c0 = self.base_center
        c1 = self.top_center
        lo = np.minimum(c0, c1) - lateral
        hi = np.maximum(c0, c1) + lateral
        return AABB(lo, hi)

    def with_orientation(self, direction) -> "Cylinder":
        """The same tool cylinder re-aimed along a new direction."""
        return Cylinder(self.pivot, direction, self.z0, self.z1, self.radius)

    def with_pivot(self, pivot) -> "Cylinder":
        """The same tool cylinder anchored at a new pivot point."""
        return Cylinder(pivot, self.direction, self.z0, self.z1, self.radius)
