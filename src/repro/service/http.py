"""JSON-over-HTTP front end for the query service (stdlib only).

Endpoints (all JSON bodies/responses):

* ``POST /v1/scenes`` — register a scene.  The request names a target
  (an uploaded ``.npz`` octree as base64, a server-side ``.npz`` path,
  or a built-in benchmark model to voxelize), a tool, and a pivot;
  the response carries the scene's content digest, the handle every
  subsequent query uses.
* ``POST /v1/cd`` — answer one accessibility query (the body is a
  :class:`repro.service.core.QuerySpec` in JSON form).  Identical
  concurrent queries coalesce; finished ones are served from the result
  cache; a full dispatch queue answers ``503`` with a ``Retry-After``
  header instead of queueing unboundedly.
* ``GET /v1/healthz`` — liveness + a small status snapshot, including
  the sliding-window request stats (rolling 1s/10s/60s RPS, error rate,
  latency quantiles).
* ``GET /v1/metrics`` — the ambient :mod:`repro.obs.metrics` registry.
  JSON by default (everything ``repro-obs diff`` understands);
  ``?format=prometheus`` renders the same snapshot in Prometheus text
  exposition format for scrapers (:mod:`repro.obs.expo`).

Request-scoped observability: every request carries an ID — an inbound
``X-Request-Id`` header is honored when it matches the
``[A-Za-z0-9_-]{1,64}`` allowlist (anything else is replaced, closing
the header/log-injection hole), otherwise one is minted — echoed in
the response header (and the ``/v1/cd`` body), threaded through
``Service.query()`` into the queue-wait and ``service.request`` trace
spans, and stamped on the structured JSON access-log line written per
request (:mod:`repro.obs.log`, ``REPRO_ACCESS_LOG``) along with the
request's ``trace_id`` and queue wait.  Every request also carries a
W3C trace context (:mod:`repro.obs.context`): an inbound
``traceparent`` is honored (including its sampling flag), otherwise a
fresh trace ID is minted and head-sampled per ``REPRO_TRACE_SAMPLE``;
``/v1/cd`` responses echo ``traceparent`` naming the request's own
span so an upstream router can stitch cross-replica traces
(``service.trace.sampled`` / ``.dropped`` count the decisions).
Unexpected handler exceptions answer a JSON ``500`` carrying the
request ID (and bump ``service.errors`` /
``service.errors.<route>.<code>``) instead of leaking a stdlib
traceback over a dead connection.

The server is a :class:`http.server.ThreadingHTTPServer`: cheap,
dependency-free, and sufficient because request threads only parse JSON
and wait — actual compute is serialized by the service's broker and
parallelized by its worker-process pool.
"""

from __future__ import annotations

import base64
import io
import json
import os
import re
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.cd.scene import Scene
from repro.obs.context import (
    TRACEPARENT_HEADER,
    TRACESTATE_HEADER,
    TraceContext,
    format_traceparent,
    new_trace_id,
    parse_traceparent,
    sample_rate_from_env,
    trace_sampled,
)
from repro.obs.expo import CONTENT_TYPE as _PROMETHEUS_CONTENT_TYPE
from repro.obs.expo import render_prometheus
from repro.obs.log import get_access_log, new_request_id
from repro.obs.metrics import get_metrics
from repro.service.batching import Backpressure
from repro.service.core import QuerySpec, Service
from repro.service.registry import UnknownSceneError
from repro.tool.tool import Tool, ball_end_mill, paper_tool

__all__ = ["scene_from_request", "tool_from_spec", "ServiceHTTPServer", "serve"]

# Routes whose own traffic must not pollute the request window (health
# probes and scrapers poll them constantly).
_UNWINDOWED_ROUTES = frozenset({"/v1/healthz", "/v1/metrics"})

_KNOWN_ROUTES = frozenset({"/v1/scenes", "/v1/cd", "/v1/healthz", "/v1/metrics"})

# Inbound X-Request-Id values are echoed into response headers and
# access-log lines; anything outside this allowlist (length-bounded,
# no CR/LF or exotic bytes) is replaced with a freshly minted ID so a
# hostile client can't inject headers or forge log lines.
_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")


def _route_label(path: str) -> str:
    """A bounded-cardinality metric label for a request path
    (``/v1/cd`` -> ``v1.cd``; anything unknown -> ``other``)."""
    if path in _KNOWN_ROUTES:
        return path.strip("/").replace("/", ".")
    return "other"

_MODELS = ("head", "candle_holder", "turbine", "teapot")


def tool_from_spec(spec) -> Tool:
    """A tool from its JSON form: ``"paper"``, ``"ball"``, or
    ``{"segments": [[radius, height], ...]}`` (stacked tip-to-holder)."""
    if spec is None or spec == "paper":
        return paper_tool()
    if spec == "ball":
        return ball_end_mill()
    if isinstance(spec, dict) and "segments" in spec:
        return Tool.from_segments(
            [(float(r), float(h)) for r, h in spec["segments"]],
            name=str(spec.get("name", "custom")),
        )
    raise ValueError(
        f"tool must be 'paper', 'ball', or {{'segments': [[r, h], ...]}}, got {spec!r}"
    )


def scene_from_request(body: dict) -> Scene:
    """Build the scene a ``POST /v1/scenes`` body describes.

    Exactly one source must be given: ``npz_b64`` (an uploaded
    :func:`repro.octree.io.save_octree` file), ``path`` (a server-side
    ``.npz``), or ``model`` (a built-in benchmark model voxelized at
    ``resolution`` with the standard top-level expansion).
    """
    from repro.octree.io import load_octree

    sources = [k for k in ("npz_b64", "path", "model") if body.get(k) is not None]
    if len(sources) != 1:
        raise ValueError(
            f"give exactly one of npz_b64 / path / model, got {sources or 'none'}"
        )
    if "pivot" not in body:
        raise ValueError("scene registration needs a pivot [x, y, z]")
    pivot = np.asarray(body["pivot"], dtype=np.float64)
    tool = tool_from_spec(body.get("tool"))

    if body.get("npz_b64") is not None:
        raw = base64.b64decode(body["npz_b64"])
        tree = load_octree(io.BytesIO(raw))
    elif body.get("path") is not None:
        tree = load_octree(body["path"])
    else:
        model = str(body["model"])
        if model not in _MODELS:
            raise ValueError(f"unknown model {model!r}; choose from {_MODELS}")
        import repro.solids.models as models
        from repro.octree.build import build_from_sdf, expand_top

        bench = getattr(models, f"{model}_model")()
        resolution = int(body.get("resolution", 64))
        tree = build_from_sdf(bench.sdf, bench.domain, resolution)
        expand = int(body.get("expand_top", 5))
        if expand > 0:
            tree = expand_top(tree, expand)
    return Scene(tree, tool, pivot)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: "ServiceHTTPServer"

    # -- plumbing ---------------------------------------------------------

    def log_message(self, fmt, *args) -> None:  # noqa: A003 - stdlib hook
        # The structured JSON access log (repro.obs.log) supersedes the
        # stdlib per-request line; REPRO_HTTP_LOG=1 re-enables the latter.
        if os.environ.get("REPRO_HTTP_LOG", "").strip() == "1":
            super().log_message(fmt, *args)

    def _send_json(self, code: int, obj, *, headers: dict | None = None) -> None:
        data = json.dumps(obj).encode("utf-8")
        self._send_bytes(code, data, "application/json", headers)

    def _send_text(self, code: int, text: str, content_type: str) -> None:
        self._send_bytes(code, text.encode("utf-8"), content_type, None)

    def _send_bytes(
        self, code: int, data: bytes, content_type: str, headers: dict | None
    ) -> None:
        self._status = code
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.send_header("X-Request-Id", self._request_id)
        if self._response_traceparent:
            self.send_header(TRACEPARENT_HEADER, self._response_traceparent)
            if self._trace_ctx is not None and self._trace_ctx.tracestate:
                self.send_header(TRACESTATE_HEADER, self._trace_ctx.tracestate)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ValueError("request needs a JSON body")
        body = json.loads(self.rfile.read(length).decode("utf-8"))
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        return body

    # -- request-scoped dispatch ------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._handle("GET", self._route_get)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._handle("POST", self._route_post)

    def _trace_context(self) -> TraceContext:
        """The request's trace context: inbound ``traceparent`` honored
        (including its ``sampled`` flag), anything malformed or absent
        minted fresh with the head-sampling decision from
        ``REPRO_TRACE_SAMPLE``.  ``tracestate`` rides along verbatim."""
        ctx = parse_traceparent(self.headers.get(TRACEPARENT_HEADER))
        if ctx is None:
            trace_id = new_trace_id()
            ctx = TraceContext(
                trace_id=trace_id,
                sampled=trace_sampled(trace_id, sample_rate_from_env()),
            )
        tracestate = (self.headers.get(TRACESTATE_HEADER) or "").strip()
        if tracestate:
            ctx = TraceContext(
                trace_id=ctx.trace_id, span_id=ctx.span_id,
                sampled=ctx.sampled, tracestate=tracestate,
            )
        return ctx

    def _handle(self, verb: str, route_fn) -> None:
        """Wrap one request: ID, timing, error fence, window, access log."""
        t0 = time.perf_counter()
        raw_id = (self.headers.get("X-Request-Id") or "").strip()
        self._request_id = raw_id if _REQUEST_ID_RE.match(raw_id) else new_request_id()
        self._status: int | None = None
        self._trace_ctx = self._trace_context()
        self._response_traceparent: str | None = None
        self._log_fields: dict = {"trace_id": self._trace_ctx.trace_id}
        path = urllib.parse.urlsplit(self.path).path
        try:
            route_fn(path)
        except Exception as exc:  # the fence: no dead threads, no bare tracebacks
            metrics = get_metrics()
            metrics.counter("service.errors").inc()
            metrics.counter(f"service.errors.{_route_label(path)}.500").inc()
            self._log_fields["error"] = f"{type(exc).__name__}: {exc}"
            # The connection may hold a half-written response; don't reuse it.
            self.close_connection = True
            if self._status is None:
                try:
                    self._send_json(500, {
                        "error": f"internal error: {type(exc).__name__}: {exc}",
                        "request_id": self._request_id,
                    })
                except OSError:
                    pass  # client already gone; the log line still records it
        finally:
            ms = (time.perf_counter() - t0) * 1e3
            status = self._status if self._status is not None else 500
            if path not in _UNWINDOWED_ROUTES:
                self.server.service.window.record(ms, error=status >= 500)
            get_access_log().request(
                id=self._request_id,
                route=path,
                method=verb,
                status=status,
                ms=ms,
                **self._log_fields,
            )

    # -- routes -----------------------------------------------------------

    def _route_get(self, path: str) -> None:
        service = self.server.service
        if path == "/v1/healthz":
            self._send_json(200, {
                "status": "ok",
                "uptime_s": service.uptime_s,
                "scenes": len(service.registry),
                "cache_entries": len(service.cache),
                "queue_depth": service.broker.depth,
                "window": service.window.snapshot(),
            })
        elif path == "/v1/metrics":
            params = urllib.parse.parse_qs(urllib.parse.urlsplit(self.path).query)
            fmt = params.get("format", ["json"])[-1]
            # Refresh the window gauges so both encodings carry the
            # rolling stats a scraper can alert on.
            service.window.export_gauges(get_metrics())
            if fmt == "prometheus":
                self._send_text(
                    200, render_prometheus(get_metrics()), _PROMETHEUS_CONTENT_TYPE
                )
            elif fmt == "json":
                self._send_json(200, get_metrics().as_dict())
            else:
                self._send_json(
                    400, {"error": f"unknown format {fmt!r} (json or prometheus)"}
                )
        else:
            self._send_json(404, {"error": f"no route {path!r}"})

    def _route_post(self, path: str) -> None:
        service = self.server.service
        try:
            body = self._read_json()
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": str(exc)})
            return

        if path == "/v1/scenes":
            try:
                scene = scene_from_request(body)
            except (ValueError, OSError) as exc:
                self._send_json(400, {"error": str(exc)})
                return
            digest = service.register_scene(scene)
            self._log_fields["scene"] = digest[:12]
            self._send_json(200, {
                "scene": digest,
                "depth": scene.tree.depth,
                "nodes": int(sum(lev.n for lev in scene.tree.levels)),
                "pivot": scene.pivot.tolist(),
                "tool": scene.tool.name,
            })
        elif path == "/v1/cd":
            ctx = self._trace_ctx
            get_metrics().counter(
                "service.trace.sampled" if ctx.sampled else "service.trace.dropped"
            ).inc()
            # An error answered before query() mints the request span
            # still echoes a well-formed traceparent (fresh span ID) so
            # the caller can join its retry to the same trace.
            self._response_traceparent = format_traceparent(ctx.child())
            include_map = bool(body.pop("include_map", True))
            try:
                spec = QuerySpec.from_dict(body)
            except ValueError as exc:
                self._send_json(400, {"error": str(exc)})
                return
            self._log_fields["scene"] = spec.scene[:12]
            try:
                result = service.query(
                    spec, request_id=self._request_id, trace_ctx=ctx
                )
            except UnknownSceneError:
                self._send_json(404, {"error": f"unknown scene {spec.scene!r}"})
                return
            except Backpressure as exc:
                self._log_fields["served"] = "rejected"
                self._send_json(
                    503,
                    {"error": str(exc), "retry_after_s": exc.retry_after_s},
                    headers={"Retry-After": f"{max(1, round(exc.retry_after_s))}"},
                )
                return
            # The definitive echo: the span ID under which this request
            # was actually recorded.
            self._response_traceparent = format_traceparent(result.trace_ctx)
            self._log_fields["served"] = result.served
            if result.cost is not None:
                self._log_fields["queue_wait_ms"] = round(
                    result.cost["queue_wait_ms"], 3
                )
            self._send_json(200, result.to_dict(include_map=include_map))
        else:
            self._send_json(404, {"error": f"no route {path!r}"})


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`Service`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: Service):
        super().__init__(address, _Handler)
        self.service = service


def serve(service: Service, host: str = "127.0.0.1", port: int = 8077) -> ServiceHTTPServer:
    """Bind (``port`` 0 picks a free one) and return the server unstarted.

    Callers drive it: ``serve_forever()`` to block, or run it on a
    thread and ``shutdown()`` when done (what the tests and the in-CI
    smoke job do).
    """
    return ServiceHTTPServer((host, port), service)
