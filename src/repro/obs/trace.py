"""Span-based tracing for CD runs and bench experiments.

A *span* is one timed region of the pipeline — ``octree.build``,
``ica.table.build``, one traversal level — with wall/CPU durations and
arbitrary key-value attributes.  Spans nest: the tracer keeps an active
stack so each record knows its parent and depth, and a finished trace is
a flat list that any consumer can rebuild into a tree (``parent`` is an
index into the list, ``-1`` for roots).

Tracing must never perturb the numbers it exists to measure, so the
*default* tracer is a shared no-op whose ``span()`` returns a cached
singleton context manager — the disabled cost of an instrumentation
point is one attribute lookup and one method call, with no allocation.
A real :class:`Tracer` is installed either explicitly::

    from repro.obs.trace import Tracer, use_tracer

    with use_tracer(Tracer()) as tr:
        run_cd(scene, grid, AICA())
    print(tr.totals()["cd.run"])

or process-wide by setting ``REPRO_TRACE=1`` in the environment before
the first ``repro`` import (the CLI's ``--json`` / ``--trace`` flags do
the explicit installation for you).

Every span additionally carries explicit W3C-style identity
(:mod:`repro.obs.context`): a 128-bit ``trace_id`` (the tracer's own,
or the ambient :class:`~repro.obs.context.TraceContext`'s when one is
installed on the recording thread), a fresh 64-bit ``span_id``, and a
``parent_span_id`` link — the index-based ``parent`` stays the
in-process tree, the IDs are what survives process and host boundaries
(pool workers, OTLP export, cross-replica stitching).
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.context import current_trace_context, new_span_id, new_trace_id

__all__ = [
    "SpanRecord",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "tracing_enabled",
]


@dataclass
class SpanRecord:
    """One finished (or in-flight) span.

    ``t0`` is relative to the owning tracer's epoch; the tracer's
    ``epoch_ns`` (absolute wall clock at construction) anchors the whole
    trace, so timelines merged across processes stay absolute.
    """

    name: str
    t0: float  # wall-clock start, seconds since the tracer's epoch
    wall_s: float = 0.0
    cpu_s: float = 0.0
    depth: int = 0
    parent: int = -1  # index into Tracer.records; -1 = root span
    attrs: dict = field(default_factory=dict)
    # Explicit identity (repro.obs.context): survives process boundaries
    # where the index-based ``parent`` cannot.
    trace_id: str = ""
    span_id: str = ""
    parent_span_id: str = ""  # "" = no parent anywhere (a true root)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "t0": self.t0,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "depth": self.depth,
            "parent": self.parent,
            "attrs": dict(self.attrs),
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
        }


class _Span:
    """Context manager for one active span of a real :class:`Tracer`."""

    __slots__ = ("_tracer", "index", "_w0", "_c0")

    def __init__(self, tracer: "Tracer", index: int) -> None:
        self._tracer = tracer
        self.index = index
        self._w0 = time.perf_counter()
        self._c0 = time.process_time()

    def set(self, **attrs) -> None:
        """Attach attributes to the span (overwrites existing keys)."""
        self._tracer.records[self.index].attrs.update(attrs)

    @property
    def trace_id(self) -> str:
        return self._tracer.records[self.index].trace_id

    @property
    def span_id(self) -> str:
        return self._tracer.records[self.index].span_id

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        rec = self._tracer.records[self.index]
        rec.wall_s = time.perf_counter() - self._w0
        rec.cpu_s = time.process_time() - self._c0
        if exc_type is not None:
            rec.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self.index)
        return False


class Tracer:
    """Records nested spans; one instance per run/report.

    The nested ``span()`` stack belongs to one owner thread (the run
    loop); :meth:`record_span` and :meth:`absorb` — the entry points
    concurrent request handlers and the pool use — are additionally
    serialized by an internal lock, so a service's dispatch threads can
    append pre-measured spans without corrupting the record list.
    """

    enabled = True

    def __init__(self) -> None:
        self.records: list[SpanRecord] = []
        self._stack: list[int] = []
        self._append_lock = threading.Lock()
        self._epoch = time.perf_counter()
        # Absolute wall clock at the same instant as ``_epoch``: the
        # cross-process anchor.  ``t0 + (epoch_ns - other.epoch_ns)/1e9``
        # re-bases a span from another tracer onto this one's timeline.
        self.epoch_ns = time.time_ns()
        # Default trace identity for spans recorded with no ambient
        # TraceContext installed (one offline run = one trace).
        self.trace_id = new_trace_id()

    def _identity(self, parent: int) -> tuple[str, str, str]:
        """``(trace_id, span_id, parent_span_id)`` for a new record.

        An ambient :class:`~repro.obs.context.TraceContext` on the
        recording thread wins: its trace ID tags the span, and a *root*
        span (no in-process parent) links to the context's span — that
        is how a request's propagated identity reaches spans opened deep
        inside the engine without threading arguments everywhere.
        """
        ctx = current_trace_context()
        if parent >= 0:
            rec = self.records[parent]
            trace_id = rec.trace_id or (ctx.trace_id if ctx else self.trace_id)
            parent_span_id = rec.span_id
        elif ctx is not None:
            trace_id = ctx.trace_id
            parent_span_id = ctx.span_id
        else:
            trace_id = self.trace_id
            parent_span_id = ""
        return trace_id, new_span_id(), parent_span_id

    def now(self) -> float:
        """Seconds since this tracer's epoch — the ``t0`` scale of
        :meth:`record_span`, for callers measuring spans outside the
        nested ``span()`` stack (e.g. concurrent request handlers)."""
        return time.perf_counter() - self._epoch

    def span(self, name: str, **attrs) -> _Span:
        """Open a span; use as ``with tracer.span("cd.run", key=val) as sp:``."""
        parent = self._stack[-1] if self._stack else -1
        trace_id, span_id, parent_span_id = self._identity(parent)
        rec = SpanRecord(
            name=name,
            t0=time.perf_counter() - self._epoch,
            depth=len(self._stack),
            parent=parent,
            attrs=dict(attrs),
            trace_id=trace_id,
            span_id=span_id,
            parent_span_id=parent_span_id,
        )
        index = len(self.records)
        self.records.append(rec)
        self._stack.append(index)
        return _Span(self, index)

    def _pop(self, index: int) -> None:
        if self._stack and self._stack[-1] == index:
            self._stack.pop()
        elif index in self._stack:  # tolerate out-of-order exits
            self._stack.remove(index)

    def record_span(
        self,
        name: str,
        *,
        t0: float,
        wall_s: float,
        cpu_s: float = 0.0,
        parent: int = -1,
        attrs: dict | None = None,
        trace_id: str | None = None,
        span_id: str | None = None,
        parent_span_id: str | None = None,
    ) -> int:
        """Append an already-measured span (no context manager involved).

        Used for timings observed outside this process's control flow —
        e.g. the pool's task-queue wait intervals, reconstructed in the
        parent from worker-reported start stamps.  ``t0`` is on this
        tracer's epoch; returns the new record's index.

        ``trace_id``/``span_id``/``parent_span_id`` override the derived
        identity — the service uses this to record a request span under
        a *pre-minted* span ID (the one already echoed in the response's
        ``traceparent``) with its propagated inbound parent.

        Thread-safe: may be called from concurrent dispatch threads.
        """
        with self._append_lock:
            depth = self.records[parent].depth + 1 if parent >= 0 else 0
            d_trace, d_span, d_parent = self._identity(parent)
            rec = SpanRecord(
                name=name,
                t0=t0,
                wall_s=wall_s,
                cpu_s=cpu_s,
                depth=depth,
                parent=parent,
                attrs=dict(attrs or {}),
                trace_id=trace_id if trace_id is not None else d_trace,
                span_id=span_id if span_id is not None else d_span,
                parent_span_id=(
                    parent_span_id if parent_span_id is not None else d_parent
                ),
            )
            self.records.append(rec)
            return len(self.records) - 1

    def absorb(
        self,
        records: list[dict],
        *,
        parent: int = -1,
        attrs: dict | None = None,
        epoch_ns: int | None = None,
    ) -> None:
        """Fold another tracer's finished spans (``to_dicts()`` form) in.

        The worker pool uses this to merge per-worker traces into the
        parent run's trace: each absorbed record keeps its name, timings
        and attributes, its ``parent``/``depth`` are re-based so worker
        roots hang under the record at index ``parent`` (``-1`` keeps
        them as roots), and ``attrs`` is merged into the absorbed roots
        (e.g. ``{"pool_worker": 3}``).

        ``epoch_ns`` is the absorbed tracer's wall-clock epoch
        (``Tracer.epoch_ns`` captured in the worker).  When given, every
        absorbed ``t0`` is shifted by the epoch difference so the merged
        timeline is absolute on *this* tracer's epoch.  Without it the
        worker offsets are unknowable, so roots are pinned to the start
        of the span at ``parent`` (never before this run's epoch) and
        descendants keep their offsets relative to their root.

        Identity is *preserved*, never re-based: absorbed records keep
        their ``trace_id``/``span_id``/``parent_span_id`` verbatim —
        when a worker ran under a propagated
        :class:`~repro.obs.context.TraceContext` its spans already carry
        the request's trace ID and its roots already link to the
        parent-side span.  Only records *without* IDs (legacy payloads)
        get minted ones, linked under the record at ``parent``.
        """
        with self._append_lock:
            if epoch_ns is not None:
                shift = (epoch_ns - self.epoch_ns) / 1e9
            elif parent >= 0:
                shift = self.records[parent].t0
            else:
                shift = 0.0
            offset = len(self.records)
            base_depth = self.records[parent].depth + 1 if parent >= 0 else 0
            assigned: list[str] = []  # span IDs per absorbed record, in order
            for d in records:
                is_root = d["parent"] < 0
                span_id = d.get("span_id") or new_span_id()
                if d.get("trace_id"):
                    trace_id = d["trace_id"]
                elif parent >= 0:
                    trace_id = self.records[parent].trace_id or self.trace_id
                else:
                    trace_id = self.trace_id
                if d.get("parent_span_id"):
                    parent_span_id = d["parent_span_id"]
                elif not is_root:
                    parent_span_id = assigned[d["parent"]]
                elif parent >= 0:
                    parent_span_id = self.records[parent].span_id
                else:
                    parent_span_id = ""
                assigned.append(span_id)
                rec = SpanRecord(
                    name=d["name"],
                    t0=d["t0"] + shift,
                    wall_s=d["wall_s"],
                    cpu_s=d["cpu_s"],
                    depth=base_depth + d["depth"],
                    parent=parent if is_root else offset + d["parent"],
                    attrs=dict(d["attrs"]),
                    trace_id=trace_id,
                    span_id=span_id,
                    parent_span_id=parent_span_id,
                )
                if attrs and is_root:
                    rec.attrs.update(attrs)
                self.records.append(rec)

    # -- consumption ------------------------------------------------------

    def totals(self) -> dict[str, dict]:
        """Aggregate finished spans by name: count and wall/CPU sums.

        Only top-of-kind occurrences are *not* deduplicated — a span name
        appearing at several depths sums over all of them, which is the
        behaviour regression tracking wants (total time attributed to
        that stage across the run).
        """
        out: dict[str, dict] = {}
        for rec in self.records:
            agg = out.setdefault(rec.name, {"count": 0, "wall_s": 0.0, "cpu_s": 0.0})
            agg["count"] += 1
            agg["wall_s"] += rec.wall_s
            agg["cpu_s"] += rec.cpu_s
        return out

    def to_dicts(self) -> list[dict]:
        return [rec.to_dict() for rec in self.records]

    def names(self) -> set[str]:
        return {rec.name for rec in self.records}

    def reset(self) -> None:
        self.records.clear()
        self._stack.clear()
        self._epoch = time.perf_counter()
        self.epoch_ns = time.time_ns()
        self.trace_id = new_trace_id()


class _NullSpan:
    """Shared do-nothing span; one instance serves every disabled call."""

    __slots__ = ()

    trace_id = ""
    span_id = ""

    def set(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-cost default: records nothing, allocates nothing."""

    enabled = False
    records: tuple = ()
    epoch_ns = 0
    trace_id = ""

    def now(self) -> float:
        return 0.0

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def record_span(self, name: str, **kwargs) -> int:
        return -1

    def absorb(
        self,
        records,
        *,
        parent: int = -1,
        attrs: dict | None = None,
        epoch_ns: int | None = None,
    ) -> None:
        pass

    def totals(self) -> dict:
        return {}

    def to_dicts(self) -> list:
        return []

    def names(self) -> set:
        return set()

    def reset(self) -> None:
        pass


NULL_TRACER = NullTracer()


def _tracer_from_env():
    if os.environ.get("REPRO_TRACE", "").strip().lower() in {"1", "true", "yes", "on"}:
        return Tracer()
    return NULL_TRACER


_CURRENT = _tracer_from_env()


def get_tracer():
    """The tracer instrumentation points report to.

    Process-wide, with one per-thread override: a thread running under
    an *unsampled* :class:`~repro.obs.context.TraceContext` sees the
    no-op tracer instead — the head-sampling dropped path records
    nothing without mutating the shared tracer other threads (and other
    requests' sampled traces) are using.
    """
    ctx = current_trace_context()
    if ctx is not None and not ctx.sampled:
        return NULL_TRACER
    return _CURRENT


def set_tracer(tracer) -> object:
    """Install ``tracer`` (``None`` = disable); returns the previous one."""
    global _CURRENT
    prev = _CURRENT
    _CURRENT = tracer if tracer is not None else NULL_TRACER
    return prev


@contextmanager
def use_tracer(tracer):
    """Scoped :func:`set_tracer`: installs for the block, then restores."""
    prev = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(prev)


def tracing_enabled() -> bool:
    return get_tracer().enabled
