"""The paper's published numbers, collected for paper-vs-measured reports.

Everything here is transcribed from the ICPP 2019 paper; the experiment
generators attach the relevant entries to their results so the renderer
and EXPERIMENTS.md can show both columns.  Where the paper gives only a
plot, the recorded expectation is the *shape* statement the reproduction
is checked against.
"""

from __future__ import annotations

__all__ = ["PAPER"]

PAPER: dict[str, dict] = {
    "table1": {
        "note": "Geometric statistics of the 4 CAD benchmarks; see "
        "BenchmarkModel.paper for the per-model numbers (triangles, "
        "bounding volume, layers, voxel counts, path points).",
    },
    "table2": {
        "platforms": {
            "GTX 1080 Ti": {"cores": 3548, "clock_ghz": 1.68, "memory_gb": 11},
            "GTX 1080": {"cores": 2560, "clock_ghz": 1.77, "memory_gb": 8},
        },
    },
    "fig05": {
        "shape": [
            "object-resolution sweep is sublinear: 8x more voxels "
            "(1024^3 -> 2048^3) costs at most ~2x time",
            "map-resolution sweep is flat while M <= core count, then "
            "linear: 128^2 -> 256^2 quadruples time",
        ],
        "object_ratio_max": 2.0,  # time ratio per 8x voxel increase
        "map_ratio_linear": 4.0,  # time ratio per 4x orientation increase
    },
    "fig09": {
        "shape": "ICA efficiency = 1 - (arcsin(sqrt(3)x) - arcsin(x))/pi, "
        "increasing toward 1 as x = r/dist -> 0",
    },
    "fig13": {
        "shape": "critical-thread checks are far below total octree nodes "
        "and grow much more slowly with resolution",
    },
    "fig14": {
        "precompute_ms": {"GTX 1080 Ti": 3.1, "GTX 1080": 3.8},
        "shape": [
            "per-thread check counts are highly imbalanced; edge threads "
            "check the whole base level",
            "parallel ICA precompute shortens all CD-stage threads",
            "GTX 1080 is slightly faster on the latency-bound CD stage "
            "(higher clock), GTX 1080 Ti on the precompute (more cores)",
        ],
    },
    "fig15": {
        "mica_box_pct_avg": 14.4,
        "aica_box_pct_avg": 0.9,
        "total_checks_increase_pct": 34.1,
        "ica_efficiency_avg": 99.0,
    },
    "fig16": {
        "pica_vs_pbox": 23.9,
        "pica_vs_pboxopt": 4.8,
        "mica_vs_pica_pct": 28.3,
        "aica_vs_mica_pct": 81.1,
        "headline": "4096 orientations x 27M voxels in < 18 ms (2048^3)",
    },
    "fig17": {
        "pica_vs_pbox": 20.2,
        "pica_vs_pboxopt": 4.1,
        "mica_vs_pica_pct": 39.5,
        "aica_vs_mica_pct": 84.8,
    },
    "fig18": {
        "shape": "CD time falls sharply once S reaches ~5 upper levels; "
        "precompute cost grows exponentially with S; S=8 still wins",
        "paper_S": 8,
    },
    "fig19": {
        "shape": "with AICA, total time grows slowly with object "
        "resolution and the growth is mostly the ICA precompute",
    },
    "sec6_boxica": {
        "shape": "a bounding box approximated by 2 coaxial cylinders "
        "yields an ICA-style test with a small corner-case fraction",
    },
}
