"""Unit tests for the volume primitives (AABB, Sphere, Cylinder)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.aabb import AABB
from repro.geometry.cylinder import Cylinder
from repro.geometry.sphere import Sphere

coord = st.floats(-50, 50, allow_nan=False)


class TestAABB:
    def test_inverted_raises(self):
        with pytest.raises(ValueError):
            AABB([0, 0, 0], [-1, 1, 1])

    def test_cube_properties(self):
        b = AABB.cube([1, 2, 3], 2.0)
        np.testing.assert_allclose(b.center, [1, 2, 3])
        assert b.inscribed_radius == pytest.approx(2.0)
        assert b.circumscribed_radius == pytest.approx(2.0 * np.sqrt(3))

    def test_corners_bit_order(self):
        b = AABB([0, 0, 0], [1, 2, 3])
        c = b.corners()
        np.testing.assert_allclose(c[0], [0, 0, 0])
        np.testing.assert_allclose(c[1], [1, 0, 0])  # bit 0 -> x hi
        np.testing.assert_allclose(c[2], [0, 2, 0])  # bit 1 -> y hi
        np.testing.assert_allclose(c[4], [0, 0, 3])  # bit 2 -> z hi
        np.testing.assert_allclose(c[7], [1, 2, 3])

    def test_contains(self):
        b = AABB([0, 0, 0], [1, 1, 1])
        assert b.contains([0.5, 0.5, 0.5])
        assert b.contains([1.0, 1.0, 1.0])  # closed
        assert not b.contains([1.0001, 0.5, 0.5])

    @given(st.tuples(coord, coord, coord))
    def test_distance_zero_iff_inside(self, p):
        b = AABB([-10, -10, -10], [10, 10, 10])
        p = np.asarray(p)
        assert (b.distance_to_point(p) == 0.0) == bool(b.contains(p))

    def test_octants_partition(self):
        b = AABB.cube([0, 0, 0], 4.0)
        total = sum(np.prod(b.octant(k).size) for k in range(8))
        assert total == pytest.approx(np.prod(b.size))
        for k in range(8):
            assert b.intersects(b.octant(k))

    def test_octant_matches_corner_bits(self):
        b = AABB.cube([0, 0, 0], 1.0)
        assert b.octant(0).contains([-0.5, -0.5, -0.5])
        assert b.octant(7).contains([0.5, 0.5, 0.5])
        assert b.octant(1).contains([0.5, -0.5, -0.5])

    def test_intersects_touching(self):
        a = AABB([0, 0, 0], [1, 1, 1])
        b = AABB([1, 0, 0], [2, 1, 1])
        assert a.intersects(b)

    def test_union(self):
        a = AABB([0, 0, 0], [1, 1, 1])
        b = AABB([2, -1, 0], [3, 0.5, 4])
        u = a.union(b)
        np.testing.assert_allclose(u.lo, [0, -1, 0])
        np.testing.assert_allclose(u.hi, [3, 1, 4])


class TestSphere:
    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            Sphere([0, 0, 0], -1.0)

    def test_inscribed_circumscribed(self):
        b = AABB.cube([5, 5, 5], 3.0)
        s1 = Sphere.inscribed(b)
        s2 = Sphere.circumscribed(b)
        assert s1.radius == pytest.approx(3.0)
        assert s2.radius == pytest.approx(3.0 * np.sqrt(3))
        # every corner is on s2's surface
        d = np.linalg.norm(b.corners() - s2.center, axis=1)
        np.testing.assert_allclose(d, s2.radius, rtol=1e-12)

    def test_contains(self):
        s = Sphere([0, 0, 0], 2.0)
        assert s.contains([2.0, 0, 0])
        assert not s.contains([2.001, 0, 0])

    def test_sphere_box_overlap(self):
        b = AABB.cube([0, 0, 0], 1.0)
        assert Sphere([2.0, 0, 0], 1.0).intersects_aabb(b)  # touching
        assert not Sphere([2.0, 0, 0], 0.99).intersects_aabb(b)
        assert Sphere([0, 0, 0], 0.1).intersects_aabb(b)  # inside

    def test_sphere_sphere(self):
        assert Sphere([0, 0, 0], 1.0).intersects_sphere(Sphere([2, 0, 0], 1.0))
        assert not Sphere([0, 0, 0], 1.0).intersects_sphere(Sphere([2.01, 0, 0], 1.0))


class TestCylinder:
    def _cyl(self, direction=(0, 0, 1), z0=0.0, z1=10.0, r=2.0):
        return Cylinder([0, 0, 0], direction, z0, z1, r)

    def test_invalid_span_raises(self):
        with pytest.raises(ValueError):
            self._cyl(z0=5.0, z1=1.0)

    def test_direction_normalized(self):
        c = Cylinder([0, 0, 0], [0, 0, 10.0], 0, 1, 1)
        np.testing.assert_allclose(c.direction, [0, 0, 1])

    def test_contains_axis_points(self):
        c = self._cyl()
        assert c.contains([0, 0, 5.0])
        assert c.contains([2.0, 0, 5.0])  # on the side surface
        assert not c.contains([2.001, 0, 5.0])
        assert not c.contains([0, 0, -0.001])
        assert not c.contains([0, 0, 10.001])

    @given(
        st.floats(0.05, np.pi - 0.05),
        st.floats(0, 2 * np.pi),
        st.tuples(coord, coord, coord),
    )
    def test_distance_rotation_invariant(self, phi, gamma, p):
        """Distance must equal the axis-aligned case after rotating both."""
        from repro.geometry.frames import rotation_to_axis
        from repro.geometry.orientation import direction_from_angles

        d = direction_from_angles(phi, gamma)
        c = self._cyl(direction=d)
        R = rotation_to_axis(d)
        p = np.asarray(p)
        p_local = R @ p
        c_axis = self._cyl()  # +z aligned
        assert c.distance_to_point(p) == pytest.approx(
            c_axis.distance_to_point(p_local), abs=1e-9
        )

    def test_distance_inside_zero(self):
        c = self._cyl()
        assert c.distance_to_point([1.0, 1.0, 3.0]) == 0.0

    def test_aabb_world_contains_samples(self, rng):
        from repro.geometry.orientation import direction_from_angles

        d = direction_from_angles(1.1, 2.3)
        c = Cylinder([1, 2, 3], d, -2.0, 7.0, 1.5)
        box = c.aabb_world()
        # random cylinder points must be inside the box
        z = rng.uniform(-2, 7, 500)
        ang = rng.uniform(0, 2 * np.pi, 500)
        rad = rng.uniform(0, 1.5, 500)
        from repro.geometry.frames import frame_from_axis

        F = frame_from_axis(d)
        pts = (
            np.asarray([1, 2, 3])
            + z[:, None] * d
            + (rad * np.cos(ang))[:, None] * F[0]
            + (rad * np.sin(ang))[:, None] * F[1]
        )
        assert box.contains(pts).all()

    def test_with_orientation_preserves_profile(self):
        c = self._cyl()
        c2 = c.with_orientation([1, 0, 0])
        assert (c2.z0, c2.z1, c2.radius) == (c.z0, c.z1, c.radius)
        np.testing.assert_allclose(c2.direction, [1, 0, 0])

    def test_base_top_centers(self):
        c = self._cyl(z0=2.0, z1=5.0)
        np.testing.assert_allclose(c.base_center, [0, 0, 2.0])
        np.testing.assert_allclose(c.top_center, [0, 0, 5.0])
