"""Triangle-mesh extraction from implicit solids (naive surface nets).

The paper's benchmarks arrive as triangle meshes (Table 1 reports
triangle counts).  To exercise that input path end to end we extract a
mesh from each implicit analogue with the *surface nets* method: one
vertex per sign-changing grid cell (placed at the average of its edge
crossings) and one quad — two triangles — per sign-changing grid edge.
Surface nets produce closed 2-manifold meshes on well-resolved inputs,
which is what the parity voxelizer (:func:`repro.solids.voxelize.voxelize_mesh`)
needs.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.aabb import AABB
from repro.solids.sdf import SDF

__all__ = ["extract_mesh", "mesh_stats"]

# The 12 edges of a cell as (corner_a, corner_b) in bit order (bit a set
# => +1 on axis a), and the axis each edge runs along.
_EDGES = [
    (a, a | (1 << ax), ax)
    for ax in range(3)
    for a in range(8)
    if not (a >> ax) & 1
]


def extract_mesh(sdf: SDF, domain: AABB, resolution: int = 64) -> tuple[np.ndarray, np.ndarray]:
    """Extract a closed triangle mesh from ``sdf`` over ``domain``.

    Returns ``(vertices (V, 3), faces (F, 3))`` with outward-consistent
    winding per generating edge.  ``resolution`` is the sampling grid edge
    count; triangle count grows roughly quadratically with it.
    """
    res = int(resolution)
    # Sample the implicit on the (res+1)^3 lattice of cell corners.
    cell = domain.size / res
    axes = [domain.lo[a] + np.arange(res + 1) * cell[a] for a in range(3)]
    X, Y, Z = np.meshgrid(axes[0], axes[1], axes[2], indexing="ij")
    vals = sdf.value(np.stack([X, Y, Z], axis=-1))
    inside = vals <= 0.0

    # A cell is "active" if its 8 corners disagree.
    corner = inside
    occ = np.zeros((res, res, res), dtype=np.int8)
    for k in range(8):
        dx, dy, dz = k & 1, (k >> 1) & 1, (k >> 2) & 1
        occ += corner[dx : res + dx, dy : res + dy, dz : res + dz]
    active = (occ > 0) & (occ < 8)
    ai, aj, ak = np.nonzero(active)
    if ai.size == 0:
        return np.zeros((0, 3)), np.zeros((0, 3), dtype=np.intp)

    cell_index = -np.ones((res, res, res), dtype=np.intp)
    cell_index[ai, aj, ak] = np.arange(ai.size)

    # Vertex per active cell: average of the cell's edge crossings.
    verts = np.zeros((ai.size, 3))
    weight = np.zeros(ai.size)
    corner_off = np.array([[k & 1, (k >> 1) & 1, (k >> 2) & 1] for k in range(8)])
    base = np.stack([ai, aj, ak], axis=-1)  # (A, 3) lattice coords
    corner_pos = domain.lo + (base[:, None, :] + corner_off[None, :, :]) * cell  # (A, 8, 3)
    corner_val = np.stack(
        [vals[ai + o[0], aj + o[1], ak + o[2]] for o in corner_off], axis=-1
    )  # (A, 8)
    for a_idx, b_idx, _ax in _EDGES:
        va, vb = corner_val[:, a_idx], corner_val[:, b_idx]
        crossing = (va <= 0.0) != (vb <= 0.0)
        denom = np.where(crossing, va - vb, 1.0)
        t = np.where(crossing, va / denom, 0.0)
        pt = corner_pos[:, a_idx, :] + t[:, None] * (
            corner_pos[:, b_idx, :] - corner_pos[:, a_idx, :]
        )
        verts += np.where(crossing[:, None], pt, 0.0)
        weight += crossing
    weight = np.maximum(weight, 1.0)
    verts /= weight[:, None]

    # One quad per sign-changing *interior* lattice edge, connecting the 4
    # active cells sharing that edge.  Quad winding follows the direction
    # of the sign change so normals are outward-consistent.
    faces: list[np.ndarray] = []
    for ax in range(3):
        u, v = (ax + 1) % 3, (ax + 2) % 3
        # Lattice edges along +ax from point p to p+e_ax, restricted to
        # p[u], p[v] in [1, res-1] so all 4 surrounding cells exist.
        sl_a = [slice(1, res)] * 3
        sl_a[ax] = slice(0, res)
        sl_b = list(sl_a)
        sl_b[ax] = slice(1, res + 1)
        sa = inside[tuple(sl_a)]
        sb = inside[tuple(sl_b)]
        idxs = np.nonzero(sa != sb)
        if idxs[0].size == 0:
            continue
        # Lattice coordinates of the edge start point p (undo the slicing
        # offsets: axis ax starts at 0, the others at 1).
        p = [idxs[d] + (0 if d == ax else 1) for d in range(3)]

        # The 4 cells around the edge, in cyclic order about +ax.
        quad = []
        for du, dv in ((-1, -1), (0, -1), (0, 0), (-1, 0)):
            ci = [p[0].copy(), p[1].copy(), p[2].copy()]
            ci[ax] = ci[ax]  # cell index along ax equals p[ax]
            ci[u] += du
            ci[v] += dv
            quad.append(cell_index[ci[0], ci[1], ci[2]])
        q0, q1, q2, q3 = quad
        ok = (q0 >= 0) & (q1 >= 0) & (q2 >= 0) & (q3 >= 0)
        flip = ~sa[idxs]  # edge runs outside -> inside: reverse winding
        for flip_val in (False, True):
            m = ok & (flip == flip_val)
            if not m.any():
                continue
            A, B, C, D = q0[m], q1[m], q2[m], q3[m]
            if flip_val:
                B, D = D, B
            faces.append(np.stack([A, B, C], axis=-1))
            faces.append(np.stack([A, C, D], axis=-1))

    if not faces:
        return verts, np.zeros((0, 3), dtype=np.intp)
    return verts, np.concatenate(faces, axis=0).astype(np.intp)


def mesh_stats(vertices: np.ndarray, faces: np.ndarray) -> dict:
    """Triangle count, bounding dimensions, and surface area of a mesh."""
    vertices = np.asarray(vertices, dtype=np.float64)
    faces = np.asarray(faces, dtype=np.intp)
    tri = vertices[faces]
    cross = np.cross(tri[:, 1] - tri[:, 0], tri[:, 2] - tri[:, 0])
    area = 0.5 * float(np.sqrt((cross * cross).sum(-1)).sum())
    dims = vertices.max(0) - vertices.min(0) if len(vertices) else np.zeros(3)
    return {
        "triangles": int(len(faces)),
        "vertices": int(len(vertices)),
        "dims": tuple(float(d) for d in dims),
        "surface_area": area,
    }
