"""Accessibility-map post-processing for tool-path planners.

An accessibility map is rarely consumed raw: a 5-axis planner needs a
*safety margin* (orientations too close to a blocked one are unsafe
under servo error), wants *connected regions* of accessible orientations
(the machine must sweep orientations continuously), and picks the
orientation *deepest inside* the accessible set.  This module provides
those operations on the ``(m, n)`` boolean maps produced by
:class:`repro.cd.result.CDResult`.

Grid topology: rows are the polar angle ``phi`` (no wraparound — the
poles are map edges), columns are the azimuth ``gamma`` (periodic, so
all column operations wrap).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "dilate_blocked",
    "safe_accessible",
    "connected_regions",
    "clearance_depth",
    "best_orientation",
    "merge_accessible",
]


def _neighbors(mask: np.ndarray) -> np.ndarray:
    """4-neighborhood OR with gamma wraparound and phi clamping."""
    out = mask.copy()
    out |= np.roll(mask, 1, axis=1)
    out |= np.roll(mask, -1, axis=1)
    out[1:] |= mask[:-1]
    out[:-1] |= mask[1:]
    return out


def dilate_blocked(accessible: np.ndarray, steps: int = 1) -> np.ndarray:
    """Grow the blocked set by ``steps`` grid cells; returns new accessible.

    This is the conservative safety margin: an orientation within
    ``steps`` cells of a collision is treated as blocked too.
    """
    acc = np.asarray(accessible, dtype=bool)
    if acc.ndim != 2:
        raise ValueError("accessibility map must be 2D (m, n)")
    if steps < 0:
        raise ValueError("steps must be non-negative")
    blocked = ~acc
    for _ in range(steps):
        blocked = _neighbors(blocked)
    return ~blocked


def safe_accessible(result, steps: int = 1) -> np.ndarray:
    """Convenience: the margin-eroded accessible map of a CD result."""
    return dilate_blocked(result.accessibility_map, steps)


def connected_regions(accessible: np.ndarray) -> tuple[np.ndarray, int]:
    """Label 4-connected accessible regions (gamma-periodic).

    Returns ``(labels, count)`` with ``labels[i, j] = 0`` on blocked
    cells and ``1..count`` on accessible ones.  Implemented as iterated
    label propagation (maps are small: at most 256 x 256).
    """
    acc = np.asarray(accessible, dtype=bool)
    if acc.ndim != 2:
        raise ValueError("accessibility map must be 2D (m, n)")
    labels = np.where(acc, np.arange(1, acc.size + 1).reshape(acc.shape), 0)
    while True:
        spread = labels.copy()
        spread = np.maximum(spread, np.roll(labels, 1, axis=1))
        spread = np.maximum(spread, np.roll(labels, -1, axis=1))
        spread[1:] = np.maximum(spread[1:], labels[:-1])
        spread[:-1] = np.maximum(spread[:-1], labels[1:])
        spread[~acc] = 0
        if np.array_equal(spread, labels):
            break
        labels = spread
    # Compact label ids to 1..count.
    uniq = np.unique(labels)
    uniq = uniq[uniq > 0]
    remap = {int(u): i + 1 for i, u in enumerate(uniq)}
    out = np.zeros_like(labels)
    for u, i in remap.items():
        out[labels == u] = i
    return out, len(uniq)


def clearance_depth(accessible: np.ndarray) -> np.ndarray:
    """Grid distance from each accessible cell to the nearest blocked cell.

    Multi-source BFS on the (phi x periodic-gamma) grid; blocked cells get
    0.  A fully accessible map gets ``m + n`` everywhere (no finite bound).
    """
    acc = np.asarray(accessible, dtype=bool)
    if acc.ndim != 2:
        raise ValueError("accessibility map must be 2D (m, n)")
    if acc.all():
        return np.full(acc.shape, acc.shape[0] + acc.shape[1], dtype=np.int64)
    depth = np.zeros(acc.shape, dtype=np.int64)
    frontier = ~acc
    reached = frontier.copy()
    d = 0
    while not reached.all():
        d += 1
        frontier = _neighbors(reached) & ~reached
        depth[frontier] = d
        reached |= frontier
    return depth


def best_orientation(accessible: np.ndarray) -> tuple[int, int]:
    """The accessible cell farthest (in grid distance) from any blocked cell.

    Raises :class:`ValueError` when nothing is accessible.  Ties break
    toward the smallest ``(phi, gamma)`` index, making the choice
    deterministic for planners.
    """
    acc = np.asarray(accessible, dtype=bool)
    if not acc.any():
        raise ValueError("no accessible orientation")
    depth = clearance_depth(acc)
    depth = np.where(acc, depth, -1)
    flat = int(np.argmax(depth))
    return np.unravel_index(flat, acc.shape)  # type: ignore[return-value]


def merge_accessible(maps, mode: str = "intersection") -> np.ndarray:
    """Combine accessibility maps across pivots.

    ``intersection`` gives orientations usable at *every* pivot (a fixed
    tool orientation for the whole path); ``union`` gives orientations
    usable somewhere (coverage analysis).
    """
    if mode not in ("intersection", "union"):
        raise ValueError("mode must be 'intersection' or 'union'")
    maps = [np.asarray(m, dtype=bool) for m in maps]
    if not maps:
        raise ValueError("no maps to merge")
    shape = maps[0].shape
    if any(m.shape != shape for m in maps):
        raise ValueError("maps must share a shape")
    out = maps[0].copy()
    for m in maps[1:]:
        out = (out & m) if mode == "intersection" else (out | m)
    return out
