"""Offset-surface path construction.

The path is built the way a contouring CAM strategy would: a stack of
horizontal slices through the model; on each slice, rays are cast inward
from outside the part at uniform azimuths, the surface crossing is
located by vectorized bracketing + bisection on the implicit value, and
the pivot point is placed ``offset`` (default 1 mm, per Section 5.1)
back along the ray, verified to lie strictly outside the solid.

The azimuth sampling density is tied to the voxel size, so the number of
path points grows linearly with the effective resolution — the same
scaling as the paper's Table 1 "#points on path" row.
"""

from __future__ import annotations

import numpy as np

from repro.solids.models import BenchmarkModel

__all__ = ["offset_point", "offset_path"]


def offset_point(sdf, surface_point, outward_dir, offset: float) -> np.ndarray:
    """Place a pivot ``offset`` outside the surface along ``outward_dir``.

    Nudges further outward (doubling steps) until the implicit value is
    strictly positive, so a pivot is never accidentally inside the solid
    (which would make every orientation collide).
    """
    p = np.asarray(surface_point, dtype=np.float64) + offset * np.asarray(outward_dir)
    step = offset
    for _ in range(16):
        if float(sdf.value(p)) > 0.0:
            return p
        step *= 2.0
        p = p + step * np.asarray(outward_dir)
    raise RuntimeError("could not find an outside offset point")


def offset_path(
    model: BenchmarkModel,
    resolution: int,
    *,
    offset: float = 1.0,
    n_slices: int = 8,
    coarse_steps: int = 64,
    bisect_iters: int = 30,
) -> np.ndarray:
    """Pivot path points around ``model`` at the given effective resolution.

    Returns an ``(n, 3)`` array ordered slice-major, azimuth-minor (a
    boustrophedon-style surrounding path).  Azimuth spacing equals the
    leaf-voxel edge at ``resolution``, giving the paper's linear growth of
    path-point counts with resolution.
    """
    sdf = model.sdf
    cell = model.cell_size(resolution)
    dims = np.asarray(model.dims, dtype=np.float64)
    r_max = 0.75 * float(model.domain_edge)

    # Slice heights: interior span of the model, avoiding the exact caps.
    z_lo, z_hi = -0.42 * dims[2], 0.42 * dims[2]
    slices = np.linspace(z_lo, z_hi, n_slices)

    # Azimuth count from the mean silhouette radius and the voxel size.
    mean_radius = 0.25 * (dims[0] + dims[1])
    n_beta = max(int(np.ceil(2.0 * np.pi * mean_radius / cell)), 16)
    betas = 2.0 * np.pi * np.arange(n_beta) / n_beta

    Z, B = np.meshgrid(slices, betas, indexing="ij")
    z = Z.ravel()
    beta = B.ravel()
    inward = -np.stack([np.cos(beta), np.sin(beta), np.zeros_like(beta)], axis=-1)
    origin = np.stack([r_max * np.cos(beta), r_max * np.sin(beta), z], axis=-1)

    # Coarse bracketing: first parameter step where the value goes <= 0.
    ts = np.linspace(0.0, r_max, coarse_steps)
    pts = origin[:, None, :] + ts[None, :, None] * inward[:, None, :]
    vals = sdf.value(pts)  # (Q, steps)
    hit_any = (vals <= 0.0).any(axis=1)
    if not hit_any.any():
        raise RuntimeError("path construction found no surface crossings")
    first = np.argmax(vals <= 0.0, axis=1)

    q = np.nonzero(hit_any)[0]
    lo_t = ts[np.maximum(first[q] - 1, 0)]
    hi_t = ts[first[q]]
    o = origin[q]
    d = inward[q]

    # Vectorized bisection on the sign-exact implicit value.
    for _ in range(bisect_iters):
        mid = 0.5 * (lo_t + hi_t)
        inside = sdf.value(o + mid[:, None] * d) <= 0.0
        hi_t = np.where(inside, mid, hi_t)
        lo_t = np.where(inside, lo_t, mid)
    surf = o + (0.5 * (lo_t + hi_t))[:, None] * d

    # Step back outside by `offset` along the ray (outward = -inward).
    pivots = surf - offset * d
    outside = sdf.value(pivots) > 0.0
    # Rays grazing a concavity can land back inside; push those further.
    fix = np.nonzero(~outside)[0]
    for i in fix:
        pivots[i] = offset_point(sdf, surf[i], -d[i], offset)
    return pivots
