"""The shared level-synchronous octree traversal (Algorithm 2, batched).

On the GPU, each thread runs Algorithm 2's explicit-stack DFS over the
octree for its orientation.  The vectorized equivalent used here is a
*frontier*: the set of live (thread, node) pairs, advanced one octree
level at a time.  Per level, the active method classifies every pair
(``NO`` = prune, ``YES`` = the tool provably intersects the node's box,
``EXPAND`` = AICA's inconclusive-but-expandable corner case), and the
frontier is rebuilt:

* ``YES`` on a FULL node -> the thread's orientation collides; all of
  the thread's other pairs are dropped (Algorithm 2's early return);
* ``YES`` on a MIXED node -> the node's stored children join the
  frontier;
* ``EXPAND`` on a FULL interior node -> eight *virtual* FULL sub-cells
  join the frontier (geometric subdivision of a solid region, which the
  stored tree does not materialize).

The traversal visits exactly the nodes the per-thread DFS would visit,
up to within-level ordering after a collision (a sequential thread stops
mid-level; the batched version finishes the level).  Check counts per
thread are recorded in :class:`~repro.engine.counters.ThreadCounters`
and converted to simulated kernel time by :mod:`repro.engine.simt`.

Threads are processed in blocks (GPU thread blocks) so peak frontier
memory stays bounded at any map resolution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.cd.result import CDResult
from repro.cd.scene import Scene
from repro.engine.backend import (
    ArrayBackend,
    export_backend_metrics,
    get_backend,
    resolve_backend,
    resolve_setting,
)
from repro.engine.costs import CostModel, DEFAULT_COSTS
from repro.engine.counters import StageBreakdown, ThreadCounters
from repro.engine.device import DeviceSpec, GTX_1080_TI
from repro.engine.simt import simulate_kernel, simulate_stage
from repro.engine.workspace import Workspace, get_ambient_workspace
from repro.geometry.orientation import OrientationGrid
from repro.ica.cone import ica_bounds_cos
from repro.ica.table import SQRT3, IcaTable, build_ica_table
from repro.obs.metrics import get_metrics
from repro.obs.profile import Heartbeat, progress_enabled
from repro.obs.trace import get_tracer
from repro.octree.linear import STATUS_FULL, STATUS_MIXED

__all__ = [
    "TraversalConfig",
    "Runtime",
    "Wave",
    "LevelContext",
    "run_cd",
    "resolve_engine",
    "resolve_backend",
    "ENGINES",
    "OUT_NO",
    "OUT_YES",
    "OUT_EXPAND",
]

OUT_NO = np.uint8(0)
OUT_YES = np.uint8(1)
OUT_EXPAND = np.uint8(2)

#: The selectable frontier engines: ``v1`` is the straight-line
#: allocating reference implementation, ``v2`` the workspace/dedup
#: engine.  Both produce byte-identical maps and counters (asserted by
#: the equivalence suite); v1 exists as the oracle and escape hatch.
ENGINES = ("v1", "v2")


def resolve_engine(value: str | None = None) -> str:
    """The effective frontier engine: explicit > ``REPRO_ENGINE`` > ``v2``.

    Normalization and fallback are shared with :func:`resolve_backend`
    via :func:`repro.engine.backend.resolve_setting`: an explicit value
    that is empty or whitespace-only defers to the environment, and an
    invalid value raises an error naming both the config field and the
    environment variable.
    """
    return resolve_setting(
        value,
        env_var="REPRO_ENGINE",
        default="v2",
        allowed=ENGINES,
        field="engine",
    )


@dataclass(frozen=True)
class TraversalConfig:
    """Tunable parameters of the parallel scheme.

    ``start_level`` is the paper's top-level expansion (top 5 levels
    collapsed into one 32^3 base level); ``memo_levels`` is the paper's
    ``S`` (stage-1 precompute depth, default 8); ``thread_block`` bounds
    the number of orientations processed per frontier sweep;
    ``max_pairs`` bounds how many (thread, node) pairs a single
    ``method.decide`` call may see — larger frontiers are classified in
    chunks, capping the peak working set of a level (the decision
    kernels allocate a dozen temporaries per pair).

    ``workers`` selects the execution engine: ``1`` is the serial
    reference path, ``N > 1`` shards the workload over ``N`` OS
    processes via :mod:`repro.engine.pool`, and ``None`` (the default)
    defers to the ``REPRO_WORKERS`` environment variable (itself
    defaulting to 1).  Results are byte-identical for any worker count.

    ``engine`` picks the frontier implementation: ``"v2"`` (workspace
    reuse + cross-pair dedup, the default) or ``"v1"`` (the allocating
    reference path).  ``None`` defers to ``REPRO_ENGINE`` (default v2).
    Maps and counters are byte-identical between engines — the choice
    only affects host wall-clock time.

    ``backend`` picks the array backend the v2 panel/batch kernels run
    on (see :mod:`repro.engine.backend`); ``None`` defers to
    ``REPRO_BACKEND`` (default ``numpy``).  The numpy backend is
    byte-identical; non-numpy backends keep maps and counters exact
    (boolean outcomes) while intermediate floats are tolerance-gated.
    The v1 engine ignores the backend — it is the pure-numpy oracle.
    """

    start_level: int = 5
    memo_levels: int = 8
    thread_block: int = 2048
    max_pairs: int = 4_000_000  # frontier chunking threshold inside a block
    workers: int | None = None  # None = resolve from REPRO_WORKERS (default 1)
    engine: str | None = None  # None = resolve from REPRO_ENGINE (default v2)
    backend: str | None = None  # None = resolve from REPRO_BACKEND (default numpy)


@dataclass
class Wave:
    """One frontier level's pair arrays, as seen by a method's decide().

    ``ctx`` — set only by the v2 engine — is the level's shared
    :class:`LevelContext` (per-node / per-thread data hoisted out of the
    per-pair kernels); ``offset`` is this (sub-)wave's start within the
    context's full-level arrays (``_decide_chunked`` slices waves, and
    chunk ``[a:b)`` of the level maps to ``ctx`` rows ``[a:b)``).  Waves
    built without a context (v1, direct kernel tests, the voxel-mapping
    pricer) take the methods' reference paths.
    """

    level: int
    threads: np.ndarray  # (F,) global thread (orientation) indices
    codes: np.ndarray  # (F,) uint64 Morton codes at `level`
    idx: np.ndarray  # (F,) stored-node index at `level`, -1 if virtual
    status: np.ndarray  # (F,) uint8 node status (virtual nodes are FULL)
    centers: np.ndarray | None  # (F, 3) node centers (None in panel mode)
    half: float  # cell half-edge at `level`
    dirs: np.ndarray | None  # (F, 3) tool direction per pair (None in panel mode)
    ctx: "LevelContext | None" = None  # v2: shared per-(block, level) data
    offset: int = 0  # start row of this sub-wave within ctx's arrays

    @property
    def size(self) -> int:
        return len(self.threads)


@dataclass
class Runtime:
    """Per-run shared state handed to the methods.

    ``engine`` is the resolved frontier engine (see
    :func:`resolve_engine`; an explicit value wins over
    ``config.engine`` which wins over ``REPRO_ENGINE``).  ``backend``
    is the resolved :class:`~repro.engine.backend.ArrayBackend` the v2
    panel/batch kernels route through (``config.backend`` >
    ``REPRO_BACKEND`` > numpy).  Under v2, ``workspace`` is the buffer
    arena for wave arrays and kernel temporaries (the ambient one when
    installed, else a fresh private arena) and ``cache`` holds the
    run's deduplicated per-node and per-thread geometry
    (:class:`_RunCache`).
    """

    scene: Scene
    grid: OrientationGrid
    counters: ThreadCounters
    costs: CostModel
    config: TraversalConfig
    table: IcaTable | None = None
    all_dirs: np.ndarray = field(default=None)
    engine: str | None = None
    workspace: Workspace | None = None
    cache: "_RunCache | None" = field(default=None, repr=False)
    backend: "ArrayBackend | None" = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.all_dirs is None:
            self.all_dirs = self.grid.directions()
        self.engine = resolve_engine(self.engine or self.config.engine)
        if not isinstance(self.backend, ArrayBackend):
            self.backend = get_backend(self.backend or self.config.backend)
        if self.engine == "v2":
            if self.workspace is None:
                self.workspace = get_ambient_workspace() or Workspace()
            if self.cache is None:
                self.cache = _RunCache(self.scene)


class _RunCache:
    """One run's deduplicated geometry, shared across blocks and levels.

    Everything here is *recomputation elimination only*: each cached
    array is produced by exactly the elementwise formula the v1 kernels
    apply per pair, evaluated once per stored node (or once per thread
    of a block) and gathered — so gathered values are bit-equal to the
    per-pair originals, which is what keeps maps and counters
    byte-identical between engines.

    Per-level node caches are built lazily and only when the requesting
    frontier has at least as many pairs as the level has stored nodes
    (``want``): on narrow late-level frontiers computing every stored
    node would cost more than the v1 per-pair path, so callers fall
    back to it (the *values* are identical either way).  Once built, a
    cache serves every later block, chunk and level revisit for free.
    """

    __slots__ = (
        "scene",
        "_centers",
        "_dist",
        "_fly",
        "_frames",
        "_cyl",
        "_frames_t0",
        "_cyl_t0",
    )

    def __init__(self, scene: Scene) -> None:
        self.scene = scene
        self._centers: dict[int, np.ndarray] = {}
        self._dist: dict[int, np.ndarray] = {}
        self._fly: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._frames: np.ndarray | None = None
        self._cyl: tuple | None = None
        self._frames_t0 = -1
        self._cyl_t0 = -1

    # -- per stored node ---------------------------------------------------

    def level_centers(self, level: int, want: int) -> np.ndarray | None:
        """Centers of every stored node at ``level`` (or None: too narrow)."""
        c = self._centers.get(level)
        if c is None:
            lev = self.scene.tree.levels[level]
            if lev.n > want:
                return None
            c = self._centers[level] = self.scene.tree.centers_of_codes(level, lev.codes)
        return c

    def level_dist(self, level: int, want: int) -> np.ndarray | None:
        """Pivot distance of every stored node at ``level`` (v1's formula)."""
        d = self._dist.get(level)
        if d is None:
            centers = self.level_centers(level, want)
            if centers is None:
                return None
            rel = centers - self.scene.pivot
            d = self._dist[level] = np.sqrt(np.einsum("ij,ij->i", rel, rel))
        return d

    def level_fly_bounds(self, level: int, half: float, want: int):
        """On-the-fly CHECKICA cone bounds for every stored node at ``level``.

        Returns ``(cos_lo, cos_hi)`` — ``ica_bounds_cos`` of the
        inscribed (``half``) and circumscribed (``sqrt(3) * half``)
        spheres, exactly as ``_IcaBase`` computes them per unique code —
        or None when the level is wider than ``want`` pairs.
        """
        b = self._fly.get(level)
        if b is None:
            if self.scene.tree.levels[level].n > want:
                return None
            dist = self.level_dist(level, want)
            if dist is None:
                return None
            tool = self.scene.tool
            n = len(dist)
            lo, _ = ica_bounds_cos(
                tool.z0, tool.z1, tool.radius, dist, np.full(n, half)
            )
            _, hi = ica_bounds_cos(
                tool.z0, tool.z1, tool.radius, dist, np.full(n, SQRT3 * half)
            )
            b = self._fly[level] = (lo, hi)
        return b

    # -- per thread of the current block ----------------------------------

    def block_frames(self, all_dirs: np.ndarray, t0: int, t1: int) -> np.ndarray:
        """Oriented tool frames for threads ``[t0, t1)`` (level-invariant)."""
        if self._frames_t0 != t0 or self._frames is None:
            from repro.geometry.frames import frame_from_axis

            self._frames = frame_from_axis(all_dirs[t0:t1])
            self._frames_t0 = t0
        return self._frames

    def block_cyl_aabbs(self, all_dirs: np.ndarray, t0: int, t1: int):
        """World AABBs of each oriented tool cylinder, per block thread.

        Returns ``(lo, hi, union_lo, union_hi)`` with shapes
        ``(B, C, 3)``/``(B, 3)`` — the per-cylinder boxes exactly as
        ``tool_aabb_cull_batch`` builds them per pair, plus their
        elementwise union.  The cylinders depend only on (pivot, dir),
        never on the node or the level, so one block computes them once.
        """
        if self._cyl_t0 != t0 or self._cyl is None:
            tool = self.scene.tool
            pivot = self.scene.pivot
            dirs = all_dirs[t0:t1]
            z0s = np.atleast_1d(np.asarray(tool.z0, dtype=np.float64))
            z1s = np.atleast_1d(np.asarray(tool.z1, dtype=np.float64))
            rads = np.atleast_1d(np.asarray(tool.radius, dtype=np.float64))
            lateral = rads[None, :, None] * np.sqrt(
                np.clip(1.0 - dirs[:, None, :] ** 2, 0.0, 1.0)
            )  # (B, C, 3)
            c0 = pivot + z0s[None, :, None] * dirs[:, None, :]
            c1 = pivot + z1s[None, :, None] * dirs[:, None, :]
            lo = np.minimum(c0, c1) - lateral
            hi = np.maximum(c0, c1) + lateral
            self._cyl = (lo, hi, lo.min(axis=1), hi.max(axis=1))
            self._cyl_t0 = t0
        return self._cyl


#: Panel-mode routing guards (see LevelContext.prepare_panels).  Pure
#: wall-clock heuristics: both sides of the guard are bit-equal, only
#: speed differs.  A panel pays O(U * B) where the per-pair path pays
#: O(F); require the frontier to be non-trivial and the panel to stay
#: within a small factor of the pair count.
_PANEL_MIN_PAIRS = 4096
_PANEL_OVERSAMPLE = 2.0


class LevelContext:
    """Shared data of one (block, level) of the v2 engine, computed lazily.

    One instance spans *every* ``decide`` chunk of a frontier level, so
    anything computed here — per-pair distances, CHECKICA cone bounds,
    the per-thread cull boxes — is paid once per level instead of once
    per ``max_pairs`` chunk.  All arrays are full-level (length ``F``);
    chunked sub-waves address them through ``Wave.offset``.

    Dedup keys: stored pairs use ``idx`` (the stored-node index — already
    unique per node, no sort needed); virtual pairs (``idx == -1``,
    AICA's expanded FULL octants and the above-base-level solid
    expansion) are deduplicated with one ``np.unique`` over their —
    typically small — code subset.

    **Panels.**  When a level's frontier is dense — the pairs cover the
    level's unique nodes many times over — the context switches to
    *panel* mode: the per-pair kernels' core quantities (the CHECKICA
    cosine test, the CHECKBOX screening distance, the optimized-PBox
    cull verdict) are evaluated on a ``(unique node, block thread)``
    matrix once per level and each pair merely gathers its ``(node,
    thread)`` cell.  Every matrix element is produced by exactly the
    per-pair formula (elementwise ops and order-preserving ``einsum``
    contractions), so gathered values are bit-equal to the reference
    kernels' and outcomes/counters stay byte-identical.  Panel mode is a
    pure routing decision (``_PANEL_*`` guards) between two bit-equal
    computations, so the thresholds are free to be tuned.
    """

    __slots__ = (
        "rt",
        "level",
        "half",
        "t0",
        "t1",
        "threads",
        "codes",
        "idx",
        "status",
        "centers",
        "n_stored",
        "_vsel",
        "_vuq",
        "_vinv",
        "_vcenters",
        "_vdist",
        "_dist",
        "_bounds",
        "_dense",
        "_use_panels",
        "_uloc",
        "_urows",
        "_n_us",
        "_flat",
        "_pnodes",
        "_pbounds",
        "_ica_panel",
        "_screen",
        "_cullmat",
    )

    def __init__(self, rt, level, half, t0, t1, threads, codes, idx, status):
        self.rt = rt
        self.level = level
        self.half = half
        self.t0 = t0
        self.t1 = t1
        self.threads = threads
        self.codes = codes
        self.idx = idx
        self.status = status
        self.centers = None
        self._vsel = None
        self._vuq = None
        self._vinv = None
        self._vcenters = None
        self._vdist = None
        self._dist = None
        self._bounds = None
        self._dense = False
        self._use_panels = None
        self._uloc = None
        self._urows = None
        self._n_us = 0
        self._flat = None
        self._pnodes = None
        self._pbounds = None
        self._ica_panel = None
        self._screen = None
        self._cullmat = None

    # -- virtual pairs -----------------------------------------------------

    def _virtual(self):
        """(selector, unique codes, inverse) of the virtual pairs."""
        if self._vsel is None:
            self._vsel = np.flatnonzero(self.idx < 0)
            if len(self._vsel):
                self._vuq, self._vinv = np.unique(
                    self.codes[self._vsel], return_inverse=True
                )
            else:
                self._vuq = np.zeros(0, dtype=np.uint64)
                self._vinv = np.zeros(0, dtype=np.intp)
        return self._vsel, self._vuq, self._vinv

    def _virtual_dist(self) -> np.ndarray:
        """Pivot distance per unique virtual node (v1's per-pair formula)."""
        if self._vdist is None:
            if self._vcenters is None:
                _, vuq, _ = self._virtual()
                self._vcenters = self.rt.scene.tree.centers_of_codes(self.level, vuq)
            rel = self._vcenters - self.rt.scene.pivot
            self._vdist = np.sqrt(np.einsum("ij,ij->i", rel, rel))
        return self._vdist

    # -- per-pair arrays (full level) --------------------------------------

    def build_centers(self) -> np.ndarray:
        """The level's (F, 3) centers, deduplicated per node when dense.

        Dense path: gather the stored-node center cache through ``idx``
        and patch virtual rows from their unique codes.  Narrow path
        (frontier smaller than the stored level): per-pair decode,
        exactly the v1 expression.  Either way every row equals
        ``centers_of_codes(level, codes)`` bit-for-bit.
        """
        rt = self.rt
        tree = rt.scene.tree
        F = len(self.codes)
        out = rt.workspace.take("wave.centers", (F, 3))
        vsel, vuq, vinv = self._virtual()
        self.n_stored = F - len(vsel)
        lev_centers = (
            rt.cache.level_centers(self.level, self.n_stored) if self.n_stored else None
        )
        if self.n_stored and lev_centers is None:
            # Narrow mixed frontier: per-pair decode, the v1 expression.
            out[:] = tree.centers_of_codes(self.level, self.codes)
        else:
            self._dense = True
            if self.n_stored:
                # idx == -1 rows read a garbage (last) row; patched below.
                np.take(lev_centers, self.idx, axis=0, out=out)
            if len(vsel):
                self._vcenters = tree.centers_of_codes(self.level, vuq)
                out[vsel] = self._vcenters[vinv]
        self.centers = out
        return out

    def pair_dist(self) -> np.ndarray:
        """(F,) pivot distances per pair (lazy; v1's formula per node).

        The dense path is pure gathering (host); the narrow per-pair
        compute routes through the array backend — on numpy it is the
        untouched in-place einsum, elsewhere the portable pairwise dot.
        """
        if self._dist is None:
            rt = self.rt
            bk = rt.backend
            F = len(self.codes)
            d = rt.workspace.take("ctx.dist", F)
            if self._dense:
                if self.n_stored:
                    # level_centers exists (dense), so this always builds.
                    lev_dist = rt.cache.level_dist(self.level, self.n_stored)
                    np.take(lev_dist, self.idx, out=d)
                vsel, _, vinv = self._virtual()
                if len(vsel):
                    d[vsel] = self._virtual_dist()[vinv]
            elif bk.is_numpy:
                bk.count_kernel()
                rel = rt.workspace.take("ctx.rel", (F, 3))
                np.subtract(self.centers, rt.scene.pivot, out=rel)
                np.einsum("ij,ij->i", rel, rel, out=d)
                np.sqrt(d, out=d)
            else:
                bk.count_kernel()
                xp = bk.xp
                rel = bk.to_device(self.centers) - bk.to_device(rt.scene.pivot)
                d[:] = bk.to_host(xp.sqrt(bk.dot3(rel, rel)))
            self._dist = d
        return self._dist

    def cos_bounds(self, use_memo: bool):
        """(F,) CHECKICA cone bounds per pair, plus the memo applicability.

        Returns ``(cos1, cos2, memo_stored)`` where ``memo_stored`` says
        whether stored pairs at this level read the stage-1 table (in
        which case their bounds come from ``table.lookup`` and only
        virtual pairs carry on-the-fly bounds).  Computed once per
        (block, level); every ``decide`` chunk slices it.

        The bounds themselves are *stage-1 precompute* work — table
        lookups, unique-code dedup, and the sort-heavy
        :func:`~repro.ica.cone.ica_bounds_cos` — so like the MICA table
        they stay on the host under every backend; the seam charges the
        invocation and downstream panel kernels stage the resulting
        per-row bounds to the device.
        """
        if self._bounds is None:
            rt = self.rt
            rt.backend.count_kernel()
            tool = rt.scene.tool
            F = len(self.codes)
            ws = rt.workspace
            cos1 = ws.take("ctx.cos1", F)
            cos2 = ws.take("ctx.cos2", F)
            table = rt.table
            memo_stored = bool(
                use_memo and table is not None and table.has_level(self.level)
            )
            vsel, vuq, vinv = self._virtual()
            if memo_stored:
                ssel = np.flatnonzero(self.idx >= 0)
                if len(ssel):
                    c1, c2 = table.lookup(self.level, self.idx[ssel])
                    cos1[ssel] = c1
                    cos2[ssel] = c2
                if len(vsel):
                    self._fill_virtual_bounds(cos1, cos2, vsel, vuq, vinv)
            elif self._dense and self.n_stored == 0:
                # All-virtual wave: the unique-code dedup already happened.
                self._fill_virtual_bounds(cos1, cos2, vsel, vuq, vinv)
            else:
                fly_bounds = (
                    rt.cache.level_fly_bounds(self.level, self.half, self.n_stored)
                    if self._dense
                    else None
                )
                if fly_bounds is not None:
                    lo, hi = fly_bounds
                    np.take(lo, self.idx, out=cos1)
                    np.take(hi, self.idx, out=cos2)
                    if len(vsel):
                        self._fill_virtual_bounds(cos1, cos2, vsel, vuq, vinv)
                else:
                    # Narrow frontier: v1's unique-by-code dedup over the
                    # whole (stored + virtual) wave in one pass.
                    uniq, inverse = np.unique(self.codes, return_inverse=True)
                    first = np.zeros(len(uniq), dtype=np.intp)
                    first[inverse[::-1]] = np.arange(F, dtype=np.intp)[::-1]
                    du = self.pair_dist()[first]
                    lo, _ = ica_bounds_cos(
                        tool.z0, tool.z1, tool.radius, du, np.full(len(uniq), self.half)
                    )
                    _, hi = ica_bounds_cos(
                        tool.z0,
                        tool.z1,
                        tool.radius,
                        du,
                        np.full(len(uniq), SQRT3 * self.half),
                    )
                    cos1[:] = lo[inverse]
                    cos2[:] = hi[inverse]
            self._bounds = (cos1, cos2, memo_stored)
        return self._bounds

    def _fill_virtual_bounds(self, cos1, cos2, vsel, vuq, vinv) -> None:
        """On-the-fly bounds for the unique virtual nodes, scattered back."""
        tool = self.rt.scene.tool
        du = self._virtual_dist()
        n = len(vuq)
        lo, _ = ica_bounds_cos(
            tool.z0, tool.z1, tool.radius, du, np.full(n, self.half)
        )
        _, hi = ica_bounds_cos(
            tool.z0, tool.z1, tool.radius, du, np.full(n, SQRT3 * self.half)
        )
        cos1[vsel] = lo[vinv]
        cos2[vsel] = hi[vinv]

    # -- panels: (unique node x block thread) matrices ----------------------

    @property
    def use_panels(self) -> bool:
        return bool(self._use_panels)

    def prepare_panels(self) -> bool:
        """Decide (once) whether this level runs on the panel fast path.

        Builds the pair -> panel-row map with a presence/cumsum
        compaction over the stored level (no sort): stored pairs map
        through ``idx``, virtual pairs append their unique codes as
        extra rows.  Eligibility: the frontier is at least as wide as
        the stored level (so the per-node side deduplicates) and the
        panel is not much larger than the pair count (so the per-thread
        side does not overshoot the per-pair cost).
        """
        if self._use_panels is not None:
            return self._use_panels
        rt = self.rt
        F = len(self.codes)
        lev_n = rt.scene.tree.levels[self.level].n
        B = self.t1 - self.t0
        ok = False
        if F >= _PANEL_MIN_PAIRS and lev_n <= F:
            vsel, vuq, vinv = self._virtual()
            self.n_stored = F - len(vsel)
            ws = rt.workspace
            # Length n+1: scattering through idx sends the virtual rows'
            # -1 into the sentinel slot instead of a real node.
            presence = ws.take("panel.presence", lev_n + 1, bool)
            presence[:] = False
            presence[self.idx] = True
            presence = presence[:lev_n]
            nus = 0
            rowmap = None
            if lev_n:
                rowmap = ws.take("panel.rowmap", lev_n, np.intp)
                np.cumsum(presence, out=rowmap)
                nus = int(rowmap[-1])
                np.subtract(rowmap, 1, out=rowmap)
            U = nus + len(vuq)
            if U * B <= _PANEL_OVERSAMPLE * F:
                u_loc = ws.take("panel.u_loc", F, np.intp)
                if nus:
                    # Virtual rows read a garbage entry; patched below.
                    np.take(rowmap, self.idx, out=u_loc)
                if len(vsel):
                    u_loc[vsel] = nus + vinv
                self._urows = np.flatnonzero(presence)
                self._uloc = u_loc
                self._n_us = nus
                self._dense = True
                ok = True
        self._use_panels = ok
        return ok

    def pair_flat(self) -> np.ndarray:
        """(F,) flat ``row * B + thread_col`` index of each pair's panel cell."""
        if self._flat is None:
            ws = self.rt.workspace
            F = len(self.codes)
            B = self.t1 - self.t0
            flat = ws.take("panel.flat", F, np.intp)
            np.subtract(self.threads, self.t0, out=flat)
            tmp = ws.take("panel.flat_tmp", F, np.intp)
            np.multiply(self._uloc, B, out=tmp)
            np.add(flat, tmp, out=flat)
            self._flat = flat
        return self._flat

    def _panel_nodes(self):
        """Per panel-row node geometry: ``(centers, rel, dist)``, each (U, ...).

        Stored rows gather the level caches; virtual rows append their
        deduplicated centers/distances — all values bit-equal to the
        per-pair formulas (the caches are built with them).
        """
        if self._pnodes is None:
            rt = self.rt
            F = len(self.codes)
            vsel, vuq, vinv = self._virtual()
            nus = self._n_us
            U = nus + len(vuq)
            ws = rt.workspace
            centers_w = ws.take("panel.centers", (U, 3))
            dist_w = ws.take("panel.dist", U)
            if nus:
                lev_centers = rt.cache.level_centers(self.level, F)
                lev_dist = rt.cache.level_dist(self.level, F)
                np.take(lev_centers, self._urows, axis=0, out=centers_w[:nus])
                np.take(lev_dist, self._urows, out=dist_w[:nus])
            if len(vuq):
                if self._vcenters is None:
                    self._vcenters = rt.scene.tree.centers_of_codes(self.level, vuq)
                centers_w[nus:] = self._vcenters
                dist_w[nus:] = self._virtual_dist()
            rel_w = ws.take("panel.rel", (U, 3))
            np.subtract(centers_w, rt.scene.pivot, out=rel_w)
            self._pnodes = (centers_w, rel_w, dist_w)
        return self._pnodes

    def _panel_bounds(self, use_memo: bool):
        """Per panel-row CHECKICA cone bounds ``(cos1, cos2, memo_stored)``."""
        if self._pbounds is None:
            rt = self.rt
            tool = rt.scene.tool
            _, _, dist_w = self._panel_nodes()
            vuq = self._vuq
            nus = self._n_us
            U = len(dist_w)
            ws = rt.workspace
            cos1 = ws.take("panel.cos1", U)
            cos2 = ws.take("panel.cos2", U)
            table = rt.table
            memo_stored = bool(
                use_memo and table is not None and table.has_level(self.level)
            )
            if memo_stored:
                if nus:
                    c1, c2 = table.lookup(self.level, self._urows)
                    cos1[:nus] = c1
                    cos2[:nus] = c2
                if len(vuq):
                    du = dist_w[nus:]
                    lo, _ = ica_bounds_cos(
                        tool.z0, tool.z1, tool.radius, du, np.full(len(vuq), self.half)
                    )
                    _, hi = ica_bounds_cos(
                        tool.z0, tool.z1, tool.radius, du,
                        np.full(len(vuq), SQRT3 * self.half),
                    )
                    cos1[nus:] = lo
                    cos2[nus:] = hi
            else:
                lo, _ = ica_bounds_cos(
                    tool.z0, tool.z1, tool.radius, dist_w, np.full(U, self.half)
                )
                _, hi = ica_bounds_cos(
                    tool.z0, tool.z1, tool.radius, dist_w,
                    np.full(U, SQRT3 * self.half),
                )
                cos1[:] = lo
                cos2[:] = hi
            self._pbounds = (cos1, cos2, memo_stored)
        return self._pbounds

    def ica_outcome_panel(self, use_memo: bool, expand_corners: bool):
        """CHECKICA outcomes per panel cell: ``(out_mat, corner_mat, memo)``.

        ``out_mat[u, t]`` is the outcome pair ``(node u, thread t)``
        would get from the reference kernel (corner cells hold
        ``OUT_EXPAND`` when the method expands corners above leaf level,
        else ``OUT_NO`` pending the box fallback); ``corner_mat`` marks
        the corner band.  Computed once per (block, level); every decide
        chunk gathers.
        """
        if self._ica_panel is None:
            rt = self.rt
            bk = rt.backend
            bk.count_kernel()
            if not bk.is_numpy:
                self._ica_panel = self._ica_outcome_panel_xp(
                    bk, use_memo, expand_corners
                )
                return self._ica_panel
            ws = rt.workspace
            _, rel_w, dist_w = self._panel_nodes()
            U = len(dist_w)
            B = self.t1 - self.t0
            dirs = rt.all_dirs[self.t0 : self.t1]
            cos = ws.take("panel.cos", (U, B))
            np.einsum("uj,tj->ut", rel_w, dirs, out=cos)
            safe = ws.take("panel.safe", U)
            np.maximum(dist_w, 1e-300, out=safe)
            np.divide(cos, safe[:, None], out=cos)
            np.clip(cos, -1.0, 1.0, out=cos)
            cos[dist_w == 0.0] = 1.0
            cos1_w, cos2_w, memo_stored = self._panel_bounds(use_memo)
            yes = ws.take("panel.yes", (U, B), bool)
            np.greater_equal(cos, cos1_w[:, None], out=yes)
            corner = ws.take("panel.corner", (U, B), bool)
            # corner == ~yes & ~(cos <= cos2) (the reference's ~yes & ~no).
            np.less_equal(cos, cos2_w[:, None], out=corner)
            np.logical_or(corner, yes, out=corner)
            np.logical_not(corner, out=corner)
            out_mat = ws.take("panel.out", (U, B), np.uint8)
            np.multiply(yes, OUT_YES, out=out_mat)
            if expand_corners and self.level < rt.scene.tree.depth:
                out_mat[corner] = OUT_EXPAND
            self._ica_panel = (out_mat, corner, memo_stored)
        return self._ica_panel

    def _ica_outcome_panel_xp(self, bk, use_memo: bool, expand_corners: bool):
        """Portable (Array-API) twin of the CHECKICA panel kernel.

        Node geometry and cone bounds are stage-1 host products; they
        stage to the device, the dense (U, B) compute runs in ``xp``,
        and the boolean/uint8 outcome matrices come back to the host
        for the per-pair gathers.  The pairwise ``outer_dot3`` keeps a
        numpy-backed namespace bit-equal to the einsum reference, and
        every downstream quantity is a threshold comparison, so
        outcomes — and counters — stay exact (the backend contract).
        """
        rt = self.rt
        xp = bk.xp
        _, rel_w, dist_w = self._panel_nodes()
        cos1_w, cos2_w, memo_stored = self._panel_bounds(use_memo)
        dirs = rt.all_dirs[self.t0 : self.t1]
        rel_d = bk.to_device(rel_w)
        dirs_d = bk.to_device(dirs)
        dist_d = bk.to_device(dist_w)
        cos = bk.outer_dot3(rel_d, dirs_d)
        safe = xp.maximum(dist_d, xp.asarray(1e-300, dtype=xp.float64))
        cos = xp.clip(cos / safe[:, None], -1.0, 1.0)
        cos = xp.where(
            (dist_d == 0.0)[:, None], xp.asarray(1.0, dtype=xp.float64), cos
        )
        yes = cos >= bk.to_device(cos1_w)[:, None]
        corner_d = xp.logical_not(
            xp.logical_or(yes, cos <= bk.to_device(cos2_w)[:, None])
        )
        out_d = xp.astype(yes, xp.uint8)
        if expand_corners and self.level < rt.scene.tree.depth:
            out_d = xp.where(corner_d, xp.asarray(2, dtype=xp.uint8), out_d)
        out_mat = np.ascontiguousarray(bk.to_host(out_d))
        corner = np.ascontiguousarray(bk.to_host(corner_d))
        return out_mat, corner, memo_stored

    def box_screen_panel(self):
        """CHECKBOX sphere-screen verdicts per panel cell.

        Returns ``(hit, undecided)`` bool matrices: the inscribed/
        circumscribed-sphere screen of :func:`tool_aabb_batch` evaluated
        per (node, thread) with the reference's exact op order; only
        ``undecided`` cells still need the rotate/clip/project kernel.
        """
        if self._screen is None:
            from repro.geometry.batch import tool_point_distance_2d

            rt = self.rt
            bk = rt.backend
            bk.count_kernel()
            if not bk.is_numpy:
                self._screen = self._box_screen_panel_xp(bk)
                return self._screen
            ws = rt.workspace
            tool = rt.scene.tool
            _, rel_w, dist_w = self._panel_nodes()
            U = len(dist_w)
            B = self.t1 - self.t0
            dirs = rt.all_dirs[self.t0 : self.t1]
            axial = ws.take("panel.axial", (U, B))
            np.einsum("uj,tj->ut", rel_w, dirs, out=axial)
            rr = ws.take("panel.rr", U)
            np.einsum("ij,ij->i", rel_w, rel_w, out=rr)
            radial = ws.take("panel.radial", (U, B))
            np.multiply(axial, axial, out=radial)
            np.subtract(rr[:, None], radial, out=radial)
            np.maximum(radial, 0.0, out=radial)
            np.sqrt(radial, out=radial)
            d2d = tool_point_distance_2d(tool.z0, tool.z1, tool.radius, axial, radial)
            # The reference compares against halves3.min(axis=1) and
            # sqrt(einsum(halves3, halves3)) of the broadcast scalar
            # half; reproduce both reductions on one (1, 3) row so the
            # thresholds are the same floats.
            h3 = np.array([[self.half, self.half, self.half]])
            r_in = h3.min(axis=1)[0]
            r_circ = np.sqrt(np.einsum("ij,ij->i", h3, h3))[0]
            hit = ws.take("panel.scr_hit", (U, B), bool)
            np.less_equal(d2d, r_in, out=hit)
            und = ws.take("panel.scr_und", (U, B), bool)
            np.less_equal(d2d, r_circ, out=und)
            und[hit] = False
            self._screen = (hit, und)
        return self._screen

    def _box_screen_panel_xp(self, bk):
        """Portable twin of the CHECKBOX sphere-screen panel.

        Same staging story as the CHECKICA twin; the screen thresholds
        (inscribed/circumscribed radii of the level's cube) are host
        scalars computed with the reference's exact reductions.
        """
        from repro.geometry.batch import tool_point_distance_2d_xp

        rt = self.rt
        xp = bk.xp
        tool = rt.scene.tool
        _, rel_w, dist_w = self._panel_nodes()
        dirs = rt.all_dirs[self.t0 : self.t1]
        rel_d = bk.to_device(rel_w)
        dirs_d = bk.to_device(dirs)
        axial = bk.outer_dot3(rel_d, dirs_d)
        rr = bk.dot3(rel_d, rel_d)
        radial = xp.sqrt(
            xp.maximum(rr[:, None] - axial * axial, xp.asarray(0.0, dtype=xp.float64))
        )
        d2d = tool_point_distance_2d_xp(
            bk, tool.z0, tool.z1, tool.radius, axial, radial
        )
        h3 = np.array([[self.half, self.half, self.half]])
        r_in = float(h3.min(axis=1)[0])
        r_circ = float(np.sqrt(np.einsum("ij,ij->i", h3, h3))[0])
        hit_d = d2d <= r_in
        und_d = xp.logical_and(d2d <= r_circ, xp.logical_not(hit_d))
        hit = np.ascontiguousarray(bk.to_host(hit_d))
        und = np.ascontiguousarray(bk.to_host(und_d))
        return hit, und

    def want_screen_panel(self, n_masked: int) -> bool:
        """Whether the CHECKBOX screen should run on the whole panel.

        Worth it when the matrix already exists (gathering is free) or
        the mask covers enough of the panel that one per-cell pass
        undercuts the per-pair pass — corner/cull masks are usually
        sparse, and for those the gathered per-pair screen wins.  Both
        paths produce bit-equal verdicts, so this is purely a routing
        choice.
        """
        if self._screen is not None:
            return True
        _, vuq, _ = self._virtual()
        cells = (self._n_us + len(vuq)) * (self.t1 - self.t0)
        return 2 * n_masked >= cells

    def cull_panel(self) -> np.ndarray:
        """Optimized-PBox cull verdicts per panel cell ((U, B) bool).

        Per cell this is exactly ``tool_aabb_cull_batch``'s test against
        the block's hoisted cylinder AABBs, with the union-box pre-reject
        (exact: the union misses an axis iff every cylinder misses it).
        """
        if self._cullmat is None:
            rt = self.rt
            bk = rt.backend
            bk.count_kernel()
            if not bk.is_numpy:
                self._cullmat = self._cull_panel_xp(bk)
                return self._cullmat
            ws = rt.workspace
            lo, hi, ulo, uhi = self.block_cyl_aabbs()
            centers_w, _, _ = self._panel_nodes()
            U = len(centers_w)
            B = self.t1 - self.t0
            blo = ws.take("panel.blo", (U, 3))
            np.subtract(centers_w, self.half, out=blo)
            bhi = ws.take("panel.bhi", (U, 3))
            np.add(centers_w, self.half, out=bhi)
            cand = (
                (ulo[None, :, :] <= bhi[:, None, :]) & (blo[:, None, :] <= uhi[None, :, :])
            ).all(axis=-1)
            possible = ws.take("panel.possible", (U, B), bool)
            possible[:] = False
            ur, tc = np.nonzero(cand)
            if len(ur):
                possible[ur, tc] = (
                    (lo[tc] <= bhi[ur, None, :]) & (blo[ur, None, :] <= hi[tc])
                ).all(axis=-1).any(axis=-1)
            self._cullmat = possible
        return self._cullmat

    def _cull_panel_xp(self, bk) -> np.ndarray:
        """Portable twin of the cull panel.

        The scatter-compacted candidate pass of the numpy path needs
        integer fancy indexing, which the Array API does not guarantee;
        instead the per-cylinder overlap accumulates over the (small)
        cylinder axis with dense (U, B) slabs, AND-ed with the same
        union-box pre-reject.  Every element is the same comparison of
        the same floats, so the verdict matrix is identical.
        """
        rt = self.rt
        xp = bk.xp
        lo, hi, ulo, uhi = self.block_cyl_aabbs()
        centers_w, _, _ = self._panel_nodes()
        centers_d = bk.to_device(centers_w)
        blo = centers_d - self.half
        bhi = centers_d + self.half
        ulo_d = bk.to_device(ulo)
        uhi_d = bk.to_device(uhi)
        cand = xp.all(
            xp.logical_and(
                ulo_d[None, :, :] <= bhi[:, None, :],
                blo[:, None, :] <= uhi_d[None, :, :],
            ),
            axis=-1,
        )
        lo_d = bk.to_device(lo)  # (B, C, 3)
        hi_d = bk.to_device(hi)
        n_cyl = lo.shape[1]
        possible = None
        for c in range(n_cyl):
            over_c = xp.all(
                xp.logical_and(
                    lo_d[None, :, c, :] <= bhi[:, None, :],
                    blo[:, None, :] <= hi_d[None, :, c, :],
                ),
                axis=-1,
            )
            possible = over_c if possible is None else xp.logical_or(possible, over_c)
        possible = xp.logical_and(possible, cand)
        return np.ascontiguousarray(bk.to_host(possible))

    def pair_geometry_subset(self, wave, sel: np.ndarray):
        """``(centers, dirs, frames)`` of sub-wave rows ``sel`` (gathers only).

        Used by the panel-mode CHECKBOX fallback, where full per-pair
        centers/dirs were never materialized; the gathered rows are
        bit-equal to what the eager path would have sliced.
        """
        g = wave.offset + sel
        centers_w, _, _ = self._panel_nodes()
        centers = centers_w[self._uloc[g]]
        tsel = self.threads[g]
        dirs = self.rt.all_dirs[tsel]
        frames = self.block_frames()[tsel - self.t0]
        return centers, dirs, frames

    # -- per-thread geometry (PBox / PBoxOpt hoists) -----------------------

    def block_frames(self) -> np.ndarray:
        """(B, 3, 3) oriented tool frames for this block's threads."""
        return self.rt.cache.block_frames(self.rt.all_dirs, self.t0, self.t1)

    def block_cyl_aabbs(self):
        """Per-thread cylinder AABBs ``(lo, hi, union_lo, union_hi)``."""
        return self.rt.cache.block_cyl_aabbs(self.rt.all_dirs, self.t0, self.t1)

    # -- observability ------------------------------------------------------

    def dedup_stats(self) -> tuple[int, float]:
        """(unique nodes, pairs-per-unique-node ratio) — tracing only."""
        vsel, vuq, _ = self._virtual()
        if self._use_panels:
            n_uniq = self._n_us + len(vuq)
        else:
            stored_idx = self.idx[self.idx >= 0]
            n_uniq = len(np.unique(stored_idx)) + len(vuq)
        F = len(self.codes)
        return n_uniq, round(F / max(n_uniq, 1), 2)


def _ranges(counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(c)`` for each c in counts: [0..c0), [0..c1), ..."""
    counts = np.asarray(counts, dtype=np.intp)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.intp)
    starts = np.repeat(np.cumsum(counts) - counts, counts)
    return np.arange(total, dtype=np.intp) - starts


def initial_frontier(scene: Scene, start_level: int):
    """Base cells after the top-level expansion.

    Returns ``(level, codes, idx, status)`` where the cells are all
    stored nodes at ``start_level`` plus the virtual leaf-ward expansion
    of any FULL node living above it (a solid region coarser than the
    base level still has to be visible to every thread).
    """
    tree = scene.tree
    L0 = min(start_level, tree.depth)
    codes = [tree.levels[L0].codes]
    idx = [np.arange(tree.levels[L0].n, dtype=np.intp)]
    status = [tree.levels[L0].status]
    for l in range(L0):
        lev = tree.levels[l]
        full = lev.status == STATUS_FULL
        if not full.any():
            continue
        shift = np.uint64(3 * (L0 - l))
        base = lev.codes[full] << shift
        n_sub = 1 << (3 * (L0 - l))
        sub = (base[:, None] + np.arange(n_sub, dtype=np.uint64)).ravel()
        codes.append(sub)
        idx.append(np.full(len(sub), -1, dtype=np.intp))
        status.append(np.full(len(sub), STATUS_FULL, dtype=np.uint8))
    return (
        L0,
        np.concatenate(codes),
        np.concatenate(idx),
        np.concatenate(status),
    )


def _advance(
    rt: Runtime, wave: Wave, outcomes: np.ndarray, collides: np.ndarray, ws_bank=None
):
    """Apply one level's outcomes; return the next level's frontier arrays.

    Marks collisions, drops pairs of collided threads, and expands the
    surviving YES-on-MIXED / EXPAND pairs (stored children for MIXED,
    virtual FULL octants for FULL interior nodes).

    ``ws_bank`` — v2 only — selects the workspace bank (the next level's
    parity) the output arrays are written into, so the advance reads the
    current level's arrays from one bank while filling the other and no
    allocation happens.  Callers that hold outputs across multiple
    advances (the voxel-mapping pricer, direct tests) pass None and get
    freshly allocated arrays, exactly as v1.
    """
    tree = rt.scene.tree
    level = wave.level

    hit = (outcomes == OUT_YES) & (wave.status == STATUS_FULL)
    if hit.any():
        collides[np.unique(wave.threads[hit])] = True

    live = ~collides[wave.threads]
    grow = ((outcomes == OUT_YES) & (wave.status == STATUS_MIXED)) | (outcomes == OUT_EXPAND)
    grow &= live
    if not grow.any() or level >= tree.depth:
        return (
            np.zeros(0, dtype=wave.threads.dtype),
            np.zeros(0, dtype=np.uint64),
            np.zeros(0, dtype=np.intp),
            np.zeros(0, dtype=np.uint8),
        )

    nxt = tree.levels[level + 1]

    stored = grow & (wave.status == STATUS_MIXED)
    virtual = grow & (wave.status == STATUS_FULL)
    n_virt = 8 * int(np.count_nonzero(virtual))

    cs = cc = child_idx = None
    ns = 0
    if stored.any():
        parent_idx = wave.idx[stored]
        lev = tree.levels[level]
        cs = lev.child_start[parent_idx]
        cc = lev.child_count[parent_idx].astype(np.intp)
        child_idx = np.repeat(cs, cc) + _ranges(cc)
        ns = len(child_idx)

    total = ns + n_virt
    if ws_bank is None:
        out_threads = np.empty(total, dtype=wave.threads.dtype)
        out_codes = np.empty(total, dtype=np.uint64)
        out_idx = np.empty(total, dtype=np.intp)
        out_status = np.empty(total, dtype=np.uint8)
    else:
        ws = rt.workspace
        out_threads = ws.take(f"frontier.threads.{ws_bank}", total, wave.threads.dtype)
        out_codes = ws.take(f"frontier.codes.{ws_bank}", total, np.uint64)
        out_idx = ws.take(f"frontier.idx.{ws_bank}", total, np.intp)
        out_status = ws.take(f"frontier.status.{ws_bank}", total, np.uint8)

    if ns:
        out_threads[:ns] = np.repeat(wave.threads[stored], cc)
        out_codes[:ns] = nxt.codes[child_idx]
        out_idx[:ns] = child_idx
        out_status[:ns] = nxt.status[child_idx]

    if n_virt:
        base = wave.codes[virtual] << np.uint64(3)
        np.add(
            base[:, None],
            np.arange(8, dtype=np.uint64),
            out=out_codes[ns:].reshape(-1, 8),
        )
        out_threads[ns:].reshape(-1, 8)[:] = wave.threads[virtual][:, None]
        out_idx[ns:] = -1
        out_status[ns:] = STATUS_FULL

    return out_threads, out_codes, out_idx, out_status


def _subwave(wave: Wave, a: int, b: int) -> Wave:
    """The ``[a:b)`` slice of a wave's pair arrays (views, no copies)."""
    return Wave(
        level=wave.level,
        threads=wave.threads[a:b],
        codes=wave.codes[a:b],
        idx=wave.idx[a:b],
        status=wave.status[a:b],
        centers=wave.centers[a:b] if wave.centers is not None else None,
        half=wave.half,
        dirs=wave.dirs[a:b] if wave.dirs is not None else None,
        ctx=wave.ctx,
        offset=wave.offset + a,
    )


def _decide_chunked(rt: Runtime, method, wave: Wave) -> np.ndarray:
    """``method.decide`` with the frontier split into <= max_pairs chunks.

    Every decision kernel is per-pair pure and charges counters per pair,
    so splitting a level's pair arrays changes neither outcomes nor
    counters — only the peak size of the kernel's temporaries.

    **Counter purity.**  The byte-identity of chunked and unchunked runs
    (and of the engines, and of any worker sharding) rests on a single
    invariant: *a decide() call charges counters for exactly the pairs
    of the wave it was handed* — never for other threads, never more
    than once per pair, never keyed off level-global state.  A method
    that, say, charged every thread of the block per call would pass
    unchunked runs and silently drift under chunking.  When chunking is
    active (and Python is not running with ``-O``), that invariant is
    asserted per chunk: counters of every thread *outside* the chunk
    must not move across the call.
    """
    cap = int(rt.config.max_pairs)
    if cap <= 0 or wave.size <= cap:
        return method.decide(rt, wave)
    counters = rt.counters
    outcomes = np.empty(wave.size, dtype=np.uint8)
    for a in range(0, wave.size, cap):
        b = min(a + cap, wave.size)
        if __debug__:
            outside = np.ones(counters.n_threads, dtype=bool)
            outside[wave.threads[a:b]] = False
            before = [
                int(getattr(counters, f)[outside].sum())
                for f in ThreadCounters.COUNTER_FIELDS
            ]
        outcomes[a:b] = method.decide(rt, _subwave(wave, a, b))
        if __debug__:
            after = [
                int(getattr(counters, f)[outside].sum())
                for f in ThreadCounters.COUNTER_FIELDS
            ]
            assert after == before, (
                f"{method.name}.decide charged counters outside its sub-wave "
                f"(chunk [{a}:{b}) of {wave.size}); chunked and unchunked runs "
                "would diverge"
            )
    return outcomes


def _traverse_range(
    rt: Runtime,
    method,
    L0: int,
    base_codes: np.ndarray,
    base_idx: np.ndarray,
    base_status: np.ndarray,
    collides: np.ndarray,
    t_start: int,
    t_end: int,
    progress=None,
) -> None:
    """Run the frontier traversal for threads ``[t_start, t_end)``.

    Mutates ``collides`` and ``rt.counters`` for exactly those threads;
    threads are independent (a thread's pairs never read another
    thread's state), so any partition of ``[0, M)`` into ranges produces
    the same totals — the property the worker pool relies on.

    ``progress`` — when given — is called with ``(t0=..., t1=...)``
    after each completed thread-block (the serial path's heartbeat).
    """
    tracer = get_tracer()
    tree = rt.scene.tree
    counters = rt.counters
    M = counters.n_threads
    v2 = rt.engine == "v2"
    ws = rt.workspace
    n0 = len(base_codes)
    for t0 in range(t_start, t_end, rt.config.thread_block):
        t1 = min(t0 + rt.config.thread_block, t_end)
        block = np.arange(t0, t1, dtype=np.intp)
        B = len(block)
        if v2:
            # Broadcast-fill the (block x base) product straight into the
            # level-parity bank of the frontier buffers (v1's repeat/tile
            # without the per-block allocations).
            bank = L0 & 1
            threads = ws.take(f"frontier.threads.{bank}", B * n0, np.intp)
            threads.reshape(B, n0)[:] = block[:, None]
            codes = ws.take(f"frontier.codes.{bank}", B * n0, np.uint64)
            codes.reshape(B, n0)[:] = base_codes[None, :]
            idx = ws.take(f"frontier.idx.{bank}", B * n0, np.intp)
            idx.reshape(B, n0)[:] = base_idx[None, :]
            status = ws.take(f"frontier.status.{bank}", B * n0, np.uint8)
            status.reshape(B, n0)[:] = base_status[None, :]
        else:
            threads = np.repeat(block, n0)
            codes = np.tile(base_codes, B)
            idx = np.tile(base_idx, B)
            status = np.tile(base_status, B)

        level = L0
        while len(threads):
            with tracer.span("cd.level", level=level, pairs=len(threads)) as lsp:
                if v2:
                    ctx = LevelContext(
                        rt, level, tree.cell_half(level), t0, t1,
                        threads, codes, idx, status,
                    )
                    if ctx.prepare_panels():
                        # Panel mode: kernels read (node x thread)
                        # matrices; per-pair centers/dirs are gathered
                        # on demand for the (rare) exact fallbacks.
                        centers = None
                        dirs = None
                    else:
                        centers = ctx.build_centers()
                        dirs = ws.take("wave.dirs", (len(threads), 3))
                        np.take(rt.all_dirs, threads, axis=0, out=dirs)
                    if tracer.enabled:
                        n_uniq, ratio = ctx.dedup_stats()
                        lsp.set(
                            unique_nodes=n_uniq,
                            dedup_ratio=ratio,
                            panel=ctx.use_panels,
                        )
                else:
                    ctx = None
                    centers = tree.centers_of_codes(level, codes)
                    dirs = rt.all_dirs[threads]
                wave = Wave(
                    level=level,
                    threads=threads,
                    codes=codes,
                    idx=idx,
                    status=status,
                    centers=centers,
                    half=tree.cell_half(level),
                    dirs=dirs,
                    ctx=ctx,
                )
                counters.add_threads("nodes_visited", threads, M)
                outcomes = _decide_chunked(rt, method, wave)
                threads, codes, idx, status = _advance(
                    rt, wave, outcomes, collides,
                    ws_bank=(level + 1) & 1 if v2 else None,
                )
            level += 1
            if level > tree.depth:
                break
        if progress is not None:
            progress(t0=t0, t1=t1)


def _export_run_metrics(
    counters: ThreadCounters,
    table_entries: int,
    cd_s: float,
    pre_s: float,
    wall: float,
) -> None:
    """One CD run's contribution to the ambient metrics registry.

    Shared by the serial path and the pool's parent-side merge so that a
    parallel run exports exactly the counts a serial run would.
    """
    metrics = get_metrics()
    counters.export(metrics, prefix="cd")
    metrics.counter("cd.runs").inc()
    metrics.counter("cd.table_entries").inc(table_entries)
    metrics.counter("cd.sim_cd_s").inc(cd_s)
    metrics.counter("cd.sim_precompute_s").inc(pre_s)
    metrics.counter("cd.wall_s").inc(wall)


def _finalize_run(
    scene: Scene,
    grid: OrientationGrid,
    method,
    *,
    device: DeviceSpec,
    costs: CostModel,
    config: TraversalConfig,
    collides: np.ndarray,
    counters: ThreadCounters,
    table_entries: int,
    run_sp,
    t_wall0: float,
) -> CDResult:
    """SIMT simulation + metrics export + result assembly for one run.

    Runs once per CD run on the (possibly merged) counters, whether the
    traversal executed serially or across a worker pool.
    """
    wall = time.perf_counter() - t_wall0
    cd_s = simulate_kernel(counters.thread_ops(costs), device)
    pre_s = (
        simulate_stage(costs.ica_precompute(scene.n_cylinders), table_entries, device)
        if table_entries
        else 0.0
    )
    run_sp.set(
        colliding=int(collides.sum()),
        total_checks=counters.total_checks,
        table_entries=table_entries,
        sim_cd_s=cd_s,
        sim_precompute_s=pre_s,
    )
    _export_run_metrics(counters, table_entries, cd_s, pre_s, wall)
    return CDResult(
        method=method.name,
        grid=grid,
        collides=collides,
        counters=counters,
        timing=StageBreakdown(ica_precompute_s=pre_s, cd_tests_s=cd_s, wall_s=wall),
        device_name=device.name,
        table_entries=table_entries,
        config=config,
    )


def _check_table(table: IcaTable, scene: Scene, config: TraversalConfig) -> None:
    """Reject a precomputed table that was built for a different problem.

    A mismatched pivot changes the map; a mismatched ``S`` changes the
    memo/fly counter split — either would silently break the byte-for-byte
    equivalence the caller is promised, so both are hard errors.
    """
    if not np.array_equal(np.asarray(table.pivot, dtype=np.float64), scene.pivot):
        raise ValueError(
            f"precomputed ICA table pivot {np.asarray(table.pivot).tolist()} "
            f"does not match scene pivot {scene.pivot.tolist()}"
        )
    expect = int(min(config.memo_levels, scene.tree.depth + 1))
    if table.levels != expect:
        raise ValueError(
            f"precomputed ICA table has S={table.levels}, "
            f"but this run needs S={expect} (config.memo_levels={config.memo_levels})"
        )


def run_cd(
    scene: Scene,
    grid: OrientationGrid,
    method,
    *,
    device: DeviceSpec = GTX_1080_TI,
    costs: CostModel = DEFAULT_COSTS,
    config: TraversalConfig = TraversalConfig(),
    workers: int | None = None,
    table: IcaTable | None = None,
    shared=None,
) -> CDResult:
    """Generate the accessibility map for ``scene`` with ``method``.

    ``method`` is one of the classes in :mod:`repro.cd.methods`.  Returns
    a :class:`CDResult` whose counters and timing cover both traversal
    stages (the ICA precompute, when the method uses one, and the CD
    tests).

    ``workers`` overrides ``config.workers`` (which itself defaults to
    the ``REPRO_WORKERS`` environment variable, then 1).  With ``N > 1``
    the orientation thread-blocks are sharded over ``N`` processes by
    :mod:`repro.engine.pool`; the map and counters are byte-identical to
    the serial path for every method.

    ``table`` is an optional precomputed stage-1 ICA table for exactly
    this (scene, ``config.memo_levels``) — e.g. loaded with
    :func:`repro.ica.io.load_ica_table` or cached by a scene registry —
    validated against the scene before use.  ``shared`` is an optional
    prebuilt :class:`repro.engine.pool.SharedScene` arena (tree + table)
    consulted only by the parallel path; the caller keeps ownership.
    Both leave results byte-identical; they only skip redundant setup.
    """
    from dataclasses import replace

    from repro.engine.pool import resolve_workers, run_cd_parallel

    if table is not None and getattr(method, "needs_table", False):
        _check_table(table, scene, config)
    engine = resolve_engine(config.engine)
    backend = resolve_backend(config.backend)
    if config.engine != engine or config.backend != backend:
        # Pin the resolved engine/backend into the config so pool workers
        # (which may not share this process's environment) inherit them.
        config = replace(config, engine=engine, backend=backend)
    n_workers = resolve_workers(workers if workers is not None else config.workers)
    if n_workers > 1 and grid.size > 1:
        return run_cd_parallel(
            scene, grid, method,
            device=device, costs=costs, config=config, workers=n_workers,
            table=table, shared=shared,
        )

    t_wall0 = time.perf_counter()
    tracer = get_tracer()
    M = grid.size
    counters = ThreadCounters(n_threads=M, n_cyl=scene.n_cylinders)
    rt = Runtime(scene=scene, grid=grid, counters=counters, costs=costs, config=config)
    ws_before = rt.workspace.stats() if rt.workspace is not None else None
    bk_before = rt.backend.stats()

    with tracer.span("cd.run", method=method.name, orientations=M) as run_sp:
        table_entries = 0
        if getattr(method, "needs_table", False):
            rt.table = (
                table
                if table is not None
                else build_ica_table(
                    scene.tree, scene.tool, scene.pivot, levels=config.memo_levels
                )
            )
            table_entries = rt.table.n_entries

        L0, base_codes, base_idx, base_status = initial_frontier(scene, config.start_level)
        collides = np.zeros(M, dtype=bool)

        if progress_enabled():
            n_blocks = -(-M // config.thread_block)
            heartbeat = Heartbeat(n_blocks, "block")
            progress = heartbeat.tick
        else:
            progress = None
        with tracer.span("cd.traversal", start_level=L0):
            _traverse_range(
                rt, method, L0, base_codes, base_idx, base_status, collides, 0, M,
                progress=progress,
            )

        if rt.workspace is not None:
            from repro.engine.workspace import export_workspace_metrics

            export_workspace_metrics(
                get_metrics(), rt.workspace.stats_since(ws_before)
            )
        export_backend_metrics(get_metrics(), rt.backend.stats_since(bk_before))

        return _finalize_run(
            scene, grid, method,
            device=device, costs=costs, config=config,
            collides=collides, counters=counters, table_entries=table_entries,
            run_sp=run_sp, t_wall0=t_wall0,
        )
