"""Pivot-point path generation around the target model.

The paper evaluates accessibility maps at pivot points sampled from "a
path surrounding the CAD models, with each point on the path having a
1 mm distance from the surface of the model" (Section 5.1) — the tool
tip rides a 1 mm offset surface.  :mod:`repro.path.offset` builds such a
path from the model's implicit surface; :mod:`repro.path.sampling` draws
the random pivot subsets the experiments average over.
"""

from repro.path.offset import offset_path, offset_point
from repro.path.sampling import sample_pivots

__all__ = ["offset_path", "offset_point", "sample_pivots"]
