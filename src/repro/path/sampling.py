"""Pivot sampling from a path (the paper's 2000-random-points protocol)."""

from __future__ import annotations

import numpy as np

__all__ = ["sample_pivots"]


def sample_pivots(path: np.ndarray, n: int, *, seed: int = 0) -> np.ndarray:
    """Draw ``n`` pivots from a path, uniformly without replacement.

    Matches Section 5.1's protocol ("2000 random points are chosen from
    the path as the pivot points"), scaled down: every experiment result
    in the harness is the average over its pivot sample.  Falls back to
    sampling with replacement when the path is shorter than ``n``.
    """
    path = np.asarray(path, dtype=np.float64)
    if path.ndim != 2 or path.shape[1] != 3:
        raise ValueError("path must be (n, 3)")
    if len(path) == 0:
        raise ValueError("empty path")
    rng = np.random.default_rng(seed)
    replace = n > len(path)
    idx = rng.choice(len(path), size=n, replace=replace)
    return path[idx]
