"""The stacked-cylinder tool model.

A tool is a stack of coaxial cylinders: cylinder ``c`` spans the axial
interval ``[z0[c], z1[c]]`` measured from the *pivot* (the tool tip, the
point the CD problem fixes) along the tool direction, with radius
``radius[c]``.  The paper's evaluation tool has four cylinders — cutter,
thin shank, thick shank, and holder — whose radii and heights come from
Section 5.1.

Because all cylinders share the axis, the solid tool is a solid of
revolution; its 2D generating profile (a union of rectangles in the
(axial, radial) plane) is what the ICA computation operates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.cylinder import Cylinder

__all__ = ["Tool", "paper_tool", "ball_end_mill", "straight_line_tool"]


@dataclass(frozen=True)
class Tool:
    """Immutable stacked-cylinder tool (tool coordinates, pivot at z=0)."""

    z0: np.ndarray  # (C,) axial start of each cylinder
    z1: np.ndarray  # (C,) axial end
    radius: np.ndarray  # (C,)
    name: str = "tool"

    def __post_init__(self) -> None:
        z0 = np.atleast_1d(np.asarray(self.z0, dtype=np.float64))
        z1 = np.atleast_1d(np.asarray(self.z1, dtype=np.float64))
        r = np.atleast_1d(np.asarray(self.radius, dtype=np.float64))
        if not (z0.shape == z1.shape == r.shape) or z0.ndim != 1:
            raise ValueError("z0, z1, radius must be equal-length 1D arrays")
        if z0.size == 0:
            raise ValueError("a tool needs at least one cylinder")
        if np.any(z1 <= z0):
            raise ValueError("each cylinder needs z1 > z0")
        if np.any(r <= 0.0):
            raise ValueError("cylinder radii must be positive")
        object.__setattr__(self, "z0", z0)
        object.__setattr__(self, "z1", z1)
        object.__setattr__(self, "radius", r)

    @classmethod
    def from_segments(cls, segments, name: str = "tool") -> "Tool":
        """Build from ``[(radius, height), ...]`` stacked tip-to-holder.

        The first segment starts at the pivot (z=0); each subsequent
        segment starts where the previous one ended.
        """
        radii = []
        z0s = []
        z1s = []
        z = 0.0
        for radius, height in segments:
            z0s.append(z)
            z += float(height)
            z1s.append(z)
            radii.append(float(radius))
        return cls(np.array(z0s), np.array(z1s), np.array(radii), name=name)

    @property
    def n_cylinders(self) -> int:
        """The paper's ``N_c`` — the constant in every check-cost formula."""
        return int(self.z0.size)

    @property
    def reach(self) -> float:
        """Largest axial extent (tip of the stack)."""
        return float(self.z1.max())

    @property
    def max_radius(self) -> float:
        return float(self.radius.max())

    def cylinders(self, pivot, direction) -> list[Cylinder]:
        """Materialize world-space :class:`Cylinder` objects for one pose."""
        return [
            Cylinder(pivot, direction, float(a), float(b), float(r))
            for a, b, r in zip(self.z0, self.z1, self.radius)
        ]

    def profile_rectangles(self) -> np.ndarray:
        """The 2D generating rectangles ``(z0, z1, radius)`` rows, shape (C, 3)."""
        return np.stack([self.z0, self.z1, self.radius], axis=-1)

    def contains(self, pivot, direction, points) -> np.ndarray:
        """Broadcast membership of world points in the solid tool at a pose."""
        p = np.asarray(points, dtype=np.float64) - np.asarray(pivot, dtype=np.float64)
        d = np.asarray(direction, dtype=np.float64)
        axial = np.einsum("...i,i->...", p, d)
        radial_sq = np.einsum("...i,...i->...", p, p) - axial * axial
        radial = np.sqrt(np.maximum(radial_sq, 0.0))
        return (
            (axial[..., None] >= self.z0)
            & (axial[..., None] <= self.z1)
            & (radial[..., None] <= self.radius)
        ).any(axis=-1)


def paper_tool() -> Tool:
    """The Section 5.1 evaluation tool: 4 cylinders.

    Radii (31.5, 20, 6.225, 6.35) mm and heights (22.1, 78, 76.2, 25.4) mm,
    listed holder-to-cutter in the paper; stacked here from the tip (the
    pivot) upward: cutter, thin shank, thick shank, holder.
    """
    return Tool.from_segments(
        [(6.35, 25.4), (6.225, 76.2), (20.0, 78.0), (31.5, 22.1)],
        name="paper-4cyl",
    )


def ball_end_mill(radius: float = 3.0, flute: float = 20.0, shank: float = 60.0) -> Tool:
    """A simple two-cylinder end mill for examples and small tests."""
    return Tool.from_segments(
        [(radius, flute), (radius * 1.6, shank)],
        name=f"endmill-r{radius:g}",
    )


def straight_line_tool(length: float = 200.0, radius: float = 1e-3) -> Tool:
    """Near-degenerate thin tool (the straight line of Figure 9's analysis)."""
    return Tool(np.array([0.0]), np.array([length]), np.array([radius]), name="line")
