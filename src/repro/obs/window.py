"""Sliding-window request statistics for the live serving tier.

Lifetime-cumulative counters answer "how much since boot"; an operator
watching a live server needs "how much *right now*".  This module keeps
a ring of one-second buckets and derives rolling windows from it:
requests per second, error rate, and latency quantiles over the last
1 / 10 / 60 seconds — the numbers ``/v1/healthz``, the Prometheus
exposition, and ``repro-obs watch`` all surface.

Design constraints, in order:

* **off the hot path** — :meth:`RequestWindow.record` is one lock, a
  few scalar adds, and (below the per-bucket cap) one list append;
* **bounded memory** — the ring holds ``horizon_s`` buckets and each
  bucket keeps at most ``max_samples_per_bucket`` latency samples (the
  count/sum stay exact beyond the cap; quantiles become approximate
  under extreme load, which is the right trade for a dashboard);
* **testable** — the clock is injectable, so window semantics are
  asserted with a fake clock instead of sleeps.

Window semantics: a window of ``W`` seconds covers the current
(partial) second plus the ``W - 1`` before it, so the freshest traffic
always shows up; a 1-second window therefore reads "what arrived within
the current wall-clock second so far".
"""

from __future__ import annotations

import threading
import time

__all__ = ["RequestWindow", "DEFAULT_WINDOWS", "percentile"]

DEFAULT_WINDOWS = (1, 10, 60)


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(-(-q * len(sorted_values) // 1)))  # ceil(q * n)
    return sorted_values[min(rank, len(sorted_values)) - 1]


class _Bucket:
    """One second of traffic; reused in place as the ring wraps."""

    __slots__ = ("index", "count", "errors", "total_ms", "samples")

    def __init__(self) -> None:
        self.index = -1  # wall-clock second this bucket currently holds
        self.count = 0
        self.errors = 0
        self.total_ms = 0.0
        self.samples: list[float] = []

    def reset(self, index: int) -> None:
        self.index = index
        self.count = 0
        self.errors = 0
        self.total_ms = 0.0
        self.samples = []


class RequestWindow:
    """Thread-safe ring of per-second buckets with rolling-window stats."""

    def __init__(
        self,
        horizon_s: int = 60,
        *,
        max_samples_per_bucket: int = 512,
        clock=time.monotonic,
    ) -> None:
        if int(horizon_s) < 1:
            raise ValueError(f"horizon_s must be >= 1, got {horizon_s}")
        if int(max_samples_per_bucket) < 1:
            raise ValueError(
                f"max_samples_per_bucket must be >= 1, got {max_samples_per_bucket}"
            )
        self.horizon_s = int(horizon_s)
        self.max_samples_per_bucket = int(max_samples_per_bucket)
        self._clock = clock
        self._ring = [_Bucket() for _ in range(self.horizon_s)]
        self._lock = threading.Lock()

    def _bucket_at(self, second: int) -> _Bucket:
        bucket = self._ring[second % self.horizon_s]
        if bucket.index != second:  # stale slot from a lap ago: recycle
            bucket.reset(second)
        return bucket

    def record(self, ms: float, *, error: bool = False) -> None:
        """Record one finished request (latency in ms) at "now"."""
        second = int(self._clock())
        with self._lock:
            bucket = self._bucket_at(second)
            bucket.count += 1
            if error:
                bucket.errors += 1
            bucket.total_ms += float(ms)
            if len(bucket.samples) < self.max_samples_per_bucket:
                bucket.samples.append(float(ms))

    def stats(self, window_s: int) -> dict:
        """Rolling stats over the last ``window_s`` seconds (clamped to
        the horizon): count, errors, rps, error_rate, mean/p50/p95/p99 ms."""
        window_s = max(1, min(int(window_s), self.horizon_s))
        now = int(self._clock())
        lo = now - window_s  # include buckets with lo < index <= now
        count = errors = 0
        total_ms = 0.0
        samples: list[float] = []
        with self._lock:
            for bucket in self._ring:
                if lo < bucket.index <= now and bucket.count:
                    count += bucket.count
                    errors += bucket.errors
                    total_ms += bucket.total_ms
                    samples.extend(bucket.samples)
        samples.sort()
        return {
            "window_s": window_s,
            "count": count,
            "errors": errors,
            "rps": count / window_s,
            "error_rate": errors / count if count else 0.0,
            "mean_ms": total_ms / count if count else 0.0,
            "p50_ms": percentile(samples, 0.50),
            "p95_ms": percentile(samples, 0.95),
            "p99_ms": percentile(samples, 0.99),
        }

    def snapshot(self, windows: tuple[int, ...] = DEFAULT_WINDOWS) -> dict:
        """``{"1s": stats(1), "10s": stats(10), "60s": stats(60)}``."""
        return {f"{int(w)}s": self.stats(w) for w in windows}

    def export_gauges(self, registry, prefix: str = "service.window") -> None:
        """Write the snapshot into ``registry`` as flat gauges
        (``service.window.10s.rps``, ``….p95_ms``, …) so the window
        rides the JSON snapshot and Prometheus exposition unchanged."""
        for label, stats in self.snapshot().items():
            for key in ("count", "errors", "rps", "error_rate",
                        "mean_ms", "p50_ms", "p95_ms", "p99_ms"):
                registry.gauge(f"{prefix}.{label}.{key}").set(stats[key])
