"""ICA cone bounds: soundness, tightness, and structure.

The entire ICA method stands on two guarantees (module docstring of
:mod:`repro.ica.cone`): ``theta <= ica_lo`` implies contact and
``theta >= ica_hi`` implies freedom, against the *exact* sphere-tool
test.  These are property-tested with randomized tools and spheres, and
the bounds' tightness is checked against brute-force membership.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ica.cone import (
    ACCESSIBLE_SENTINEL,
    COS_NEVER,
    ica_bounds_arrays,
    ica_bounds_cos,
    inaccessible_intervals,
    tool_ica,
    tool_ica_batch,
)
from repro.tool.tool import Tool, ball_end_mill, paper_tool


def _membership(tool, dist, r, thetas):
    """Exact sphere-tool contact at given angles (2D rectangle distance)."""
    z = dist * np.cos(thetas)
    rho = dist * np.sin(thetas)
    dz = np.maximum(tool.z0 - z[:, None], 0) + np.maximum(z[:, None] - tool.z1, 0)
    dr = np.maximum(rho[:, None] - tool.radius, 0)
    return ((dz**2 + dr**2) <= r * r).any(axis=1)


@st.composite
def random_tool(draw):
    n = draw(st.integers(1, 4))
    segs = [
        (draw(st.floats(0.5, 10.0)), draw(st.floats(2.0, 60.0))) for _ in range(n)
    ]
    return Tool.from_segments(segs)


class TestSoundness:
    @given(random_tool(), st.floats(0.0, 250.0), st.floats(0.01, 8.0))
    @settings(max_examples=80)
    def test_bounds_sound_and_ordered(self, tool, dist, r):
        lo, hi = tool_ica(tool, dist, r)
        thetas = np.linspace(0, np.pi, 1001)
        member = _membership(tool, dist, r, thetas)
        grid_tol = np.pi / 1000 * 1.01
        if lo >= 0:
            # everything clearly below lo must be contact
            assert member[thetas <= lo - grid_tol].all()
        # everything clearly above hi must be free
        assert not member[thetas >= hi + grid_tol].any()
        # ordering
        assert hi >= max(lo, 0.0) - 1e-12

    @given(random_tool(), st.floats(0.1, 250.0), st.floats(0.01, 8.0))
    @settings(max_examples=60)
    def test_hi_tight(self, tool, dist, r):
        """ica_hi equals the true supremum of the contact set (grid tol)."""
        _, hi = tool_ica(tool, dist, r)
        thetas = np.linspace(0, np.pi, 2001)
        member = _membership(tool, dist, r, thetas)
        if member.any():
            sup = thetas[np.nonzero(member)[0][-1]]
            assert hi == pytest.approx(sup, abs=np.pi / 2000 * 2)
        else:
            assert hi == pytest.approx(0.0, abs=np.pi / 2000 * 2)

    @given(random_tool(), st.floats(0.1, 250.0), st.floats(0.01, 8.0))
    @settings(max_examples=60)
    def test_lo_tight(self, tool, dist, r):
        """ica_lo is the end of the contact run containing theta = 0."""
        lo, _ = tool_ica(tool, dist, r)
        thetas = np.linspace(0, np.pi, 2001)
        member = _membership(tool, dist, r, thetas)
        if member[0]:
            run_end = thetas[np.argmin(member)] if not member.all() else np.pi
            assert lo == pytest.approx(run_end, abs=np.pi / 2000 * 2)
        else:
            assert lo == ACCESSIBLE_SENTINEL


class TestAnalyticCases:
    def test_thin_long_tool_arcsin(self):
        """For a near-line tool, ica_hi ~ arcsin((R + r)/d)."""
        t = Tool(np.array([0.0]), np.array([1000.0]), np.array([1e-6]))
        d, r = 50.0, 5.0
        lo, hi = tool_ica(t, d, r)
        assert hi == pytest.approx(np.arcsin(r / d), abs=1e-6)
        assert lo == pytest.approx(np.arcsin(r / d), abs=1e-6)

    def test_sphere_beyond_reach(self):
        """A voxel past the tool tip is accessible even at theta = 0."""
        t = ball_end_mill(radius=3.0, flute=20.0, shank=60.0)  # reach 80
        lo, hi = tool_ica(t, 100.0, 2.0)
        assert lo == ACCESSIBLE_SENTINEL
        assert hi == 0.0

    def test_sphere_swallowing_pivot(self):
        """dist = 0 with the tool starting at the pivot: always contact."""
        lo, hi = tool_ica(paper_tool(), 0.0, 1.0)
        assert lo == pytest.approx(np.pi)
        assert hi == pytest.approx(np.pi)

    def test_just_beyond_reach_touches_at_zero_only(self):
        """dist slightly past the tip but within r: contact near theta=0."""
        t = ball_end_mill(radius=3.0, flute=20.0, shank=60.0)
        lo, hi = tool_ica(t, 80.5, 1.0)  # within 1.0 of the z=80 cap
        assert lo > 0.0
        assert hi >= lo

    def test_monotone_in_radius(self):
        t = paper_tool()
        d = 40.0
        his = [tool_ica(t, d, r)[1] for r in (0.5, 1.0, 2.0, 4.0)]
        assert all(b >= a - 1e-12 for a, b in zip(his, his[1:]))

    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            tool_ica(paper_tool(), 10.0, -1.0)


class TestCosSpace:
    def test_cos_consistency(self):
        t = paper_tool()
        dist = np.array([10.0, 50.0, 120.0, 250.0])
        r = np.array([0.5, 1.0, 2.0, 4.0])
        lo_a, hi_a = ica_bounds_arrays(t.z0, t.z1, t.radius, dist, r)
        lo_c, hi_c = ica_bounds_cos(t.z0, t.z1, t.radius, dist, r)
        for i in range(4):
            if lo_a[i] == ACCESSIBLE_SENTINEL:
                assert lo_c[i] == COS_NEVER
            else:
                assert np.cos(lo_a[i]) == pytest.approx(lo_c[i], abs=1e-12)
            assert np.cos(hi_a[i]) == pytest.approx(hi_c[i], abs=1e-12)

    def test_chunking_invariance(self):
        t = paper_tool()
        rng = np.random.default_rng(0)
        dist = rng.uniform(0, 250, 500)
        r = rng.uniform(0.01, 5, 500)
        a = ica_bounds_cos(t.z0, t.z1, t.radius, dist, r, chunk=64)
        b = ica_bounds_cos(t.z0, t.z1, t.radius, dist, r, chunk=10**6)
        np.testing.assert_allclose(a[0], b[0], atol=0)
        np.testing.assert_allclose(a[1], b[1], atol=0)

    def test_broadcast_shapes(self):
        t = paper_tool()
        lo, hi = tool_ica_batch(t, np.ones((3, 4)) * 30.0, 1.0)
        assert lo.shape == (3, 4) and hi.shape == (3, 4)


class TestIntervals:
    def test_single_interval_simple(self):
        t = ball_end_mill()
        ivs = inaccessible_intervals(t, 30.0, 2.0)
        assert len(ivs) == 1
        assert ivs[0][0] == 0.0

    def test_intervals_match_bounds(self):
        t = paper_tool()
        for dist, r in ((15.0, 1.0), (60.0, 3.0), (150.0, 0.5)):
            ivs = inaccessible_intervals(t, dist, r)
            lo, hi = tool_ica(t, dist, r)
            if ivs:
                assert hi == pytest.approx(max(b for _, b in ivs), abs=1e-9)
                if ivs[0][0] <= 1e-12:
                    assert lo == pytest.approx(ivs[0][1], abs=1e-9)

    def test_disjoint_interval_structure(self):
        """A sphere just past the tip of a thin tool with a fat base can be
        reachable at theta=0 yet blocked at larger angles."""
        t = Tool.from_segments([(0.5, 30.0), (20.0, 30.0)])
        # dist beyond the thin tip reach but inside the fat segment's sweep
        ivs = inaccessible_intervals(t, 36.0, 1.0)
        lo, hi = tool_ica(t, 36.0, 1.0)
        assert hi > 0.0
        # theta=0 contact: tip at z=30..(cap at 30?) the thin segment ends at 30,
        # 36 is within 1.0? no -> depends; just require consistency:
        if ivs and ivs[0][0] > 1e-12:
            assert lo == ACCESSIBLE_SENTINEL
