"""``repro-serve`` / ``repro-loadgen`` command-line entry points.

Usage::

    repro-serve --port 8077 --workers 4          # start the query service
    repro-serve --table-dir /var/cache/repro-ica # warm-startable ICA tables
    REPRO_ACCESS_LOG=access.log repro-serve      # JSON access log to a file
    REPRO_ACCESS_LOG=0 repro-serve               # silence the access log

    repro-loadgen --url http://127.0.0.1:8077 \\
        --model head --resolution 32 --pivot 0 -30 5 \\
        -n 64 -c 8 --distinct 4 --grid 16 16 --json loadgen.json

The load generator replays ``-n`` queries from ``-c`` concurrent client
threads, cycling through ``--distinct`` pivot variants — so identical
requests land in flight together (exercising coalescing) and repeat
after completion (exercising the result cache).  It reports throughput,
latency percentiles, per-status-code counts (the first non-200
response body is kept verbatim for diagnosis), and per-query-class
cost percentiles (attributed CPU and queue-wait from each response's
cost ledger — the capacity-planning input for a sharding tier), and
``--json`` writes a
standard :mod:`repro.obs.report` run report, so serving performance is
gated by ``repro-bench compare`` and inspected by ``repro-obs diff``
exactly like bench runs.  ``--prometheus-check`` additionally scrapes
``/v1/metrics?format=prometheus`` after the run, validates the
exposition with :func:`repro.obs.expo.parse_prometheus`, and asserts it
agrees with the JSON snapshot — the end-to-end proof that a scraper
sees the same numbers the report pipeline does.

Exit codes: ``0`` success, ``1`` the load run saw failed requests (or
the Prometheus parity check failed), ``2`` usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

__all__ = ["main", "main_loadgen"]


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "loadgen":
        return main_loadgen(argv[1:])
    if argv and argv[0] == "serve":
        argv = argv[1:]
    return _main_serve(argv)


# ---------------------------------------------------------------------------
# repro-serve
# ---------------------------------------------------------------------------


def _main_serve(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve accessibility-map queries over JSON/HTTP "
        "(scene registry + request coalescing + result cache).",
        epilog="Use 'repro-loadgen' (or 'repro-serve loadgen') to load-test it.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8077, help="0 picks a free port")
    parser.add_argument(
        "--workers", default="1",
        help="worker processes per query (int or 'auto'; default 1 = serial)",
    )
    parser.add_argument(
        "--max-scenes", type=int, default=8,
        help="LRU bound on resident scenes (default 8)",
    )
    parser.add_argument(
        "--cache-entries", type=int, default=256,
        help="result-cache entry bound (default 256)",
    )
    parser.add_argument(
        "--cache-mb", type=float, default=256.0,
        help="result-cache byte bound in MiB (default 256)",
    )
    parser.add_argument(
        "--max-queue", type=int, default=32,
        help="dispatch-queue bound; beyond it requests get 503 (default 32)",
    )
    parser.add_argument(
        "--dispatch-threads", type=int, default=1,
        help="concurrent query computations (default 1: queries serialize, "
        "each parallelizing internally over --workers processes)",
    )
    parser.add_argument(
        "--table-dir", default=None,
        help="directory for persisted ICA tables (warm-start across restarts)",
    )
    args = parser.parse_args(argv)

    from repro.engine.pool import resolve_workers
    from repro.service.core import Service
    from repro.service.http import serve

    try:
        workers = resolve_workers(args.workers)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    service = Service(
        workers=workers,
        max_scenes=args.max_scenes,
        table_dir=args.table_dir,
        cache_entries=args.cache_entries,
        cache_bytes=int(args.cache_mb * 1024 * 1024),
        max_queue=args.max_queue,
        dispatch_threads=args.dispatch_threads,
    )
    server = serve(service, args.host, args.port)
    host, port = server.server_address[:2]
    from repro.obs.log import get_access_log

    log = get_access_log()
    log_dest = log.path or "stderr" if log.enabled else "off"
    print(
        f"repro-serve listening on http://{host}:{port} "
        f"(workers={workers}, access log: {log_dest})"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.shutdown()
        server.server_close()
        service.close()
    return 0


# ---------------------------------------------------------------------------
# repro-loadgen
# ---------------------------------------------------------------------------


def _http_json(url: str, body: dict | None = None, timeout: float = 300.0):
    """One JSON request; returns ``(status, payload, headers)``."""
    data = None if body is None else json.dumps(body).encode("utf-8")
    req = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8")), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        try:
            payload = json.loads(exc.read().decode("utf-8"))
        except Exception:
            payload = {"error": str(exc)}
        return exc.code, payload, dict(exc.headers or {})


def _http_text(url: str, timeout: float = 60.0) -> tuple[int, str]:
    """One raw-text GET (the Prometheus exposition is not JSON)."""
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.read().decode("utf-8")


def _prometheus_parity_problems(base: str) -> list[str]:
    """Scrape both encodings of ``/v1/metrics`` and compare them.

    Returns human-readable problems (empty = the exposition parses
    cleanly and agrees with the JSON snapshot; sliding-window gauges are
    checked for presence only, since each scrape recomputes them).
    """
    from repro.obs.expo import parse_prometheus, snapshot_parity_problems

    status, snapshot, _ = _http_json(f"{base}/v1/metrics")
    if status != 200:
        return [f"JSON metrics scrape failed ({status})"]
    status, text = _http_text(f"{base}/v1/metrics?format=prometheus")
    if status != 200:
        return [f"prometheus scrape failed ({status})"]
    try:
        families = parse_prometheus(text)
    except ValueError as exc:
        return [f"exposition does not parse: {exc}"]
    return snapshot_parity_problems(snapshot, families)


def _percentile(sorted_ms: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (ms)."""
    if not sorted_ms:
        return 0.0
    rank = max(1, int(-(-q * len(sorted_ms) // 1)))  # ceil(q * n)
    return sorted_ms[min(rank, len(sorted_ms)) - 1]


def _counter_value(metrics: dict, name: str) -> float:
    m = metrics.get(name, {})
    return float(m.get("value", 0) or 0) if m.get("type") == "counter" else 0.0


def main_loadgen(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-loadgen",
        description="Replay concurrent accessibility queries against a "
        "repro-serve instance and report throughput/latency percentiles.",
    )
    parser.add_argument("--url", required=True, help="base URL of a running repro-serve")
    scene = parser.add_argument_group("scene (register one, or reuse a digest)")
    scene.add_argument("--scene", default=None, help="existing scene digest to query")
    scene.add_argument(
        "--model", default=None,
        help="register a built-in model (head/candle_holder/turbine/teapot)",
    )
    scene.add_argument("--resolution", type=int, default=32)
    scene.add_argument(
        "--pivot", type=float, nargs=3, default=None, metavar=("X", "Y", "Z"),
        help="base pivot; required to vary pivots across --distinct variants",
    )
    scene.add_argument("--tool", default="paper", help="'paper', 'ball' (default paper)")
    load = parser.add_argument_group("load shape")
    load.add_argument("-n", "--requests", type=int, default=64)
    load.add_argument("-c", "--concurrency", type=int, default=8)
    load.add_argument(
        "--distinct", type=int, default=4,
        help="distinct query variants cycled through (duplicates coalesce/cache)",
    )
    load.add_argument("--grid", type=int, nargs=2, default=(16, 16), metavar=("M", "N"))
    load.add_argument("--method", default="AICA")
    load.add_argument("--workers", type=int, default=0, help="per-query workers (0 = server default)")
    load.add_argument("--retries", type=int, default=8, help="max retries per request on 503")
    parser.add_argument("--json", metavar="PATH", default=None, help="write a run report")
    parser.add_argument(
        "--prometheus-check", action="store_true",
        help="after the run, scrape /v1/metrics?format=prometheus, validate "
        "the exposition, and assert parity with the JSON snapshot",
    )
    args = parser.parse_args(argv)

    base = args.url.rstrip("/")
    if args.requests < 1 or args.concurrency < 1 or args.distinct < 1:
        print("requests, concurrency and distinct must be >= 1", file=sys.stderr)
        return 2

    # -- resolve the scene ------------------------------------------------
    pivot = list(args.pivot) if args.pivot is not None else None
    if args.scene is not None:
        digest = args.scene
    elif args.model is not None:
        if pivot is None:
            print("--model registration needs --pivot", file=sys.stderr)
            return 2
        status, payload, _ = _http_json(
            f"{base}/v1/scenes",
            {
                "model": args.model,
                "resolution": args.resolution,
                "tool": args.tool,
                "pivot": pivot,
            },
        )
        if status != 200:
            print(f"scene registration failed ({status}): {payload}", file=sys.stderr)
            return 2
        digest = payload["scene"]
        print(f"registered scene {digest[:16]}… ({payload['nodes']} nodes)")
    else:
        print("give --scene DIGEST or --model NAME", file=sys.stderr)
        return 2

    # -- build the distinct variants --------------------------------------
    if args.distinct > 1 and pivot is None:
        print("--distinct > 1 needs --pivot to derive variants", file=sys.stderr)
        return 2
    variants = []
    for i in range(args.distinct):
        spec = {
            "scene": digest,
            "grid": list(args.grid),
            "method": args.method,
            "include_map": False,
        }
        if args.workers:
            spec["workers"] = args.workers
        if i > 0:
            # Nudge the pivot along z: same scene, a genuinely distinct query.
            spec["pivot"] = [pivot[0], pivot[1], pivot[2] + 0.25 * i]
        variants.append(spec)

    # -- fire -------------------------------------------------------------
    status0, metrics0, _ = _http_json(f"{base}/v1/metrics")
    if status0 != 200:
        print(f"cannot read metrics ({status0})", file=sys.stderr)
        return 2

    latencies_ms: list[float] = []
    ok = 0
    errors = 0
    retries_used = 0
    status_counts: dict[int, int] = {}
    first_error: dict | None = None  # {"status": int, "body": str} of the first non-200
    # Per-query-class cost ledgers (class = variant index): each 200
    # response carries the request's attributed cost, the capacity-
    # planning signal a sharding tier sizes replicas by.
    class_costs: dict[int, list[dict]] = {i: [] for i in range(len(variants))}
    lock = threading.Lock()

    def one(i: int) -> None:
        nonlocal ok, errors, retries_used, first_error
        cls = i % len(variants)
        body = variants[cls]
        t0 = time.perf_counter()
        for attempt in range(args.retries + 1):
            status, payload, headers = _http_json(f"{base}/v1/cd", dict(body))
            if status == 503 and attempt < args.retries:
                with lock:
                    retries_used += 1
                    status_counts[503] = status_counts.get(503, 0) + 1
                time.sleep(float(payload.get("retry_after_s", 0.2)))
                continue
            break
        elapsed_ms = (time.perf_counter() - t0) * 1e3
        with lock:
            status_counts[status] = status_counts.get(status, 0) + 1
            if status == 200:
                ok += 1
                latencies_ms.append(elapsed_ms)
                cost = payload.get("cost")
                if isinstance(cost, dict):
                    class_costs[cls].append(cost)
            else:
                errors += 1
                if first_error is None:
                    first_error = {
                        "status": int(status),
                        "body": json.dumps(payload)[:500],
                    }

    wall0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=args.concurrency) as pool:
        list(pool.map(one, range(args.requests)))
    wall_s = time.perf_counter() - wall0

    _, metrics1, _ = _http_json(f"{base}/v1/metrics")
    hits = _counter_value(metrics1, "service.cache.hits") - _counter_value(
        metrics0, "service.cache.hits"
    )
    misses = _counter_value(metrics1, "service.cache.misses") - _counter_value(
        metrics0, "service.cache.misses"
    )
    coalesced = _counter_value(metrics1, "service.coalesced") - _counter_value(
        metrics0, "service.coalesced"
    )
    hit_rate = hits / (hits + misses) if hits + misses else 0.0

    latencies_ms.sort()
    p50 = _percentile(latencies_ms, 0.50)
    p95 = _percentile(latencies_ms, 0.95)
    p99 = _percentile(latencies_ms, 0.99)
    mean_ms = sum(latencies_ms) / len(latencies_ms) if latencies_ms else 0.0
    rps = ok / wall_s if wall_s > 0 else 0.0

    print(
        f"{ok}/{args.requests} ok ({errors} failed, {retries_used} retries) "
        f"in {wall_s:.2f}s = {rps:.1f} req/s"
    )
    print(f"latency ms: p50 {p50:.1f}  p95 {p95:.1f}  p99 {p99:.1f}  mean {mean_ms:.1f}")
    print(f"cache hit rate {hit_rate:.0%} ({hits:g} hits), {coalesced:g} coalesced")

    # -- per-class cost percentiles ---------------------------------------
    cost_rows: list[list] = []
    for cls in sorted(class_costs):
        ledgers = class_costs[cls]
        if not ledgers:
            continue
        cpu = sorted(c.get("cpu_ms", 0.0) for c in ledgers)
        queue = sorted(c.get("queue_wait_ms", 0.0) for c in ledgers)
        computed = sum(1 for c in ledgers if c.get("served") == "computed")
        cost_rows.append([
            cls, len(ledgers),
            round(_percentile(cpu, 0.50), 2), round(_percentile(cpu, 0.95), 2),
            round(_percentile(queue, 0.50), 2), round(_percentile(queue, 0.95), 2),
            computed,
        ])
    if cost_rows:
        print("cost per query class (attributed CPU / queue-wait ms):")
        print(
            f"  {'class':>5} {'n':>5} {'cpu p50':>9} {'cpu p95':>9} "
            f"{'queue p50':>10} {'queue p95':>10} {'computed':>9}"
        )
        for row in cost_rows:
            print(
                f"  {row[0]:>5} {row[1]:>5} {row[2]:>9.2f} {row[3]:>9.2f} "
                f"{row[4]:>10.2f} {row[5]:>10.2f} {row[6]:>9}"
            )
    print(
        "status codes: "
        + "  ".join(f"{code}×{n}" for code, n in sorted(status_counts.items()))
    )
    if first_error is not None:
        print(
            f"first error ({first_error['status']}): {first_error['body']}",
            file=sys.stderr,
        )

    if args.json is not None:
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.report import build_report

        reg = MetricsRegistry()
        reg.counter("loadgen.requests").inc(args.requests)
        reg.counter("loadgen.ok").inc(ok)
        reg.counter("loadgen.errors").inc(errors)
        reg.counter("loadgen.retries").inc(retries_used)
        reg.counter("loadgen.wall_s").inc(wall_s)
        reg.counter("loadgen.p50_ms").inc(p50)
        reg.counter("loadgen.p95_ms").inc(p95)
        reg.counter("loadgen.p99_ms").inc(p99)
        reg.counter("loadgen.mean_ms").inc(mean_ms)
        reg.counter("loadgen.cache_hits").inc(max(0.0, hits))
        reg.counter("loadgen.coalesced").inc(max(0.0, coalesced))
        # Per-status-code response counts (retried 503s included, so the
        # sum over codes is the number of responses seen, not -n).
        for code, count in sorted(status_counts.items()):
            reg.counter(f"loadgen.status.{code}").inc(count)
        reg.gauge("loadgen.rps").set(rps)
        reg.gauge("loadgen.cache_hit_rate").set(hit_rate)
        reg.histogram("loadgen.latency_ms").observe_many(latencies_ms or [0.0])
        all_costs = [c for ledgers in class_costs.values() for c in ledgers]
        if all_costs:
            reg.histogram("loadgen.cost.cpu_ms").observe_many(
                [c.get("cpu_ms", 0.0) for c in all_costs]
            )
            reg.histogram("loadgen.cost.queue_wait_ms").observe_many(
                [c.get("queue_wait_ms", 0.0) for c in all_costs]
            )
        report = build_report(
            "loadgen",
            metrics=reg,
            meta={
                "url": base,
                "scene": digest,
                "requests": args.requests,
                "concurrency": args.concurrency,
                "distinct": args.distinct,
                "grid": list(args.grid),
                "method": args.method,
                "workers": args.workers,
                "status_counts": {str(k): v for k, v in sorted(status_counts.items())},
                "first_error": first_error,
            },
            results=[{
                "exp_id": "loadgen",
                "title": "Serving throughput and latency",
                "headers": [
                    "requests", "ok", "errors", "rps",
                    "p50_ms", "p95_ms", "p99_ms", "cache_hit_rate",
                ],
                "rows": [[
                    args.requests, ok, errors, round(rps, 2),
                    round(p50, 2), round(p95, 2), round(p99, 2), round(hit_rate, 4),
                ]],
            }] + ([{
                "exp_id": "loadgen.cost",
                "title": "Attributed cost percentiles per query class",
                "headers": [
                    "class", "n", "cpu_p50_ms", "cpu_p95_ms",
                    "queue_p50_ms", "queue_p95_ms", "computed",
                ],
                "rows": cost_rows,
            }] if cost_rows else []),
        )
        try:
            report.save(args.json)
        except OSError as exc:
            print(f"cannot write report: {exc}", file=sys.stderr)
            return 2
        print(f"[report written to {args.json}]")

    parity_failed = False
    if args.prometheus_check:
        problems = _prometheus_parity_problems(base)
        if problems:
            parity_failed = True
            print(f"prometheus parity check FAILED ({len(problems)}):", file=sys.stderr)
            for problem in problems[:20]:
                print(f"  {problem}", file=sys.stderr)
        else:
            print("prometheus parity check OK")

    return 1 if errors or parity_failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
