"""Dense voxelization of implicit solids and triangle meshes.

Two producers feed the octree:

* :func:`voxelize_sdf` — center-sampled occupancy of an implicit solid
  on a ``k^3`` grid.  This is the reference the octree's adaptive
  construction must agree with leaf-for-leaf.
* :func:`voxelize_mesh` — solid voxelization of a closed triangle mesh
  by parity ray casting along z columns, exercising the mesh-input path
  a CAM system (SculptPrint loads STL) would take.

Both are vectorized and chunked so memory stays proportional to a few
grid slabs, not the whole grid.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.aabb import AABB
from repro.solids.sdf import SDF

__all__ = ["grid_centers", "voxelize_sdf", "voxelize_mesh"]


def grid_centers(domain: AABB, resolution: int, axis_slices: slice | None = None) -> np.ndarray:
    """Cell-center coordinates of a ``resolution^3`` grid over ``domain``.

    Returns shape ``(nz, ny, nx, 3)`` (z-major so slabs are contiguous);
    ``axis_slices`` optionally restricts the z range for chunked work.
    """
    cell = domain.size / resolution
    coords = [domain.lo[a] + (np.arange(resolution) + 0.5) * cell[a] for a in range(3)]
    zs = coords[2] if axis_slices is None else coords[2][axis_slices]
    Z, Y, X = np.meshgrid(zs, coords[1], coords[0], indexing="ij")
    return np.stack([X, Y, Z], axis=-1)


def voxelize_sdf(sdf: SDF, domain: AABB, resolution: int, *, slab: int = 16) -> np.ndarray:
    """Center-sampled boolean occupancy grid, shape ``(z, y, x)``.

    A voxel is solid iff the solid's implicit value at the voxel center is
    ``<= 0`` — the same convention the adaptive octree build uses at leaf
    level, so the two representations agree exactly.
    """
    out = np.empty((resolution, resolution, resolution), dtype=bool)
    for z0 in range(0, resolution, slab):
        zsl = slice(z0, min(z0 + slab, resolution))
        pts = grid_centers(domain, resolution, zsl)
        out[zsl] = sdf.contains(pts)
    return out


def voxelize_mesh(
    vertices: np.ndarray,
    faces: np.ndarray,
    domain: AABB,
    resolution: int,
    *,
    column_chunk: int = 4096,
) -> np.ndarray:
    """Solid voxelization of a closed mesh by z-column parity counting.

    For each (x, y) column of voxel centers, count how many triangles the
    upward ray from below the domain crosses before each center; odd
    parity means inside.  To make the parity robust against rays passing
    exactly through shared mesh edges or vertices (symmetric models place
    vertices exactly on cell-center planes), every ray is offset inside
    its cell by a fixed irrational sub-cell amount — a deterministic
    symbolic perturbation.  Voxel assignment is unchanged; only the
    (ambiguous) strictly-boundary voxels can differ from center sampling.

    Returns a ``(z, y, x)`` boolean grid like :func:`voxelize_sdf`.
    """
    vertices = np.asarray(vertices, dtype=np.float64)
    faces = np.asarray(faces, dtype=np.intp)
    if faces.ndim != 2 or faces.shape[1] != 3:
        raise ValueError("faces must be (n, 3) vertex indices")

    res = resolution
    cell = domain.size / res
    # Irrational in-cell ray offsets (the symbolic perturbation).
    jx = cell[0] * 0.25 * (np.sqrt(2.0) - 1.0)
    jy = cell[1] * 0.25 * (np.sqrt(3.0) - 1.0)
    xs = domain.lo[0] + (np.arange(res) + 0.5) * cell[0] + jx
    ys = domain.lo[1] + (np.arange(res) + 0.5) * cell[1] + jy
    zs = domain.lo[2] + (np.arange(res) + 0.5) * cell[2]

    tri = vertices[faces]  # (T, 3, 3)
    # Precompute per-triangle plane z = f(x, y) data.
    a, b, c = tri[:, 0], tri[:, 1], tri[:, 2]

    out = np.zeros((res, res, res), dtype=bool)
    cols_x, cols_y = np.meshgrid(xs, ys, indexing="xy")  # (res_y, res_x)
    flat_x = cols_x.ravel()
    flat_y = cols_y.ravel()

    for start in range(0, flat_x.size, column_chunk):
        sl = slice(start, min(start + column_chunk, flat_x.size))
        px = flat_x[sl][:, None]  # (Q, 1)
        py = flat_y[sl][:, None]

        # 2D edge functions in the xy plane (half-open top-left rule via
        # strict/non-strict asymmetry on the sign test).
        d1 = (b[None, :, 0] - a[None, :, 0]) * (py - a[None, :, 1]) - (
            b[None, :, 1] - a[None, :, 1]
        ) * (px - a[None, :, 0])
        d2 = (c[None, :, 0] - b[None, :, 0]) * (py - b[None, :, 1]) - (
            c[None, :, 1] - b[None, :, 1]
        ) * (px - b[None, :, 0])
        d3 = (a[None, :, 0] - c[None, :, 0]) * (py - c[None, :, 1]) - (
            a[None, :, 1] - c[None, :, 1]
        ) * (px - c[None, :, 0])
        inside = ((d1 > 0) & (d2 > 0) & (d3 > 0)) | ((d1 <= 0) & (d2 <= 0) & (d3 <= 0))
        # Skip triangles degenerate in projection (vertical walls):
        area2 = (b[None, :, 0] - a[None, :, 0]) * (c[None, :, 1] - a[None, :, 1]) - (
            b[None, :, 1] - a[None, :, 1]
        ) * (c[None, :, 0] - a[None, :, 0])
        inside &= area2 != 0.0

        # Interpolated z of each (column, triangle) hit.
        with np.errstate(divide="ignore", invalid="ignore"):
            w1 = d2 / area2
            w2 = d3 / area2
            w3 = d1 / area2
            zhit = np.where(
                inside,
                w1 * a[None, :, 2] + w2 * b[None, :, 2] + w3 * c[None, :, 2],
                np.inf,
            )

        # Parity below each voxel center: crossings with zhit < z_center.
        zhit_sorted = np.sort(zhit, axis=1)
        idx = np.apply_along_axis(np.searchsorted, 1, zhit_sorted, zs)
        col_inside = (idx % 2).astype(bool)  # (Q, res_z)

        flat_idx = np.arange(start, start + px.shape[0])
        yy, xx = np.unravel_index(flat_idx, (res, res))
        out[:, yy, xx] = col_inside.T
    return out
