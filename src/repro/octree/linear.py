"""Linear (level-array) adaptive octree.

Storage model
-------------
The octree covers a cubic ``domain``; level ``l`` tiles it into
``(2^l)^3`` cells.  Only *non-empty* cells are stored: a cell is

* ``STATUS_FULL`` — entirely solid; a terminal node (no children stored;
  a traversal hitting it at an intersecting orientation reports a
  collision immediately, the early-out of Algorithm 2);
* ``STATUS_MIXED`` — partially solid; its non-empty children are stored
  on the next level.

Empty cells are absent, which is how the adaptive octree prunes work:
a traversal simply never generates them.

Each level keeps its cells sorted by Morton code, so the children of a
node with code ``c`` are the contiguous run of codes in ``[8c, 8c+8)``
on the next level; ``child_start``/``child_count`` memoize that run.

The total stored node count (root + interior + leaves) is the paper's
``N`` (Table 1 "#voxels in octree").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.aabb import AABB
from repro.octree.morton import morton_decode

__all__ = ["STATUS_MIXED", "STATUS_FULL", "OctreeLevel", "LinearOctree"]

STATUS_MIXED = np.uint8(1)
STATUS_FULL = np.uint8(2)


@dataclass
class OctreeLevel:
    """One level of the linear octree (sorted by Morton code)."""

    codes: np.ndarray  # (n,) uint64, strictly increasing
    status: np.ndarray  # (n,) uint8 in {STATUS_MIXED, STATUS_FULL}
    child_start: np.ndarray  # (n,) intp index into the next level (-1 if none)
    child_count: np.ndarray  # (n,) int8 number of stored children (0..8)

    def __post_init__(self) -> None:
        n = len(self.codes)
        if not (len(self.status) == len(self.child_start) == len(self.child_count) == n):
            raise ValueError("level arrays must have equal length")
        if n > 1 and not np.all(self.codes[1:] > self.codes[:-1]):
            raise ValueError("level codes must be strictly increasing")

    @property
    def n(self) -> int:
        return len(self.codes)


class LinearOctree:
    """Adaptive octree over a cubic domain at leaf depth ``depth``.

    ``levels[l]`` holds the stored cells of level ``l`` for
    ``l = 0 .. depth``; the effective leaf resolution is ``2^depth`` cells
    per edge.
    """

    def __init__(
        self, domain: AABB, depth: int, levels: list[OctreeLevel], *, linked: bool = False
    ):
        size = domain.size
        if not np.allclose(size, size[0]):
            raise ValueError("octree domain must be cubic")
        if depth < 0:
            raise ValueError("depth must be non-negative")
        if len(levels) != depth + 1:
            raise ValueError(f"expected {depth + 1} levels, got {len(levels)}")
        self.domain = domain
        self.depth = int(depth)
        self.levels = levels
        # ``linked=True`` promises child_start/child_count are already
        # correct (e.g. views attached to another process's shared
        # memory, which may be read-only) and skips recomputing them.
        if not linked:
            self._link_children()

    # -- construction helpers -------------------------------------------

    def _link_children(self) -> None:
        """(Re)compute child_start/child_count from the sorted code arrays."""
        for l in range(self.depth + 1):
            lev = self.levels[l]
            if l == self.depth or lev.n == 0:
                lev.child_start = np.full(lev.n, -1, dtype=np.intp)
                lev.child_count = np.zeros(lev.n, dtype=np.int8)
                continue
            nxt = self.levels[l + 1]
            lo = np.searchsorted(nxt.codes, lev.codes << np.uint64(3))
            hi = np.searchsorted(nxt.codes, (lev.codes << np.uint64(3)) + np.uint64(8))
            lev.child_start = np.where(hi > lo, lo, -1).astype(np.intp)
            lev.child_count = (hi - lo).astype(np.int8)
            mixed_no_children = (lev.status == STATUS_MIXED) & (lev.child_count == 0)
            if np.any(mixed_no_children):
                raise ValueError(
                    f"level {l}: {int(mixed_no_children.sum())} MIXED nodes have no children"
                )

    # -- geometry --------------------------------------------------------

    @property
    def resolution(self) -> int:
        """Effective leaf resolution per edge (the paper's ``k`` in ``k^3``)."""
        return 1 << self.depth

    def cell_size(self, level: int) -> float:
        """Edge length of a level-``level`` cell."""
        return float(self.domain.size[0]) / (1 << level)

    def cell_half(self, level: int) -> float:
        return 0.5 * self.cell_size(level)

    def centers(self, level: int, index=None) -> np.ndarray:
        """World centers of stored cells at ``level`` (optionally a subset)."""
        codes = self.levels[level].codes if index is None else self.levels[level].codes[index]
        return self.centers_of_codes(level, codes)

    def centers_of_codes(self, level: int, codes: np.ndarray) -> np.ndarray:
        """World centers of arbitrary level-``level`` cell codes."""
        i, j, k = morton_decode(codes)
        cs = self.cell_size(level)
        ijk = np.stack([i, j, k], axis=-1).astype(np.float64)
        return self.domain.lo + (ijk + 0.5) * cs

    def cell_box(self, level: int, index: int) -> AABB:
        """The AABB of one stored cell (scalar convenience for tests)."""
        center = self.centers(level, np.asarray([index]))[0]
        return AABB.cube(center, self.cell_half(level))

    # -- statistics -------------------------------------------------------

    @property
    def total_nodes(self) -> int:
        """Stored node count — the paper's ``N`` (root + interior + leaves)."""
        return int(sum(lev.n for lev in self.levels))

    def level_counts(self) -> list[int]:
        return [lev.n for lev in self.levels]

    def count_status(self, status: np.uint8) -> int:
        return int(sum(int((lev.status == status).sum()) for lev in self.levels))

    def solid_volume(self) -> float:
        """Exact solid volume represented by the octree (sum of FULL cells)."""
        vol = 0.0
        for l, lev in enumerate(self.levels):
            n_full = int((lev.status == STATUS_FULL).sum())
            vol += n_full * self.cell_size(l) ** 3
        return vol

    # -- queries -----------------------------------------------------------

    def leaf_occupancy(self) -> np.ndarray:
        """Materialize the dense ``(k, k, k)`` boolean grid (z, y, x order).

        Expands coarse FULL nodes to their leaf footprint.  Intended for
        tests and small trees — memory is ``k^3`` bytes.
        """
        k = self.resolution
        grid = np.zeros((k, k, k), dtype=bool)
        for l, lev in enumerate(self.levels):
            full = lev.status == STATUS_FULL
            if not full.any():
                continue
            i, j, kk = morton_decode(lev.codes[full])
            scale = 1 << (self.depth - l)
            for ii, jj, zz in zip(i * scale, j * scale, kk * scale):
                grid[zz : zz + scale, jj : jj + scale, ii : ii + scale] = True
        return grid

    def contains_points(self, points) -> np.ndarray:
        """Vectorized solid membership of world points (leaf-resolution).

        Points outside the domain are reported as empty.  Membership is
        evaluated by descending the stored tree level by level.
        """
        p = np.asarray(points, dtype=np.float64)
        flat = p.reshape(-1, 3)
        out = np.zeros(len(flat), dtype=bool)
        inside = np.all((flat >= self.domain.lo) & (flat <= self.domain.hi), axis=-1)
        idx = np.nonzero(inside)[0]
        for l in range(self.depth + 1):
            if idx.size == 0:
                break
            lev = self.levels[l]
            if lev.n == 0:
                break
            cs = self.cell_size(l)
            ijk = np.clip(
                ((flat[idx] - self.domain.lo) / cs).astype(np.int64), 0, (1 << l) - 1
            )
            from repro.octree.morton import morton_encode

            codes = morton_encode(ijk[:, 0], ijk[:, 1], ijk[:, 2])
            pos = np.searchsorted(lev.codes, codes)
            found = (pos < lev.n) & (lev.codes[np.minimum(pos, lev.n - 1)] == codes)
            st = np.zeros(len(idx), dtype=np.uint8)
            st[found] = lev.status[np.minimum(pos, lev.n - 1)[found]]
            out[idx[st == STATUS_FULL]] = True
            idx = idx[st == STATUS_MIXED]
        return out.reshape(p.shape[:-1])
