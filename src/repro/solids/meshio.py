"""Triangle-mesh file I/O (OBJ and ASCII STL).

CAM pipelines exchange geometry as mesh files; SculptPrint ingests STL.
These are deliberately dependency-free, minimal, and lossless for the
`(vertices, faces)` arrays produced by :mod:`repro.solids.mesh`, so the
examples can export what they build and the mesh voxelizer can be fed
from disk.
"""

from __future__ import annotations

import numpy as np

__all__ = ["save_obj", "load_obj", "save_stl", "mesh_bounds"]


def _validate(vertices: np.ndarray, faces: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    vertices = np.asarray(vertices, dtype=np.float64)
    faces = np.asarray(faces, dtype=np.intp)
    if vertices.ndim != 2 or vertices.shape[1] != 3:
        raise ValueError("vertices must be (n, 3)")
    if faces.ndim != 2 or faces.shape[1] != 3:
        raise ValueError("faces must be (m, 3)")
    if len(faces) and (faces.min() < 0 or faces.max() >= len(vertices)):
        raise ValueError("face indices out of range")
    return vertices, faces


def save_obj(path, vertices: np.ndarray, faces: np.ndarray) -> None:
    """Write a Wavefront OBJ file (1-based face indices, full precision)."""
    vertices, faces = _validate(vertices, faces)
    with open(path, "w") as f:
        f.write("# exported by repro (AICA reproduction)\n")
        for v in vertices:
            f.write(f"v {v[0]:.17g} {v[1]:.17g} {v[2]:.17g}\n")
        for tri in faces:
            f.write(f"f {tri[0] + 1} {tri[1] + 1} {tri[2] + 1}\n")


def load_obj(path) -> tuple[np.ndarray, np.ndarray]:
    """Read the triangle subset of OBJ: ``v`` and triangular ``f`` records.

    Face entries may carry texture/normal slots (``f 1/2/3 ...``); only
    the vertex index is used.  Non-triangle faces are fan-triangulated.
    """
    verts: list[list[float]] = []
    faces: list[list[int]] = []
    with open(path) as f:
        for line in f:
            parts = line.split()
            if not parts:
                continue
            if parts[0] == "v":
                verts.append([float(x) for x in parts[1:4]])
            elif parts[0] == "f":
                idx = [int(p.split("/")[0]) - 1 for p in parts[1:]]
                for k in range(1, len(idx) - 1):
                    faces.append([idx[0], idx[k], idx[k + 1]])
    return (
        np.asarray(verts, dtype=np.float64).reshape(-1, 3),
        np.asarray(faces, dtype=np.intp).reshape(-1, 3),
    )


def save_stl(path, vertices: np.ndarray, faces: np.ndarray, *, name: str = "repro") -> None:
    """Write an ASCII STL file (facet normals recomputed from geometry)."""
    vertices, faces = _validate(vertices, faces)
    tri = vertices[faces] if len(faces) else np.zeros((0, 3, 3))
    n = np.cross(tri[:, 1] - tri[:, 0], tri[:, 2] - tri[:, 0]) if len(faces) else tri[:, 0]
    lens = np.linalg.norm(n, axis=1, keepdims=True) if len(faces) else None
    if len(faces):
        n = np.where(lens > 0, n / np.maximum(lens, 1e-300), 0.0)
    with open(path, "w") as f:
        f.write(f"solid {name}\n")
        for i in range(len(faces)):
            f.write(f"  facet normal {n[i, 0]:.9g} {n[i, 1]:.9g} {n[i, 2]:.9g}\n")
            f.write("    outer loop\n")
            for v in tri[i]:
                f.write(f"      vertex {v[0]:.9g} {v[1]:.9g} {v[2]:.9g}\n")
            f.write("    endloop\n")
            f.write("  endfacet\n")
        f.write(f"endsolid {name}\n")


def mesh_bounds(vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(lo, hi) corner coordinates of a vertex array."""
    vertices = np.asarray(vertices, dtype=np.float64)
    if vertices.size == 0:
        return np.zeros(3), np.zeros(3)
    return vertices.min(axis=0), vertices.max(axis=0)
