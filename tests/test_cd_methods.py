"""The five CD methods: exactness, agreement, and counter semantics.

The central claim — AICA/MICA/PICA are *exact* accelerations, not
approximations — is tested two ways: all five methods must produce
bit-identical accessibility maps on every scene, and the map itself must
match an independent brute-force ground truth computed directly from the
leaf voxels.
"""

import numpy as np
import pytest

from repro.cd import AICA, MICA, PBox, PBoxOpt, PICA, Scene, method_by_name, run_cd
from repro.cd.traversal import TraversalConfig
from repro.geometry.aabb import AABB
from repro.geometry.batch import tool_aabb_batch
from repro.geometry.orientation import OrientationGrid
from repro.octree.build import build_from_sdf, expand_top
from repro.octree.linear import STATUS_FULL
from repro.solids.sdf import BoxSDF, SphereSDF, Union
from repro.tool.tool import ball_end_mill, paper_tool

ALL_METHODS = (PBox, PBoxOpt, PICA, MICA, AICA)


from repro.cd.verify import brute_force_map  # library ground truth


@pytest.fixture(scope="module")
def scenes():
    """A few structurally different small scenes."""
    out = []
    dom = AABB((-30, -30, -30), (30, 30, 30))
    sphere = expand_top(build_from_sdf(SphereSDF((0, 0, 0), 15.0), dom, 16), 3)
    out.append(("sphere-pole", Scene(sphere, paper_tool(), np.array([0.0, 0.0, 16.0]))))
    out.append(("sphere-side", Scene(sphere, ball_end_mill(), np.array([18.0, 3.0, 0.0]))))
    two = expand_top(
        build_from_sdf(
            Union(SphereSDF((-10, 0, 0), 8.0), BoxSDF((12, 0, 0), (5, 5, 5))), dom, 16
        ),
        3,
    )
    out.append(("two-bodies", Scene(two, paper_tool(), np.array([0.0, 0.0, 10.0]))))
    return out


class TestMethodAgreement:
    @pytest.mark.parametrize("grid_size", [6, 10])
    def test_all_methods_identical(self, scenes, grid_size):
        grid = OrientationGrid.square(grid_size)
        for name, scene in scenes:
            maps = {}
            for cls in ALL_METHODS:
                maps[cls.name] = run_cd(scene, grid, cls()).collides
            ref = maps["PBox"]
            for mname, m in maps.items():
                assert np.array_equal(m, ref), f"{mname} diverged on scene {name}"

    def test_matches_brute_force(self, scenes):
        grid = OrientationGrid.square(8)
        for name, scene in scenes:
            got = run_cd(scene, grid, AICA()).collides
            exp = brute_force_map(scene, grid)
            assert np.array_equal(got, exp), f"AICA vs brute force on {name}"

    def test_head_scene_agreement(self, head_scene):
        grid = OrientationGrid.square(8)
        ref = run_cd(head_scene, grid, PBoxOpt()).collides
        for cls in (PICA, MICA, AICA):
            assert np.array_equal(run_cd(head_scene, grid, cls()).collides, ref)


class TestMethodSemantics:
    def test_pointing_into_solid_collides(self, sphere_scene):
        grid = OrientationGrid.square(16)
        r = run_cd(sphere_scene, grid, AICA())
        am = r.accessibility_map
        # pivot above the pole: downward (phi ~ pi) rows must be blocked
        assert not am[-1].any()
        # some upward orientations are free
        assert am[0].all()

    def test_empty_tree_all_accessible(self):
        dom = AABB((-10, -10, -10), (10, 10, 10))
        tree = build_from_sdf(SphereSDF((100, 100, 100), 1.0), dom, 8)
        scene = Scene(tree, paper_tool(), np.zeros(3))
        r = run_cd(scene, OrientationGrid.square(4), AICA())
        assert r.n_colliding == 0
        assert r.counters.total_checks == 0

    def test_pivot_inside_solid_all_collide(self):
        dom = AABB((-10, -10, -10), (10, 10, 10))
        tree = expand_top(build_from_sdf(SphereSDF((0, 0, 0), 6.0), dom, 16), 3)
        scene = Scene(tree, paper_tool(), np.zeros(3))
        r = run_cd(scene, OrientationGrid.square(4), PBox())
        assert r.n_colliding == r.grid.size

    def test_method_by_name(self):
        assert method_by_name("aica").name == "AICA"
        assert method_by_name("PBox").name == "PBox"
        with pytest.raises(KeyError):
            method_by_name("nope")


class TestCounters:
    def test_pbox_counts_only_box_checks(self, sphere_scene):
        r = run_cd(sphere_scene, OrientationGrid.square(6), PBox())
        c = r.counters
        assert c.box_checks.sum() > 0
        assert c.ica_fly_checks.sum() == 0
        assert c.ica_memo_checks.sum() == 0
        assert c.cull_checks.sum() == 0
        assert (c.box_checks == c.nodes_visited).all()

    def test_pboxopt_culls(self, sphere_scene):
        r = run_cd(sphere_scene, OrientationGrid.square(6), PBoxOpt())
        c = r.counters
        assert (c.cull_checks == c.nodes_visited).all()
        assert c.box_checks.sum() < c.cull_checks.sum()

    def test_pica_all_fly(self, sphere_scene):
        r = run_cd(sphere_scene, OrientationGrid.square(6), PICA())
        c = r.counters
        assert c.ica_memo_checks.sum() == 0
        assert c.ica_fly_checks.sum() > 0
        assert c.box_checks.sum() == c.corner_cases.sum()

    def test_mica_mostly_memo(self, sphere_scene):
        r = run_cd(sphere_scene, OrientationGrid.square(6), MICA())
        c = r.counters
        assert c.ica_memo_checks.sum() > 0
        assert r.table_entries > 0

    def test_aica_fewer_box_checks_than_mica(self, head_scene):
        """AICA's corner expansion trades box checks for extra node visits
        (Fig 15: box share drops sharply, visited checks increase)."""
        grid = OrientationGrid.square(8)
        rm = run_cd(head_scene, grid, MICA())
        ra = run_cd(head_scene, grid, AICA())
        assert ra.counters.total_box_checks < rm.counters.total_box_checks
        assert (
            ra.counters.nodes_visited.sum() >= rm.counters.nodes_visited.sum()
        )

    def test_ica_efficiency_high(self, head_scene):
        r = run_cd(head_scene, OrientationGrid.square(8), AICA())
        assert r.counters.ica_efficiency() > 0.98

    def test_simulated_ordering(self, head_scene):
        """The paper's Fig 16 ordering on simulated time."""
        grid = OrientationGrid.square(8)
        times = {
            cls.name: run_cd(head_scene, grid, cls()).timing.total_s
            for cls in ALL_METHODS
        }
        assert times["AICA"] <= times["MICA"] * 1.001
        assert times["MICA"] < times["PICA"]
        assert times["PICA"] < times["PBoxOpt"]
        assert times["PBoxOpt"] < times["PBox"]


class TestResultObject:
    def test_summary_fields(self, sphere_scene):
        r = run_cd(sphere_scene, OrientationGrid.square(4), AICA())
        s = r.summary()
        for key in (
            "method",
            "total_checks",
            "box_checks",
            "ica_efficiency",
            "sim_total_ms",
            "wall_ms",
        ):
            assert key in s
        assert s["method"] == "AICA"

    def test_accessibility_map_shape(self, sphere_scene):
        g = OrientationGrid(3, 5)
        r = run_cd(sphere_scene, g, MICA())
        assert r.accessibility_map.shape == (3, 5)
        assert r.n_accessible + r.n_colliding == 15

    def test_render_ascii(self, sphere_scene):
        r = run_cd(sphere_scene, OrientationGrid.square(4), AICA())
        text = r.render_ascii()
        assert len(text.splitlines()) == 4
        assert set(text) <= {".", "#", "\n"}


class TestTraversalConfig:
    def test_thread_block_invariance(self, sphere_scene):
        grid = OrientationGrid.square(8)
        a = run_cd(sphere_scene, grid, AICA(), config=TraversalConfig(thread_block=7))
        b = run_cd(sphere_scene, grid, AICA(), config=TraversalConfig(thread_block=4096))
        np.testing.assert_array_equal(a.collides, b.collides)
        np.testing.assert_array_equal(
            a.counters.nodes_visited, b.counters.nodes_visited
        )

    def test_start_level_invariance_of_map(self, head_scene):
        grid = OrientationGrid.square(6)
        maps = [
            run_cd(head_scene, grid, MICA(), config=TraversalConfig(start_level=s)).collides
            for s in (0, 2, 5)
        ]
        assert np.array_equal(maps[0], maps[1])
        assert np.array_equal(maps[0], maps[2])

    def test_memo_levels_invariance_of_map(self, head_scene):
        grid = OrientationGrid.square(6)
        maps = [
            run_cd(head_scene, grid, AICA(), config=TraversalConfig(memo_levels=s)).collides
            for s in (2, 4, 8)
        ]
        assert np.array_equal(maps[0], maps[1])
        assert np.array_equal(maps[0], maps[2])

    def test_memo_levels_shift_fly_to_memo(self, head_scene):
        grid = OrientationGrid.square(6)
        shallow = run_cd(
            head_scene, grid, MICA(), config=TraversalConfig(memo_levels=2)
        ).counters
        deep = run_cd(
            head_scene, grid, MICA(), config=TraversalConfig(memo_levels=8)
        ).counters
        assert deep.ica_memo_checks.sum() > shallow.ica_memo_checks.sum()
        assert deep.ica_fly_checks.sum() < shallow.ica_fly_checks.sum()
