"""Prometheus text exposition for the metrics registry.

``GET /v1/metrics`` has always answered JSON — fine for ``repro-obs
diff`` and the loadgen report pipeline, unreadable to every scraper in
existence.  This module renders the same snapshot in the Prometheus
text exposition format (version 0.0.4), so a stock Prometheus (or
anything speaking its format) can scrape a live ``repro-serve``:

* the renderer is a pure function of :meth:`MetricsRegistry.as_dict`
  output, so the exposition *cannot* drift from the JSON snapshot — the
  two views are one snapshot, two encodings;
* dotted repro names sanitize to Prometheus names (``service.cache.hits``
  → ``service_cache_hits_total``; counters get the conventional
  ``_total`` suffix), with the original name preserved in ``# HELP``;
* histograms render the standard ``_bucket``/``_sum``/``_count``
  triple.  The registry's power-of-two buckets (bucket ``i`` counts
  ``[2^(i-1), 2^i)``, bucket 0 is ``[0, 1)``) map to cumulative
  ``le="1"``, ``le="2"``, ``le="4"`` … ``le="+Inf"`` bounds — the bucket
  *shape* is preserved exactly; only the half-open/closed boundary
  convention differs, which no quantile consumer can observe;
* gauges whose value is unset (``None``) or non-numeric are skipped —
  Prometheus has no encoding for them.

The module also ships a small :func:`parse_prometheus` — enough of the
format to round-trip what the renderer emits — and
:func:`snapshot_parity_problems`, the checker CI and
``repro-loadgen --prometheus-check`` use to assert that a live scrape
agrees with the JSON snapshot taken next to it.
"""

from __future__ import annotations

import math
import re

__all__ = [
    "CONTENT_TYPE",
    "prometheus_name",
    "escape_label_value",
    "escape_help",
    "render_prometheus",
    "parse_prometheus",
    "snapshot_parity_problems",
]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_VALID_START = re.compile(r"[a-zA-Z_:]")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+\d+)?$"  # optional timestamp, ignored
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def prometheus_name(name: str, kind: str = "gauge") -> str:
    """Sanitize a dotted repro metric name to a Prometheus metric name.

    Invalid characters become ``_``; a leading digit gets a ``_``
    prefix; counters gain the conventional ``_total`` suffix (unless
    already present).
    """
    out = _INVALID_CHARS.sub("_", name)
    if not out or not _VALID_START.match(out[0]):
        out = "_" + out
    if kind == "counter" and not out.endswith("_total"):
        out += "_total"
    return out


def escape_label_value(value: str) -> str:
    """Escape a label value: backslash, double quote, newline."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def escape_help(text: str) -> str:
    """Escape ``# HELP`` text: backslash and newline only (no quotes)."""
    return str(text).replace("\\", r"\\").replace("\n", r"\n")


def _format_value(value) -> str:
    """Render a sample value: ints exact, floats via repr, inf/nan named."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _is_numeric(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def bucket_upper_bounds(n_buckets: int) -> list[float]:
    """``le`` bounds for the registry's power-of-two buckets: bucket 0
    (``[0, 1)``) → 1, bucket i (``[2^(i-1), 2^i)``) → ``2^i``."""
    return [float(2 ** i) if i else 1.0 for i in range(n_buckets)]


def render_prometheus(metrics, *, include_help: bool = True) -> str:
    """Render a registry (or its :meth:`as_dict` snapshot) as exposition text.

    ``metrics`` is either a :class:`~repro.obs.metrics.MetricsRegistry`
    or the dict its ``as_dict()`` returns.  Families are emitted in
    sorted source-name order; the trailing newline is included (the
    format requires the last line to be terminated).
    """
    snapshot = metrics.as_dict() if hasattr(metrics, "as_dict") else metrics
    lines: list[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry.get("type")
        if kind == "counter":
            value = entry.get("value", 0)
            if not _is_numeric(value):
                continue
            pname = prometheus_name(name, "counter")
            if include_help:
                lines.append(f"# HELP {pname} repro metric {escape_help(name)}")
            lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname} {_format_value(value)}")
        elif kind == "gauge":
            value = entry.get("value")
            if not _is_numeric(value):
                continue  # unset or non-numeric gauge: nothing to expose
            pname = prometheus_name(name, "gauge")
            if include_help:
                lines.append(f"# HELP {pname} repro metric {escape_help(name)}")
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_format_value(value)}")
        elif kind == "histogram":
            pname = prometheus_name(name, "histogram")
            count = int(entry.get("count", 0))
            total = float(entry.get("sum", 0.0))
            buckets = list(entry.get("buckets", ()))
            if include_help:
                lines.append(f"# HELP {pname} repro metric {escape_help(name)}")
            lines.append(f"# TYPE {pname} histogram")
            cumulative = 0
            for upper, bucket_count in zip(bucket_upper_bounds(len(buckets)), buckets):
                cumulative += int(bucket_count)
                le = escape_label_value(_format_value(upper))
                lines.append(f'{pname}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f'{pname}_bucket{{le="+Inf"}} {count}')
            lines.append(f"{pname}_sum {_format_value(total)}")
            lines.append(f"{pname}_count {count}")
        # unknown types are skipped: exposition is best-effort by design
    return "\n".join(lines) + "\n" if lines else ""


# ---------------------------------------------------------------------------
# parsing — just enough of the format to validate what we emit
# ---------------------------------------------------------------------------


def _unescape_label_value(value: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def parse_prometheus(text: str) -> dict:
    """Parse exposition text into families.

    Returns ``{family_name: {"type": str | None, "help": str | None,
    "samples": [(sample_name, labels_dict, value), ...]}}``, where
    ``family_name`` strips the ``_bucket``/``_sum``/``_count`` suffixes
    of histogram samples.  Raises :class:`ValueError` on a malformed
    line — this is a validator first, a parser second.
    """
    families: dict[str, dict] = {}

    def family(name: str) -> dict:
        return families.setdefault(name, {"type": None, "help": None, "samples": []})

    declared: dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                family(parts[2])["type"] = parts[3]
                declared[parts[2]] = parts[3]
            elif len(parts) >= 3 and parts[1] == "HELP":
                family(parts[2])["help"] = parts[3] if len(parts) > 3 else ""
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {raw!r}")
        name = match.group("name")
        labels: dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            consumed = 0
            for lm in _LABEL.finditer(raw_labels):
                labels[lm.group(1)] = _unescape_label_value(lm.group(2))
                consumed = lm.end()
            leftover = raw_labels[consumed:].strip(" ,")
            if leftover:
                raise ValueError(f"line {lineno}: malformed labels {raw_labels!r}")
        value = _parse_value(match.group("value"))
        fam_name = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and declared.get(base) == "histogram":
                fam_name = base
                break
        family(fam_name)["samples"].append((name, labels, value))
    return families


# ---------------------------------------------------------------------------
# parity — does a live scrape agree with the JSON snapshot next to it?
# ---------------------------------------------------------------------------


def _sample_value(fam: dict, sample_name: str, labels: dict | None = None):
    for name, lab, value in fam["samples"]:
        if name == sample_name and (labels is None or lab == labels):
            return value
    return None


def snapshot_parity_problems(
    snapshot: dict,
    families: dict,
    *,
    volatile_prefixes: tuple[str, ...] = ("service.window.",),
    rel_tol: float = 1e-9,
) -> list[str]:
    """Compare a JSON metrics snapshot against parsed exposition families.

    Returns a list of human-readable problems (empty = parity).  Metrics
    whose names start with one of ``volatile_prefixes`` are only checked
    for *presence* — they are recomputed per scrape (the sliding-window
    gauges), so two scrapes legitimately disagree on their values.
    """
    problems: list[str] = []

    def close(a: float, b: float) -> bool:
        return math.isclose(float(a), float(b), rel_tol=rel_tol, abs_tol=1e-9)

    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry.get("type")
        volatile = name.startswith(volatile_prefixes)
        if kind == "counter":
            pname = prometheus_name(name, "counter")
            fam = families.get(pname)
            if fam is None:
                problems.append(f"{name}: counter family {pname} missing")
                continue
            value = _sample_value(fam, pname, {})
            if value is None:
                problems.append(f"{name}: no sample {pname}")
            elif not volatile and not close(value, entry.get("value", 0)):
                problems.append(
                    f"{name}: counter {value} != snapshot {entry.get('value')}"
                )
        elif kind == "gauge":
            if not _is_numeric(entry.get("value")):
                continue  # never exposed; nothing to check
            pname = prometheus_name(name, "gauge")
            fam = families.get(pname)
            if fam is None:
                problems.append(f"{name}: gauge family {pname} missing")
                continue
            value = _sample_value(fam, pname, {})
            if value is None:
                problems.append(f"{name}: no sample {pname}")
            elif not volatile and not close(value, entry["value"]):
                problems.append(f"{name}: gauge {value} != snapshot {entry['value']}")
        elif kind == "histogram":
            pname = prometheus_name(name, "histogram")
            fam = families.get(pname)
            if fam is None:
                problems.append(f"{name}: histogram family {pname} missing")
                continue
            count = _sample_value(fam, f"{pname}_count", {})
            total = _sample_value(fam, f"{pname}_sum", {})
            inf = _sample_value(fam, f"{pname}_bucket", {"le": "+Inf"})
            if count is None or total is None or inf is None:
                problems.append(f"{name}: incomplete histogram samples")
                continue
            if inf != count:
                problems.append(f"{name}: +Inf bucket {inf} != count {count}")
            if not volatile:
                if not close(count, entry.get("count", 0)):
                    problems.append(
                        f"{name}: count {count} != snapshot {entry.get('count')}"
                    )
                if not close(total, entry.get("sum", 0.0)):
                    problems.append(
                        f"{name}: sum {total} != snapshot {entry.get('sum')}"
                    )
            # bucket samples must be cumulative (non-decreasing by le)
            buckets = sorted(
                (
                    (lab["le"], value)
                    for sample, lab, value in fam["samples"]
                    if sample == f"{pname}_bucket"
                ),
                key=lambda pair: math.inf if pair[0] == "+Inf" else float(pair[0]),
            )
            last = -math.inf
            for le, value in buckets:
                if value < last:
                    problems.append(f"{name}: bucket le={le} not cumulative")
                last = value
    return problems
