"""``repro-serve`` / ``repro-router`` / ``repro-loadgen`` entry points.

Usage::

    repro-serve --port 8077 --workers 4          # start one query replica
    repro-serve --table-dir /var/cache/repro-ica # warm-startable ICA tables
    REPRO_ACCESS_LOG=access.log repro-serve      # JSON access log to a file
    REPRO_ACCESS_LOG=0 repro-serve               # silence the access log

    repro-router --port 8070 \\
        --replica http://127.0.0.1:8077 \\
        --replica http://127.0.0.1:8078           # shard scenes across replicas

    repro-loadgen --url http://127.0.0.1:8077 \\
        --model head --resolution 32 --pivot 0 -30 5 \\
        -n 64 -c 8 --distinct 4 --grid 16 16 --json loadgen.json

The load generator replays ``-n`` queries from ``-c`` concurrent client
threads, cycling through ``--distinct`` pivot variants — so identical
requests land in flight together (exercising coalescing) and repeat
after completion (exercising the result cache).  ``503`` rejections are
retried honoring the ``Retry-After`` *header* (falling back to the JSON
body's ``retry_after_s``), with jitter, bounded by ``--retries`` and a
total per-request ``--retry-budget-s``; every request ends in exactly
one **disposition** (``ok`` / ``ok_retried`` / ``rejected`` /
``unreachable`` / ``timeout`` / ``http_error``) counted in the report.
It reports throughput, latency percentiles, per-status-code counts (the
first non-200 response body is kept verbatim for diagnosis), and
per-query-class cost percentiles, and ``--json`` writes a standard
:mod:`repro.obs.report` run report, so serving performance is gated by
``repro-bench compare`` and inspected by ``repro-obs diff`` exactly
like bench runs.

Against a ``repro-router``, add ``--cluster``: the run is preceded and
followed by scrapes of the router's ``/v1/ring`` and of every replica's
own metrics, and the report gains a per-replica breakdown (health
state, routed requests/errors, replica-side served tiers) plus the
router's hedge/failover/re-registration counters — one aggregate
report for the whole fleet.

``--prometheus-check`` additionally scrapes
``/v1/metrics?format=prometheus`` after the run, validates the
exposition with :func:`repro.obs.expo.parse_prometheus`, and asserts it
agrees with the JSON snapshot.

Exit codes: ``0`` success, ``1`` the load run saw failed requests (or
the Prometheus parity check failed), ``2`` usage errors.
"""

from __future__ import annotations

import argparse
import json
import random
import signal
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.service.wire import (
    ServiceTimeout,
    TransportError,
    http_json,
    http_text,
    retry_after_from,
)

__all__ = ["main", "main_router", "main_loadgen"]


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "loadgen":
        return main_loadgen(argv[1:])
    if argv and argv[0] == "router":
        return main_router(argv[1:])
    if argv and argv[0] == "serve":
        argv = argv[1:]
    return _main_serve(argv)


# ---------------------------------------------------------------------------
# repro-serve
# ---------------------------------------------------------------------------


def _main_serve(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve accessibility-map queries over JSON/HTTP "
        "(scene registry + request coalescing + result cache).",
        epilog="Use 'repro-loadgen' (or 'repro-serve loadgen') to load-test it, "
        "'repro-router' to shard scenes across several instances.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8077, help="0 picks a free port")
    parser.add_argument(
        "--workers", default="1",
        help="worker processes per query (int or 'auto'; default 1 = serial)",
    )
    parser.add_argument(
        "--max-scenes", type=int, default=8,
        help="LRU bound on resident scenes (default 8)",
    )
    parser.add_argument(
        "--cache-entries", type=int, default=256,
        help="result-cache entry bound (default 256)",
    )
    parser.add_argument(
        "--cache-mb", type=float, default=256.0,
        help="result-cache byte bound in MiB (default 256)",
    )
    parser.add_argument(
        "--max-queue", type=int, default=32,
        help="dispatch-queue bound; beyond it requests get 503 (default 32)",
    )
    parser.add_argument(
        "--dispatch-threads", type=int, default=1,
        help="concurrent query computations (default 1: queries serialize, "
        "each parallelizing internally over --workers processes)",
    )
    parser.add_argument(
        "--table-dir", default=None,
        help="directory for persisted ICA tables (warm-start across restarts)",
    )
    args = parser.parse_args(argv)

    from repro.engine.pool import resolve_workers
    from repro.service.core import Service
    from repro.service.http import serve

    try:
        workers = resolve_workers(args.workers)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    service = Service(
        workers=workers,
        max_scenes=args.max_scenes,
        table_dir=args.table_dir,
        cache_entries=args.cache_entries,
        cache_bytes=int(args.cache_mb * 1024 * 1024),
        max_queue=args.max_queue,
        dispatch_threads=args.dispatch_threads,
    )
    server = serve(service, args.host, args.port)
    host, port = server.server_address[:2]
    from repro.obs.log import get_access_log

    log = get_access_log()
    log_dest = log.path or "stderr" if log.enabled else "off"
    print(
        f"repro-serve listening on http://{host}:{port} "
        f"(workers={workers}, access log: {log_dest})"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.shutdown()
        server.server_close()
        service.close()
    return 0


# ---------------------------------------------------------------------------
# repro-router
# ---------------------------------------------------------------------------


def main_router(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-router",
        description="Route /v1/scenes and /v1/cd across repro-serve replicas "
        "by consistent-hashed scene digest, with health tracking, 503 "
        "retries, request hedging, and failover re-registration.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8070, help="0 picks a free port")
    parser.add_argument(
        "--replica", action="append", default=[], metavar="URL",
        help="a repro-serve base URL (repeatable)",
    )
    parser.add_argument(
        "--replicas", default=None, metavar="URL,URL,...",
        help="comma-separated replica list (alternative to repeated --replica)",
    )
    parser.add_argument(
        "--vnodes", type=int, default=64,
        help="virtual nodes per replica on the hash ring (default 64)",
    )
    parser.add_argument(
        "--hedge-after-ms", type=float, default=250.0,
        help="hedge a still-unanswered /v1/cd to the next ring replica "
        "after this many ms (default 250)",
    )
    parser.add_argument(
        "--retry-budget-s", type=float, default=5.0,
        help="total time the router may spend retrying 503s per request "
        "(default 5)",
    )
    parser.add_argument(
        "--probe-interval-s", type=float, default=2.0,
        help="health-probe period for live replicas (default 2)",
    )
    parser.add_argument(
        "--down-after", type=int, default=3,
        help="consecutive failures before a replica is DOWN (default 3)",
    )
    parser.add_argument(
        "--up-after", type=int, default=2,
        help="consecutive successes before a DOWN replica is HEALTHY again "
        "(default 2)",
    )
    parser.add_argument("--name", default=None, help="router identity header value")
    parser.add_argument(
        "--trace-export", metavar="PATH", default=None,
        help="on shutdown, write the router's recorded spans as OTLP-JSON "
        "(requires REPRO_TRACE=1)",
    )
    args = parser.parse_args(argv)

    replicas = [r for r in args.replica]
    if args.replicas:
        replicas.extend(r.strip() for r in args.replicas.split(",") if r.strip())
    if not replicas:
        print("give at least one --replica URL", file=sys.stderr)
        return 2

    from repro.cluster.router import ClusterRouter, serve_router

    try:
        router = ClusterRouter(
            replicas,
            vnodes=args.vnodes,
            hedge_after_s=args.hedge_after_ms / 1e3,
            retry_budget_s=args.retry_budget_s,
            probe_interval_s=args.probe_interval_s,
            down_after=args.down_after,
            up_after=args.up_after,
            name=args.name,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    server = serve_router(router, args.host, args.port)
    host, port = server.server_address[:2]
    print(
        f"repro-router listening on http://{host}:{port} "
        f"({len(replicas)} replicas, vnodes={args.vnodes}, "
        f"hedge after {args.hedge_after_ms:g}ms)"
    )
    router.start()

    def _sigterm(signum, frame):  # make `kill` unwind like ^C: flush + export
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _sigterm)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.shutdown()
        server.server_close()
        router.close()
        if args.trace_export:
            from repro.obs.otlp import otlp_json
            from repro.obs.trace import get_tracer

            tracer = get_tracer()
            if tracer.enabled and tracer.records:
                with open(args.trace_export, "w") as fh:
                    fh.write(otlp_json(tracer, service_name="repro-router"))
                print(
                    f"[{len(tracer.records)} router spans exported "
                    f"to {args.trace_export}]"
                )
            else:
                print(
                    "no spans to export (set REPRO_TRACE=1 to record them)",
                    file=sys.stderr,
                )
    return 0


# ---------------------------------------------------------------------------
# repro-loadgen
# ---------------------------------------------------------------------------


def _prometheus_parity_problems(base: str) -> list[str]:
    """Scrape both encodings of ``/v1/metrics`` and compare them.

    Returns human-readable problems (empty = the exposition parses
    cleanly and agrees with the JSON snapshot; sliding-window gauges are
    checked for presence only, since each scrape recomputes them).
    """
    from repro.obs.expo import parse_prometheus, snapshot_parity_problems

    status, snapshot, _ = http_json(f"{base}/v1/metrics")
    if status != 200:
        return [f"JSON metrics scrape failed ({status})"]
    status, text = http_text(f"{base}/v1/metrics?format=prometheus")
    if status != 200:
        return [f"prometheus scrape failed ({status})"]
    try:
        families = parse_prometheus(text)
    except ValueError as exc:
        return [f"exposition does not parse: {exc}"]
    return snapshot_parity_problems(snapshot, families)


def _percentile(sorted_ms: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (ms)."""
    if not sorted_ms:
        return 0.0
    rank = max(1, int(-(-q * len(sorted_ms) // 1)))  # ceil(q * n)
    return sorted_ms[min(rank, len(sorted_ms)) - 1]


def _counter_value(metrics: dict, name: str) -> float:
    m = metrics.get(name, {})
    return float(m.get("value", 0) or 0) if m.get("type") == "counter" else 0.0


def _counter_delta(before: dict, after: dict, name: str) -> float:
    return _counter_value(after, name) - _counter_value(before, name)


def _scrape_cluster(base: str):
    """The router's ring view plus each replica's own metrics snapshot.

    Returns ``(ring, {replica: metrics or None})``; replica scrape
    failures are tolerated (a dead replica is part of what the report
    should show, not a reason to lose the report).
    """
    status, ring, _ = http_json(f"{base}/v1/ring", timeout=30.0)
    if status != 200:
        raise TransportError(base, f"/v1/ring answered {status} (not a repro-router?)")
    per_replica = {}
    for replica in ring.get("replicas", []):
        try:
            r_status, snapshot, _ = http_json(f"{replica}/v1/metrics", timeout=30.0)
            per_replica[replica] = snapshot if r_status == 200 else None
        except TransportError:
            per_replica[replica] = None
    return ring, per_replica


def main_loadgen(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-loadgen",
        description="Replay concurrent accessibility queries against a "
        "repro-serve instance (or a repro-router with --cluster) and report "
        "throughput/latency percentiles.",
    )
    parser.add_argument("--url", required=True, help="base URL of a running repro-serve")
    scene = parser.add_argument_group("scene (register one, or reuse a digest)")
    scene.add_argument("--scene", default=None, help="existing scene digest to query")
    scene.add_argument(
        "--model", default=None,
        help="register a built-in model (head/candle_holder/turbine/teapot)",
    )
    scene.add_argument("--resolution", type=int, default=32)
    scene.add_argument(
        "--pivot", type=float, nargs=3, default=None, metavar=("X", "Y", "Z"),
        help="base pivot; required to vary pivots across --distinct variants",
    )
    scene.add_argument("--tool", default="paper", help="'paper', 'ball' (default paper)")
    load = parser.add_argument_group("load shape")
    load.add_argument("-n", "--requests", type=int, default=64)
    load.add_argument("-c", "--concurrency", type=int, default=8)
    load.add_argument(
        "--distinct", type=int, default=4,
        help="distinct query variants cycled through (duplicates coalesce/cache)",
    )
    load.add_argument("--grid", type=int, nargs=2, default=(16, 16), metavar=("M", "N"))
    load.add_argument("--method", default="AICA")
    load.add_argument("--workers", type=int, default=0, help="per-query workers (0 = server default)")
    load.add_argument("--retries", type=int, default=8, help="max retries per request on 503")
    load.add_argument(
        "--retry-budget-s", type=float, default=30.0,
        help="cap on total retry backoff per request (default 30)",
    )
    load.add_argument(
        "--timeout-s", type=float, default=300.0,
        help="per-attempt HTTP timeout (default 300)",
    )
    parser.add_argument(
        "--cluster", action="store_true",
        help="the URL is a repro-router: scrape /v1/ring and every replica's "
        "metrics, and add a per-replica breakdown to the report",
    )
    parser.add_argument("--json", metavar="PATH", default=None, help="write a run report")
    parser.add_argument(
        "--prometheus-check", action="store_true",
        help="after the run, scrape /v1/metrics?format=prometheus, validate "
        "the exposition, and assert parity with the JSON snapshot",
    )
    args = parser.parse_args(argv)

    base = args.url.rstrip("/")
    if args.requests < 1 or args.concurrency < 1 or args.distinct < 1:
        print("requests, concurrency and distinct must be >= 1", file=sys.stderr)
        return 2

    # -- resolve the scene ------------------------------------------------
    pivot = list(args.pivot) if args.pivot is not None else None
    if args.scene is not None:
        digest = args.scene
    elif args.model is not None:
        if pivot is None:
            print("--model registration needs --pivot", file=sys.stderr)
            return 2
        try:
            status, payload, _ = http_json(
                f"{base}/v1/scenes",
                {
                    "model": args.model,
                    "resolution": args.resolution,
                    "tool": args.tool,
                    "pivot": pivot,
                },
                timeout=args.timeout_s,
            )
        except TransportError as exc:
            print(f"scene registration failed: {exc}", file=sys.stderr)
            return 2
        if status != 200:
            print(f"scene registration failed ({status}): {payload}", file=sys.stderr)
            return 2
        digest = payload["scene"]
        print(f"registered scene {digest[:16]}… ({payload['nodes']} nodes)")
        if args.cluster and isinstance(payload.get("cluster"), dict):
            print(
                f"  owner {payload['cluster']['owner']} "
                f"(on {len(payload['cluster']['registered_on'])} replica(s))"
            )
    else:
        print("give --scene DIGEST or --model NAME", file=sys.stderr)
        return 2

    # -- build the distinct variants --------------------------------------
    if args.distinct > 1 and pivot is None:
        print("--distinct > 1 needs --pivot to derive variants", file=sys.stderr)
        return 2
    variants = []
    for i in range(args.distinct):
        spec = {
            "scene": digest,
            "grid": list(args.grid),
            "method": args.method,
            "include_map": False,
        }
        if args.workers:
            spec["workers"] = args.workers
        if i > 0:
            # Nudge the pivot along z: same scene, a genuinely distinct query.
            spec["pivot"] = [pivot[0], pivot[1], pivot[2] + 0.25 * i]
        variants.append(spec)

    # -- fire -------------------------------------------------------------
    try:
        status0, metrics0, _ = http_json(f"{base}/v1/metrics", timeout=30.0)
    except TransportError as exc:
        print(f"cannot read metrics: {exc}", file=sys.stderr)
        return 2
    if status0 != 200:
        print(f"cannot read metrics ({status0})", file=sys.stderr)
        return 2
    cluster0 = None
    if args.cluster:
        try:
            cluster0 = _scrape_cluster(base)
        except TransportError as exc:
            print(f"--cluster scrape failed: {exc}", file=sys.stderr)
            return 2

    latencies_ms: list[float] = []
    ok = 0
    errors = 0
    retries_used = 0
    status_counts: dict[int, int] = {}
    dispositions: dict[str, int] = {}
    first_error: dict | None = None  # {"status": int|None, "body": str} of the first failure
    # Per-query-class cost ledgers (class = variant index): each 200
    # response carries the request's attributed cost, the capacity-
    # planning signal a sharding tier sizes replicas by.
    class_costs: dict[int, list[dict]] = {i: [] for i in range(len(variants))}
    lock = threading.Lock()
    rng = random.Random()

    def one(i: int) -> None:
        nonlocal ok, errors, retries_used, first_error
        cls = i % len(variants)
        body = variants[cls]
        t0 = time.perf_counter()
        budget_end = t0 + args.retry_budget_s
        status: int | None = None
        payload: dict = {}
        disposition = "ok"
        attempts = 0
        while True:
            attempts += 1
            try:
                status, payload, headers = http_json(
                    f"{base}/v1/cd", dict(body), timeout=args.timeout_s
                )
            except ServiceTimeout as exc:
                status, payload, disposition = None, {"error": str(exc)}, "timeout"
                break
            except TransportError as exc:
                status, payload, disposition = None, {"error": str(exc)}, "unreachable"
                break
            if status == 503 and attempts <= args.retries:
                # Honor the Retry-After header (body retry_after_s as the
                # fallback), jittered so retries from -c concurrent
                # clients don't re-converge on the same instant.
                delay = retry_after_from(headers, payload)
                delay += rng.uniform(0.0, 0.25 * delay + 0.01)
                if time.perf_counter() + delay > budget_end:
                    disposition = "rejected"
                    break
                with lock:
                    retries_used += 1
                    status_counts[503] = status_counts.get(503, 0) + 1
                time.sleep(delay)
                continue
            break
        elapsed_ms = (time.perf_counter() - t0) * 1e3
        with lock:
            if status is not None:
                status_counts[status] = status_counts.get(status, 0) + 1
            if status == 200:
                ok += 1
                if disposition == "ok" and attempts > 1:
                    disposition = "ok_retried"
                latencies_ms.append(elapsed_ms)
                cost = payload.get("cost")
                if isinstance(cost, dict):
                    class_costs[cls].append(cost)
            else:
                errors += 1
                if disposition == "ok":
                    disposition = "rejected" if status == 503 else "http_error"
                if first_error is None:
                    first_error = {
                        "status": None if status is None else int(status),
                        "body": json.dumps(payload)[:500],
                    }
            dispositions[disposition] = dispositions.get(disposition, 0) + 1

    wall0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=args.concurrency) as pool:
        list(pool.map(one, range(args.requests)))
    wall_s = time.perf_counter() - wall0

    _, metrics1, _ = http_json(f"{base}/v1/metrics", timeout=30.0)
    hits = _counter_delta(metrics0, metrics1, "service.cache.hits")
    misses = _counter_delta(metrics0, metrics1, "service.cache.misses")
    coalesced = _counter_delta(metrics0, metrics1, "service.coalesced")
    hit_rate = hits / (hits + misses) if hits + misses else 0.0

    latencies_ms.sort()
    p50 = _percentile(latencies_ms, 0.50)
    p95 = _percentile(latencies_ms, 0.95)
    p99 = _percentile(latencies_ms, 0.99)
    mean_ms = sum(latencies_ms) / len(latencies_ms) if latencies_ms else 0.0
    rps = ok / wall_s if wall_s > 0 else 0.0

    print(
        f"{ok}/{args.requests} ok ({errors} failed, {retries_used} retries) "
        f"in {wall_s:.2f}s = {rps:.1f} req/s"
    )
    print(f"latency ms: p50 {p50:.1f}  p95 {p95:.1f}  p99 {p99:.1f}  mean {mean_ms:.1f}")
    print(f"cache hit rate {hit_rate:.0%} ({hits:g} hits), {coalesced:g} coalesced")
    print(
        "dispositions: "
        + "  ".join(f"{d}×{n}" for d, n in sorted(dispositions.items()))
    )

    # -- per-class cost percentiles ---------------------------------------
    cost_rows: list[list] = []
    for cls in sorted(class_costs):
        ledgers = class_costs[cls]
        if not ledgers:
            continue
        cpu = sorted(c.get("cpu_ms", 0.0) for c in ledgers)
        queue = sorted(c.get("queue_wait_ms", 0.0) for c in ledgers)
        computed = sum(1 for c in ledgers if c.get("served") == "computed")
        cost_rows.append([
            cls, len(ledgers),
            round(_percentile(cpu, 0.50), 2), round(_percentile(cpu, 0.95), 2),
            round(_percentile(queue, 0.50), 2), round(_percentile(queue, 0.95), 2),
            computed,
        ])
    if cost_rows:
        print("cost per query class (attributed CPU / queue-wait ms):")
        print(
            f"  {'class':>5} {'n':>5} {'cpu p50':>9} {'cpu p95':>9} "
            f"{'queue p50':>10} {'queue p95':>10} {'computed':>9}"
        )
        for row in cost_rows:
            print(
                f"  {row[0]:>5} {row[1]:>5} {row[2]:>9.2f} {row[3]:>9.2f} "
                f"{row[4]:>10.2f} {row[5]:>10.2f} {row[6]:>9}"
            )
    print(
        "status codes: "
        + "  ".join(f"{code}×{n}" for code, n in sorted(status_counts.items()))
    )
    if first_error is not None:
        print(
            f"first error ({first_error['status']}): {first_error['body']}",
            file=sys.stderr,
        )

    # -- per-replica cluster breakdown ------------------------------------
    cluster_rows: list[list] = []
    cluster_meta: dict | None = None
    if args.cluster and cluster0 is not None:
        ring0, replicas0 = cluster0
        try:
            ring1, replicas1 = _scrape_cluster(base)
        except TransportError as exc:
            print(f"--cluster post-run scrape failed: {exc}", file=sys.stderr)
            ring1, replicas1 = ring0, {r: None for r in replicas0}
        from repro.cluster.health import replica_label

        for replica in ring1.get("replicas", []):
            label = replica_label(replica)
            routed = _counter_delta(
                metrics0, metrics1, f"cluster.replica.{label}.requests"
            )
            routed_errors = _counter_delta(
                metrics0, metrics1, f"cluster.replica.{label}.errors"
            )
            before, after = replicas0.get(replica), replicas1.get(replica)
            if before is not None and after is not None:
                served = _counter_delta(before, after, "service.requests")
                computed = _counter_delta(before, after, "service.requests.computed")
                r_hits = _counter_delta(before, after, "service.cache.hits")
            else:
                served = computed = r_hits = -1  # replica unreadable (e.g. killed)
            cluster_rows.append([
                replica,
                ring1.get("health", {}).get(replica, "?"),
                int(routed), int(routed_errors),
                int(served), int(computed), int(r_hits),
            ])
        cluster_meta = {
            "router": ring1.get("router"),
            "replicas": ring1.get("replicas", []),
            "vnodes": ring1.get("vnodes"),
            "health": ring1.get("health", {}),
            "hedge_fired": _counter_delta(metrics0, metrics1, "cluster.hedge.fired"),
            "hedge_wins": _counter_delta(metrics0, metrics1, "cluster.hedge.wins"),
            "failover": _counter_delta(metrics0, metrics1, "cluster.failover"),
            "retry_503": _counter_delta(metrics0, metrics1, "cluster.retry.503"),
            "reregistered": _counter_delta(
                metrics0, metrics1, "cluster.reregistered"
            ),
        }
        print("cluster: per-replica breakdown (routed by router / served by replica):")
        print(
            f"  {'replica':<28} {'state':>9} {'routed':>7} {'errors':>7} "
            f"{'served':>7} {'computed':>9} {'hits':>6}"
        )
        for row in cluster_rows:
            print(
                f"  {row[0]:<28} {row[1]:>9} {row[2]:>7} {row[3]:>7} "
                f"{row[4]:>7} {row[5]:>9} {row[6]:>6}"
            )
        print(
            f"cluster: {cluster_meta['hedge_fired']:g} hedges "
            f"({cluster_meta['hedge_wins']:g} won), "
            f"{cluster_meta['failover']:g} failovers, "
            f"{cluster_meta['retry_503']:g} 503-retries, "
            f"{cluster_meta['reregistered']:g} re-registrations"
        )

    if args.json is not None:
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.report import build_report

        reg = MetricsRegistry()
        reg.counter("loadgen.requests").inc(args.requests)
        reg.counter("loadgen.ok").inc(ok)
        reg.counter("loadgen.errors").inc(errors)
        reg.counter("loadgen.retries").inc(retries_used)
        reg.counter("loadgen.wall_s").inc(wall_s)
        reg.counter("loadgen.p50_ms").inc(p50)
        reg.counter("loadgen.p95_ms").inc(p95)
        reg.counter("loadgen.p99_ms").inc(p99)
        reg.counter("loadgen.mean_ms").inc(mean_ms)
        reg.counter("loadgen.cache_hits").inc(max(0.0, hits))
        reg.counter("loadgen.coalesced").inc(max(0.0, coalesced))
        # Per-status-code response counts (retried 503s included, so the
        # sum over codes is the number of responses seen, not -n).
        for code, count in sorted(status_counts.items()):
            reg.counter(f"loadgen.status.{code}").inc(count)
        # One disposition per request: these sum to exactly -n.
        for disposition, count in sorted(dispositions.items()):
            reg.counter(f"loadgen.disposition.{disposition}").inc(count)
        if cluster_meta is not None:
            for key in ("hedge_fired", "hedge_wins", "failover",
                        "retry_503", "reregistered"):
                reg.counter(f"loadgen.cluster.{key}").inc(
                    max(0.0, cluster_meta[key])
                )
        reg.gauge("loadgen.rps").set(rps)
        reg.gauge("loadgen.cache_hit_rate").set(hit_rate)
        reg.histogram("loadgen.latency_ms").observe_many(latencies_ms or [0.0])
        all_costs = [c for ledgers in class_costs.values() for c in ledgers]
        if all_costs:
            reg.histogram("loadgen.cost.cpu_ms").observe_many(
                [c.get("cpu_ms", 0.0) for c in all_costs]
            )
            reg.histogram("loadgen.cost.queue_wait_ms").observe_many(
                [c.get("queue_wait_ms", 0.0) for c in all_costs]
            )
        report = build_report(
            "loadgen",
            metrics=reg,
            meta={
                "url": base,
                "scene": digest,
                "requests": args.requests,
                "concurrency": args.concurrency,
                "distinct": args.distinct,
                "grid": list(args.grid),
                "method": args.method,
                "workers": args.workers,
                "status_counts": {str(k): v for k, v in sorted(status_counts.items())},
                "dispositions": dict(sorted(dispositions.items())),
                "first_error": first_error,
                "cluster": cluster_meta,
            },
            results=[{
                "exp_id": "loadgen",
                "title": "Serving throughput and latency",
                "headers": [
                    "requests", "ok", "errors", "rps",
                    "p50_ms", "p95_ms", "p99_ms", "cache_hit_rate",
                ],
                "rows": [[
                    args.requests, ok, errors, round(rps, 2),
                    round(p50, 2), round(p95, 2), round(p99, 2), round(hit_rate, 4),
                ]],
            }] + ([{
                "exp_id": "loadgen.cost",
                "title": "Attributed cost percentiles per query class",
                "headers": [
                    "class", "n", "cpu_p50_ms", "cpu_p95_ms",
                    "queue_p50_ms", "queue_p95_ms", "computed",
                ],
                "rows": cost_rows,
            }] if cost_rows else []) + ([{
                "exp_id": "loadgen.cluster",
                "title": "Per-replica breakdown (routed by router, served by replica)",
                "headers": [
                    "replica", "state", "routed", "routed_errors",
                    "served", "computed", "cache_hits",
                ],
                "rows": cluster_rows,
            }] if cluster_rows else []),
        )
        try:
            report.save(args.json)
        except OSError as exc:
            print(f"cannot write report: {exc}", file=sys.stderr)
            return 2
        print(f"[report written to {args.json}]")

    parity_failed = False
    if args.prometheus_check:
        problems = _prometheus_parity_problems(base)
        if problems:
            parity_failed = True
            print(f"prometheus parity check FAILED ({len(problems)}):", file=sys.stderr)
            for problem in problems[:20]:
                print(f"  {problem}", file=sys.stderr)
        else:
            print("prometheus parity check OK")

    return 1 if errors or parity_failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
