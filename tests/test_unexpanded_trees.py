"""CD methods on *unexpanded* trees (virtual base cells in play).

The bench workloads always apply `expand_top`, so these tests cover the
other supported configuration: running directly on a raw adaptive tree,
where FULL nodes above the start level enter the frontier as virtual
cells (no table entries, on-the-fly cone bounds) — the code path that
regressed once during development.
"""

import numpy as np
import pytest

from repro.cd import AICA, MICA, PBox, PICA, Scene, run_cd
from repro.cd.verify import brute_force_map
from repro.geometry.aabb import AABB
from repro.geometry.orientation import OrientationGrid
from repro.octree.build import build_from_sdf, expand_top
from repro.solids.sdf import BoxSDF, SphereSDF, Union
from repro.tool.tool import paper_tool

DOMAIN = AABB((-20, -20, -20), (20, 20, 20))


@pytest.fixture(scope="module")
def chunky_tree():
    """A solid with large uniform regions -> FULL nodes at coarse levels."""
    solid = Union(BoxSDF((0, 0, -5), (10.0, 10.0, 5.0)), SphereSDF((0, 0, 8), 6.0))
    return build_from_sdf(solid, DOMAIN, 32)


class TestUnexpandedTraversal:
    def test_has_full_above_start(self, chunky_tree):
        from repro.octree.linear import STATUS_FULL

        n = sum(
            int((chunky_tree.levels[l].status == STATUS_FULL).sum()) for l in range(5)
        )
        assert n > 0, "fixture must exercise the virtual-cell path"

    @pytest.mark.parametrize("method_cls", [PBox, PICA, MICA, AICA])
    def test_matches_expanded(self, chunky_tree, method_cls):
        grid = OrientationGrid.square(8)
        pivot = np.array([0.0, 0.0, 15.0])
        raw = run_cd(Scene(chunky_tree, paper_tool(), pivot), grid, method_cls())
        exp_tree = expand_top(chunky_tree, 5)
        exp = run_cd(Scene(exp_tree, paper_tool(), pivot), grid, method_cls())
        np.testing.assert_array_equal(raw.collides, exp.collides)

    def test_matches_brute_force(self, chunky_tree):
        grid = OrientationGrid.square(8)
        scene = Scene(chunky_tree, paper_tool(), np.array([12.0, 0.0, 12.0]))
        got = run_cd(scene, grid, AICA()).collides
        np.testing.assert_array_equal(got, brute_force_map(scene, grid))

    def test_virtual_cells_priced_as_fly(self, chunky_tree):
        """MICA on a raw tree must do some on-the-fly cone computations
        (the virtual base cells have no table rows)."""
        grid = OrientationGrid.square(6)
        scene = Scene(chunky_tree, paper_tool(), np.array([0.0, 0.0, 15.0]))
        r = run_cd(scene, grid, MICA())
        assert r.counters.ica_fly_checks.sum() > 0
        assert r.counters.ica_memo_checks.sum() > 0
