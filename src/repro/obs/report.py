"""Structured run reports and bench regression tracking.

A :class:`RunReport` freezes one bench/CD run into a JSON document:
what was run (``meta``: experiment names, scale, traversal config),
where the time went (``spans`` from the tracer, plus per-name
``span_totals``), how much work happened (``metrics`` from the
registry), and the measured tables themselves (``results``).  Anything
with a ``to_dict()`` — notably :class:`repro.cd.result.CDResult` — can
sit in the payload; the serializer calls it, and converts NumPy scalars
and arrays along the way.

:func:`compare` is the regression gate: given a baseline and a current
report it walks every tracked metric present in both and flags

* *count* regressions — counter metrics (check counts, node visits)
  whose value grew beyond ``count_threshold`` (counts are deterministic
  at fixed seed/scale, so the default tolerance is tight), and
* *time* regressions — ``*_s``/``*_ms`` counters (the simulated kernel
  times) and per-span wall totals that grew beyond ``time_threshold``
  (wall clocks are noisy, so the default tolerance is loose).

``repro-bench compare baseline.json current.json`` wraps this and exits
nonzero when any regression is flagged, making it a CI gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.trace import get_tracer

__all__ = [
    "SCHEMA",
    "RunReport",
    "build_report",
    "load_report",
    "Delta",
    "Comparison",
    "compare",
]

SCHEMA = "repro.obs.report/v1"


def _json_default(obj):
    """Serializer fallback: ``to_dict()`` protocols and NumPy types."""
    if hasattr(obj, "to_dict"):
        return obj.to_dict()
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON-serializable: {type(obj).__name__}")


def _roundtrip(payload) -> dict:
    """Force the payload through the serializer so it is plain-JSON data."""
    return json.loads(json.dumps(payload, default=_json_default))


@dataclass
class RunReport:
    """One run's telemetry, ready to write to / read from JSON."""

    label: str
    meta: dict = field(default_factory=dict)
    spans: list = field(default_factory=list)
    span_totals: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    results: list = field(default_factory=list)
    schema: str = SCHEMA

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "label": self.label,
            "meta": self.meta,
            "spans": self.spans,
            "span_totals": self.span_totals,
            "metrics": self.metrics,
            "results": self.results,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunReport":
        if not isinstance(d, dict) or "schema" not in d:
            raise ValueError("not a repro.obs run report (missing 'schema')")
        if not str(d["schema"]).startswith("repro.obs.report/"):
            raise ValueError(f"unknown report schema {d['schema']!r}")
        return cls(
            label=d.get("label", ""),
            meta=d.get("meta", {}),
            spans=d.get("spans", []),
            span_totals=d.get("span_totals", {}),
            metrics=d.get("metrics", {}),
            results=d.get("results", []),
            schema=d["schema"],
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), default=_json_default, indent=indent)

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    def span_names(self) -> set[str]:
        return {s["name"] for s in self.spans}


def build_report(
    label: str,
    *,
    tracer=None,
    metrics: MetricsRegistry | None = None,
    meta: dict | None = None,
    results: list | None = None,
) -> RunReport:
    """Snapshot the (given or ambient) tracer + registry into a report.

    ``results`` may contain anything the serializer handles — experiment
    row dicts, :class:`~repro.cd.result.CDResult` objects, NumPy arrays;
    everything is normalized to plain JSON data inside the report.
    """
    tracer = tracer if tracer is not None else get_tracer()
    metrics = metrics if metrics is not None else get_metrics()
    meta = dict(meta or {})
    # Anchor the trace absolutely: consumers (Perfetto export, cross-run
    # alignment) can place span t0 offsets on the wall clock.
    if getattr(tracer, "enabled", False) and "trace_epoch_ns" not in meta:
        meta["trace_epoch_ns"] = getattr(tracer, "epoch_ns", None)
    return RunReport(
        label=label,
        meta=_roundtrip(meta),
        spans=tracer.to_dicts(),
        span_totals=tracer.totals(),
        metrics=metrics.as_dict(),
        results=_roundtrip(results or []),
    )


def load_report(path) -> RunReport:
    with open(path, "r", encoding="utf-8") as fh:
        return RunReport.from_dict(json.load(fh))


# ---------------------------------------------------------------------------
# Regression comparison
# ---------------------------------------------------------------------------

_TIME_SUFFIXES = ("_s", "_ms", ".wall_s", ".cpu_s")


def _is_time_metric(name: str) -> bool:
    return name.endswith(_TIME_SUFFIXES)


@dataclass(frozen=True)
class Delta:
    """One tracked metric's movement between two reports."""

    metric: str
    kind: str  # "time" | "count"
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.current else 1.0
        return self.current / self.baseline

    def describe(self) -> str:
        pct = (self.ratio - 1.0) * 100.0
        sign = "+" if pct >= 0 else ""
        return (
            f"{self.metric} [{self.kind}]: {self.baseline:g} -> {self.current:g} "
            f"({sign}{pct:.1f}%)"
        )


@dataclass
class Comparison:
    """Result of :func:`compare`: what was checked and what moved."""

    regressions: list[Delta]
    improvements: list[Delta]
    checked: int
    time_threshold: float
    count_threshold: float
    # every tracked metric's delta, flagged or not — the raw material of
    # `repro-obs diff`'s full table
    deltas: list[Delta] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [
            f"compared {self.checked} tracked metrics "
            f"(time tol {self.time_threshold:.0%}, count tol {self.count_threshold:.0%})"
        ]
        for d in self.regressions:
            lines.append(f"  REGRESSION  {d.describe()}")
        for d in self.improvements:
            lines.append(f"  improvement {d.describe()}")
        if self.ok:
            lines.append("  no regressions")
        return "\n".join(lines)


def _counter_values(report: RunReport) -> dict[str, float]:
    out = {}
    for name, m in report.metrics.items():
        if m.get("type") == "counter" and isinstance(m.get("value"), (int, float)):
            out[name] = float(m["value"])
    return out


def _span_wall_values(report: RunReport) -> dict[str, float]:
    out = {}
    for name, agg in report.span_totals.items():
        wall = agg.get("wall_s")
        if isinstance(wall, (int, float)):
            out[f"span.{name}.wall_s"] = float(wall)
    return out


def compare(
    baseline: RunReport,
    current: RunReport,
    *,
    time_threshold: float = 0.25,
    count_threshold: float = 0.01,
    min_time_delta_s: float = 0.01,
) -> Comparison:
    """Flag tracked metrics that moved beyond their tolerance.

    Only metrics present in *both* reports are compared (a renamed or
    newly added metric is not a regression).  Growth beyond the
    tolerance is a regression; shrinkage beyond it is reported as an
    improvement (informational — it never fails the gate).

    Time metrics additionally need an *absolute* movement of at least
    ``min_time_delta_s`` — a microsecond-scale span doubling is clock
    noise, not a regression worth failing CI over.
    """
    regressions: list[Delta] = []
    improvements: list[Delta] = []
    deltas: list[Delta] = []
    checked = 0

    base_counters = _counter_values(baseline)
    cur_counters = _counter_values(current)
    base_spans = _span_wall_values(baseline)
    cur_spans = _span_wall_values(current)

    tracked = [
        (name, base_counters[name], cur_counters[name], _is_time_metric(name))
        for name in sorted(set(base_counters) & set(cur_counters))
    ] + [
        (name, base_spans[name], cur_spans[name], True)
        for name in sorted(set(base_spans) & set(cur_spans))
    ]

    for name, base_v, cur_v, is_time in tracked:
        checked += 1
        threshold = time_threshold if is_time else count_threshold
        floor = min_time_delta_s if is_time else 0.0
        kind = "time" if is_time else "count"
        delta = Delta(metric=name, kind=kind, baseline=base_v, current=cur_v)
        deltas.append(delta)
        if cur_v > base_v * (1.0 + threshold) and cur_v - base_v > floor:
            regressions.append(delta)
        elif cur_v < base_v * (1.0 - threshold) and base_v - cur_v > floor:
            improvements.append(delta)
    return Comparison(
        regressions=regressions,
        improvements=improvements,
        checked=checked,
        time_threshold=time_threshold,
        count_threshold=count_threshold,
        deltas=deltas,
    )
