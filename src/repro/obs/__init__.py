"""Unified observability: tracing, metrics, and structured run reports.

Three layers, importable independently (``repro.obs`` never imports the
engine — the engine imports *it* — so instrumentation can live anywhere
without cycles):

* :mod:`repro.obs.trace` — nested spans over the pipeline stages, a
  no-op by default so benchmark numbers are unaffected;
* :mod:`repro.obs.metrics` — counters / gauges / histograms the CD runs
  accumulate into (check counts, table sizes, per-thread distributions);
* :mod:`repro.obs.report` — serializes one run to JSON and diffs two
  runs for regressions (``repro-bench compare``).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
    use_metrics,
)
from repro.obs.report import (
    Comparison,
    Delta,
    RunReport,
    build_report,
    compare,
    load_report,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    Tracer,
    get_tracer,
    set_tracer,
    tracing_enabled,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "use_metrics",
    "Comparison",
    "Delta",
    "RunReport",
    "build_report",
    "compare",
    "load_report",
    "NULL_TRACER",
    "NullTracer",
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "tracing_enabled",
    "use_tracer",
]
