"""Figure 19: AICA time breakdown vs object resolution."""

from repro.bench.experiments import fig19


def test_fig19(benchmark, scale, record):
    result = benchmark.pedantic(fig19, args=(scale,), rounds=1, iterations=1)
    record(result)
    rows = result.rows  # [res, entries, precompute_ms, cd_ms, total_ms]

    entries = [r[1] for r in rows]
    totals = [r[4] for r in rows]
    pre = [r[2] for r in rows]

    # Table entries grow steeply with resolution (roughly node-count
    # growth; ~1.99x is observed on the smallest step, hence the 1.8 bar)...
    assert all(b > 1.8 * a for a, b in zip(entries, entries[1:]))
    # ...while total time grows sublinearly relative to the node growth —
    # the paper's "execution time increases gradually".
    for (e0, e1), (t0, t1) in zip(zip(entries, entries[1:]), zip(totals, totals[1:])):
        assert t1 / max(t0, 1e-12) < e1 / e0
    # The precompute share grows with resolution (Fig 19's stacked bars).
    share = [p / max(t, 1e-12) for p, t in zip(pre, totals)]
    assert share[-1] >= share[0]
