"""repro.service — long-lived accessibility-map query service.

Turns the one-shot ``run_cd`` / ``run_along_path`` pipeline into a
server: scenes are registered once under their content digest
(:mod:`~repro.service.registry`), identical concurrent queries coalesce
into one traversal (:mod:`~repro.service.batching`), finished results
are served from a bounded cache (:mod:`~repro.service.cache`), and a
stdlib JSON/HTTP front end (:mod:`~repro.service.http`) exposes it all
— see ``docs/serving.md`` and the ``repro-serve`` / ``repro-loadgen``
console scripts.
"""

from repro.service.batching import Backpressure, QueryBroker
from repro.service.cache import ResultCache
from repro.service.core import QueryResult, QuerySpec, Service
from repro.service.http import ServiceHTTPServer, serve
from repro.service.registry import SceneRegistry, UnknownSceneError

__all__ = [
    "Backpressure",
    "QueryBroker",
    "QueryResult",
    "QuerySpec",
    "ResultCache",
    "SceneRegistry",
    "Service",
    "ServiceHTTPServer",
    "UnknownSceneError",
    "serve",
]
