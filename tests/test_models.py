"""The four benchmark analogues: dimensions, structure, metadata."""

import numpy as np
import pytest

from repro.solids.models import (
    PAPER_RESOLUTIONS,
    benchmark_models,
    candle_holder_model,
    head_model,
    teapot_model,
    turbine_model,
)
from repro.solids.voxelize import voxelize_sdf


@pytest.fixture(scope="module", params=["head", "candle_holder", "turbine", "teapot"])
def model(request):
    return {m.name: m for m in benchmark_models()}[request.param]


class TestModelBasics:
    def test_four_models_in_order(self):
        names = [m.name for m in benchmark_models()]
        assert names == ["head", "candle_holder", "turbine", "teapot"]

    def test_domain_is_cube_enclosing_dims(self, model):
        size = model.domain.size
        assert np.allclose(size, size[0])
        assert size[0] >= max(model.dims)

    def test_cell_size(self, model):
        assert model.cell_size(256) == pytest.approx(model.domain_edge / 256)

    def test_paper_metadata_complete(self, model):
        for key in ("triangles", "bounding_volume", "layers", "voxels_m", "path_points_k"):
            assert key in model.paper
        for res in PAPER_RESOLUTIONS:
            assert res in model.paper["voxels_m"]

    def test_solid_nonempty_and_bounded(self, model):
        g = voxelize_sdf(model.sdf, model.domain, 32)
        assert g.any(), "model should have solid voxels"
        assert not g.all(), "model should not fill the domain"
        # nothing touches the domain boundary (margin exists)
        assert not g[0].any() and not g[-1].any()
        assert not g[:, 0].any() and not g[:, -1].any()
        assert not g[:, :, 0].any() and not g[:, :, -1].any()

    def test_measured_dims_close_to_paper(self, model):
        g = voxelize_sdf(model.sdf, model.domain, 64)
        cell = model.domain_edge / 64
        zz, yy, xx = np.nonzero(g)
        meas = np.array(
            [
                (xx.max() - xx.min() + 1) * cell,
                (yy.max() - yy.min() + 1) * cell,
                (zz.max() - zz.min() + 1) * cell,
            ]
        )
        # within 20% of the paper dims on each axis (analogues, not meshes)
        assert np.all(meas > 0.6 * np.asarray(model.dims))
        assert np.all(meas < 1.25 * np.asarray(model.dims))


class TestModelStructure:
    def test_head_has_eye_concavity(self):
        m = head_model()
        # the eye socket center is carved out of the skull
        assert not m.sdf.contains(np.array([-8.0, -19.5, 12.0]))

    def test_candle_holder_cup_is_hollow(self):
        m = candle_holder_model()
        assert not m.sdf.contains(np.array([0.0, 0.0, 24.0]))  # inside the cavity
        assert m.sdf.contains(np.array([12.5, 0.0, 24.0]))  # the cup wall

    def test_turbine_blade_count(self):
        m = turbine_model(n_blades=9)
        # sample a ring through the blades; count angular solid runs
        ang = np.linspace(0, 2 * np.pi, 3600, endpoint=False)
        ring = np.stack([15 * np.cos(ang), 15 * np.sin(ang), np.zeros_like(ang)], -1)
        inside = m.sdf.contains(ring)
        runs = int(((~inside[:-1]) & inside[1:]).sum() + (inside[0] and not inside[-1]))
        assert runs == 9

    def test_turbine_bore_through(self):
        m = turbine_model()
        assert not m.sdf.contains(np.array([0.0, 0.0, 0.0]))

    def test_teapot_handle_hole(self):
        m = teapot_model()
        # the center of the handle loop is empty, the tube is solid
        assert not m.sdf.contains(np.array([-14.7, 0.0, 1.0]))
        assert m.sdf.contains(np.array([-14.7, 0.0, 1.0 + 6.5]))

    def test_teapot_spout_tip(self):
        m = teapot_model()
        assert m.sdf.contains(np.array([20.4, 0.0, 5.0]))
