"""Geometry kernel: vectors, frames, orientations, volumes, and exact predicates.

This package provides the low-level geometric substrate that the
collision-detection algorithms (:mod:`repro.cd`) are built on:

* :mod:`repro.geometry.vec` — small vector helpers over ``(..., 3)`` arrays.
* :mod:`repro.geometry.frames` — orthonormal frames and the rotation that
  axis-aligns a cylinder (the paper's 9-operation *rotation* step).
* :mod:`repro.geometry.orientation` — polar ``(phi, gamma)`` orientation
  grids used for accessibility maps.
* :mod:`repro.geometry.aabb` / :mod:`sphere` / :mod:`cylinder` — the volume
  primitives.
* :mod:`repro.geometry.predicates` — exact scalar intersection tests,
  including the paper's ``CHECKBOX`` cylinder-box test.
* :mod:`repro.geometry.batch` — vectorized (NumPy-broadcast) versions of the
  predicates, the "GPU kernels" of this reproduction.
"""

from repro.geometry.aabb import AABB
from repro.geometry.cylinder import Cylinder
from repro.geometry.frames import frame_from_axis, rotation_to_axis
from repro.geometry.orientation import (
    OrientationGrid,
    DirectionSet,
    direction_from_angles,
    angles_from_direction,
    slerp_directions,
)
from repro.geometry.sphere import Sphere
from repro.geometry.vec import norm, normalize, dot

__all__ = [
    "AABB",
    "Cylinder",
    "Sphere",
    "OrientationGrid",
    "DirectionSet",
    "slerp_directions",
    "direction_from_angles",
    "angles_from_direction",
    "frame_from_axis",
    "rotation_to_axis",
    "norm",
    "normalize",
    "dot",
]
