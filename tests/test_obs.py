"""The observability subsystem: tracing, metrics, reports, regression gate."""

import json
import time

import numpy as np
import pytest

from repro.bench.runner import build_workload
from repro.cd import AICA, MICA, run_cd
from repro.geometry.orientation import OrientationGrid
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    get_metrics,
    use_metrics,
)
from repro.obs.report import (
    RunReport,
    build_report,
    compare,
    load_report,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    tracing_enabled,
    use_tracer,
)


class TestTracer:
    def test_default_is_noop(self):
        assert isinstance(get_tracer(), NullTracer)
        assert not tracing_enabled()
        # span() on the null tracer works and records nothing
        with get_tracer().span("anything", key=1) as sp:
            sp.set(more=2)
        assert get_tracer().to_dicts() == []

    def test_nesting_and_parents(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner.a"):
                pass
            with tr.span("inner.b"):
                with tr.span("leaf"):
                    pass
        names = [r.name for r in tr.records]
        assert names == ["outer", "inner.a", "inner.b", "leaf"]
        outer, a, b, leaf = tr.records
        assert outer.parent == -1 and outer.depth == 0
        assert a.parent == 0 and a.depth == 1
        assert b.parent == 0 and b.depth == 1
        assert leaf.parent == 2 and leaf.depth == 2

    def test_timing_and_containment(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                time.sleep(0.01)
        outer, inner = tr.records
        assert inner.wall_s >= 0.01
        assert outer.wall_s >= inner.wall_s
        assert outer.cpu_s >= 0.0

    def test_attributes(self):
        tr = Tracer()
        with tr.span("s", level=3) as sp:
            sp.set(pairs=128, level=4)
        assert tr.records[0].attrs == {"level": 4, "pairs": 128}

    def test_error_annotated(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.span("s"):
                raise ValueError("boom")
        assert tr.records[0].attrs["error"] == "ValueError"
        assert tr.records[0].wall_s >= 0.0

    def test_totals_aggregate_by_name(self):
        tr = Tracer()
        for _ in range(3):
            with tr.span("cd.level"):
                pass
        totals = tr.totals()
        assert totals["cd.level"]["count"] == 3
        assert totals["cd.level"]["wall_s"] >= 0.0

    def test_use_tracer_restores(self):
        tr = Tracer()
        before = get_tracer()
        with use_tracer(tr) as active:
            assert get_tracer() is tr is active
        assert get_tracer() is before

    def test_set_tracer_none_disables(self):
        prev = set_tracer(None)
        try:
            assert get_tracer() is NULL_TRACER
        finally:
            set_tracer(prev)

    def test_record_span_manual(self):
        tr = Tracer()
        with tr.span("outer"):
            pass
        idx = tr.record_span(
            "pool.task.wait", t0=0.5, wall_s=0.25, parent=0, attrs={"task": 3}
        )
        rec = tr.records[idx]
        assert rec.name == "pool.task.wait"
        assert rec.parent == 0 and rec.depth == 1
        assert rec.t0 == 0.5 and rec.wall_s == 0.25
        assert rec.attrs == {"task": 3}


class TestAbsorbEpochs:
    """Regression: absorbed worker spans must land on the parent's timeline,
    never before the parent run's epoch."""

    def _worker_trace(self):
        worker = Tracer()
        with worker.span("cd.level", level=5):
            with worker.span("leaf"):
                pass
        return worker

    def test_epoch_rebase_makes_offsets_absolute(self):
        parent = Tracer()
        time.sleep(0.02)
        with parent.span("cd.traversal"):
            pass
        worker = self._worker_trace()  # created ~0.02s after the parent epoch
        parent.absorb(
            worker.to_dicts(), parent=0, epoch_ns=worker.epoch_ns
        )
        shift = (worker.epoch_ns - parent.epoch_ns) / 1e9
        assert shift >= 0.02
        root, leaf = parent.records[1], parent.records[2]
        assert root.t0 >= parent.records[0].t0  # not before the parent span
        assert root.t0 >= 0.02  # absolute: carries the real wall offset
        assert leaf.t0 >= root.t0  # children shifted identically

    def test_absorbed_roots_never_precede_parent_without_epoch(self):
        parent = Tracer()
        time.sleep(0.02)
        with parent.span("cd.traversal"):
            pass
        worker = self._worker_trace()
        parent.absorb(worker.to_dicts(), parent=0)  # legacy payload: no epoch
        host_t0 = parent.records[0].t0
        for rec in parent.records[1:]:
            assert rec.t0 >= host_t0
            assert rec.t0 >= 0.0  # never before the run's epoch

    def test_rootless_absorb_without_epoch_keeps_offsets(self):
        parent = Tracer()
        worker = self._worker_trace()
        dicts = worker.to_dicts()
        parent.absorb(dicts)  # parent=-1, no epoch: nothing to anchor on
        assert [r.t0 for r in parent.records] == [d["t0"] for d in dicts]

    def test_reset_renews_epoch(self):
        tr = Tracer()
        first = tr.epoch_ns
        time.sleep(0.002)
        tr.reset()
        assert tr.epoch_ns > first


class TestMetrics:
    def test_counter(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        assert reg.counter("c").value == 5
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_gauge(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1.5)
        reg.gauge("g").set(0.5)
        assert reg.gauge("g").value == 0.5

    def test_histogram(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(0.0)
        h.observe_many(np.array([1, 2, 3, 1000]))
        assert h.count == 5
        assert h.min == 0.0 and h.max == 1000.0
        assert h.mean == pytest.approx(1006 / 5)
        d = h.to_dict()
        assert sum(d["buckets"]) == 5
        assert d["buckets"][0] == 1  # the [0,1) observation

    def test_empty_histogram_serializes_null_bounds(self, tmp_path):
        """Regression: an unobserved histogram must emit ``min``/``max`` as
        null (not +/-inf, which is invalid JSON) and survive a report
        round-trip."""
        reg = MetricsRegistry()
        reg.histogram("empty")
        d = reg.as_dict()["empty"]
        assert d["count"] == 0
        assert d["min"] is None and d["max"] is None
        json.dumps(d)  # must not need a default= escape hatch

        report = build_report("hist-null", metrics=reg)
        path = tmp_path / "r.json"
        report.save(path)
        loaded = load_report(path)
        again = loaded.metrics["empty"]
        assert again["min"] is None and again["max"] is None
        assert again["count"] == 0

    def test_type_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_as_dict_sorted_and_json_safe(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(np.int64(3))
        reg.gauge("a").set(1.0)
        d = reg.as_dict()
        assert list(d) == ["a", "b"]
        json.dumps(d, default=int)

    def test_use_metrics_scopes(self):
        before = get_metrics()
        with use_metrics() as reg:
            assert get_metrics() is reg
            reg.counter("scoped").inc()
        assert get_metrics() is before
        assert "scoped" not in before

    def test_thread_counters_export(self):
        from repro.engine.counters import ThreadCounters

        tc = ThreadCounters(n_threads=4, n_cyl=2)
        tc.box_checks[:] = [1, 2, 3, 4]
        tc.ica_fly_checks[:] = 1
        tc.nodes_visited[:] = [10, 0, 5, 7]
        reg = MetricsRegistry()
        tc.export(reg, prefix="cd")
        assert reg.counter("cd.box_checks").value == 10
        assert reg.counter("cd.total_checks").value == 14
        assert reg.gauge("cd.critical_thread_checks").value == 10
        assert reg.histogram("cd.nodes_visited_per_thread").count == 4


class TestReport:
    def _report(self, **over):
        tr = Tracer()
        reg = MetricsRegistry()
        with tr.span("cd.run"):
            with tr.span("cd.level"):
                pass
        reg.counter("cd.total_checks").inc(100)
        reg.counter("cd.sim_cd_s").inc(2.0)
        kwargs = dict(tracer=tr, metrics=reg, meta={"scale": "smoke"})
        kwargs.update(over)
        return build_report("test", **kwargs)

    def test_json_roundtrip(self, tmp_path):
        rep = self._report(results=[{"rows": [[np.int64(1), np.float64(0.5)]]}])
        path = tmp_path / "r.json"
        rep.save(path)
        loaded = load_report(path)
        assert loaded.to_dict() == rep.to_dict()
        assert loaded.results[0]["rows"] == [[1, 0.5]]
        assert loaded.span_names() == {"cd.run", "cd.level"}
        assert loaded.metrics["cd.total_checks"]["value"] == 100

    def test_cd_result_in_payload(self):
        wl = build_workload("head", 16, n_pivots=1)
        r = run_cd(wl.scene(0), OrientationGrid.square(4), AICA())
        rep = build_report("cd", tracer=Tracer(), metrics=MetricsRegistry(), results=[r])
        d = rep.results[0]
        assert d["method"] == "AICA"
        assert d["config"]["memo_levels"] == 8  # self-describing: traversal config
        assert d["grid"] == {"m": 4, "n": 4, "size": 16}
        assert d["summary"]["total_checks"] > 0
        json.dumps(rep.to_dict())  # fully serialized already

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ValueError):
            load_report(path)

    def test_compare_identical_ok(self):
        rep = self._report()
        cmp = compare(rep, rep)
        assert cmp.ok
        assert cmp.checked >= 3  # 2 counters + 2 span names (cd.run, cd.level)
        assert cmp.regressions == [] and cmp.improvements == []

    def test_compare_flags_count_regression(self):
        base = self._report()
        cur = self._report()
        cur.metrics["cd.total_checks"]["value"] = 103  # +3% > 1% tolerance
        cmp = compare(base, cur)
        assert not cmp.ok
        assert [d.metric for d in cmp.regressions] == ["cd.total_checks"]
        assert cmp.regressions[0].kind == "count"
        assert "REGRESSION" in cmp.render()

    def test_compare_time_tolerance(self):
        base = self._report()
        cur = self._report()
        cur.metrics["cd.sim_cd_s"]["value"] = 2.4  # +20% < 25% tolerance
        assert compare(base, cur).ok
        cur.metrics["cd.sim_cd_s"]["value"] = 2.6  # +30% > 25% tolerance
        cmp = compare(base, cur)
        assert [d.metric for d in cmp.regressions] == ["cd.sim_cd_s"]
        assert cmp.regressions[0].kind == "time"

    def test_compare_span_wall_regression(self):
        base = self._report()
        cur = self._report()
        cur.span_totals["cd.run"]["wall_s"] = base.span_totals["cd.run"]["wall_s"] * 10 + 1
        cmp = compare(base, cur)
        assert any(d.metric == "span.cd.run.wall_s" for d in cmp.regressions)

    def test_compare_improvement_informational(self):
        base = self._report()
        cur = self._report()
        cur.metrics["cd.total_checks"]["value"] = 50
        cmp = compare(base, cur)
        assert cmp.ok  # shrinking is never a failure
        assert [d.metric for d in cmp.improvements] == ["cd.total_checks"]

    def test_compare_ignores_unmatched_metrics(self):
        base = self._report()
        cur = self._report()
        cur.metrics["new.metric"] = {"type": "counter", "value": 999}
        assert compare(base, cur).ok


class TestTracingNeutrality:
    """Tracing on/off must not change any computed result."""

    def test_traced_run_identical_maps(self):
        wl = build_workload("head", 16, n_pivots=1, seed=3)
        grid = OrientationGrid.square(6)
        scene = wl.scene(0)
        baseline = run_cd(scene, grid, MICA())  # default: no-op tracer
        with use_tracer(Tracer()) as tr, use_metrics(MetricsRegistry()):
            traced = run_cd(scene, grid, MICA())
        assert tr.records, "tracer saw no spans"
        assert np.array_equal(baseline.collides, traced.collides)
        assert np.array_equal(
            baseline.counters.nodes_visited, traced.counters.nodes_visited
        )
        assert baseline.counters.total_checks == traced.counters.total_checks
        assert baseline.timing.total_s == traced.timing.total_s  # simulated: exact


class TestCli:
    def test_json_report(self, tmp_path, capsys):
        from repro.bench.runner import clear_caches
        from repro.cli import main

        clear_caches()  # cold caches so the octree build happens under the tracer
        path = tmp_path / "out.json"
        assert main(["fig18", "--scale", "smoke", "--json", str(path)]) == 0
        rep = load_report(path)
        names = rep.span_names()
        assert {"octree.build", "ica.table.build", "cd.traversal", "cd.run"} <= names
        assert rep.meta["scale"] == "smoke"
        assert rep.results[0]["exp_id"] == "fig18"
        assert rep.metrics["cd.total_checks"]["value"] > 0

    def test_compare_cli(self, tmp_path, capsys):
        from repro.cli import main

        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(["table2", "--scale", "smoke", "--json", str(a)]) == 0
        rep = load_report(a)
        rep.metrics["synthetic.checks"] = {"type": "counter", "value": 100}
        rep.save(b)
        base = load_report(a)
        base.metrics["synthetic.checks"] = {"type": "counter", "value": 50}
        base.save(a)
        assert main(["compare", str(a), str(a)]) == 0
        assert main(["compare", str(a), str(b)]) == 1  # 2x the checks
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "synthetic.checks" in out

    def test_compare_missing_file(self, capsys):
        from repro.cli import main

        assert main(["compare", "/nonexistent/a.json", "/nonexistent/b.json"]) == 2

    def test_all_aggregates_failures(self, monkeypatch, capsys):
        import repro.cli as cli

        def crashing(scale):
            raise RuntimeError("synthetic failure")

        ran = []

        def working(scale):
            ran.append("ok")
            from repro.bench.experiments import table2

            return table2(scale)

        monkeypatch.setattr(
            cli, "ALL_EXPERIMENTS", {"boom": crashing, "fine": working}
        )
        # The crash is reported, the remaining experiment still runs, and
        # the failure lands in the exit code instead of aborting the loop.
        assert cli.main(["all", "--scale", "smoke"]) == 1
        assert ran == ["ok"]
        err = capsys.readouterr().err
        assert "boom FAILED" in err and "synthetic failure" in err

    def test_trace_flag_prints_summary(self, capsys):
        from repro.cli import main

        assert main(["table2", "--scale", "smoke", "--trace"]) == 0
        assert "trace summary" in capsys.readouterr().err


class TestThreadSafety:
    """Regression tests for lost updates under the serving tier's threads.

    ThreadingHTTPServer dispatches one thread per connection, so every
    metric object is hammered concurrently in production.  A bare
    ``self.value += n`` is a read-modify-write that drops increments under
    the GIL's preemption; these tests fail reliably without the locks.
    """

    def test_counter_hammered_from_8_threads(self):
        import threading

        reg = MetricsRegistry()
        n_threads, per_thread = 8, 10_000

        def hammer():
            c = reg.counter("hot")
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("hot").value == n_threads * per_thread

    def test_histogram_concurrent_observes(self):
        import threading

        reg = MetricsRegistry()
        n_threads, per_thread = 8, 2_000

        def hammer(seed):
            h = reg.histogram("lat")
            h.observe_many(np.full(per_thread // 2, float(seed + 1)))
            for _ in range(per_thread // 2):
                h.observe(float(seed + 1))

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        h = reg.histogram("lat")
        assert h.count == n_threads * per_thread
        assert sum(h.to_dict()["buckets"]) == h.count

    def test_registry_create_or_get_race_yields_one_object(self):
        import threading

        reg = MetricsRegistry()
        barrier = threading.Barrier(8)
        seen = []
        lock = threading.Lock()

        def create():
            barrier.wait()
            c = reg.counter("contested")
            with lock:
                seen.append(c)

        threads = [threading.Thread(target=create) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(c is seen[0] for c in seen)


class TestAccessLog:
    def test_writes_json_lines_to_path(self, tmp_path):
        from repro.obs.log import AccessLog

        path = tmp_path / "access.log"
        log = AccessLog(path=str(path))
        try:
            log.request(
                id="abc123", route="/v1/cd", method="POST", status=200, ms=12.5,
                served="computed", scene=None,
            )
            log.request(id="def456", route="/v1/healthz", method="GET", status=200, ms=0.3)
        finally:
            log.close()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [l["id"] for l in lines] == ["abc123", "def456"]
        assert lines[0]["served"] == "computed"
        assert "scene" not in lines[0]  # None extras are dropped
        assert lines[0]["status"] == 200 and lines[0]["ms"] == 12.5
        assert "ts" in lines[0]

    def test_stderr_resolved_dynamically(self, capsys):
        # ``sys.stderr`` must be looked up at write time, not captured at
        # construction — otherwise pytest's capture (and any stream
        # redirection in a long-lived server) would be bypassed.
        from repro.obs.log import AccessLog

        AccessLog().request(id="y", route="/", method="GET", status=200, ms=1.0)
        line = capsys.readouterr().err.strip().splitlines()[-1]
        assert json.loads(line)["id"] == "y"

    def test_env_control(self, monkeypatch, tmp_path):
        from repro.obs.log import NullAccessLog, access_log_from_env

        monkeypatch.setenv("REPRO_ACCESS_LOG", "0")
        assert isinstance(access_log_from_env(), NullAccessLog)
        monkeypatch.setenv("REPRO_ACCESS_LOG", "off")
        assert isinstance(access_log_from_env(), NullAccessLog)
        monkeypatch.delenv("REPRO_ACCESS_LOG")
        log = access_log_from_env()
        assert log.enabled and log.path is None  # default: stderr
        target = tmp_path / "a.log"
        monkeypatch.setenv("REPRO_ACCESS_LOG", str(target))
        log = access_log_from_env()
        try:
            assert log.enabled and log.path == str(target)
        finally:
            log.close()

    def test_null_log_is_inert(self):
        from repro.obs.log import NULL_ACCESS_LOG

        NULL_ACCESS_LOG.request(id="x", route="/", method="GET", status=500, ms=0)
        assert not NULL_ACCESS_LOG.enabled

    def test_request_id_format(self):
        from repro.obs.log import new_request_id

        ids = {new_request_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(len(i) == 32 and set(i) <= set("0123456789abcdef") for i in ids)

    def test_use_access_log_scopes_global(self, tmp_path):
        from repro.obs.log import AccessLog, get_access_log, use_access_log

        before = get_access_log()
        log = AccessLog(path=str(tmp_path / "scoped.log"))
        with use_access_log(log):
            assert get_access_log() is log
        assert get_access_log() is before
        log.close()
