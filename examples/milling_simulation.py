#!/usr/bin/env python
"""Closing the Figure 1 loop: carve the part out of a stock block.

The paper's introduction motivates collision detection with the milling
pipeline: start from a block, repeatedly position the tool at points
around the part in collision-free orientations, and remove material.
This example runs that loop end to end with the reproduction's pieces:

* the target (the head benchmark) as an adaptive octree for CD;
* a dense voxel *stock* block enclosing it;
* the 1 mm offset path for pivot points;
* AICA accessibility maps + a safety margin to choose orientations;
* the greedy rougher cutting the stock, with gouge accounting.

The invariant on display: because every cut happens at an orientation
the accessibility map approved, the finished part is never gouged.

Run:  python examples/milling_simulation.py [resolution]
"""

import sys

import numpy as np

from repro import AICA, OrientationGrid, Tool, build_from_sdf, expand_top, offset_path
from repro.milling import GreedyRougher, VoxelStock
from repro.solids import head_model
from repro.solids.voxelize import voxelize_sdf

def ascii_slice(stock: VoxelStock, target: np.ndarray, z_index: int) -> str:
    """One z slice of the stock: '#' stock, 'o' target part, ' ' air."""
    rows = []
    for y in range(0, stock.resolution, 2):  # halve the display density
        row = []
        for x in range(0, stock.resolution, 2):
            if target[z_index, y, x]:
                row.append("o")
            elif stock.grid[z_index, y, x]:
                row.append("#")
            else:
                row.append(" ")
        rows.append("".join(row))
    return "\n".join(rows)

def main() -> None:
    resolution = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    model = head_model()
    print(f"target: {model.name}; stock block at {resolution}^3")

    target = voxelize_sdf(model.sdf, model.domain, resolution)
    tree = expand_top(build_from_sdf(model.sdf, model.domain, resolution))
    stock = VoxelStock.block_around(model.domain, resolution, target)
    print(f"stock {stock.remaining_cells()} cells, part {target.sum()} cells")

    tool = Tool.from_segments(
        [(2.5, 18.0), (4.0, 60.0), (10.0, 50.0)], name="roughing"
    )
    rougher = GreedyRougher(
        tree, tool, OrientationGrid.square(12), AICA(), safety_steps=1
    )
    mid = resolution // 2
    print("\nstock mid-slice before:")
    print(ascii_slice(stock, target, mid))

    # Layered roughing: passes at decreasing standoff, the way real
    # roughing approaches the part.  Accessibility improves with standoff,
    # so outer passes cut almost everywhere and inner ones refine.
    total_gouges = 0
    for standoff in (8.0, 4.0, 1.5):
        path = offset_path(model, resolution, offset=standoff, n_slices=6)
        stride = max(len(path) // 60, 1)
        pivots = path[::stride]
        report = rougher.run(stock, pivots)
        total_gouges += report.gouged_cells
        print(f"\npass at {standoff:>4.1f} mm standoff: {report.summary()}")
    assert total_gouges == 0, "AM-approved cuts must never gouge the part"

    print("\nstock mid-slice after:")
    print(ascii_slice(stock, target, mid))
    print(f"\nremaining excess material: {stock.excess_cells()} cells "
          f"({stock.volume_mm3():.0f} mm^3 total stock left)")
    print("the part ('o') is intact; cleared cells near the path are ' '.")

if __name__ == "__main__":
    main()
