"""Prometheus exposition: golden format, escaping, parser, parity.

The renderer is a pure function of the registry's JSON snapshot, so the
golden tests pin the exact byte-level format (Prometheus text format is
whitespace-sensitive) and the round-trip tests prove the shipped parser
accepts everything the renderer emits.
"""

from __future__ import annotations

import math

import pytest

from repro.obs.expo import (
    bucket_upper_bounds,
    escape_help,
    escape_label_value,
    parse_prometheus,
    prometheus_name,
    render_prometheus,
    snapshot_parity_problems,
)
from repro.obs.metrics import MetricsRegistry


class TestNames:
    def test_dots_become_underscores(self):
        assert prometheus_name("service.cache.hits") == "service_cache_hits"

    def test_counter_gets_total_suffix(self):
        assert prometheus_name("service.requests", "counter") == "service_requests_total"
        assert prometheus_name("x_total", "counter") == "x_total"

    def test_invalid_chars_and_leading_digit(self):
        assert prometheus_name("cd.per-thread checks") == "cd_per_thread_checks"
        assert prometheus_name("9lives") == "_9lives"
        assert prometheus_name("") == "_"

    def test_colon_preserved(self):
        assert prometheus_name("ns:metric") == "ns:metric"


class TestEscaping:
    def test_label_value_escapes(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_help_escapes_backslash_and_newline_only(self):
        assert escape_help('say "hi"\n') == 'say "hi"\\n'
        assert escape_help("a\\b") == "a\\\\b"


class TestRender:
    def test_counter_golden(self):
        reg = MetricsRegistry()
        reg.counter("service.requests").inc(7)
        text = render_prometheus(reg)
        assert text == (
            "# HELP service_requests_total repro metric service.requests\n"
            "# TYPE service_requests_total counter\n"
            "service_requests_total 7\n"
        )

    def test_gauge_golden_and_none_skipped(self):
        reg = MetricsRegistry()
        reg.gauge("service.queue.depth").set(3)
        reg.gauge("unset.gauge")  # value None: no exposition encoding
        reg.gauge("text.gauge").set("not-a-number")
        text = render_prometheus(reg, include_help=False)
        assert text == (
            "# TYPE service_queue_depth gauge\n"
            "service_queue_depth 3\n"
        )

    def test_histogram_buckets_cumulative_with_inf(self):
        reg = MetricsRegistry()
        hist = reg.histogram("service.request.ms")
        hist.observe_many([0.5, 1.5, 3.0, 3.5, 100.0])
        text = render_prometheus(reg, include_help=False)
        lines = text.splitlines()
        assert "# TYPE service_request_ms histogram" in lines
        # buckets: [0,1)=1, [1,2)=1, [2,4)=2, ... [64,128)=1
        assert 'service_request_ms_bucket{le="1"} 1' in lines
        assert 'service_request_ms_bucket{le="2"} 2' in lines
        assert 'service_request_ms_bucket{le="4"} 4' in lines
        assert 'service_request_ms_bucket{le="128"} 5' in lines
        assert 'service_request_ms_bucket{le="+Inf"} 5' in lines
        assert "service_request_ms_count 5" in lines
        # _sum carries the exact total
        (sum_line,) = [l for l in lines if l.startswith("service_request_ms_sum")]
        assert float(sum_line.split()[-1]) == pytest.approx(108.5)
        # cumulative counts never decrease
        bucket_counts = [
            int(l.rsplit(" ", 1)[1]) for l in lines if "_bucket{" in l
        ]
        assert bucket_counts == sorted(bucket_counts)

    def test_empty_histogram_still_well_formed(self):
        reg = MetricsRegistry()
        reg.histogram("empty.ms")
        text = render_prometheus(reg, include_help=False)
        assert 'empty_ms_bucket{le="+Inf"} 0' in text
        assert "empty_ms_count 0" in text

    def test_bucket_upper_bounds(self):
        assert bucket_upper_bounds(4) == [1.0, 2.0, 4.0, 8.0]

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_accepts_snapshot_dict(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(1)
        assert render_prometheus(reg.as_dict()) == render_prometheus(reg)


class TestParse:
    def test_roundtrip_values(self):
        reg = MetricsRegistry()
        reg.counter("cd.total_checks").inc(12345)
        reg.gauge("pool.utilization").set(0.875)
        reg.histogram("lat.ms").observe_many([0.2, 5.0, 9.0])
        families = parse_prometheus(render_prometheus(reg))
        assert families["cd_total_checks_total"]["type"] == "counter"
        ((_, labels, value),) = families["cd_total_checks_total"]["samples"]
        assert labels == {} and value == 12345
        ((_, _, util),) = families["pool_utilization"]["samples"]
        assert util == pytest.approx(0.875)
        hist = families["lat_ms"]
        assert hist["type"] == "histogram"
        by_name = {}
        for sample, labels, value in hist["samples"]:
            by_name.setdefault(sample, []).append((labels, value))
        assert ({"le": "+Inf"}, 3.0) in by_name["lat_ms_bucket"]
        assert by_name["lat_ms_count"] == [({}, 3.0)]
        assert by_name["lat_ms_sum"][0][1] == pytest.approx(14.2)

    def test_parses_inf_and_escaped_labels(self):
        families = parse_prometheus(
            '# TYPE weird gauge\nweird{path="C:\\\\a\\nb\\"q"} +Inf\n'
        )
        ((_, labels, value),) = families["weird"]["samples"]
        assert labels == {"path": 'C:\\a\nb"q'}
        assert math.isinf(value)

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus("this is not a metric line at all!\n")
        with pytest.raises(ValueError, match="malformed labels"):
            parse_prometheus('m{le=unquoted} 1\n')

    def test_help_and_timestamp_tolerated(self):
        families = parse_prometheus(
            "# HELP m some help text\n# TYPE m counter\nm 4 1700000000000\n"
        )
        assert families["m"]["help"] == "some help text"
        assert families["m"]["samples"][0][2] == 4.0


class TestParity:
    def _snapshot_and_families(self):
        reg = MetricsRegistry()
        reg.counter("service.requests").inc(9)
        reg.gauge("service.queue.depth").set(0)
        reg.histogram("service.request.ms").observe_many([1.0, 2.0, 3.0])
        snapshot = reg.as_dict()
        families = parse_prometheus(render_prometheus(reg))
        return snapshot, families

    def test_parity_ok(self):
        snapshot, families = self._snapshot_and_families()
        assert snapshot_parity_problems(snapshot, families) == []

    def test_counter_mismatch_flagged(self):
        snapshot, families = self._snapshot_and_families()
        snapshot["service.requests"]["value"] = 10
        problems = snapshot_parity_problems(snapshot, families)
        assert any("service.requests" in p for p in problems)

    def test_missing_family_flagged(self):
        snapshot, families = self._snapshot_and_families()
        del families["service_request_ms"]
        problems = snapshot_parity_problems(snapshot, families)
        assert any("histogram family" in p for p in problems)

    def test_volatile_prefix_checked_for_presence_only(self):
        reg = MetricsRegistry()
        reg.gauge("service.window.10s.rps").set(5.0)
        snapshot = reg.as_dict()
        families = parse_prometheus(render_prometheus(reg))
        snapshot["service.window.10s.rps"]["value"] = 99.0  # moved between scrapes
        assert snapshot_parity_problems(snapshot, families) == []
        # ... but absence is still a problem
        assert snapshot_parity_problems(snapshot, {}) != []
