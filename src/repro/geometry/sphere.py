"""Spheres — the ICA abstraction's voxel stand-ins.

The ICA method replaces each voxel by an inscribed sphere (guaranteed
inside the voxel) and a circumscribed sphere (guaranteed to contain it);
see Figure 8 of the paper.  Sphere geometry is rotation-invariant, which
is exactly why the ICA test needs no per-orientation rotation step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.aabb import AABB
from repro.geometry.vec import as_vec3

__all__ = ["Sphere"]

_SQRT3 = float(np.sqrt(3.0))


@dataclass(frozen=True)
class Sphere:
    """Closed ball with ``center`` and ``radius``."""

    center: np.ndarray
    radius: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "center", as_vec3(self.center).astype(np.float64))
        object.__setattr__(self, "radius", float(self.radius))
        if self.center.shape != (3,):
            raise ValueError("Sphere center must be a single 3-vector")
        if self.radius < 0.0:
            raise ValueError(f"negative radius {self.radius}")

    @classmethod
    def inscribed(cls, box: AABB) -> "Sphere":
        """``sphere_1``: tangent to the 6 faces of the (cubic) voxel."""
        return cls(box.center, box.inscribed_radius)

    @classmethod
    def circumscribed(cls, box: AABB) -> "Sphere":
        """``sphere_2``: passes through the 8 corners of the voxel."""
        return cls(box.center, box.circumscribed_radius)

    def contains(self, points) -> np.ndarray:
        """Broadcasted closed-ball membership test."""
        p = np.asarray(points, dtype=np.float64) - self.center
        return np.einsum("...i,...i->...", p, p) <= self.radius * self.radius + 0.0

    def intersects_aabb(self, box: AABB) -> bool:
        """Closed sphere-box overlap via clamped center distance."""
        return bool(box.distance_to_point(self.center) <= self.radius)

    def intersects_sphere(self, other: "Sphere") -> bool:
        d = np.linalg.norm(self.center - other.center)
        return bool(d <= self.radius + other.radius)
