"""``repro-bench`` command-line entry point.

Usage::

    repro-bench list                 # available experiments
    repro-bench fig16                # run one experiment and print it
    repro-bench all                  # run everything (respects scale)
    REPRO_BENCH_SCALE=medium repro-bench fig05

Exit code is nonzero on unknown experiment names so the CLI is safe to
script in CI.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.config import SCALES, current_scale
from repro.bench.experiments import ALL_EXPERIMENTS

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's tables and figures "
        "(AICA collision detection, ICPP 2019).",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig16), 'all', or 'list'",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="override REPRO_BENCH_SCALE for this run",
    )
    args = parser.parse_args(argv)

    scale = SCALES[args.scale] if args.scale else current_scale()

    if args.experiment == "list":
        for name, fn in ALL_EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:22s} {doc}")
        return 0

    names = list(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2

    for name in names:
        t0 = time.perf_counter()
        result = ALL_EXPERIMENTS[name](scale)
        dt = time.perf_counter() - t0
        print(result.render())
        print(f"\n[{name} completed in {dt:.1f}s at scale={scale.name}]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
