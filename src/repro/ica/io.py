"""ICA-table serialization (single-file ``.npz``).

Stage 1 of AICA — the memoized per-voxel ICA table — is recomputed from
scratch by every process that needs it, even though it is a pure
function of (tree, tool, pivot, S).  For a service answering many
queries against one registered scene, or a bench run repeated at a fixed
seed, that is wasted setup time: the table round-trips to disk exactly
like the octree does (:mod:`repro.octree.io`), so it can be warm-started
instead.

The format mirrors the octree one: a flat ``.npz`` with an explicit
version tag, the pivot, the memoized level count ``S``, and per-level
``cos1``/``cos2`` arrays.  Loading a truncated or corrupt file raises a
:class:`ValueError` naming the missing array.
"""

from __future__ import annotations

import numpy as np

from repro.ica.table import IcaTable

__all__ = ["save_ica_table", "load_ica_table", "FORMAT_VERSION"]

FORMAT_VERSION = 1


def save_ica_table(table: IcaTable, path) -> None:
    """Write ``table`` to ``path`` as a compressed ``.npz``."""
    payload: dict[str, np.ndarray] = {
        "format_version": np.asarray(FORMAT_VERSION),
        "pivot": np.asarray(table.pivot, dtype=np.float64),
        "levels": np.asarray(table.levels),
        "n_levels_stored": np.asarray(len(table.cos1)),
        "n_entries": np.asarray(table.n_entries),
    }
    for l in range(len(table.cos1)):
        payload[f"cos1_{l}"] = table.cos1[l]
        payload[f"cos2_{l}"] = table.cos2[l]
    np.savez_compressed(path, **payload)


def _read(data, key: str, path) -> np.ndarray:
    try:
        return data[key]
    except KeyError:
        raise ValueError(
            f"corrupt or truncated ICA table file {path!r}: missing array {key!r}"
        ) from None


def load_ica_table(path) -> IcaTable:
    """Load a table written by :func:`save_ica_table`."""
    with np.load(path) as data:
        version = int(_read(data, "format_version", path))
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported ICA table format version {version} "
                f"(expected {FORMAT_VERSION})"
            )
        pivot = _read(data, "pivot", path).astype(np.float64)
        levels = int(_read(data, "levels", path))
        stored = int(_read(data, "n_levels_stored", path))
        n_entries = int(_read(data, "n_entries", path))
        cos1 = [_read(data, f"cos1_{l}", path).astype(np.float64) for l in range(stored)]
        cos2 = [_read(data, f"cos2_{l}", path).astype(np.float64) for l in range(stored)]
    return IcaTable(pivot=pivot, levels=levels, cos1=cos1, cos2=cos2, n_entries=n_entries)
