"""Small vector helpers over ``(..., 3)`` float arrays.

All functions broadcast over leading dimensions and never copy unless a
copy is required, following the NumPy-first discipline used throughout
the library: the hot collision-detection paths operate on large batches
of vectors at once, so every helper here accepts stacked inputs.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_vec3",
    "dot",
    "norm",
    "norm_sq",
    "normalize",
    "cross",
    "lerp",
    "clamp",
]

_EPS = 1e-12


def as_vec3(v) -> np.ndarray:
    """Coerce *v* to a float64 array with trailing dimension 3.

    Accepts lists, tuples, and arrays.  Raises :class:`ValueError` when the
    trailing dimension is not 3 — catching shape bugs at the API boundary
    rather than deep inside a broadcasted kernel.
    """
    a = np.asarray(v, dtype=np.float64)
    if a.shape == () or a.shape[-1] != 3:
        raise ValueError(f"expected trailing dimension 3, got shape {a.shape}")
    return a


def dot(a, b) -> np.ndarray:
    """Broadcasted dot product over the trailing axis."""
    return np.einsum("...i,...i->...", np.asarray(a, np.float64), np.asarray(b, np.float64))


def norm_sq(a) -> np.ndarray:
    """Squared Euclidean norm over the trailing axis (cheaper than :func:`norm`)."""
    a = np.asarray(a, dtype=np.float64)
    return np.einsum("...i,...i->...", a, a)


def norm(a) -> np.ndarray:
    """Euclidean norm over the trailing axis."""
    return np.sqrt(norm_sq(a))


def normalize(a, *, eps: float = _EPS) -> np.ndarray:
    """Return unit vectors; zero-length inputs raise :class:`ValueError`.

    Unit directions feed rotation construction (:mod:`repro.geometry.frames`)
    where a silent zero vector would corrupt every downstream test, so the
    failure is loud.
    """
    a = np.asarray(a, dtype=np.float64)
    n = norm(a)
    if np.any(n < eps):
        raise ValueError("cannot normalize zero-length vector")
    return a / n[..., None]


def cross(a, b) -> np.ndarray:
    """Broadcasted cross product."""
    return np.cross(np.asarray(a, np.float64), np.asarray(b, np.float64))


def lerp(a, b, t) -> np.ndarray:
    """Linear interpolation ``a + t*(b - a)`` with broadcasting over ``t``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    t = np.asarray(t, dtype=np.float64)
    return a + t[..., None] * (b - a)


def clamp(x, lo, hi) -> np.ndarray:
    """Elementwise clamp (alias of :func:`numpy.clip` with a geometry-local name)."""
    return np.clip(x, lo, hi)
