"""Workload construction and aggregated method runs.

A *workload* is everything the paper fixes before timing: a benchmark
model voxelized into an (expanded) octree at some resolution, the
4-cylinder tool, the 1 mm offset path, and the sampled pivot points.
Workload pieces are cached per (model, resolution) because octree and
path construction dominate setup time and every figure reuses them.

:func:`run_workload` runs one CD method over the workload's pivots and
averages the per-pivot summaries — the paper's "every experimental
result is the average of the pivot samples" protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.config import BenchScale
from repro.cd import Scene, run_cd
from repro.cd.result import CDResult
from repro.cd.traversal import TraversalConfig
from repro.engine.costs import CostModel, DEFAULT_COSTS
from repro.engine.device import DeviceSpec, GTX_1080_TI
from repro.geometry.orientation import OrientationGrid
from repro.obs.trace import get_tracer
from repro.octree.build import build_from_sdf, expand_top
from repro.octree.linear import LinearOctree
from repro.path.offset import offset_path
from repro.path.sampling import sample_pivots
from repro.solids.models import BenchmarkModel, benchmark_models
from repro.tool.tool import Tool, paper_tool

__all__ = ["Workload", "build_workload", "run_workload", "clear_caches"]

_TREE_CACHE: dict[tuple[str, int, int], LinearOctree] = {}
_RAW_TREE_CACHE: dict[tuple[str, int], LinearOctree] = {}
_PATH_CACHE: dict[tuple[str, int], np.ndarray] = {}


def clear_caches() -> None:
    """Drop the workload caches (tests use this to bound memory)."""
    _TREE_CACHE.clear()
    _RAW_TREE_CACHE.clear()
    _PATH_CACHE.clear()


def _model_by_name(name: str) -> BenchmarkModel:
    for m in benchmark_models():
        if m.name == name:
            return m
    raise KeyError(f"unknown benchmark model {name!r}")


def cached_tree(model: BenchmarkModel, resolution: int, *, start_level: int = 5) -> LinearOctree:
    """The model's adaptive octree with the top expansion applied."""
    key = (model.name, resolution, start_level)
    if key not in _TREE_CACHE:
        raw = cached_raw_tree(model, resolution)
        _TREE_CACHE[key] = expand_top(raw, start_level)
    return _TREE_CACHE[key]


def cached_raw_tree(model: BenchmarkModel, resolution: int) -> LinearOctree:
    """The model's adaptive octree before top expansion (Table 1 stats)."""
    key = (model.name, resolution)
    if key not in _RAW_TREE_CACHE:
        _RAW_TREE_CACHE[key] = build_from_sdf(model.sdf, model.domain, resolution)
    return _RAW_TREE_CACHE[key]


def cached_path(model: BenchmarkModel, resolution: int) -> np.ndarray:
    """The model's 1 mm offset path at the given resolution."""
    key = (model.name, resolution)
    if key not in _PATH_CACHE:
        _PATH_CACHE[key] = offset_path(model, resolution)
    return _PATH_CACHE[key]


@dataclass
class Workload:
    """One prepared problem family: model + octree + tool + pivots."""

    model: BenchmarkModel
    resolution: int
    tree: LinearOctree
    tool: Tool
    path: np.ndarray
    pivots: np.ndarray

    def scene(self, pivot_index: int) -> Scene:
        return Scene(self.tree, self.tool, self.pivots[pivot_index])


def build_workload(
    model,
    resolution: int,
    *,
    n_pivots: int = 2,
    seed: int = 0,
    tool: Tool | None = None,
    start_level: int = 5,
) -> Workload:
    """Prepare (with caching) the workload for one model and resolution.

    ``model`` is a :class:`BenchmarkModel` or its name.  ``seed`` controls
    pivot sampling so every method sees identical pivots.
    """
    if isinstance(model, str):
        model = _model_by_name(model)
    with get_tracer().span("bench.workload", model=model.name, resolution=resolution):
        tree = cached_tree(model, resolution, start_level=start_level)
        path = cached_path(model, resolution)
    return Workload(
        model=model,
        resolution=resolution,
        tree=tree,
        tool=tool if tool is not None else paper_tool(),
        path=path,
        pivots=sample_pivots(path, n_pivots, seed=seed),
    )


def run_workload(
    workload: Workload,
    method,
    grid: OrientationGrid,
    *,
    device: DeviceSpec = GTX_1080_TI,
    costs: CostModel = DEFAULT_COSTS,
    config: TraversalConfig = TraversalConfig(),
    workers: int | None = None,
) -> dict:
    """Run ``method`` at every pivot and average the summaries.

    Returns the mean of every numeric field of
    :meth:`repro.cd.result.CDResult.summary`, plus ``n_pivots`` and the
    last pivot's full :class:`CDResult` under ``"last_result"`` (for
    figures that need per-thread arrays).

    ``workers`` is forwarded to :func:`repro.cd.run_cd` (default: the
    config's worker count, then ``REPRO_WORKERS``, then serial); each
    pivot's run shards its orientation blocks over the pool.
    """
    tracer = get_tracer()
    summaries: list[dict] = []
    last: CDResult | None = None
    with tracer.span(
        "bench.run_workload",
        method=method.name,
        model=workload.model.name,
        resolution=workload.resolution,
        n_pivots=len(workload.pivots),
    ):
        for i in range(len(workload.pivots)):
            with tracer.span("cd.pivot", index=i):
                last = run_cd(
                    workload.scene(i), grid, method,
                    device=device, costs=costs, config=config, workers=workers,
                )
            summaries.append(last.summary())

    out: dict = {"method": method.name, "n_pivots": len(summaries), "last_result": last}
    for key, val in summaries[0].items():
        if isinstance(val, (int, float)):
            out[key] = float(np.mean([s[key] for s in summaries]))
    return out
