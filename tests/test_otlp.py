"""OTLP-JSON export, the strict validator, and the cost CLI surfaces."""

from __future__ import annotations

import json

import pytest

from repro.obs.cli import main as obs_main
from repro.obs.context import TraceContext, new_span_id, new_trace_id, use_trace_context
from repro.obs.otlp import otlp_json, otlp_spans, to_otlp, validate_otlp
from repro.obs.report import build_report
from repro.obs.trace import Tracer


def _traced_tracer() -> Tracer:
    t = Tracer()
    with t.span("cd.run", method="AICA"):
        with t.span("cd.traversal"):
            pass
        with t.span("simt.replay", error="boom"):
            pass
    return t


class TestRender:
    def test_structure_and_validity(self):
        t = _traced_tracer()
        doc = to_otlp(t, service_name="repro", label="unit")
        assert validate_otlp(doc) == []
        spans = otlp_spans(doc)
        assert [s["name"] for s in spans] == ["cd.run", "cd.traversal", "simt.replay"]
        # Parent links follow the in-process tree.
        run, trav, simt = spans
        assert "parentSpanId" not in run
        assert trav["parentSpanId"] == run["spanId"]
        assert simt["parentSpanId"] == run["spanId"]
        assert len({s["traceId"] for s in spans}) == 1

    def test_times_are_string_nanos_and_ordered(self):
        doc = to_otlp(_traced_tracer())
        for s in otlp_spans(doc):
            assert isinstance(s["startTimeUnixNano"], str)
            assert int(s["endTimeUnixNano"]) >= int(s["startTimeUnixNano"])

    def test_error_attribute_becomes_error_status(self):
        doc = to_otlp(_traced_tracer())
        simt = otlp_spans(doc)[2]
        assert simt["status"]["code"] == 2
        assert "boom" in simt["status"]["message"]

    def test_attribute_typing(self):
        t = Tracer()
        with t.span("s", count=3, ratio=0.5, label="x", flag=True, items=[1, 2]):
            pass
        (span,) = otlp_spans(to_otlp(t))
        values = {kv["key"]: kv["value"] for kv in span["attributes"]}
        assert values["count"] == {"intValue": "3"}  # proto-JSON int64 = string
        assert values["ratio"] == {"doubleValue": 0.5}
        assert values["label"] == {"stringValue": "x"}
        assert values["flag"] == {"boolValue": True}
        assert values["items"]["arrayValue"]["values"][0] == {"intValue": "1"}

    def test_cpu_time_rides_as_attribute(self):
        spans = [{"name": "a", "t0": 0.0, "wall_s": 1.0, "cpu_s": 0.25,
                  "parent": -1, "attrs": {}}]
        (span,) = otlp_spans(to_otlp(spans))
        values = {kv["key"]: kv["value"] for kv in span["attributes"]}
        assert values["cpu_ms"] == {"doubleValue": 250.0}

    def test_legacy_spans_get_minted_deterministic_ids(self):
        legacy = [
            {"name": "a", "t0": 0.0, "wall_s": 1.0, "cpu_s": 0.0, "parent": -1,
             "attrs": {}},
            {"name": "b", "t0": 0.1, "wall_s": 0.5, "cpu_s": 0.0, "parent": 0,
             "attrs": {}},
        ]
        doc1 = to_otlp(legacy, label="r")
        doc2 = to_otlp(legacy, label="r")
        assert validate_otlp(doc1) == []
        assert doc1 == doc2  # deterministic
        a1, b1 = otlp_spans(doc1)
        assert b1["parentSpanId"] == a1["spanId"]

    def test_explicit_ids_win_over_index_links(self):
        ctx = TraceContext(trace_id=new_trace_id(), span_id=new_span_id())
        t = Tracer()
        with use_trace_context(ctx), t.span("served"):
            pass
        doc = to_otlp(t)
        (span,) = otlp_spans(doc)
        assert span["traceId"] == ctx.trace_id
        assert span["parentSpanId"] == ctx.span_id
        # The remote parent is outside the payload: flagged unless allowed.
        assert validate_otlp(doc) != []
        assert validate_otlp(doc, allow_unresolved_parents={ctx.span_id}) == []

    def test_json_serializes(self):
        json.loads(otlp_json(_traced_tracer()))


class TestValidator:
    def _valid_doc(self):
        return to_otlp(_traced_tracer())

    def test_rejects_non_document(self):
        assert validate_otlp([]) and validate_otlp("x") and validate_otlp({})

    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda s: s.pop("traceId"),
            lambda s: s.pop("startTimeUnixNano"),
            lambda s: s.update(traceId="0" * 32),  # all-zero
            lambda s: s.update(traceId="ABC"),  # wrong shape
            lambda s: s.update(spanId="1234"),  # short
            lambda s: s.update(parentSpanId="doesnotresolve00"),
            lambda s: s.update(startTimeUnixNano="9e99"),  # not integer nanos
            lambda s: s.update(kind=9),
            lambda s: s.update(status={"code": 7}),
            lambda s: s.update(attributes=[{"key": "k"}]),  # no value
            lambda s: s.update(
                attributes=[{"key": "k", "value": {"intValue": 3}}]
            ),  # int64 must be a string
        ],
    )
    def test_rejects_corruptions(self, corrupt):
        doc = self._valid_doc()
        corrupt(otlp_spans(doc)[0])
        assert validate_otlp(doc) != []

    def test_rejects_duplicate_span_ids(self):
        doc = self._valid_doc()
        spans = otlp_spans(doc)
        spans[1]["spanId"] = spans[0]["spanId"]
        assert any("duplicate" in p for p in validate_otlp(doc))

    def test_rejects_cross_trace_parent(self):
        doc = self._valid_doc()
        spans = otlp_spans(doc)
        spans[1]["traceId"] = new_trace_id()
        assert any("different trace" in p for p in validate_otlp(doc))

    def test_end_before_start(self):
        doc = self._valid_doc()
        s = otlp_spans(doc)[0]
        s["endTimeUnixNano"] = str(int(s["startTimeUnixNano"]) - 1)
        assert any("precedes" in p for p in validate_otlp(doc))


def _cost_report(tmp_path, *, with_cost: bool = True):
    t = Tracer()
    with t.span("cd.run"):
        pass
    if with_cost:
        t.record_span(
            "service.request", t0=0.0, wall_s=0.4,
            attrs={"cost.cpu_ms": 300.0, "cost.workspace_bytes": 4096,
                   "cost.queue_wait_ms": 2.0, "cost.served": "computed"},
        )
        t.record_span(
            "service.request", t0=0.5, wall_s=0.1,
            attrs={"cost.cpu_ms": 100.0, "cost.workspace_bytes": 1024,
                   "cost.queue_wait_ms": 1.0, "cost.served": "computed"},
        )
    report = build_report("unit", tracer=t)
    path = tmp_path / "report.json"
    report.save(path)
    return path


class TestCli:
    def test_export_otlp(self, tmp_path, capsys):
        path = _cost_report(tmp_path)
        out = tmp_path / "otlp.json"
        assert obs_main(["export", str(path), "--format", "otlp", "-o", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert validate_otlp(doc) == []
        assert {s["name"] for s in otlp_spans(doc)} == {"cd.run", "service.request"}

    def test_top_by_cost(self, tmp_path, capsys):
        path = _cost_report(tmp_path)
        assert obs_main(["top", str(path), "--by", "cost"]) == 0
        out = capsys.readouterr().out
        assert "service.request" in out
        assert "400.0ms" in out  # 300 + 100 attributed CPU-ms summed
        assert "cd.run" not in out.splitlines()[-1]  # no cost attrs -> not ranked

    def test_top_by_cost_without_cost_attrs(self, tmp_path, capsys):
        path = _cost_report(tmp_path, with_cost=False)
        assert obs_main(["top", str(path), "--by", "cost"]) == 0
        assert "no cost-attributed spans" in capsys.readouterr().out
