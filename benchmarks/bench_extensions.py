"""Section 6 extension (box-as-2-cylinders ICA) and the design ablations."""

from repro.bench.experiments import (
    ablation_bvh,
    ablation_costs,
    ablation_mapping,
    ablation_start_level,
    ablation_warp,
    am_overlap,
    boxica,
)


def test_boxica(benchmark, scale, record):
    result = benchmark.pedantic(boxica, args=(scale,), rounds=1, iterations=1)
    record(result)
    # The undecided (corner) fraction is small and shrinks with distance —
    # the Section 6 claim.
    by_r: dict[float, list] = {}
    for dist, r, pct in result.rows:
        by_r.setdefault(r, []).append(pct)
        assert pct < 25.0
    for fracs in by_r.values():
        assert fracs[-1] <= fracs[0]


def test_ablation_bvh(benchmark, scale, record):
    result = benchmark.pedantic(ablation_bvh, args=(scale,), rounds=1, iterations=1)
    record(result)
    rows = {r[0]: r for r in result.rows}
    # ICA pruning pays off on the BVH too (vs exact-only), by a wide margin.
    assert rows["BVH ICA"][3] < 0.5 * rows["BVH exact-only"][3]
    # The octree's solid-interior hit proofs keep its box-check count in the
    # same ballpark or better; at >=64^3 (where AICA's corner expansion has
    # room) the octree traversal also wins on time.
    if scale.default_resolution >= 64:
        assert rows["octree AICA"][3] < rows["BVH ICA"][3]


def test_am_overlap(benchmark, scale, record):
    result = benchmark.pedantic(am_overlap, args=(scale,), rounds=1, iterations=1)
    record(result)
    # Section 8's premise: consecutive pivots share most AM values.
    for model, n, mean_pct, min_pct, _acc in result.rows:
        assert mean_pct > 70.0, (model, mean_pct)


def test_ablation_costs(benchmark, scale, record):
    result = benchmark.pedantic(ablation_costs, args=(scale,), rounds=1, iterations=1)
    record(result)
    # The method ordering must be stable across cost perturbations: AICA and
    # MICA always ahead of PICA, which is ahead of both box methods.
    for row in result.rows:
        order = [name.strip() for name in row[-1].split("<")]
        assert order.index("PICA") < order.index("PBoxOpt") < order.index("PBox")
        assert order.index("AICA") < order.index("PICA")
        assert order.index("MICA") < order.index("PICA")


def test_ablation_mapping(benchmark, scale, record):
    result = benchmark.pedantic(ablation_mapping, args=(scale,), rounds=1, iterations=1)
    record(result)
    for method, t_orient, t_voxel, imb_o, imb_v in result.rows:
        # Section 4.1's choice: with the device saturated, the orientation
        # mapping wins and is far better balanced.
        assert t_orient < t_voxel, (method, t_orient, t_voxel)
        assert imb_o < imb_v


def test_ablation_warp(benchmark, scale, record):
    result = benchmark.pedantic(ablation_warp, args=(scale,), rounds=1, iterations=1)
    record(result)
    times = {w: t for w, t in result.rows}
    # Wider warps can only add divergence penalty (with cores fixed).
    assert times[1] <= times[32] * 1.001
    assert times[32] <= times[128] * 1.001


def test_ablation_start_level(benchmark, scale, record):
    result = benchmark.pedantic(
        ablation_start_level, args=(scale,), rounds=1, iterations=1
    )
    record(result)
    checks = {s: c for s, c, _ in result.rows}
    # Expanding the top levels increases total checks (the flat base scan) —
    # the trade the paper accepts for load balance.
    assert checks[5] >= checks[0]
