"""Tool model tests."""

import numpy as np
import pytest

from repro.tool.tool import Tool, ball_end_mill, paper_tool, straight_line_tool


class TestToolConstruction:
    def test_from_segments_stacking(self):
        t = Tool.from_segments([(1.0, 10.0), (2.0, 5.0)])
        np.testing.assert_allclose(t.z0, [0.0, 10.0])
        np.testing.assert_allclose(t.z1, [10.0, 15.0])
        np.testing.assert_allclose(t.radius, [1.0, 2.0])
        assert t.reach == 15.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Tool(np.array([0.0]), np.array([0.0]), np.array([1.0]))  # z1 == z0
        with pytest.raises(ValueError):
            Tool(np.array([0.0]), np.array([1.0]), np.array([0.0]))  # r == 0
        with pytest.raises(ValueError):
            Tool(np.zeros(0), np.zeros(0), np.zeros(0))  # empty

    def test_paper_tool_spec(self):
        """Section 5.1: radii (31.5, 20, 6.225, 6.35), heights (22.1, 78, 76.2, 25.4)."""
        t = paper_tool()
        assert t.n_cylinders == 4
        assert sorted(t.radius) == sorted([31.5, 20.0, 6.225, 6.35])
        heights = t.z1 - t.z0
        assert sorted(np.round(heights, 4)) == sorted([22.1, 78.0, 76.2, 25.4])
        assert t.reach == pytest.approx(25.4 + 76.2 + 78.0 + 22.1)
        assert t.z0[0] == 0.0  # cutter starts at the pivot

    def test_cylinders_materialization(self):
        t = ball_end_mill()
        cyls = t.cylinders(np.array([1.0, 2.0, 3.0]), np.array([0.0, 0.0, 1.0]))
        assert len(cyls) == t.n_cylinders
        np.testing.assert_allclose(cyls[0].pivot, [1, 2, 3])

    def test_profile_rectangles(self):
        t = paper_tool()
        rect = t.profile_rectangles()
        assert rect.shape == (4, 3)
        np.testing.assert_allclose(rect[:, 0], t.z0)


class TestToolContains:
    def test_axis_points(self):
        t = ball_end_mill(radius=3.0, flute=20.0, shank=60.0)
        pivot = np.zeros(3)
        d = np.array([0.0, 0.0, 1.0])
        assert t.contains(pivot, d, np.array([0.0, 0.0, 10.0]))
        assert t.contains(pivot, d, np.array([0.0, 0.0, 50.0]))
        assert not t.contains(pivot, d, np.array([0.0, 0.0, 81.0]))
        assert not t.contains(pivot, d, np.array([0.0, 0.0, -0.1]))

    def test_radial_limits(self):
        t = ball_end_mill(radius=3.0)
        pivot = np.zeros(3)
        d = np.array([0.0, 0.0, 1.0])
        assert t.contains(pivot, d, np.array([3.0, 0.0, 10.0]))
        assert not t.contains(pivot, d, np.array([3.01, 0.0, 10.0]))

    def test_matches_cylinder_union(self, rng):
        from repro.geometry.orientation import direction_from_angles

        t = paper_tool()
        pivot = np.array([2.0, -1.0, 0.5])
        d = direction_from_angles(1.1, 0.7)
        pts = rng.uniform(-60, 220, (400, 3))
        exp = np.zeros(len(pts), dtype=bool)
        for c in t.cylinders(pivot, d):
            exp |= c.contains(pts)
        np.testing.assert_array_equal(t.contains(pivot, d, pts), exp)

    def test_straight_line_tool(self):
        t = straight_line_tool(length=50.0)
        assert t.n_cylinders == 1
        assert t.reach == 50.0
        assert t.max_radius < 0.01
