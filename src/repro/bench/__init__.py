"""Benchmark harness: one generator per table/figure of the paper.

Each experiment function in :mod:`repro.bench.experiments` regenerates
the data behind one of the paper's tables or figures — same workloads,
same sweep axes, same reported quantities — at a configurable scale
(:mod:`repro.bench.config`; pure-Python substrate cannot run 2048^3 x
2000-pivot sweeps).  Results carry the paper's published values
alongside the measured ones so the report renderer
(:mod:`repro.bench.render`) prints paper-vs-measured rows, which is also
what EXPERIMENTS.md records.
"""

from repro.bench.config import BenchScale, current_scale
from repro.bench.runner import build_workload, run_workload, Workload
from repro.bench.render import render_table, render_series
from repro.bench import experiments

__all__ = [
    "BenchScale",
    "current_scale",
    "build_workload",
    "run_workload",
    "Workload",
    "render_table",
    "render_series",
    "experiments",
]
