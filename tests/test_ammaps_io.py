"""AM post-processing utilities and octree serialization."""

import numpy as np
import pytest

from repro.cd.ammaps import (
    best_orientation,
    clearance_depth,
    connected_regions,
    dilate_blocked,
    merge_accessible,
    safe_accessible,
)
from repro.octree.io import load_octree, save_octree


def _map(rows):
    """Build a bool map from '.'/'#' strings ('.' accessible)."""
    return np.array([[c == "." for c in row] for row in rows])


class TestDilateBlocked:
    def test_single_block_grows_cross(self):
        acc = _map(["....", "..#.", "....", "...."])
        out = dilate_blocked(acc, 1)
        exp = _map(["..#.", ".###", "..#.", "...."])
        np.testing.assert_array_equal(out, exp)

    def test_gamma_wraparound(self):
        acc = _map(["#...", "....", "...."])
        out = dilate_blocked(acc, 1)
        assert not out[0, 1]  # right neighbor
        assert not out[0, 3]  # wrapped left neighbor
        assert not out[1, 0]  # below
        assert out[2, 0]  # two away: untouched

    def test_phi_does_not_wrap(self):
        acc = _map(["#...", "....", "...."])
        out = dilate_blocked(acc, 1)
        assert out[2].all()  # bottom row untouched: no pole wraparound

    def test_zero_steps_identity(self):
        acc = _map([".#.", "...", "..."])
        np.testing.assert_array_equal(dilate_blocked(acc, 0), acc)

    def test_validation(self):
        with pytest.raises(ValueError):
            dilate_blocked(np.zeros(4, bool), 1)
        with pytest.raises(ValueError):
            dilate_blocked(np.zeros((2, 2), bool), -1)

    def test_safe_accessible_wraps_result(self, sphere_scene):
        from repro.cd import AICA, run_cd
        from repro.geometry.orientation import OrientationGrid

        r = run_cd(sphere_scene, OrientationGrid.square(8), AICA())
        safe = safe_accessible(r, 1)
        # eroding can only lose accessibility
        assert (safe <= r.accessibility_map).all()


class TestConnectedRegions:
    def test_two_regions(self):
        acc = _map(["..#..", "..#..", "..#.."])
        labels, n = connected_regions(acc)
        # gamma wraps: the left and right parts connect around the seam!
        assert n == 1

    def test_two_regions_no_wrap(self):
        acc = _map(["#.#.#", "#.#.#", "#.#.#"])
        labels, n = connected_regions(acc)
        assert n == 2
        assert labels[0, 1] != labels[0, 3]

    def test_blocked_cells_zero(self):
        acc = _map(["..", "##"])
        labels, n = connected_regions(acc)
        assert (labels[1] == 0).all()
        assert n == 1

    def test_empty(self):
        labels, n = connected_regions(np.zeros((3, 3), bool))
        assert n == 0
        assert (labels == 0).all()


class TestClearanceDepth:
    def test_depth_values(self):
        acc = _map(["#....", ".....", "....."])
        d = clearance_depth(acc)
        assert d[0, 0] == 0
        assert d[0, 1] == 1
        assert d[1, 1] == 2
        assert d[0, 4] == 1  # wraparound neighbor of the block

    def test_all_accessible(self):
        d = clearance_depth(np.ones((4, 6), bool))
        assert (d == 10).all()

    def test_best_orientation(self):
        acc = _map(["#....", ".....", ".....", ".....", "....#"])
        i, j = best_orientation(acc)
        assert acc[i, j]
        d = clearance_depth(acc)
        assert d[i, j] == d[np.where(acc)].max()

    def test_best_orientation_none(self):
        with pytest.raises(ValueError):
            best_orientation(np.zeros((2, 2), bool))


class TestMerge:
    def test_intersection_and_union(self):
        a = _map(["..", ".#"])
        b = _map([".#", ".."])
        inter = merge_accessible([a, b], "intersection")
        union = merge_accessible([a, b], "union")
        np.testing.assert_array_equal(inter, _map(["..", ".#"]) & _map([".#", ".."]))
        np.testing.assert_array_equal(union, a | b)

    def test_validation(self):
        with pytest.raises(ValueError):
            merge_accessible([], "union")
        with pytest.raises(ValueError):
            merge_accessible([np.zeros((2, 2), bool)], "xor")
        with pytest.raises(ValueError):
            merge_accessible([np.zeros((2, 2), bool), np.zeros((3, 3), bool)])


class TestOctreeIO:
    def test_roundtrip(self, head_tree_32, tmp_path):
        p = tmp_path / "tree.npz"
        save_octree(head_tree_32, p)
        loaded = load_octree(p)
        assert loaded.depth == head_tree_32.depth
        np.testing.assert_allclose(loaded.domain.lo, head_tree_32.domain.lo)
        for a, b in zip(loaded.levels, head_tree_32.levels):
            np.testing.assert_array_equal(a.codes, b.codes)
            np.testing.assert_array_equal(a.status, b.status)
            np.testing.assert_array_equal(a.child_start, b.child_start)

    def test_roundtrip_preserves_cd_results(self, head_tree_64_expanded, tmp_path):
        from repro.cd import AICA, Scene, run_cd
        from repro.geometry.orientation import OrientationGrid
        from repro.tool.tool import paper_tool

        p = tmp_path / "tree.npz"
        save_octree(head_tree_64_expanded, p)
        loaded = load_octree(p)
        pivot = np.array([0.0, -30.0, 5.0])
        g = OrientationGrid.square(6)
        a = run_cd(Scene(head_tree_64_expanded, paper_tool(), pivot), g, AICA())
        b = run_cd(Scene(loaded, paper_tool(), pivot), g, AICA())
        np.testing.assert_array_equal(a.collides, b.collides)

    def test_version_check(self, head_tree_32, tmp_path):
        p = tmp_path / "tree.npz"
        save_octree(head_tree_32, p)
        import numpy as np_

        data = dict(np_.load(p))
        data["format_version"] = np_.asarray(99)
        np_.savez(p, **data)
        with pytest.raises(ValueError):
            load_octree(p)

    def test_missing_array_is_clear_value_error(self, head_tree_32, tmp_path):
        # A truncated/corrupt file must raise ValueError naming the
        # missing array, not leak a bare KeyError from the archive.
        p = tmp_path / "tree.npz"
        save_octree(head_tree_32, p)
        data = dict(np.load(p))
        del data["codes_2"]
        np.savez(p, **data)
        with pytest.raises(ValueError, match=r"codes_2"):
            load_octree(p)

    def test_empty_archive_names_version_key(self, tmp_path):
        p = tmp_path / "empty.npz"
        np.savez(p, unrelated=np.zeros(3))
        with pytest.raises(ValueError, match=r"format_version"):
            load_octree(p)


class TestMergeModes:
    def test_single_map_identity_both_modes(self):
        m = _map([".#", ".."])
        for mode in ("intersection", "union"):
            np.testing.assert_array_equal(merge_accessible([m], mode), m)

    def test_many_maps_order_independent(self, rng):
        maps = [rng.random((5, 7)) > 0.4 for _ in range(4)]
        for mode in ("intersection", "union"):
            fwd = merge_accessible(maps, mode)
            rev = merge_accessible(maps[::-1], mode)
            np.testing.assert_array_equal(fwd, rev)

    def test_intersection_subset_of_union(self, rng):
        maps = [rng.random((6, 6)) > 0.5 for _ in range(3)]
        inter = merge_accessible(maps, "intersection")
        union = merge_accessible(maps, "union")
        assert not (inter & ~union).any()

    def test_inputs_not_mutated(self):
        a = _map(["..", ".."])
        b = _map(["##", "##"])
        a_copy = a.copy()
        merge_accessible([a, b], "intersection")
        np.testing.assert_array_equal(a, a_copy)

    def test_default_mode_is_intersection(self):
        a = _map(["..", ".#"])
        b = _map([".#", ".."])
        np.testing.assert_array_equal(merge_accessible([a, b]), a & b)


class TestBestOrientationTieBreak:
    def test_tie_breaks_toward_smallest_phi_gamma(self):
        # Two isolated accessible cells with identical clearance depth:
        # the winner must be the smallest (phi, gamma) index.
        acc = _map(["#####", "#.###", "###.#", "#####"])
        assert best_orientation(acc) == (1, 1)

    def test_tie_breaks_on_gamma_within_a_row(self):
        acc = _map(["#####", "#.#.#", "#####"])
        assert best_orientation(acc) == (1, 1)

    def test_uniform_map_gives_origin(self):
        assert best_orientation(np.ones((3, 4), bool)) == (0, 0)
