"""Per-replica health tracking: probes, passive signals, backoff.

The router must answer "who can serve this key *right now*" without
blocking a request on a network round-trip.  Health is therefore a
cached judgment, updated from two sides:

* **active probes** — :class:`HealthMonitor` periodically GETs each
  replica's ``/v1/healthz`` (through an injected prober, so tests use
  fakes).  Healthy/degraded replicas are probed every
  ``probe_interval_s``; a **down** replica is re-probed on an
  exponential backoff (``backoff_base_s`` doubling to
  ``backoff_max_s``) so a dead host costs a connection attempt every
  half-minute, not every second, while a restarted one is noticed
  within the backoff window.
* **passive signals** — every routed request is itself a probe.  The
  router reports transport failures (:class:`~repro.service.wire
  .ServiceUnreachable` / timeouts) as failures and any HTTP answer as
  a success, so a replica that dies mid-traffic is marked down after
  ``down_after`` consecutive failures without waiting for the prober.

The per-replica state machine:

    HEALTHY --failure--> DEGRADED --(down_after consecutive)--> DOWN
    DOWN --success--> DEGRADED --(up_after consecutive)--> HEALTHY

The DEGRADED middle state exists in both directions on purpose: one
blip should not take a replica out of rotation (the router still
prefers HEALTHY peers for hedging but keeps routing owned keys to a
DEGRADED owner), and one lucky probe should not instantly promote a
flapping replica back to full trust.

All transitions are counted (``cluster.health.to_<state>``) and the
current state is exported as a per-replica gauge, so a dashboard shows
membership the way the router sees it.
"""

from __future__ import annotations

import enum
import re
import threading
import time

from repro.obs.metrics import get_metrics

__all__ = ["ReplicaState", "ReplicaHealth", "HealthMonitor", "replica_label"]


class ReplicaState(enum.Enum):
    HEALTHY = "healthy"
    DEGRADED = "degraded"
    DOWN = "down"


_STATE_GAUGE = {ReplicaState.HEALTHY: 0, ReplicaState.DEGRADED: 1, ReplicaState.DOWN: 2}

_LABEL_RE = re.compile(r"[^A-Za-z0-9_]+")


def replica_label(replica: str) -> str:
    """A bounded metric label for a replica URL
    (``http://127.0.0.1:8091`` -> ``127_0_0_1_8091``)."""
    stripped = re.sub(r"^[a-z]+://", "", replica.strip().rstrip("/"))
    return _LABEL_RE.sub("_", stripped).strip("_") or "replica"


class ReplicaHealth:
    """The health state machine for one replica.

    Thread-safe; the clock is injectable so tests drive time explicitly.
    A fresh replica starts HEALTHY — optimism routes traffic immediately
    and the first failures demote it, which beats holding traffic until
    a probe succeeds.
    """

    def __init__(
        self,
        replica: str,
        *,
        down_after: int = 3,
        up_after: int = 2,
        probe_interval_s: float = 2.0,
        backoff_base_s: float = 0.5,
        backoff_max_s: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        if down_after < 1 or up_after < 1:
            raise ValueError("down_after and up_after must be >= 1")
        self.replica = replica
        self.label = replica_label(replica)
        self.down_after = int(down_after)
        self.up_after = int(up_after)
        self.probe_interval_s = float(probe_interval_s)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_max_s = float(backoff_max_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = ReplicaState.HEALTHY
        self._consecutive_failures = 0
        self._consecutive_successes = 0
        self._backoff_s = float(backoff_base_s)
        self._next_probe_at = self._clock()  # due immediately
        self._last_change_at = self._clock()
        self._export_state()

    # -- signals ----------------------------------------------------------

    def record_success(self) -> None:
        """A probe answered, or a routed request got *any* HTTP response."""
        with self._lock:
            self._consecutive_failures = 0
            self._consecutive_successes += 1
            self._backoff_s = self.backoff_base_s
            if self._state is ReplicaState.DOWN:
                self._transition(ReplicaState.DEGRADED)
                self._consecutive_successes = 1
            elif (
                self._state is ReplicaState.DEGRADED
                and self._consecutive_successes >= self.up_after
            ):
                self._transition(ReplicaState.HEALTHY)
            self._next_probe_at = self._clock() + self.probe_interval_s

    def record_failure(self) -> None:
        """A probe or routed request failed at the transport level."""
        with self._lock:
            self._consecutive_successes = 0
            self._consecutive_failures += 1
            if self._state is ReplicaState.DOWN:
                # Still dead: widen the re-probe backoff.
                self._backoff_s = min(self._backoff_s * 2.0, self.backoff_max_s)
            elif self._consecutive_failures >= self.down_after:
                self._transition(ReplicaState.DOWN)
                self._backoff_s = self.backoff_base_s
            elif self._state is ReplicaState.HEALTHY:
                self._transition(ReplicaState.DEGRADED)
            self._next_probe_at = self._clock() + (
                self._backoff_s
                if self._state is ReplicaState.DOWN
                else self.probe_interval_s
            )

    def _transition(self, to: ReplicaState) -> None:
        # caller holds the lock
        if to is self._state:
            return
        self._state = to
        self._last_change_at = self._clock()
        metrics = get_metrics()
        metrics.counter(f"cluster.health.to_{to.value}").inc()
        self._export_state()

    def _export_state(self) -> None:
        get_metrics().gauge(
            f"cluster.replica.{self.label}.state"
        ).set(_STATE_GAUGE[self._state])

    # -- queries ----------------------------------------------------------

    @property
    def state(self) -> ReplicaState:
        with self._lock:
            return self._state

    @property
    def routable(self) -> bool:
        """Should the router send owned keys here? DOWN means no."""
        with self._lock:
            return self._state is not ReplicaState.DOWN

    def probe_due(self, now: float | None = None) -> bool:
        with self._lock:
            return (self._clock() if now is None else now) >= self._next_probe_at

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "replica": self.replica,
                "state": self._state.value,
                "consecutive_failures": self._consecutive_failures,
                "consecutive_successes": self._consecutive_successes,
                "backoff_s": self._backoff_s if self._state is ReplicaState.DOWN else 0.0,
                "since_change_s": max(0.0, self._clock() - self._last_change_at),
            }


class HealthMonitor:
    """Active prober over a set of :class:`ReplicaHealth` machines.

    ``probe`` is a callable ``(replica_url) -> bool`` — True means the
    replica answered its health check.  :meth:`tick` probes every
    replica whose check is due (tests call it directly with a fake
    clock); :meth:`start` runs ticks on a daemon thread every
    ``tick_interval_s`` until :meth:`stop`.
    """

    def __init__(
        self,
        replicas,
        probe,
        *,
        probe_interval_s: float = 2.0,
        down_after: int = 3,
        up_after: int = 2,
        backoff_base_s: float = 0.5,
        backoff_max_s: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        self._probe = probe
        self._clock = clock
        self._kwargs = dict(
            down_after=down_after,
            up_after=up_after,
            probe_interval_s=probe_interval_s,
            backoff_base_s=backoff_base_s,
            backoff_max_s=backoff_max_s,
            clock=clock,
        )
        self._lock = threading.Lock()
        self._health: dict[str, ReplicaHealth] = {
            r: ReplicaHealth(r, **self._kwargs) for r in replicas
        }
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- membership -------------------------------------------------------

    def add(self, replica: str) -> None:
        with self._lock:
            if replica not in self._health:
                self._health[replica] = ReplicaHealth(replica, **self._kwargs)

    def get(self, replica: str) -> ReplicaHealth:
        with self._lock:
            health = self._health.get(replica)
            if health is None:
                health = self._health[replica] = ReplicaHealth(
                    replica, **self._kwargs
                )
            return health

    def replicas(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._health)

    # -- passive signals (forwarded by the router) ------------------------

    def record_success(self, replica: str) -> None:
        self.get(replica).record_success()

    def record_failure(self, replica: str) -> None:
        self.get(replica).record_failure()

    def state(self, replica: str) -> ReplicaState:
        return self.get(replica).state

    def routable(self, replica: str) -> bool:
        return self.get(replica).routable

    # -- active probing ---------------------------------------------------

    def tick(self) -> int:
        """Probe every replica whose check is due; returns probes fired."""
        now = self._clock()
        with self._lock:
            due = [h for h in self._health.values() if h.probe_due(now)]
        fired = 0
        for health in due:
            fired += 1
            get_metrics().counter("cluster.health.probes").inc()
            try:
                ok = bool(self._probe(health.replica))
            except Exception:
                ok = False
            if ok:
                health.record_success()
            else:
                health.record_failure()
        return fired

    def start(self, tick_interval_s: float = 0.25) -> None:
        """Run :meth:`tick` on a daemon thread until :meth:`stop`."""
        if self._thread is not None:
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(tick_interval_s):
                self.tick()

        self._thread = threading.Thread(
            target=loop, name="repro-cluster-health", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def snapshot(self) -> dict:
        """Per-replica health, JSON-friendly (``/v1/healthz`` payload)."""
        with self._lock:
            health = list(self._health.values())
        return {h.replica: h.snapshot() for h in health}
