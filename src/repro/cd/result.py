"""CD run results: the accessibility map plus full instrumentation."""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.engine.counters import StageBreakdown, ThreadCounters
from repro.geometry.orientation import OrientationGrid

if TYPE_CHECKING:  # imported lazily to avoid the traversal<->result cycle
    from repro.cd.traversal import TraversalConfig

__all__ = ["CDResult"]


@dataclass
class CDResult:
    """Output of one accessibility-map generation.

    ``collides[t]`` is True when orientation ``t`` (row-major over the
    grid) drives the tool into the target — a *black* point of the
    paper's Figure 2.  ``timing`` carries both the simulated GPU kernel
    time (the reproduction's comparable-to-paper metric) and the measured
    NumPy wall time.
    """

    method: str
    grid: OrientationGrid
    collides: np.ndarray  # (M,) bool
    counters: ThreadCounters
    timing: StageBreakdown
    device_name: str
    table_entries: int = 0
    config: "TraversalConfig | None" = None  # the run's traversal parameters

    @property
    def accessibility_map(self) -> np.ndarray:
        """The AM as an ``(m, n)`` boolean array, True = accessible."""
        return self.grid.unflatten(~self.collides)

    @property
    def n_accessible(self) -> int:
        return int((~self.collides).sum())

    @property
    def n_colliding(self) -> int:
        return int(self.collides.sum())

    def render_ascii(self, accessible: str = ".", blocked: str = "#") -> str:
        """Figure 2 as text: rows are phi (top = toward +z), columns gamma."""
        am = self.accessibility_map
        return "\n".join(
            "".join(accessible if cell else blocked for cell in row) for row in am
        )

    def summary(self) -> dict:
        """Flat metrics dict, the unit the bench harness aggregates."""
        c = self.counters
        return {
            "method": self.method,
            "orientations": self.grid.size,
            "colliding": self.n_colliding,
            "total_checks": c.total_checks,
            "box_checks": c.total_box_checks,
            "ica_efficiency": c.ica_efficiency(),
            "corner_cases": int(c.corner_cases.sum()),
            "critical_thread_checks": int(c.nodes_visited.max(initial=0)),
            "sim_precompute_ms": self.timing.ica_precompute_s * 1e3,
            "sim_cd_ms": self.timing.cd_tests_s * 1e3,
            "sim_total_ms": self.timing.total_s * 1e3,
            "wall_ms": self.timing.wall_s * 1e3,
            "table_entries": self.table_entries,
        }

    def to_dict(self) -> dict:
        """Self-describing JSON form, consumed by :mod:`repro.obs.report`.

        Carries the traversal config (when the run recorded one) so a
        serialized result states *how* it was produced; the per-thread
        arrays are summarized, not dumped (a 256^2 map would be 65k rows).
        """
        return {
            "method": self.method,
            "device": self.device_name,
            "grid": {"m": self.grid.m, "n": self.grid.n, "size": self.grid.size},
            "config": asdict(self.config) if self.config is not None else None,
            "table_entries": self.table_entries,
            "n_accessible": self.n_accessible,
            "n_colliding": self.n_colliding,
            "timing": self.timing.to_dict(),
            "summary": self.summary(),
        }
