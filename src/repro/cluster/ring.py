"""Deterministic consistent-hash ring for scene → replica placement.

The cluster's placement rule must satisfy three properties at once:

* **deterministic** — every router (and every *future* router, after a
  restart, on another host) maps the same scene digest to the same
  replica with no coordination.  The ring hashes with SHA-256, so the
  mapping is independent of ``PYTHONHASHSEED``, process, platform, and
  Python version.
* **balanced** — each replica is placed at ``vnodes`` pseudo-random
  points on a 64-bit circle, so keys spread near-uniformly even with
  two or three replicas (the variance shrinks as ``1/sqrt(vnodes)``).
* **stable under membership change** — when a replica joins, it steals
  keys *only* for itself (every key keeps its owner or moves to the
  newcomer); when one leaves, only its own keys move (each to the next
  point on the circle).  Keys never shuffle between surviving replicas
  — the property that keeps N-1 replicas' scene registries, ICA
  tables, and result caches warm through a membership change.  The
  test suite asserts these as exact invariants, not statistics
  (``tests/test_cluster.py``), and :func:`remapped_fraction` measures
  the churn for capacity planning.

Lookup is a binary search over the sorted point array — O(log(R·V)) —
and :meth:`HashRing.preference` walks the circle clockwise collecting
*distinct* replicas, giving the router its failover/hedging order: the
owner first, then the replica that would inherit the key if the owner
vanished, and so on.
"""

from __future__ import annotations

import bisect
import hashlib
import threading

__all__ = ["HashRing", "remapped_fraction"]


def _point(label: str) -> int:
    """A position on the 64-bit circle for one vnode label."""
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big"
    )


def key_position(key: str) -> int:
    """Where ``key`` (a scene content digest) lands on the circle."""
    return _point("key:" + key)


class HashRing:
    """Consistent-hash ring mapping string keys to replica names.

    ``replicas`` are opaque strings (the router uses base URLs).
    ``vnodes`` is the number of points each replica occupies on the
    circle; 64 keeps the max/mean load imbalance under ~20% for small
    clusters while costing only R·64 longs of memory.

    Thread-safe: lookups take a snapshot under the same lock
    ``add``/``remove`` mutate under.
    """

    def __init__(self, replicas=(), *, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self._lock = threading.Lock()
        self._points: list[int] = []  # sorted circle positions
        self._owners: list[str] = []  # replica at the same index
        self._replicas: list[str] = []  # insertion-ordered membership
        for replica in replicas:
            self.add(replica)

    # -- membership -------------------------------------------------------

    def add(self, replica: str) -> None:
        """Place ``replica`` on the ring (idempotent)."""
        if not replica or not isinstance(replica, str):
            raise ValueError(f"replica must be a non-empty string, got {replica!r}")
        with self._lock:
            if replica in self._replicas:
                return
            self._replicas.append(replica)
            for v in range(self.vnodes):
                pos = _point(f"replica:{replica}#{v}")
                i = bisect.bisect_left(self._points, pos)
                # SHA-256 collisions between distinct labels are not a
                # realistic concern; ties (same replica re-added) were
                # already filtered above.
                self._points.insert(i, pos)
                self._owners.insert(i, replica)

    def remove(self, replica: str) -> None:
        """Take ``replica`` off the ring (idempotent)."""
        with self._lock:
            if replica not in self._replicas:
                return
            self._replicas.remove(replica)
            keep = [
                (p, o)
                for p, o in zip(self._points, self._owners)
                if o != replica
            ]
            self._points = [p for p, _ in keep]
            self._owners = [o for _, o in keep]

    def replicas(self) -> tuple[str, ...]:
        """Current membership, in insertion order."""
        with self._lock:
            return tuple(self._replicas)

    def __len__(self) -> int:
        with self._lock:
            return len(self._replicas)

    def __contains__(self, replica: str) -> bool:
        with self._lock:
            return replica in self._replicas

    # -- lookup -----------------------------------------------------------

    def owner(self, key: str) -> str:
        """The replica owning ``key``: the first point at or clockwise
        of the key's position.  Raises :class:`LookupError` on an empty
        ring."""
        pref = self.preference(key, 1)
        if not pref:
            raise LookupError("hash ring is empty")
        return pref[0]

    def preference(self, key: str, n: int | None = None) -> list[str]:
        """The first ``n`` *distinct* replicas clockwise of ``key``.

        Index 0 is the owner; index 1 is the replica that would inherit
        the key if the owner left — the router's failover and hedging
        order.  ``n=None`` returns every replica.
        """
        pos = key_position(key)
        with self._lock:
            if not self._points:
                return []
            limit = len(self._replicas) if n is None else min(n, len(self._replicas))
            start = bisect.bisect_left(self._points, pos)
            out: list[str] = []
            seen: set[str] = set()
            for step in range(len(self._points)):
                owner = self._owners[(start + step) % len(self._points)]
                if owner not in seen:
                    seen.add(owner)
                    out.append(owner)
                    if len(out) >= limit:
                        break
            return out

    # -- introspection ----------------------------------------------------

    def describe(self) -> dict:
        """A JSON-friendly snapshot (the router's ``/v1/ring`` payload)."""
        with self._lock:
            return {
                "replicas": list(self._replicas),
                "vnodes": self.vnodes,
                "points": len(self._points),
            }


def remapped_fraction(before: HashRing, after: HashRing, keys) -> float:
    """The fraction of ``keys`` whose owner differs between two rings.

    Consistent hashing promises this stays near ``1/R`` for a single
    join/leave on an ``R``-replica ring (versus ~``(R-1)/R`` for modulo
    sharding); the tests gate it.
    """
    keys = list(keys)
    if not keys:
        return 0.0
    moved = sum(1 for k in keys if before.owner(k) != after.owner(k))
    return moved / len(keys)
