"""JSON/HTTP front end and the repro-loadgen report pipeline.

A real :class:`ServiceHTTPServer` runs on a loopback port (0 = ephemeral)
for the whole module; tests talk to it with urllib only — the same
stdlib surface external clients use.
"""

from __future__ import annotations

import base64
import io
import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.cd.methods import method_by_name
from repro.cd.traversal import run_cd
from repro.geometry.orientation import OrientationGrid
from repro.octree.io import save_octree
from repro.service import Service, serve
from repro.service.http import scene_from_request, tool_from_spec


@pytest.fixture(scope="module")
def server(sphere_scene):
    svc = Service(workers=1, max_queue=8)
    digest = svc.register_scene(sphere_scene)
    httpd = serve(svc, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{httpd.server_address[1]}"
    yield base, digest
    httpd.shutdown()
    httpd.server_close()
    svc.close()


def _post(url: str, body: dict):
    req = urllib.request.Request(
        url, data=json.dumps(body).encode(), headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _get(url: str):
    with urllib.request.urlopen(url, timeout=60) as resp:
        return resp.status, json.loads(resp.read())


class TestEndpoints:
    def test_healthz(self, server):
        base, _ = server
        status, body = _get(f"{base}/v1/healthz")
        assert status == 200 and body["status"] == "ok"
        assert body["scenes"] >= 1

    def test_metrics(self, server):
        base, _ = server
        status, body = _get(f"{base}/v1/metrics")
        assert status == 200
        assert body["service.registry.scenes"]["type"] == "gauge"

    def test_unknown_route(self, server):
        base, _ = server
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(f"{base}/v1/nope")
        assert exc.value.code == 404

    def test_register_roundtrip_digest(self, server, sphere_scene):
        base, digest = server
        buf = io.BytesIO()
        save_octree(sphere_scene.tree, buf)
        status, body = _post(f"{base}/v1/scenes", {
            "npz_b64": base64.b64encode(buf.getvalue()).decode(),
            "tool": "paper",
            "pivot": sphere_scene.pivot.tolist(),
        })
        assert status == 200
        # Content addressing: the uploaded copy is the registered scene.
        assert body["scene"] == digest
        assert body["depth"] == sphere_scene.tree.depth

    def test_register_validation(self, server):
        base, _ = server
        status, body = _post(f"{base}/v1/scenes", {"pivot": [0, 0, 1]})
        assert status == 400 and "npz_b64" in body["error"]
        status, body = _post(f"{base}/v1/scenes", {"model": "head"})
        assert status == 400 and "pivot" in body["error"]
        status, body = _post(
            f"{base}/v1/scenes",
            {"model": "not_a_model", "pivot": [0, 0, 1]},
        )
        assert status == 400 and "unknown model" in body["error"]

    def test_query_served_map_matches_direct(self, server, sphere_scene):
        base, digest = server
        status, body = _post(f"{base}/v1/cd", {
            "scene": digest, "grid": [10, 10], "method": "AICA",
        })
        assert status == 200
        direct = run_cd(sphere_scene, OrientationGrid(10, 10), method_by_name("AICA"))
        assert np.array_equal(
            np.asarray(body["map"], dtype=bool), direct.accessibility_map
        )
        assert body["n_accessible"] == direct.n_accessible
        # Same query again: a cache hit, same payload.
        status, again = _post(f"{base}/v1/cd", {
            "scene": digest, "grid": [10, 10], "method": "AICA",
        })
        assert status == 200 and again["cached"] is True
        assert again["map"] == body["map"]

    def test_query_include_map_false(self, server):
        base, digest = server
        status, body = _post(f"{base}/v1/cd", {
            "scene": digest, "grid": [10, 10], "method": "AICA",
            "include_map": False,
        })
        assert status == 200 and "map" not in body
        assert "n_accessible" in body

    def test_query_unknown_scene_404(self, server):
        base, _ = server
        status, body = _post(f"{base}/v1/cd", {"scene": "f" * 64, "grid": [4, 4]})
        assert status == 404 and "unknown scene" in body["error"]

    def test_query_bad_spec_400(self, server):
        base, digest = server
        status, body = _post(f"{base}/v1/cd", {"scene": digest, "gird": [4, 4]})
        assert status == 400 and "unknown query field" in body["error"]
        status, body = _post(f"{base}/v1/cd", {"scene": digest, "method": "NOPE"})
        assert status == 400 and "unknown method" in body["error"]

    def test_non_json_body_400(self, server):
        base, _ = server
        req = urllib.request.Request(
            f"{base}/v1/cd", data=b"not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=60)
        assert exc.value.code == 400


class TestSceneParsing:
    def test_tool_specs(self):
        assert tool_from_spec(None).name == tool_from_spec("paper").name
        assert tool_from_spec("ball").name.startswith("endmill")
        custom = tool_from_spec({"segments": [[1.0, 5.0], [2.0, 10.0]], "name": "t"})
        assert custom.n_cylinders == 2
        with pytest.raises(ValueError, match="tool"):
            tool_from_spec("chainsaw")

    def test_exactly_one_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            scene_from_request({"pivot": [0, 0, 1]})
        with pytest.raises(ValueError, match="exactly one"):
            scene_from_request({
                "model": "head", "path": "x.npz", "pivot": [0, 0, 1],
            })

    def test_model_source_builds_scene(self):
        scene = scene_from_request({
            "model": "head", "resolution": 16, "pivot": [0, -30, 5],
        })
        assert scene.tree.depth == 4
        assert scene.pivot.tolist() == [0.0, -30.0, 5.0]


class TestLoadgenReport:
    def test_loadgen_emits_gateable_run_report(self, server, tmp_path):
        from repro.obs.report import compare, load_report
        from repro.service.cli import main_loadgen

        base, digest = server
        out = tmp_path / "loadgen.json"
        code = main_loadgen([
            "--url", base, "--scene", digest, "--pivot", "0", "0", "21",
            "-n", "12", "-c", "4", "--distinct", "2",
            "--grid", "6", "6", "--json", str(out),
        ])
        assert code == 0

        report = load_report(out)
        assert report.schema == "repro.obs.report/v1"
        assert report.label == "loadgen"
        assert report.metrics["loadgen.ok"]["value"] == 12
        assert report.metrics["loadgen.p95_ms"]["type"] == "counter"
        assert report.metrics["loadgen.rps"]["value"] > 0
        assert 0.0 <= report.metrics["loadgen.cache_hit_rate"]["value"] <= 1.0
        (row,) = report.results[0]["rows"]
        assert row[0] == 12 and row[1] == 12

        # The report must flow through the standard regression gate.
        comparison = compare(report, report)
        assert not comparison.regressions


def _post_raw(url: str, body: dict, *, headers: dict | None = None):
    """POST returning ``(status, response_headers, parsed_body)``."""
    hdrs = {"Content-Type": "application/json"}
    hdrs.update(headers or {})
    req = urllib.request.Request(url, data=json.dumps(body).encode(), headers=hdrs)
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


class TestRequestIds:
    def test_inbound_request_id_honored(self, server):
        base, digest = server
        status, headers, body = _post_raw(
            f"{base}/v1/cd",
            {"scene": digest, "grid": [10, 10], "method": "AICA"},
            headers={"X-Request-Id": "caller-supplied-id-42"},
        )
        assert status == 200
        assert headers["X-Request-Id"] == "caller-supplied-id-42"
        assert body["request_id"] == "caller-supplied-id-42"

    def test_generated_request_id_is_hex(self, server):
        base, _ = server
        status, headers, _ = _post_raw(
            f"{base}/v1/cd", {"scene": "f" * 64, "grid": [4, 4]}
        )
        assert status == 404
        rid = headers["X-Request-Id"]
        assert len(rid) == 32 and set(rid) <= set("0123456789abcdef")

    def test_error_responses_carry_the_id_too(self, server):
        base, _ = server
        with urllib.request.urlopen(f"{base}/v1/healthz", timeout=60) as resp:
            assert resp.headers["X-Request-Id"]

    @pytest.mark.parametrize(
        "hostile",
        [
            "id with spaces",
            "semi;colons",
            "x" * 65,  # over the length bound
            "curl/7.88 injected",
            "../../etc/passwd",
        ],
    )
    def test_hostile_request_id_replaced(self, server, hostile):
        # Header/log injection fence: anything outside [A-Za-z0-9_-]{1,64}
        # is dropped and a fresh ID minted instead of echoed verbatim.
        base, digest = server
        status, headers, body = _post_raw(
            f"{base}/v1/cd",
            {"scene": digest, "grid": [10, 10], "method": "AICA"},
            headers={"X-Request-Id": hostile},
        )
        assert status == 200
        echoed = headers["X-Request-Id"]
        assert echoed != hostile
        assert len(echoed) == 32 and set(echoed) <= set("0123456789abcdef")


class TestErrorFence:
    def test_unhandled_exception_becomes_json_500(self, server, monkeypatch):
        from repro.obs.metrics import get_metrics

        base, digest = server

        def explode(self, spec, *, timeout=None, request_id=None, trace_ctx=None):
            raise RuntimeError("synthetic handler crash")

        monkeypatch.setattr(Service, "query", explode)
        errors_before = get_metrics().counter("service.errors").value
        status, headers, body = _post_raw(
            f"{base}/v1/cd",
            {"scene": digest, "grid": [10, 10], "method": "AICA"},
            headers={"X-Request-Id": "crash-probe"},
        )
        assert status == 500
        assert "synthetic handler crash" in body["error"]
        assert body["request_id"] == "crash-probe"
        assert headers["X-Request-Id"] == "crash-probe"
        assert get_metrics().counter("service.errors").value == errors_before + 1
        assert get_metrics().counter("service.errors.v1.cd.500").value >= 1
        # The fence is per-request: the server keeps serving afterwards.
        monkeypatch.undo()
        status, body = _get(f"{base}/v1/healthz")
        assert status == 200 and body["status"] == "ok"


class TestAccessLogE2E:
    def test_one_line_per_request_matching_header(self, server, tmp_path):
        from repro.obs.log import AccessLog, use_access_log

        base, digest = server
        path = tmp_path / "access.log"
        log = AccessLog(path=str(path))
        with use_access_log(log):
            _, headers, _ = _post_raw(
                f"{base}/v1/cd", {"scene": digest, "grid": [10, 10], "method": "AICA"}
            )
            _get(f"{base}/v1/healthz")
            # The handler logs *after* the response is on the wire, so the
            # client can outrun the line hitting the file; wait it out.
            deadline = time.monotonic() + 5.0
            while (
                path.read_text().count("\n") < 2 and time.monotonic() < deadline
            ):
                time.sleep(0.01)
        log.close()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == 2
        cd, hz = lines
        assert cd["route"] == "/v1/cd" and cd["method"] == "POST"
        assert cd["id"] == headers["X-Request-Id"]
        assert cd["status"] == 200 and cd["ms"] > 0
        assert cd["served"] in {"cache", "coalesced", "computed"}
        assert cd["scene"] == digest[:12]
        # Triage fields: the trace the request belongs to and how long it
        # sat in the dispatch queue, joinable against exported traces.
        assert len(cd["trace_id"]) == 32 and set(cd["trace_id"]) <= set(
            "0123456789abcdef"
        )
        assert cd["queue_wait_ms"] >= 0
        assert hz["route"] == "/v1/healthz" and hz["method"] == "GET"
        assert len(hz["trace_id"]) == 32


class TestWindowAndPrometheus:
    def test_healthz_reports_window(self, server):
        base, digest = server
        _post(f"{base}/v1/cd", {"scene": digest, "grid": [10, 10], "method": "AICA"})
        status, body = _get(f"{base}/v1/healthz")
        assert status == 200
        window = body["window"]
        assert set(window) == {"1s", "10s", "60s"}
        assert window["60s"]["count"] >= 1
        assert window["60s"]["p95_ms"] > 0

    def test_metrics_probes_stay_out_of_the_window(self, server):
        base, _ = server
        _, before = _get(f"{base}/v1/healthz")
        for _ in range(3):
            _get(f"{base}/v1/metrics")
            _get(f"{base}/v1/healthz")
        _, after = _get(f"{base}/v1/healthz")
        assert after["window"]["60s"]["count"] == before["window"]["60s"]["count"]

    def test_prometheus_exposition_parses_and_agrees(self, server):
        from repro.obs.expo import parse_prometheus, snapshot_parity_problems

        base, digest = server
        _post(f"{base}/v1/cd", {"scene": digest, "grid": [10, 10], "method": "AICA"})
        _, snapshot = _get(f"{base}/v1/metrics")
        with urllib.request.urlopen(
            f"{base}/v1/metrics?format=prometheus", timeout=60
        ) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith("text/plain")
            text = resp.read().decode("utf-8")
        families = parse_prometheus(text)
        assert "service_registry_scenes" in families
        assert "service_window_60s_rps" in families
        assert snapshot_parity_problems(snapshot, families) == []

    def test_unknown_format_is_400(self, server):
        base, _ = server
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(f"{base}/v1/metrics?format=xml", timeout=60)
        assert exc.value.code == 400


class TestWatch:
    def test_watch_once_renders_live_frame(self, server, capsys):
        from repro.obs.cli import main as obs_main

        base, digest = server
        _post(f"{base}/v1/cd", {"scene": digest, "grid": [10, 10], "method": "AICA"})
        assert obs_main(["watch", base, "--once"]) == 0
        out = capsys.readouterr().out
        assert f"repro-serve @ {base}" in out
        assert "rps" in out and "p95ms" in out
        assert "cache hit rate" in out
        assert "(first poll)" in out

    def test_watch_frames_shows_deltas(self, server, capsys):
        from repro.obs.cli import main as obs_main

        base, digest = server
        code = obs_main(["watch", base, "--frames", "2", "--interval", "0.05"])
        assert code == 0
        assert "top deltas" in capsys.readouterr().out

    def test_watch_unreachable_url_exits_2(self, capsys):
        from repro.obs.cli import main as obs_main

        assert obs_main(["watch", "http://127.0.0.1:1", "--once"]) == 2
        assert "cannot reach" in capsys.readouterr().err


class TestDistributedTracing:
    """e2e: inbound traceparent through a workers=2 server and back out."""

    @pytest.fixture(scope="class")
    def traced_server(self, sphere_scene):
        svc = Service(workers=2, max_queue=8)
        digest = svc.register_scene(sphere_scene)
        httpd = serve(svc, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        yield base, digest
        httpd.shutdown()
        httpd.server_close()
        svc.close()

    def test_sampled_request_traces_end_to_end(self, traced_server, sphere_scene):
        from repro.obs.context import new_span_id, new_trace_id, parse_traceparent
        from repro.obs.otlp import otlp_spans, to_otlp, validate_otlp
        from repro.obs.trace import Tracer, use_tracer

        base, digest = traced_server
        tid, caller_span = new_trace_id(), new_span_id()
        tracer = Tracer()
        with use_tracer(tracer):
            status, headers, body = _post_raw(
                f"{base}/v1/cd",
                {"scene": digest, "grid": [7, 7], "method": "AICA"},
                headers={"traceparent": f"00-{tid}-{caller_span}-01"},
            )
        assert status == 200

        # The response echoes a valid traceparent on the caller's trace.
        echo = parse_traceparent(headers["traceparent"])
        assert echo is not None and echo.trace_id == tid and echo.sampled

        # Cost attribution rides in the response body.
        cost = body["cost"]
        assert cost["served"] == "computed"
        assert cost["cpu_ms"] > 0 and cost["workspace_bytes"] > 0
        assert cost["queue_wait_ms"] >= 0

        # Every recorded span — including the absorbed pool-worker spans —
        # carries the propagated trace ID.
        spans = tracer.to_dicts()
        assert spans and all(s["trace_id"] == tid for s in spans)
        assert any("pool_worker" in s["attrs"] for s in spans)

        # The request span is the one the echo names, hangs under the
        # caller's span, and carries all three cost attributes.
        (req,) = [s for s in spans if s["name"] == "service.request"]
        assert req["span_id"] == echo.span_id
        assert req["parent_span_id"] == caller_span
        for key in ("cost.cpu_ms", "cost.workspace_bytes", "cost.queue_wait_ms"):
            assert key in req["attrs"]

        # The exported OTLP payload passes the strict validator; the only
        # unresolved parent is the caller's remote span.
        doc = to_otlp(tracer, service_name="repro-serve", label="e2e")
        assert validate_otlp(doc, allow_unresolved_parents={caller_span}) == []
        assert all(s["traceId"] == tid for s in otlp_spans(doc))

        # Tracing sampled-in does not perturb the served map.
        direct = run_cd(sphere_scene, OrientationGrid(7, 7), method_by_name("AICA"))
        assert np.array_equal(
            np.asarray(body["map"], dtype=bool), direct.accessibility_map
        )

    def test_unsampled_request_same_map_no_spans(self, traced_server, sphere_scene):
        from repro.obs.context import new_span_id, new_trace_id, parse_traceparent
        from repro.obs.trace import Tracer, use_tracer

        base, digest = traced_server
        tid, caller_span = new_trace_id(), new_span_id()
        tracer = Tracer()
        with use_tracer(tracer):
            status, headers, body = _post_raw(
                f"{base}/v1/cd",
                {"scene": digest, "grid": [8, 8], "method": "AICA"},
                headers={"traceparent": f"00-{tid}-{caller_span}-00"},
            )
        assert status == 200
        echo = parse_traceparent(headers["traceparent"])
        assert echo is not None
        assert echo.trace_id == tid and not echo.sampled
        # Sampled-out: the decision propagates downstream, nothing recorded.
        assert all(s["trace_id"] != tid for s in tracer.to_dicts())
        # ... and the answer is still byte-identical to the direct run.
        direct = run_cd(sphere_scene, OrientationGrid(8, 8), method_by_name("AICA"))
        assert np.array_equal(
            np.asarray(body["map"], dtype=bool), direct.accessibility_map
        )

    def test_sampling_counters_account_for_requests(self, traced_server):
        from repro.obs.context import new_span_id, new_trace_id
        from repro.obs.metrics import get_metrics

        base, digest = traced_server
        metrics = get_metrics()
        sampled0 = metrics.counter("service.trace.sampled").value
        dropped0 = metrics.counter("service.trace.dropped").value
        for flags in ("01", "00"):
            tid, sid = new_trace_id(), new_span_id()
            status, _, _ = _post_raw(
                f"{base}/v1/cd",
                {"scene": digest, "grid": [6, 6], "method": "AICA"},
                headers={"traceparent": f"00-{tid}-{sid}-{flags}"},
            )
            assert status == 200
        assert metrics.counter("service.trace.sampled").value == sampled0 + 1
        assert metrics.counter("service.trace.dropped").value == dropped0 + 1


class TestLoadgenStatusCounts:
    def test_report_carries_status_counts_and_prometheus_check(
        self, server, tmp_path, capsys
    ):
        from repro.obs.report import load_report
        from repro.service.cli import main_loadgen

        base, digest = server
        out = tmp_path / "loadgen.json"
        code = main_loadgen([
            "--url", base, "--scene", digest, "--pivot", "0", "0", "21",
            "-n", "8", "-c", "2", "--distinct", "2",
            "--grid", "6", "6", "--json", str(out),
            "--prometheus-check",
        ])
        assert code == 0
        report = load_report(out)
        assert report.metrics["loadgen.status.200"]["value"] == 8
        assert report.meta["status_counts"] == {"200": 8}
        assert report.meta["first_error"] is None
        printed = capsys.readouterr().out
        assert "status codes: 200×8" in printed
        assert "prometheus parity check OK" in printed
