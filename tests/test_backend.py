"""The array-backend seam: selection, staging discipline, equivalence.

The backend contract under test has two halves.  For the ``numpy``
backend the kernels must be *untouched* — zero staging, zero copies,
byte-identical everything.  For every other backend the float
comparisons relax to allclose but maps and per-thread counters stay
exact, because they are boolean outcomes of identical comparisons; the
``numpy_portable`` backend (numpy namespace driven through the portable
code paths) makes that claim testable without installing anything.
"""

import numpy as np
import pytest

import repro.cd.traversal as trav
from repro.cd.methods import METHODS
from repro.cd.traversal import TraversalConfig, resolve_backend, run_cd
from repro.engine.backend import (
    BACKEND_NAMES,
    ArrayBackend,
    BackendUnavailable,
    available_backends,
    export_backend_metrics,
    get_backend,
)
from repro.engine.counters import ThreadCounters
from repro.geometry.batch import (
    _clip_slab_batch,
    _clip_slab_batch_xp,
    tool_aabb_batch,
    tool_aabb_cull_batch,
    tool_point_distance_2d,
    tool_point_distance_2d_xp,
)
from repro.geometry.orientation import OrientationGrid
from repro.obs.metrics import MetricsRegistry, use_metrics

GRID = OrientationGrid.square(6)
METHOD_NAMES = [cls.name for cls in METHODS]

# Backends that must be equivalence-tested on this host: numpy_portable
# always (it is numpy driven through the portable paths), plus any
# optional conformance backend that happens to be installed.
EQUIV_BACKENDS = [n for n in available_backends() if n != "numpy"]


def _assert_identical(a, b, label: str) -> None:
    np.testing.assert_array_equal(
        a.collides, b.collides, err_msg=f"{label}: maps differ"
    )
    for f in ThreadCounters.COUNTER_FIELDS:
        np.testing.assert_array_equal(
            getattr(a.counters, f),
            getattr(b.counters, f),
            err_msg=f"{label}: counter {f} differs",
        )


# ---------------------------------------------------------------------------
# Selection and validation
# ---------------------------------------------------------------------------


class TestResolveBackend:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend() == "numpy"
        assert resolve_backend(None) == "numpy"
        assert resolve_backend("") == "numpy"
        assert resolve_backend("   ") == "numpy"

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy_portable")
        assert resolve_backend("numpy") == "numpy"

    def test_env_fallback_and_normalization(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", " NUMPY_portable ")
        assert resolve_backend() == "numpy_portable"
        # A whitespace-only config value defers to the env, same as None
        # (the regression fixed for resolve_engine in the same PR).
        assert resolve_backend("   ") == "numpy_portable"

    def test_error_names_field_and_env_var(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        with pytest.raises(ValueError, match="REPRO_BACKEND"):
            resolve_backend("bogus")
        with pytest.raises(ValueError, match="TraversalConfig.backend"):
            resolve_backend("bogus")
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        with pytest.raises(ValueError, match="REPRO_BACKEND"):
            resolve_backend()

    def test_engine_whitespace_defers_to_env(self, monkeypatch):
        # The satellite fix: a whitespace-only engine used to bypass the
        # env fallback and then fail validation.
        from repro.cd.traversal import resolve_engine

        monkeypatch.setenv("REPRO_ENGINE", "v1")
        assert resolve_engine("   ") == "v1"
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine("   ") == "v2"
        with pytest.raises(ValueError, match="REPRO_ENGINE"):
            resolve_engine("v3")


class TestRegistry:
    def test_numpy_backends_always_available(self):
        avail = available_backends()
        assert "numpy" in avail and "numpy_portable" in avail
        assert set(avail) <= set(BACKEND_NAMES)

    def test_get_backend_caches_per_name(self):
        assert get_backend("numpy") is get_backend("numpy")
        assert get_backend("numpy") is not get_backend("numpy_portable")

    def test_unavailable_backend_raises(self):
        for name in BACKEND_NAMES:
            if name in available_backends():
                continue
            with pytest.raises(BackendUnavailable):
                get_backend(name)

    def test_flags(self):
        bk = get_backend("numpy")
        assert bk.is_numpy and bk.has_einsum
        bkp = get_backend("numpy_portable")
        assert not bkp.is_numpy and not bkp.has_einsum


# ---------------------------------------------------------------------------
# Staging discipline and seam counters
# ---------------------------------------------------------------------------


class TestStaging:
    def test_numpy_is_zero_copy_zero_count(self):
        bk = get_backend("numpy")
        before = bk.stats()
        x = np.arange(12.0).reshape(3, 4)
        assert bk.to_device(x) is x
        assert bk.to_host(x) is x
        delta = bk.stats_since(before)
        assert delta["h2d_bytes"] == 0
        assert delta["d2h_bytes"] == 0
        assert delta["sync_points"] == 0

    def test_portable_staging_counts_bytes(self):
        bk = get_backend("numpy_portable")
        before = bk.stats()
        x = np.arange(12.0).reshape(3, 4)[:, ::2]  # non-contiguous
        d = bk.to_device(x)
        assert d.flags["C_CONTIGUOUS"]
        h = bk.to_host(d)
        delta = bk.stats_since(before)
        assert delta["h2d_bytes"] == d.nbytes
        assert delta["d2h_bytes"] == h.nbytes
        assert delta["sync_points"] == 1

    def test_staging_widens_float32(self):
        bk = get_backend("numpy_portable")
        d = bk.to_device(np.ones(4, dtype=np.float32))
        assert d.dtype == np.float64

    def test_export_metrics(self):
        reg = MetricsRegistry()
        stats = {
            "kernel_calls": 3, "h2d_bytes": 100, "d2h_bytes": 50,
            "sync_points": 2,
        }
        export_backend_metrics(reg, stats)
        d = reg.as_dict()
        assert d["engine.backend.kernel_calls"]["value"] == 3
        assert d["engine.backend.h2d_bytes"]["value"] == 100
        export_backend_metrics(reg, stats, prefix="engine.pool.backend")
        assert "engine.pool.backend.sync_points" in reg.as_dict()


# ---------------------------------------------------------------------------
# Contraction helpers: portable accumulation is bit-equal to einsum
# ---------------------------------------------------------------------------


class TestContractions:
    def test_dot3_matches_einsum(self, rng):
        a = rng.normal(size=(4096, 3))
        b = rng.normal(size=(4096, 3))
        ref = np.einsum("ij,ij->i", a, b)
        out = get_backend("numpy_portable").dot3(a, b)
        np.testing.assert_array_equal(out, ref)

    def test_outer_dot3_matches_einsum(self, rng):
        u = rng.normal(size=(97, 3))
        t = rng.normal(size=(64, 3))
        ref = np.einsum("uj,tj->ut", u, t)
        out = get_backend("numpy_portable").outer_dot3(u, t)
        np.testing.assert_array_equal(out, ref)

    def test_rotate3_matches_einsum(self, rng):
        frames = rng.normal(size=(50, 3, 3))
        pts = rng.normal(size=(50, 8, 3))
        ref = np.einsum("pij,pkj->pki", frames, pts)
        out = get_backend("numpy_portable").rotate3(frames, pts)
        np.testing.assert_array_equal(out, ref)


# ---------------------------------------------------------------------------
# Batch-kernel twins
# ---------------------------------------------------------------------------


class TestBatchKernels:
    def test_clip_slab_twin(self, rng):
        poly = rng.normal(size=(300, 4, 3)) * 5.0
        z = rng.normal(size=300) * 2.0
        for keep in (True, False):
            ref, ref_alive = _clip_slab_batch(poly, z, keep_greater=keep)
            out, alive = _clip_slab_batch_xp(np, poly, z, keep_greater=keep)
            np.testing.assert_array_equal(alive, ref_alive)
            # Pad-slot garbage differs by construction; compare the live
            # geometry (identical up to -0.0 -> +0.0, which
            # array_equal treats as equal).
            np.testing.assert_array_equal(out[ref_alive], ref[ref_alive])

    def test_tool_point_distance_twin(self, rng, paper_tool_arrays):
        z0s, z1s, rads = paper_tool_arrays
        axial = rng.normal(size=500) * 40.0
        radial = np.abs(rng.normal(size=500)) * 40.0
        ref = tool_point_distance_2d(z0s, z1s, rads, axial, radial)
        bk = get_backend("numpy_portable")
        out = bk.to_host(tool_point_distance_2d_xp(bk, z0s, z1s, rads, axial, radial))
        np.testing.assert_array_equal(out, ref)

    @pytest.mark.parametrize("screen", [True, False])
    def test_tool_aabb_batch_twin(self, rng, paper_tool_arrays, screen):
        z0s, z1s, rads = paper_tool_arrays
        P = 800
        pivot = np.array([0.0, 0.0, 21.0])
        dirs = rng.normal(size=(P, 3))
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        centers = rng.normal(size=(P, 3)) * 30.0
        halves = np.abs(rng.normal(size=P)) * 3.0 + 0.1
        ref = tool_aabb_batch(pivot, dirs, centers, halves, z0s, z1s, rads, screen=screen)
        out = tool_aabb_batch(
            pivot, dirs, centers, halves, z0s, z1s, rads, screen=screen,
            backend=get_backend("numpy_portable"),
        )
        np.testing.assert_array_equal(out, ref)
        assert ref.any() and not ref.all()  # the sample exercises both verdicts

    def test_tool_aabb_cull_twin(self, rng, paper_tool_arrays):
        z0s, z1s, rads = paper_tool_arrays
        P = 800
        pivot = np.array([0.0, 0.0, 21.0])
        dirs = rng.normal(size=(P, 3))
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        centers = rng.normal(size=(P, 3)) * 30.0
        halves = np.abs(rng.normal(size=P)) * 3.0 + 0.1
        ref = tool_aabb_cull_batch(pivot, dirs, centers, halves, z0s, z1s, rads)
        out = tool_aabb_cull_batch(
            pivot, dirs, centers, halves, z0s, z1s, rads,
            backend=get_backend("numpy_portable"),
        )
        np.testing.assert_array_equal(out, ref)

    def test_numpy_backend_arg_is_inert(self, rng, paper_tool_arrays):
        z0s, z1s, rads = paper_tool_arrays
        pivot = np.array([0.0, 0.0, 21.0])
        dirs = np.array([[0.0, 0.0, 1.0], [1.0, 0.0, 0.0]])
        centers = np.array([[0.0, 0.0, 25.0], [40.0, 0.0, 0.0]])
        bk = get_backend("numpy")
        before = bk.stats()
        tool_aabb_batch(pivot, dirs, centers, 2.0, z0s, z1s, rads, backend=bk)
        assert bk.stats_since(before)["h2d_bytes"] == 0


# ---------------------------------------------------------------------------
# End-to-end equivalence: full runs per backend
# ---------------------------------------------------------------------------


@pytest.fixture()
def force_panels(monkeypatch):
    """Lower the panel gate so the tiny test scenes hit the panel paths."""
    monkeypatch.setattr(trav, "_PANEL_MIN_PAIRS", 1)
    monkeypatch.setattr(trav, "_PANEL_OVERSAMPLE", 1e9)


class TestRunEquivalence:
    @pytest.mark.parametrize("backend", EQUIV_BACKENDS)
    @pytest.mark.parametrize("method", METHOD_NAMES)
    def test_maps_and_counters_identical(
        self, sphere_scene, force_panels, backend, method
    ):
        from repro.cd.methods import method_by_name

        for engine in ("v1", "v2"):
            ref = run_cd(
                sphere_scene, GRID, method_by_name(method),
                config=TraversalConfig(engine=engine, backend="numpy"),
            )
            alt = run_cd(
                sphere_scene, GRID, method_by_name(method),
                config=TraversalConfig(engine=engine, backend=backend),
            )
            _assert_identical(ref, alt, f"{method}/{engine}/{backend}")

    @pytest.mark.parametrize("backend", EQUIV_BACKENDS)
    def test_descending_traversal_identical(
        self, sphere_scene, force_panels, backend
    ):
        # start_level below the stored top forces a multi-level frontier:
        # panel mode, narrow pair_dist, cull panels, and the exact
        # fallback all run.
        from repro.cd.methods import method_by_name

        for method in ("PBoxOpt", "AICA"):
            ref = run_cd(
                sphere_scene, GRID, method_by_name(method),
                config=TraversalConfig(backend="numpy", start_level=2),
            )
            alt = run_cd(
                sphere_scene, GRID, method_by_name(method),
                config=TraversalConfig(backend=backend, start_level=2),
            )
            _assert_identical(ref, alt, f"{method}/descending/{backend}")

    @pytest.mark.parametrize("backend", EQUIV_BACKENDS)
    def test_pooled_identical_to_serial(self, sphere_scene, force_panels, backend):
        from repro.cd.methods import method_by_name

        cfg = TraversalConfig(backend=backend, start_level=2)
        serial = run_cd(sphere_scene, GRID, method_by_name("AICA"), config=cfg)
        pooled = run_cd(
            sphere_scene, GRID, method_by_name("AICA"), config=cfg, workers=2
        )
        _assert_identical(serial, pooled, f"pooled/{backend}")

    def test_env_backend_respected_end_to_end(
        self, sphere_scene, force_panels, monkeypatch
    ):
        from repro.cd.methods import method_by_name

        monkeypatch.setenv("REPRO_BACKEND", "numpy_portable")
        r1 = run_cd(sphere_scene, GRID, method_by_name("AICA"))
        monkeypatch.delenv("REPRO_BACKEND")
        r2 = run_cd(sphere_scene, GRID, method_by_name("AICA"))
        _assert_identical(r1, r2, "env backend")


class TestBackendMetrics:
    def test_serial_run_exports_backend_counters(self, sphere_scene, force_panels):
        from repro.cd.methods import method_by_name

        for backend, expect_transfer in (("numpy", False), ("numpy_portable", True)):
            reg = MetricsRegistry()
            with use_metrics(reg):
                # workers=1 pins the serial path even under REPRO_WORKERS —
                # pooled runs export engine.pool.backend.* instead.
                run_cd(
                    sphere_scene, GRID, method_by_name("AICA"),
                    config=TraversalConfig(backend=backend), workers=1,
                )
            d = reg.as_dict()
            assert d["engine.backend.kernel_calls"]["value"] > 0
            moved = d["engine.backend.h2d_bytes"]["value"]
            assert (moved > 0) == expect_transfer
            assert (d["engine.backend.sync_points"]["value"] > 0) == expect_transfer

    def test_pooled_run_exports_backend_counters(self, sphere_scene, force_panels):
        from repro.cd.methods import method_by_name

        reg = MetricsRegistry()
        with use_metrics(reg):
            run_cd(
                sphere_scene, GRID, method_by_name("AICA"),
                config=TraversalConfig(backend="numpy_portable"), workers=2,
            )
        d = reg.as_dict()
        assert d["engine.pool.backend.kernel_calls"]["value"] > 0
        assert d["engine.pool.backend.h2d_bytes"]["value"] > 0


# ---------------------------------------------------------------------------
# ArrayBackend construction from a raw namespace
# ---------------------------------------------------------------------------


class TestArrayBackendObject:
    def test_runtime_accepts_backend_name(self, sphere_scene):
        from repro.cd.traversal import Runtime
        from repro.engine.costs import DEFAULT_COSTS

        rt = Runtime(
            scene=sphere_scene,
            grid=GRID,
            counters=ThreadCounters(n_threads=GRID.size, n_cyl=sphere_scene.n_cylinders),
            costs=DEFAULT_COSTS,
            config=TraversalConfig(backend="numpy_portable"),
        )
        assert isinstance(rt.backend, ArrayBackend)
        assert rt.backend.name == "numpy_portable"

    def test_config_pinned_through_run(self, sphere_scene, monkeypatch):
        # run_cd pins the resolved backend into the config it hands to
        # workers, so an env-resolved choice survives process boundaries.
        monkeypatch.setenv("REPRO_BACKEND", "numpy_portable")
        from repro.cd.methods import method_by_name

        r = run_cd(sphere_scene, GRID, method_by_name("PBox"))
        assert r.config.backend == "numpy_portable"
