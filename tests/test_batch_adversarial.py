"""Adversarial configurations for the batched CHECKBOX kernel.

Random sampling (tests/test_batch.py) rarely produces the branch-
switching configurations that break clipping code: axis-aligned tool
directions (frame construction changes helper axis), boxes exactly
straddling the slab planes, degenerate face projections, huge/tiny
aspect ratios, and exact-touch placements.  Each case is checked against
the scalar reference.
"""

import numpy as np
import pytest

from repro.geometry.aabb import AABB
from repro.geometry.batch import tool_aabb_batch
from repro.geometry.cylinder import Cylinder
from repro.geometry.orientation import direction_from_angles
from repro.geometry.predicates import tool_cylinders_aabb_intersects

PIVOT = np.array([0.0, 0.0, 0.0])
Z0 = np.array([0.0])
Z1 = np.array([10.0])
RAD = np.array([2.0])


def _both(dirs, centers, halves):
    dirs = np.atleast_2d(np.asarray(dirs, float))
    centers = np.atleast_2d(np.asarray(centers, float))
    halves = np.atleast_1d(np.asarray(halves, float))
    got = tool_aabb_batch(PIVOT, dirs, centers, halves, Z0, Z1, RAD)
    got_raw = tool_aabb_batch(PIVOT, dirs, centers, halves, Z0, Z1, RAD, screen=False)
    exp = np.array(
        [
            tool_cylinders_aabb_intersects(
                [Cylinder(PIVOT, dirs[i], 0.0, 10.0, 2.0)],
                AABB.cube(centers[i], halves[i]),
            )
            for i in range(len(dirs))
        ]
    )
    np.testing.assert_array_equal(got, exp)
    np.testing.assert_array_equal(got_raw, exp)
    return exp


class TestAxisAlignedDirections:
    @pytest.mark.parametrize(
        "d", [(1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)]
    )
    def test_cardinal_directions(self, d):
        d = np.asarray(d, float)
        centers = [5.0 * d, 5.0 * d + [0, 3.0, 0], 15.0 * d, -3.0 * d]
        _both(np.tile(d, (4, 1)), centers, [1.0, 1.5, 1.0, 1.0])

    def test_diagonal_directions(self):
        diag = np.array([1.0, 1.0, 1.0]) / np.sqrt(3)
        centers = [5.0 * diag, 5.0 * diag + np.array([2.5, -2.5, 0.0])]
        _both(np.tile(diag, (2, 1)), centers, [0.5, 0.5])


class TestSlabStraddling:
    def test_box_spanning_both_caps(self):
        d = np.array([0.0, 0.0, 1.0])
        _both([d], [[0.0, 0.0, 5.0]], [20.0])  # giant box swallows cylinder

    def test_box_exactly_at_cap_plane(self):
        d = np.array([0.0, 0.0, 1.0])
        # box top face exactly at z = 0 (the base cap plane)
        _both([d], [[0.5, 0.0, -1.0]], [1.0])
        # box bottom exactly at z = 10
        _both([d], [[0.5, 0.0, 11.0]], [1.0])

    def test_sliver_boxes(self):
        d = direction_from_angles(0.7, 1.1)
        centers = np.tile(6.0 * d, (3, 1))
        _both(np.tile(d, (3, 1)), centers, [1e-4, 1e-2, 30.0])


class TestExactTouch:
    def test_side_touch_with_epsilon(self):
        d = np.array([0.0, 0.0, 1.0])
        for eps, expect in ((-1e-9, True), (1e-6, False)):
            got = tool_aabb_batch(
                PIVOT,
                d[None],
                np.array([[3.0 + eps, 0.0, 5.0]]),
                np.array([1.0]),
                Z0,
                Z1,
                RAD,
            )
            assert bool(got[0]) == expect

    def test_corner_touch(self):
        # box corner approaching the rim circle point (2, 0, 10)
        d = np.array([0.0, 0.0, 1.0])
        rim = np.array([2.0, 0.0, 10.0])
        inside_c = rim + np.array([0.99, 0.0, 0.99])
        outside_c = rim + np.array([1.01, 0.0, 1.01])
        got = tool_aabb_batch(
            PIVOT,
            np.tile(d, (2, 1)),
            np.stack([inside_c, outside_c]),
            np.array([1.0, 1.0]),
            Z0,
            Z1,
            RAD,
        )
        assert bool(got[0]) is True
        assert bool(got[1]) is False


class TestMixedBatch:
    def test_large_mixed_batch_consistency(self, rng):
        """A batch mixing all the adversarial families at once."""
        dirs = []
        centers = []
        halves = []
        for d in np.vstack([np.eye(3), -np.eye(3)]):
            dirs.append(d)
            centers.append(5.0 * d)
            halves.append(1.0)
        for _ in range(50):
            d = direction_from_angles(
                rng.uniform(0.001, np.pi - 0.001), rng.uniform(0, 2 * np.pi)
            )
            dirs.append(d)
            centers.append(rng.uniform(-15, 15, 3))
            halves.append(10.0 ** rng.uniform(-3, 1))
        _both(np.array(dirs), np.array(centers), np.array(halves))
