#!/usr/bin/env python
"""Tuning the parallel scheme: the S parameter and the target device.

Section 5.4 of the paper studies the cost of the stage-1 ICA precompute:
memoizing more octree levels (larger ``S``) shrinks the CD stage but the
table grows exponentially, and the right trade-off depends on the GPU.
This script reproduces that study on the simulated devices and answers
the paper's "what if we had a bigger GPU" question with a hypothetical
device — the tuning loop the paper suggests automating as future work.

Run:  python examples/gpu_tuning.py
"""

import numpy as np

from repro import (
    AICA,
    DeviceSpec,
    GTX_1080,
    GTX_1080_TI,
    OrientationGrid,
    Scene,
    TraversalConfig,
    build_from_sdf,
    expand_top,
    paper_tool,
    run_cd,
)
from repro.solids import teapot_model

def best_s(scene: Scene, grid: OrientationGrid, device: DeviceSpec) -> list[tuple]:
    """Sweep S and return (S, precompute_ms, cd_ms, total_ms) rows."""
    rows = []
    for S in range(2, scene.tree.depth + 2):
        r = run_cd(
            scene, grid, AICA(), device=device, config=TraversalConfig(memo_levels=S)
        )
        rows.append(
            (
                S,
                r.timing.ica_precompute_s * 1e3,
                r.timing.cd_tests_s * 1e3,
                r.timing.total_s * 1e3,
            )
        )
    return rows

def main() -> None:
    model = teapot_model()
    tree = expand_top(build_from_sdf(model.sdf, model.domain, 64))
    scene = Scene(tree, paper_tool(), np.array([0.0, 0.0, 0.6 * model.dims[2]]))
    grid = OrientationGrid.square(16)

    # A hypothetical next-generation card: twice the cores, faster clock.
    future = DeviceSpec("hypothetical-2x", cuda_cores=7096, clock_ghz=2.1)

    for device in (GTX_1080_TI, GTX_1080, future):
        rows = best_s(scene, grid, device)
        best = min(rows, key=lambda r: r[3])
        print(f"\ndevice: {device.name} ({device.cuda_cores} cores "
              f"@ {device.clock_ghz} GHz)")
        print(f"{'S':>3s} {'precompute ms':>14s} {'CD ms':>9s} {'total ms':>9s}")
        for S, pre, cd, total in rows:
            marker = "  <- best" if S == best[0] else ""
            print(f"{S:3d} {pre:14.5f} {cd:9.5f} {total:9.5f}{marker}")
        print(f"best S on {device.name}: {best[0]}")

    print("\nas the paper's heuristic predicts, more powerful devices prefer "
          "larger S:\nthe (pleasingly parallel) precompute is nearly free for "
          "them, while the\nCD stage always benefits from memoized lookups.")

if __name__ == "__main__":
    main()
