"""Figure 17: all five methods vs accessibility-map resolution."""

from repro.bench.experiments import fig17


def test_fig17(benchmark, scale, record):
    result = benchmark.pedantic(fig17, args=(scale,), rounds=1, iterations=1)
    record(result)
    sims = result.extras["sims"]

    for l in scale.map_sizes:
        assert sims[("AICA", l)] <= sims[("MICA", l)] * 1.001
        assert sims[("MICA", l)] <= sims[("PICA", l)] * 1.001
        assert sims[("PICA", l)] < sims[("PBoxOpt", l)]
        assert sims[("PBoxOpt", l)] < sims[("PBox", l)]

    # Growth with map size is at most linear-ish in orientations (each
    # 2x-per-edge step is 4x threads) for the baseline.
    for a, b in zip(scale.map_sizes, scale.map_sizes[1:]):
        assert sims[("PBox", b)] / sims[("PBox", a)] <= 4.6

    l = scale.map_sizes[-1]
    assert sims[("PBox", l)] / sims[("PICA", l)] > 5.0
    assert sims[("PBox", l)] / sims[("AICA", l)] > 10.0
