"""Morton-code properties."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.octree.morton import MAX_BITS, morton_decode, morton_encode

coords = arrays(
    np.uint64, st.integers(1, 50), elements=st.integers(0, (1 << MAX_BITS) - 1)
)


class TestMorton:
    @given(coords)
    def test_roundtrip(self, i):
        j = (i * 7 + 3) % (1 << MAX_BITS)
        k = (i * 13 + 11) % (1 << MAX_BITS)
        code = morton_encode(i, j, k)
        i2, j2, k2 = morton_decode(code)
        np.testing.assert_array_equal(i2.astype(np.uint64), i)
        np.testing.assert_array_equal(j2.astype(np.uint64), j)
        np.testing.assert_array_equal(k2.astype(np.uint64), k)

    def test_child_octant_is_low_bits(self):
        """Code low 3 bits = octant index matching AABB.octant bit order."""
        for k in range(8):
            code = morton_encode(
                np.array([k & 1]), np.array([(k >> 1) & 1]), np.array([(k >> 2) & 1])
            )
            assert int(code[0]) == k

    def test_children_contiguous(self):
        """Children codes of parent c are exactly [8c, 8c+8)."""
        parent = morton_encode(np.array([3]), np.array([5]), np.array([2]))[0]
        kids = []
        for dz in (0, 1):
            for dy in (0, 1):
                for dx in (0, 1):
                    kids.append(
                        int(
                            morton_encode(
                                np.array([6 + dx]), np.array([10 + dy]), np.array([4 + dz])
                            )[0]
                        )
                    )
        assert sorted(kids) == list(range(int(parent) * 8, int(parent) * 8 + 8))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            morton_encode(np.array([-1]), np.array([0]), np.array([0]))

    def test_rejects_too_large(self):
        with pytest.raises(ValueError):
            morton_encode(np.array([1 << MAX_BITS]), np.array([0]), np.array([0]))

    def test_monotone_within_axis(self):
        """Along one axis the code is strictly increasing."""
        i = np.arange(100, dtype=np.uint64)
        codes = morton_encode(i, np.zeros_like(i), np.zeros_like(i))
        assert (np.diff(codes.astype(np.int64)) > 0).all()

    def test_max_coordinate(self):
        m = np.array([(1 << MAX_BITS) - 1], dtype=np.uint64)
        code = morton_encode(m, m, m)
        i, j, k = morton_decode(code)
        assert i[0] == j[0] == k[0] == (1 << MAX_BITS) - 1
