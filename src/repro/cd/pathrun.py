"""Accessibility maps along a tool path + neighbor-overlap statistics.

Section 8 of the paper points at two untapped opportunities; this module
implements the evaluation side of the first one:

    "neighboring pivot points ... are likely to have AM with overlapping
    values. Therefore, future work should develop methods to reuse the
    AM values among nearby pivots."

:func:`run_along_path` computes the exact AM at every pivot of a path
(no reuse — exactness first) and reports how much consecutive maps
overlap, i.e. the upper bound on what any reuse scheme could save.  The
``ablation_am_overlap`` bench uses it to quantify the paper's claim on
the benchmark models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cd.result import CDResult
from repro.cd.scene import Scene
from repro.cd.traversal import TraversalConfig, run_cd
from repro.engine.costs import CostModel, DEFAULT_COSTS
from repro.engine.device import DeviceSpec, GTX_1080_TI
from repro.geometry.orientation import OrientationGrid
from repro.obs.profile import Heartbeat, progress_enabled
from repro.obs.trace import get_tracer

__all__ = ["PathRunResult", "run_along_path", "map_overlap"]


def map_overlap(a: np.ndarray, b: np.ndarray) -> float:
    """Fraction of orientations on which two collision maps agree."""
    a = np.asarray(a, dtype=bool)
    b = np.asarray(b, dtype=bool)
    if a.shape != b.shape:
        raise ValueError("maps must have the same shape")
    if a.size == 0:
        return 1.0
    return float((a == b).mean())


@dataclass
class PathRunResult:
    """Per-pivot results plus consecutive-map overlap statistics."""

    results: list[CDResult]
    pivots: np.ndarray
    overlaps: np.ndarray  # (n-1,) agreement between consecutive maps

    @property
    def mean_overlap(self) -> float:
        """Mean consecutive agreement — the reuse headroom of Section 8."""
        return float(self.overlaps.mean()) if len(self.overlaps) else 1.0

    @property
    def accessible_fraction(self) -> np.ndarray:
        """Per-pivot fraction of accessible orientations."""
        return np.array(
            [r.n_accessible / r.grid.size for r in self.results], dtype=np.float64
        )

    def total_simulated_seconds(self) -> float:
        return float(sum(r.timing.total_s for r in self.results))


def run_along_path(
    tree,
    tool,
    pivots: np.ndarray,
    grid: OrientationGrid,
    method,
    *,
    device: DeviceSpec = GTX_1080_TI,
    costs: CostModel = DEFAULT_COSTS,
    config: TraversalConfig = TraversalConfig(),
    workers: int | None = None,
    shared=None,
) -> PathRunResult:
    """Exact accessibility maps at every pivot, in path order.

    The pivots should be ordered along the path (as
    :func:`repro.path.offset.offset_path` returns them) so the overlap
    statistics describe true neighbors.

    ``workers`` (else ``config.workers``, else ``REPRO_WORKERS``) above
    1 shards the *pivots* across a process pool — the natural axis here,
    since each pivot is an independent CD problem; the per-pivot results
    are byte-identical to the serial loop.  A single-pivot path instead
    falls through to ``run_cd``'s own orientation sharding.

    ``shared`` is an optional prebuilt
    :class:`repro.engine.pool.SharedScene` arena holding ``tree``,
    consulted only by the parallel path (the caller keeps ownership).
    """
    from repro.engine.pool import resolve_workers, run_along_path_parallel

    pivots = np.asarray(pivots, dtype=np.float64)
    if pivots.ndim != 2 or pivots.shape[1] != 3:
        raise ValueError("pivots must be (n, 3)")
    n_workers = resolve_workers(workers if workers is not None else config.workers)
    if n_workers > 1 and len(pivots) > 1:
        return run_along_path_parallel(
            tree, tool, pivots, grid, method,
            device=device, costs=costs, config=config, workers=n_workers,
            shared=shared,
        )
    tracer = get_tracer()
    heartbeat = Heartbeat(len(pivots), "pivot") if progress_enabled() else None
    results = []
    for i, p in enumerate(pivots):
        with tracer.span("cd.pivot", index=i) as sp:
            r = run_cd(
                Scene(tree, tool, p), grid, method,
                device=device, costs=costs, config=config,
            )
            sp.set(colliding=r.n_colliding)
        results.append(r)
        if heartbeat is not None:
            heartbeat.tick(pivot=i, colliding=r.n_colliding)
    overlaps = np.array(
        [
            map_overlap(a.collides, b.collides)
            for a, b in zip(results, results[1:])
        ],
        dtype=np.float64,
    )
    return PathRunResult(results=results, pivots=pivots, overlaps=overlaps)
