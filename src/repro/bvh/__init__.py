"""AICA over bounding-volume hierarchies (the paper's Section 8 extension).

The paper closes with: "to broaden its use in computer graphics, our
AICA should be extended and tested against other spatial volume
structures common in that domain, such as BVH and kd-trees."  This
package does that for AABB BVHs:

* :mod:`repro.bvh.build` — a median-split AABB BVH over a set of solid
  leaf boxes (e.g. the octree's FULL cells, or any box soup);
* :mod:`repro.bvh.cd` — accessibility-map generation over the BVH with
  the same two-sphere ICA pruning (a general AABB is sandwiched between
  its inscribed and circumscribed spheres exactly like a cubic voxel),
  plus the PBox-style exact-only baseline for comparison.

The ``ablation_bvh`` bench compares the BVH traversal against the
octree traversal on identical geometry.
"""

from repro.bvh.build import BVH, build_bvh
from repro.bvh.cd import run_cd_bvh, BvhMethod

__all__ = ["BVH", "build_bvh", "run_cd_bvh", "BvhMethod"]
