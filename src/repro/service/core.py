"""The query service: validated specs, tiered reuse, one compute path.

:class:`Service` turns the repo's one-shot pipeline (``run_cd`` /
``run_along_path``) into a long-lived query server.  A query arrives as
a :class:`QuerySpec` (validated, canonically digested) and is answered
through three reuse tiers, cheapest first:

1. **result cache** (:mod:`repro.service.cache`) — the exact query
   already ran: zero traversals;
2. **coalescing** (:mod:`repro.service.batching`) — the exact query is
   in flight right now: join it, one traversal total;
3. **registry artifacts** (:mod:`repro.service.registry`) — a fresh
   computation, but against a registered scene whose ICA table and
   shared-memory arena already exist — and on a worker-process pool
   that outlives the request (:func:`repro.engine.pool.use_pool`)
   instead of per-call process spin-up.

Every tier preserves the repo's core guarantee: the served map is
byte-identical to a direct ``run_cd``/``run_along_path`` call with the
same inputs, at any worker count and for all five methods.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.cd.ammaps import merge_accessible
from repro.cd.methods import METHODS, method_by_name
from repro.cd.pathrun import run_along_path
from repro.cd.scene import Scene
from repro.cd.traversal import TraversalConfig, resolve_backend, run_cd
from repro.engine.workspace import Workspace, use_workspace
from repro.obs.context import TraceContext, current_trace_context
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.obs.window import RequestWindow
from repro.service.batching import QueryBroker, current_queue_wait_s
from repro.service.cache import ResultCache
from repro.service.registry import SceneRegistry, UnknownSceneError

__all__ = ["QuerySpec", "QueryResult", "Service"]

_METHOD_NAMES = tuple(cls.name for cls in METHODS)
_DEFAULT_CONFIG = TraversalConfig()


def _digest_of(parts: tuple) -> str:
    import hashlib

    h = hashlib.sha256()
    h.update(repr(parts).encode("utf-8"))
    return h.hexdigest()


@dataclass(frozen=True)
class QuerySpec:
    """One validated accessibility-map query.

    ``pivot`` overrides the registered scene's pivot (a single-point
    re-query); ``pivots`` switches to a path query whose per-pivot maps
    are combined with ``merge`` (see
    :func:`repro.cd.ammaps.merge_accessible`).  ``workers = 0`` defers
    to the service's default worker count.  ``backend = None`` resolves
    the array backend like a direct run (``REPRO_BACKEND``, default
    numpy); the resolved name is part of the query identity, since
    non-numpy backends only guarantee allclose floats.
    """

    scene: str
    grid: tuple[int, int] = (32, 32)
    method: str = "AICA"
    pivot: tuple[float, float, float] | None = None
    pivots: tuple[tuple[float, float, float], ...] | None = None
    merge: str = "intersection"
    workers: int = 0
    start_level: int = _DEFAULT_CONFIG.start_level
    memo_levels: int = _DEFAULT_CONFIG.memo_levels
    thread_block: int = _DEFAULT_CONFIG.thread_block
    max_pairs: int = _DEFAULT_CONFIG.max_pairs
    backend: str | None = None

    _FIELDS = (
        "scene", "grid", "method", "pivot", "pivots", "merge", "workers",
        "start_level", "memo_levels", "thread_block", "max_pairs", "backend",
    )

    def __post_init__(self) -> None:
        if not self.scene or not isinstance(self.scene, str):
            raise ValueError("spec needs a scene digest string")
        grid = tuple(int(x) for x in self.grid)
        if len(grid) != 2 or grid[0] < 1 or grid[1] < 1:
            raise ValueError(f"grid must be two positive ints, got {self.grid!r}")
        object.__setattr__(self, "grid", grid)
        # Normalize the method to its canonical capitalization so specs
        # differing only in case share one digest (and one cache entry).
        try:
            object.__setattr__(self, "method", method_by_name(self.method).name)
        except KeyError:
            raise ValueError(
                f"unknown method {self.method!r}; choose from {_METHOD_NAMES}"
            ) from None
        if self.pivot is not None:
            p = tuple(float(x) for x in self.pivot)
            if len(p) != 3:
                raise ValueError("pivot must have 3 coordinates")
            object.__setattr__(self, "pivot", p)
        if self.pivots is not None:
            pts = tuple(tuple(float(x) for x in p) for p in self.pivots)
            if not pts or any(len(p) != 3 for p in pts):
                raise ValueError("pivots must be a non-empty list of 3D points")
            object.__setattr__(self, "pivots", pts)
            if self.pivot is not None:
                raise ValueError("give either pivot or pivots, not both")
        if self.merge not in ("intersection", "union"):
            raise ValueError("merge must be 'intersection' or 'union'")
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = service default)")
        for name in ("start_level", "memo_levels", "thread_block", "max_pairs"):
            if int(getattr(self, name)) < 1:
                raise ValueError(f"{name} must be >= 1")
        # Resolve the backend at construction so specs differing only in
        # spelling (None vs env value vs " NUMPY ") share one digest.
        object.__setattr__(self, "backend", resolve_backend(self.backend))

    @classmethod
    def from_dict(cls, d: dict) -> "QuerySpec":
        """Build from a JSON request body; unknown keys are an error."""
        if not isinstance(d, dict):
            raise ValueError("query must be a JSON object")
        unknown = set(d) - set(cls._FIELDS)
        if unknown:
            raise ValueError(
                f"unknown query field(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(cls._FIELDS)})"
            )
        return cls(**{k: d[k] for k in cls._FIELDS if k in d})

    def config(self) -> TraversalConfig:
        return TraversalConfig(
            start_level=self.start_level,
            memo_levels=self.memo_levels,
            thread_block=self.thread_block,
            max_pairs=self.max_pairs,
            workers=1,  # the service resolves workers itself
            backend=self.backend,
        )

    def digest(self) -> str:
        """Canonical identity of this query (folds in the scene digest).

        ``workers`` is deliberately excluded: results are byte-identical
        at any worker count, so queries differing only in parallelism
        must share one cache entry and coalesce together.
        """
        return _digest_of((
            "repro.service.query/v2",
            self.scene, self.grid, self.method, self.pivot, self.pivots,
            self.merge, self.start_level, self.memo_levels,
            self.thread_block, self.max_pairs, self.backend,
        ))

    def to_dict(self) -> dict:
        return {
            "scene": self.scene,
            "grid": list(self.grid),
            "method": self.method,
            "pivot": list(self.pivot) if self.pivot is not None else None,
            "pivots": [list(p) for p in self.pivots] if self.pivots else None,
            "merge": self.merge,
            "workers": self.workers,
            "start_level": self.start_level,
            "memo_levels": self.memo_levels,
            "thread_block": self.thread_block,
            "max_pairs": self.max_pairs,
            "backend": self.backend,
        }


@dataclass
class QueryResult:
    """One answered query: the payload plus how it was served.

    ``trace_ctx`` — when the caller propagated one into :meth:`Service.query`
    — is the *request span's* context: its ``span_id`` names the
    ``service.request`` span recorded for this request, so the front end
    echoes it as the response ``traceparent``.  ``cost`` is the
    per-request cost ledger (attributed CPU-ms, workspace bytes,
    queue-wait ms, disposition) — per *request*, never cached with the
    payload.
    """

    payload: dict  # the computed (and cached) result data
    cached: bool  # served from the result cache, zero traversals
    coalesced: bool  # joined an identical in-flight computation
    request_id: str | None = None  # identity of the request this answered
    trace_ctx: TraceContext | None = None  # this request's span identity
    cost: dict | None = None  # per-request cost ledger

    @property
    def accessible(self) -> np.ndarray:
        """The merged/queried accessibility map, ``(m, n)`` bool."""
        return self.payload["map"]

    @property
    def served(self) -> str:
        """Which tier answered: ``"cache"``/``"coalesced"``/``"computed"``."""
        return "cache" if self.cached else "coalesced" if self.coalesced else "computed"

    def to_dict(self, *, include_map: bool = True) -> dict:
        out = {k: v for k, v in self.payload.items() if k != "map"}
        if include_map:
            out["map"] = self.payload["map"].astype(int).tolist()
        out["cached"] = self.cached
        out["coalesced"] = self.coalesced
        if self.request_id is not None:
            out["request_id"] = self.request_id
        if self.cost is not None:
            out["cost"] = dict(self.cost)
        return out


class Service:
    """Long-lived accessibility-map query service (front-end agnostic).

    Thread-safe: :meth:`query` may be called from many request-handler
    threads; computations funnel through the broker's dispatch threads.
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        max_scenes: int = 8,
        table_dir=None,
        cache_entries: int = 256,
        cache_bytes: int = 256 * 1024 * 1024,
        max_queue: int = 32,
        dispatch_threads: int = 1,
        retry_after_s: float = 1.0,
    ) -> None:
        from repro.engine.pool import resolve_workers

        self.workers = resolve_workers(workers)
        self.registry = SceneRegistry(max_scenes=max_scenes, table_dir=table_dir)
        self.cache = ResultCache(max_entries=cache_entries, max_bytes=cache_bytes)
        self.broker = QueryBroker(
            dispatch_threads=dispatch_threads,
            max_queue=max_queue,
            retry_after_s=retry_after_s,
        )
        # Rolling request statistics (RPS / error rate / latency
        # quantiles).  The service owns the window; front ends feed it
        # per finished request, so every transport shares one view.
        self.window = RequestWindow()
        self._pools: dict[int, object] = {}
        self._pool_lock = threading.Lock()
        # One reusable frontier-engine arena per dispatch thread: serial
        # computations reuse buffers across requests instead of growing a
        # fresh workspace per query (parallel runs use per-worker arenas).
        self._ws_tls = threading.local()
        self._started = time.perf_counter()
        self._closed = False

    # -- scenes -----------------------------------------------------------

    def register_scene(self, scene: Scene) -> str:
        return self.registry.register(scene)

    # -- queries ----------------------------------------------------------

    def query(
        self,
        spec: QuerySpec,
        *,
        timeout: float | None = None,
        request_id: str | None = None,
        trace_ctx: TraceContext | None = None,
    ) -> QueryResult:
        """Answer one query through cache -> coalescing -> computation.

        ``request_id`` is the caller's request identity (the HTTP front
        end passes the ``X-Request-Id`` it honored or minted); it is
        threaded into the broker's queue-wait span, the computation's
        ``service.request`` span, and the returned result, so one ID
        correlates the access-log line, the trace, and the response.

        ``trace_ctx`` is the *caller's* trace context (the inbound
        ``traceparent``, or one the front end minted).  This method
        mints the next hop — a fresh span ID that becomes the request's
        ``service.request`` span, parented on the caller's span — and
        returns it on :attr:`QueryResult.trace_ctx` for the response
        echo.  An unsampled context short-circuits all span recording
        (the no-op tracer path) while leaving the served bytes and the
        metrics identical.

        Raises :class:`~repro.service.batching.Backpressure` when the
        dispatch queue is full, :class:`UnknownSceneError` for an
        unregistered scene digest.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        # Fail unknown scenes fast, before burning a queue slot.
        self.registry.get(spec.scene)
        child = trace_ctx.child() if trace_ctx is not None else None
        key = spec.digest()
        t_start = time.perf_counter()
        payload = self.cache.get(key)
        if payload is not None:
            self._count_request(served="cache")
            cost = {
                "served": "cache",
                "cpu_ms": 0.0,
                "workspace_bytes": 0,
                "queue_wait_ms": 0.0,
            }
            self._export_cost(cost)
            self._record_request_span(
                child,
                served="cache",
                wall_s=time.perf_counter() - t_start,
                cost=cost,
                request_id=request_id,
                scene=spec.scene,
            )
            return QueryResult(
                payload=payload, cached=True, coalesced=False,
                request_id=request_id, trace_ctx=child, cost=cost,
            )
        cost_out: dict = {}
        future, coalesced = self.broker.submit(
            key,
            lambda: self._compute(spec, key, request_id, cost_out),
            request_id=request_id,
            trace_ctx=child,
        )
        payload = future.result(timeout=timeout)
        self._count_request(served="coalesced" if coalesced else "computed")
        if coalesced:
            # The joiner's cost is pure waiting: the computation (and its
            # cost ledger in ``cost_out``'s twin) belongs to the admitting
            # request; this request burned no CPU and took no workspace.
            waited = time.perf_counter() - t_start
            cost = {
                "served": "coalesced",
                "cpu_ms": 0.0,
                "workspace_bytes": 0,
                "queue_wait_ms": waited * 1e3,
            }
            self._export_cost(cost)
            self._record_request_span(
                child,
                served="coalesced",
                wall_s=waited,
                cost=cost,
                request_id=request_id,
                scene=spec.scene,
            )
        else:
            # _compute filled the ledger (and recorded the span under the
            # propagated context) on the dispatch thread.
            cost = dict(cost_out) if cost_out else {
                "served": "computed",
                "cpu_ms": 0.0,
                "workspace_bytes": 0,
                "queue_wait_ms": 0.0,
            }
        return QueryResult(
            payload=payload, cached=False, coalesced=coalesced,
            request_id=request_id, trace_ctx=child, cost=cost,
        )

    def _count_request(self, served: str) -> None:
        metrics = get_metrics()
        metrics.counter("service.requests").inc()
        metrics.counter(f"service.requests.{served}").inc()

    @staticmethod
    def _export_cost(cost: dict) -> None:
        """Aggregate one request's cost ledger into ``service.cost.*``."""
        metrics = get_metrics()
        metrics.histogram("service.cost.cpu_ms").observe(cost["cpu_ms"])
        metrics.histogram("service.cost.queue_wait_ms").observe(cost["queue_wait_ms"])
        metrics.histogram("service.cost.workspace_bytes").observe(
            cost["workspace_bytes"]
        )

    @staticmethod
    def _cost_attrs(cost: dict) -> dict:
        return {
            "cost.served": cost["served"],
            "cost.cpu_ms": cost["cpu_ms"],
            "cost.workspace_bytes": cost["workspace_bytes"],
            "cost.queue_wait_ms": cost["queue_wait_ms"],
        }

    def _record_request_span(
        self,
        ctx: TraceContext | None,
        *,
        served: str,
        wall_s: float,
        cost: dict,
        request_id: str | None,
        scene: str,
    ) -> None:
        """A ``service.request`` span for a request that ran no compute.

        Cache hits and coalesced joiners still deserve a span — their
        ``trace_ctx`` was already promised to the caller as the response
        ``traceparent``, so the span it names must exist in the export.
        Only recorded under a propagated *sampled* context: direct
        library callers (no context) keep the pre-propagation behavior
        of one span per computation.
        """
        if ctx is None or not ctx.sampled:
            return
        tracer = get_tracer()
        if not tracer.enabled:
            return
        attrs = {"served": served, "scene": scene[:12], **self._cost_attrs(cost)}
        if request_id is not None:
            attrs["request_id"] = request_id
        tracer.record_span(
            "service.request",
            t0=tracer.now() - wall_s,
            wall_s=wall_s,
            attrs=attrs,
            trace_id=ctx.trace_id,
            span_id=ctx.span_id,
            parent_span_id=ctx.parent_id,
        )

    def _thread_workspace(self) -> Workspace:
        ws = getattr(self._ws_tls, "workspace", None)
        if ws is None:
            ws = self._ws_tls.workspace = Workspace()
        return ws

    def _get_pool(self, workers: int):
        from repro.engine.pool import WorkerPool

        with self._pool_lock:
            pool = self._pools.get(workers)
            if pool is None:
                pool = self._pools[workers] = WorkerPool(workers)
            return pool

    @staticmethod
    def _counter_snapshot() -> dict[str, float]:
        return {
            name: m["value"]
            for name, m in get_metrics().as_dict().items()
            if m.get("type") == "counter"
        }

    def _compute(
        self,
        spec: QuerySpec,
        key: str,
        request_id: str | None = None,
        cost_out: dict | None = None,
    ) -> dict:
        """Run the actual CD work for one admitted query (broker thread).

        Writes the result cache *before returning* — the broker retires
        the in-flight key right after, and the cache must already hold
        the result by then (no coalesce-nor-cache window).

        ``cost_out`` — when given — receives the request's cost ledger:
        CPU thread-time actually burned on this dispatch thread,
        workspace/arena bytes held, queue-wait, and disposition.  It
        travels out-of-band because the payload is shared (cached,
        coalesced) while cost belongs to one request.
        """
        from repro.engine.pool import use_pool
        from repro.geometry.orientation import OrientationGrid

        tracer = get_tracer()
        ctx = current_trace_context()
        t0 = time.perf_counter()
        cpu_t0 = time.thread_time()
        counters_before = self._counter_snapshot() if tracer.enabled else None
        scene = self.registry.get(spec.scene)
        if spec.pivot is not None:
            # A pivot override is a different problem instance; register
            # the derived scene (same tree/tool objects, so this is
            # cheap) to give its ICA table and arena a cached home.
            scene = scene.with_pivot(spec.pivot)
            digest = self.registry.register(scene)
        else:
            digest = spec.scene

        grid = OrientationGrid(*spec.grid)
        method = method_by_name(spec.method)
        config = spec.config()
        workers = spec.workers or self.workers
        parallel = workers > 1

        if spec.pivots is not None:
            arena = self.registry.get_arena(digest) if parallel else None
            with use_pool(self._get_pool(workers) if parallel else None), \
                    use_workspace(self._thread_workspace()):
                pr = run_along_path(
                    scene.tree, scene.tool, np.asarray(spec.pivots), grid, method,
                    config=config, workers=workers, shared=arena,
                )
            merged = merge_accessible(
                [r.accessibility_map for r in pr.results], spec.merge
            )
            payload = {
                "map": merged,
                "kind": "path",
                "scene": digest,
                "method": method.name,
                "shape": list(grid.shape),
                "merge": spec.merge,
                "n_accessible": int(merged.sum()),
                "n_colliding": int(merged.size - merged.sum()),
                "mean_overlap": pr.mean_overlap,
                "per_pivot_accessible": [r.n_accessible for r in pr.results],
            }
        else:
            needs_table = getattr(method, "needs_table", False)
            table = (
                self.registry.get_table(digest, config.memo_levels)
                if needs_table
                else None
            )
            arena = (
                self.registry.get_arena(
                    digest, config.memo_levels if needs_table else None
                )
                if parallel
                else None
            )
            with use_pool(self._get_pool(workers) if parallel else None), \
                    use_workspace(self._thread_workspace()):
                r = run_cd(
                    scene, grid, method,
                    config=config, workers=workers, table=table, shared=arena,
                )
            payload = {
                "map": r.accessibility_map,
                "kind": "cd",
                "scene": digest,
                "method": method.name,
                "shape": list(grid.shape),
                "n_accessible": r.n_accessible,
                "n_colliding": r.n_colliding,
                "summary": r.summary(),
            }

        elapsed = time.perf_counter() - t0
        payload["elapsed_s"] = elapsed
        get_metrics().histogram("service.request.ms").observe(elapsed * 1e3)
        # The cost ledger: what this request actually consumed.  CPU is
        # this dispatch thread's thread-time (the serial path and the
        # parent side of a parallel run); workspace bytes are the arena
        # bytes held for the request (thread workspace + shared scene
        # arena when sharded); queue-wait comes from the broker's
        # thread-local stamp for this very computation.
        ws_held = self._thread_workspace().stats()["bytes_held"]
        cost = {
            "served": "computed",
            "cpu_ms": (time.thread_time() - cpu_t0) * 1e3,
            "workspace_bytes": int(ws_held + (arena.nbytes if arena is not None else 0)),
            "queue_wait_ms": current_queue_wait_s() * 1e3,
        }
        self._export_cost(cost)
        if cost_out is not None:
            cost_out.update(cost)
        if tracer.enabled:
            # record_span, not span(): broker threads must not touch the
            # tracer's nesting stack, which belongs to whoever owns it.
            attrs = {
                "method": method.name,
                "kind": payload["kind"],
                "scene": digest[:12],
                "orientations": grid.size,
                "workers": workers,
                **self._cost_attrs(cost),
            }
            if request_id is not None:
                # The ID of the request that *initiated* the computation;
                # coalesced joiners share this span (and this ID ties it
                # back to that request's access-log line).
                attrs["request_id"] = request_id
            if counters_before is not None:
                # The counters this computation moved, largest first —
                # bounded so span attributes stay small.
                after = self._counter_snapshot()
                deltas = {
                    name: value - counters_before.get(name, 0)
                    for name, value in after.items()
                    if value != counters_before.get(name, 0)
                }
                top = dict(
                    sorted(deltas.items(), key=lambda kv: abs(kv[1]), reverse=True)[:8]
                )
                if top:
                    attrs["cost.counters"] = top
            identity = {}
            if ctx is not None:
                # The span ID was pre-minted by query() and already
                # promised to the caller in the response traceparent;
                # its parent is the caller's (possibly remote) span.
                identity = {
                    "trace_id": ctx.trace_id,
                    "span_id": ctx.span_id,
                    "parent_span_id": ctx.parent_id,
                }
            tracer.record_span(
                "service.request",
                t0=tracer.now() - elapsed,
                wall_s=elapsed,
                cpu_s=cost["cpu_ms"] / 1e3,
                attrs=attrs,
                **identity,
            )
        self.cache.put(key, payload, nbytes=payload["map"].nbytes + 512)
        return payload

    # -- lifecycle --------------------------------------------------------

    @property
    def uptime_s(self) -> float:
        return time.perf_counter() - self._started

    def close(self) -> None:
        """Drain dispatch, shut worker pools, destroy arenas; idempotent."""
        if self._closed:
            return
        self._closed = True
        self.broker.shutdown()
        with self._pool_lock:
            for pool in self._pools.values():
                pool.shutdown()
            self._pools.clear()
        self.registry.close()

    def __enter__(self) -> "Service":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
