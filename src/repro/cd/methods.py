"""The five CD methods' per-wave decision kernels.

Each method implements ``decide(rt, wave) -> outcomes`` classifying every
live (thread, node) pair of a frontier wave as ``OUT_NO`` / ``OUT_YES``
/ ``OUT_EXPAND`` (see :mod:`repro.cd.traversal`).  All methods are
*exact*: the ICA-based ones resolve every inconclusive pair, either with
the exact ``CHECKBOX`` fallback or (AICA) by expanding the voxel and
deciding the children — so all five produce identical accessibility
maps, which the integration tests assert.

Costs are charged to the per-thread counters as the paper counts them:
one ``ica_fly`` event covers the whole two-sphere ``CHECKICA``
(``10*N_c + 3`` ops), one ``ica_memo`` event the memoized variant
(3 ops), one ``box`` event a full ``CHECKBOX`` (``216*N_c``), one
``cull`` event the optimized-PBox AABB pre-test.
"""

from __future__ import annotations

import numpy as np

from repro.cd.traversal import OUT_EXPAND, OUT_NO, OUT_YES, Runtime, Wave
from repro.geometry.batch import tool_aabb_batch, tool_aabb_cull_batch
from repro.ica.cone import ica_bounds_cos
from repro.ica.table import SQRT3

__all__ = ["PBox", "PBoxOpt", "PICA", "MICA", "AICA", "METHODS", "method_by_name"]


def _box_check(rt: Runtime, wave: Wave, mask: np.ndarray) -> np.ndarray:
    """Exact whole-tool CHECKBOX on the masked pairs; returns (F,) bool
    (False outside the mask) and charges one box check per tested pair."""
    out = np.zeros(wave.size, dtype=bool)
    if not mask.any():
        return out
    tool = rt.scene.tool
    out[mask] = tool_aabb_batch(
        rt.scene.pivot,
        wave.dirs[mask],
        wave.centers[mask],
        np.full(int(mask.sum()), wave.half),
        tool.z0,
        tool.z1,
        tool.radius,
    )
    rt.counters.add_threads("box_checks", wave.threads[mask], rt.counters.n_threads)
    return out


class PBox:
    """Baseline: exact CHECKBOX at every visited node (Figure 4)."""

    name = "PBox"
    needs_table = False

    def decide(self, rt: Runtime, wave: Wave) -> np.ndarray:
        hit = _box_check(rt, wave, np.ones(wave.size, dtype=bool))
        return np.where(hit, OUT_YES, OUT_NO)


class PBoxOpt:
    """Optimized PBox: AABB cull after rotation, then exact CHECKBOX.

    The cull builds the world AABB of each oriented tool cylinder and
    tests it against the voxel; a miss proves no intersection, a hit
    still requires the exact test.  This is conservative-sound, so the
    result is identical to PBox — just cheaper on the (many) far-away
    nodes.
    """

    name = "PBoxOpt"
    needs_table = False

    def decide(self, rt: Runtime, wave: Wave) -> np.ndarray:
        tool = rt.scene.tool
        possible = tool_aabb_cull_batch(
            rt.scene.pivot,
            wave.dirs,
            wave.centers,
            np.full(wave.size, wave.half),
            tool.z0,
            tool.z1,
            tool.radius,
        )
        rt.counters.add_threads("cull_checks", wave.threads, rt.counters.n_threads)
        hit = _box_check(rt, wave, possible)
        return np.where(hit, OUT_YES, OUT_NO)


class _IcaBase:
    """Shared CHECKICA logic (Algorithm 1) for PICA / MICA / AICA.

    Subclasses set ``use_memo`` (gather stage-1 table values when
    available) and ``expand_corners`` (AICA's Section 4.3 optimization).
    """

    use_memo = False
    expand_corners = False
    needs_table = False

    def decide(self, rt: Runtime, wave: Wave) -> np.ndarray:
        scene = rt.scene
        n_threads = rt.counters.n_threads

        rel = wave.centers - scene.pivot
        dist = np.sqrt(np.einsum("ij,ij->i", rel, rel))
        safe = np.maximum(dist, 1e-300)
        # Compare in cosine space throughout: theta <= ica  <=>  cos_angle
        # >= cos(ica), and the dot product gives the cosine for free.
        cos_angle = np.clip(np.einsum("ij,ij->i", wave.dirs, rel) / safe, -1.0, 1.0)
        cos_angle = np.where(dist == 0.0, 1.0, cos_angle)

        cos1 = np.empty(wave.size)
        cos2 = np.empty(wave.size)

        memo = np.zeros(wave.size, dtype=bool)
        if self.use_memo and rt.table is not None and rt.table.has_level(wave.level):
            memo = wave.idx >= 0
        if memo.any():
            cos1[memo], cos2[memo] = rt.table.lookup(wave.level, wave.idx[memo])
            rt.counters.add_threads("ica_memo_checks", wave.threads[memo], n_threads)
        fly = ~memo
        if fly.any():
            # The cone bounds depend only on (node center distance, cell
            # size), not on the thread, so compute once per unique node and
            # gather — a wall-clock dedup only; the simulated cost stays
            # per-pair (each GPU thread of PICA really does recompute its
            # own ICA, which is exactly the redundancy MICA's table removes).
            tool = scene.tool
            uniq, inverse = np.unique(wave.codes[fly], return_inverse=True)
            first = np.zeros(len(uniq), dtype=np.intp)
            first[inverse[::-1]] = np.nonzero(fly)[0][::-1]
            du = dist[first]
            lo, _ = ica_bounds_cos(
                tool.z0, tool.z1, tool.radius, du, np.full(len(uniq), wave.half)
            )
            _, hi = ica_bounds_cos(
                tool.z0, tool.z1, tool.radius, du, np.full(len(uniq), SQRT3 * wave.half)
            )
            cos1[fly] = lo[inverse]
            cos2[fly] = hi[inverse]
            rt.counters.add_threads("ica_fly_checks", wave.threads[fly], n_threads)

        yes = cos_angle >= cos1
        no = ~yes & (cos_angle <= cos2)
        corner = ~yes & ~no
        if corner.any():
            rt.counters.add_threads("corner_cases", wave.threads[corner], n_threads)

        outcomes = np.full(wave.size, OUT_NO, dtype=np.uint8)
        outcomes[yes] = OUT_YES

        if self.expand_corners and wave.level < scene.tree.depth:
            outcomes[corner] = OUT_EXPAND
        elif corner.any():
            hit = _box_check(rt, wave, corner)
            outcomes[corner & hit] = OUT_YES
        return outcomes


class PICA(_IcaBase):
    """CHECKICA with on-the-fly cone angles; CHECKBOX fallback on corners."""

    name = "PICA"


class MICA(_IcaBase):
    """PICA plus the stage-1 memoized ICA table for the top ``S`` levels."""

    name = "MICA"
    use_memo = True
    needs_table = True


class AICA(_IcaBase):
    """MICA plus corner-case expansion (the paper's full method).

    An inconclusive voxel above leaf level is subdivided and CHECKICA is
    applied to its children instead of paying a 216-op CHECKBOX; only
    leaf-level corner cases still fall back to the exact test.
    """

    name = "AICA"
    use_memo = True
    needs_table = True
    expand_corners = True


METHODS: tuple = (PBox, PBoxOpt, PICA, MICA, AICA)


def method_by_name(name: str):
    """Instantiate a method by its paper name (case-insensitive)."""
    for cls in METHODS:
        if cls.name.lower() == name.lower():
            return cls()
    raise KeyError(f"unknown CD method {name!r}; choose from {[c.name for c in METHODS]}")
