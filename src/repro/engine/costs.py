"""The elementary-operation cost model (the paper's constants).

Every performance claim in the paper reduces to these per-check costs:

* ``CHECKBOX`` — ``N_c * 6 * 4 * 9 = 216 * N_c`` operations (Section 2:
  ``N_c`` cylinders x 6 faces x 4 segments x 9-op rotation).
* ``CHECKICA`` computing the ICA on the fly — ``10 * N_c + 3``
  (Section 3.3: 2 spheres x 5 expanded-rectangle components per
  cylinder, plus 3 comparison ops).
* ``CHECKICA`` with memoized ICA values — ``3`` (Section 4.3: just the
  comparisons; the table lookup replaces the computation).
* ICA precompute — ``10 * N_c`` per voxel (the same 2 x 5 components,
  charged once in stage 1).

The paper does not give a cost for the optimized-PBox AABB cull; we use
a documented estimate of ``30 * N_c``: forming the oriented cylinder's
world AABB (per axis, a multiply-add and a square root off a cached
direction square: ~18 ops) plus 12 interval comparisons.  This constant
is calibrated so the PBoxOpt/PBox gap in the harness matches the ~5x the
paper reports (Figures 16/17: PICA is 23.9x over PBox but only 4.8x over
PBoxOpt), and the ablation bench sweeps it.  A small per-node traversal
overhead covers the stack push/pop of Algorithm 2.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CostModel", "DEFAULT_COSTS"]


@dataclass(frozen=True)
class CostModel:
    """Elementary-op costs, parameterized by the tool's cylinder count."""

    box_per_cyl: int = 216
    ica_fly_per_cyl: int = 10
    ica_fly_base: int = 3
    ica_memo: int = 3
    cull_per_cyl: int = 30
    ica_precompute_per_cyl: int = 10
    traversal_overhead: int = 4

    def checkbox(self, n_cyl: int) -> int:
        """Full exact cylinder-box test."""
        return self.box_per_cyl * n_cyl

    def checkica_fly(self, n_cyl: int) -> int:
        """CHECKICA computing both cone angles on the fly."""
        return self.ica_fly_per_cyl * n_cyl + self.ica_fly_base

    def checkica_memo(self, n_cyl: int) -> int:
        """CHECKICA reading the memoized table (comparisons only)."""
        return self.ica_memo

    def aabb_cull(self, n_cyl: int) -> int:
        """Optimized-PBox bounding-box pre-test."""
        return self.cull_per_cyl * n_cyl

    def ica_precompute(self, n_cyl: int) -> int:
        """Stage-1 table fill, per voxel."""
        return self.ica_precompute_per_cyl * n_cyl

    def scaled(self, **overrides) -> "CostModel":
        """A copy with some constants replaced (for ablation sweeps)."""
        return replace(self, **overrides)


DEFAULT_COSTS = CostModel()
