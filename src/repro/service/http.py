"""JSON-over-HTTP front end for the query service (stdlib only).

Endpoints (all JSON bodies/responses):

* ``POST /v1/scenes`` — register a scene.  The request names a target
  (an uploaded ``.npz`` octree as base64, a server-side ``.npz`` path,
  or a built-in benchmark model to voxelize), a tool, and a pivot;
  the response carries the scene's content digest, the handle every
  subsequent query uses.
* ``POST /v1/cd`` — answer one accessibility query (the body is a
  :class:`repro.service.core.QuerySpec` in JSON form).  Identical
  concurrent queries coalesce; finished ones are served from the result
  cache; a full dispatch queue answers ``503`` with a ``Retry-After``
  header instead of queueing unboundedly.
* ``GET /v1/healthz`` — liveness + a small status snapshot, including
  the sliding-window request stats (rolling 1s/10s/60s RPS, error rate,
  latency quantiles).
* ``GET /v1/metrics`` — the ambient :mod:`repro.obs.metrics` registry.
  JSON by default (everything ``repro-obs diff`` understands);
  ``?format=prometheus`` renders the same snapshot in Prometheus text
  exposition format for scrapers (:mod:`repro.obs.expo`).

All request-scoped plumbing — request IDs and their allowlist fence,
W3C trace-context honoring/minting, the JSON ``500`` error fence, the
sliding request window, and the structured access log — lives in the
shared :class:`repro.service.wire.JsonRequestHandler` base, which the
cluster router (:mod:`repro.cluster.router`) reuses verbatim; this
module adds only the replica's routes.  See ``wire.py`` for the full
description of those behaviors and ``docs/serving.md`` for the
operations story.

The server is a :class:`http.server.ThreadingHTTPServer`: cheap,
dependency-free, and sufficient because request threads only parse JSON
and wait — actual compute is serialized by the service's broker and
parallelized by its worker-process pool.
"""

from __future__ import annotations

import base64
import io
from http.server import ThreadingHTTPServer

import numpy as np

from repro.cd.scene import Scene
from repro.obs.context import format_traceparent
from repro.obs.metrics import get_metrics
from repro.service.batching import Backpressure
from repro.service.core import QuerySpec, Service
from repro.service.registry import UnknownSceneError
from repro.service.wire import JsonRequestHandler
from repro.tool.tool import Tool, ball_end_mill, paper_tool

__all__ = ["scene_from_request", "tool_from_spec", "ServiceHTTPServer", "serve"]

_MODELS = ("head", "candle_holder", "turbine", "teapot")


def tool_from_spec(spec) -> Tool:
    """A tool from its JSON form: ``"paper"``, ``"ball"``, or
    ``{"segments": [[radius, height], ...]}`` (stacked tip-to-holder)."""
    if spec is None or spec == "paper":
        return paper_tool()
    if spec == "ball":
        return ball_end_mill()
    if isinstance(spec, dict) and "segments" in spec:
        return Tool.from_segments(
            [(float(r), float(h)) for r, h in spec["segments"]],
            name=str(spec.get("name", "custom")),
        )
    raise ValueError(
        f"tool must be 'paper', 'ball', or {{'segments': [[r, h], ...]}}, got {spec!r}"
    )


def scene_from_request(body: dict) -> Scene:
    """Build the scene a ``POST /v1/scenes`` body describes.

    Exactly one source must be given: ``npz_b64`` (an uploaded
    :func:`repro.octree.io.save_octree` file), ``path`` (a server-side
    ``.npz``), or ``model`` (a built-in benchmark model voxelized at
    ``resolution`` with the standard top-level expansion).
    """
    from repro.octree.io import load_octree

    sources = [k for k in ("npz_b64", "path", "model") if body.get(k) is not None]
    if len(sources) != 1:
        raise ValueError(
            f"give exactly one of npz_b64 / path / model, got {sources or 'none'}"
        )
    if "pivot" not in body:
        raise ValueError("scene registration needs a pivot [x, y, z]")
    pivot = np.asarray(body["pivot"], dtype=np.float64)
    tool = tool_from_spec(body.get("tool"))

    if body.get("npz_b64") is not None:
        raw = base64.b64decode(body["npz_b64"])
        tree = load_octree(io.BytesIO(raw))
    elif body.get("path") is not None:
        tree = load_octree(body["path"])
    else:
        model = str(body["model"])
        if model not in _MODELS:
            raise ValueError(f"unknown model {model!r}; choose from {_MODELS}")
        import repro.solids.models as models
        from repro.octree.build import build_from_sdf, expand_top

        bench = getattr(models, f"{model}_model")()
        resolution = int(body.get("resolution", 64))
        tree = build_from_sdf(bench.sdf, bench.domain, resolution)
        expand = int(body.get("expand_top", 5))
        if expand > 0:
            tree = expand_top(tree, expand)
    return Scene(tree, tool, pivot)


class _Handler(JsonRequestHandler):
    server: "ServiceHTTPServer"

    known_routes = frozenset({"/v1/scenes", "/v1/cd", "/v1/healthz", "/v1/metrics"})

    # -- routes -----------------------------------------------------------

    def _route_get(self, path: str) -> None:
        service = self.server.service
        if path == "/v1/healthz":
            self._send_json(200, {
                "status": "ok",
                "uptime_s": service.uptime_s,
                "scenes": len(service.registry),
                "cache_entries": len(service.cache),
                "queue_depth": service.broker.depth,
                "window": service.window.snapshot(),
            })
        elif path == "/v1/metrics":
            self._route_metrics()
        else:
            self._send_json(404, {"error": f"no route {path!r}"})

    def _route_post(self, path: str) -> None:
        service = self.server.service
        try:
            body = self._read_json()
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)})
            return

        if path == "/v1/scenes":
            try:
                scene = scene_from_request(body)
            except (ValueError, OSError) as exc:
                self._send_json(400, {"error": str(exc)})
                return
            digest = service.register_scene(scene)
            self._log_fields["scene"] = digest[:12]
            self._send_json(200, {
                "scene": digest,
                "depth": scene.tree.depth,
                "nodes": int(sum(lev.n for lev in scene.tree.levels)),
                "pivot": scene.pivot.tolist(),
                "tool": scene.tool.name,
            })
        elif path == "/v1/cd":
            ctx = self._trace_ctx
            get_metrics().counter(
                "service.trace.sampled" if ctx.sampled else "service.trace.dropped"
            ).inc()
            # An error answered before query() mints the request span
            # still echoes a well-formed traceparent (fresh span ID) so
            # the caller can join its retry to the same trace.
            self._response_traceparent = format_traceparent(ctx.child())
            include_map = bool(body.pop("include_map", True))
            try:
                spec = QuerySpec.from_dict(body)
            except ValueError as exc:
                self._send_json(400, {"error": str(exc)})
                return
            self._log_fields["scene"] = spec.scene[:12]
            try:
                result = service.query(
                    spec, request_id=self._request_id, trace_ctx=ctx
                )
            except UnknownSceneError:
                self._send_json(404, {"error": f"unknown scene {spec.scene!r}"})
                return
            except Backpressure as exc:
                self._log_fields["served"] = "rejected"
                self._send_json(
                    503,
                    {"error": str(exc), "retry_after_s": exc.retry_after_s},
                    headers={"Retry-After": f"{max(1, round(exc.retry_after_s))}"},
                )
                return
            # The definitive echo: the span ID under which this request
            # was actually recorded.
            self._response_traceparent = format_traceparent(result.trace_ctx)
            self._log_fields["served"] = result.served
            if result.cost is not None:
                self._log_fields["queue_wait_ms"] = round(
                    result.cost["queue_wait_ms"], 3
                )
            self._send_json(200, result.to_dict(include_map=include_map))
        else:
            self._send_json(404, {"error": f"no route {path!r}"})


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`Service`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: Service):
        super().__init__(address, _Handler)
        self.service = service

    @property
    def window(self):
        """The service's request window (fed by the shared handler base)."""
        return self.service.window


def serve(service: Service, host: str = "127.0.0.1", port: int = 8077) -> ServiceHTTPServer:
    """Bind (``port`` 0 picks a free one) and return the server unstarted.

    Callers drive it: ``serve_forever()`` to block, or run it on a
    thread and ``shutdown()`` when done (what the tests and the in-CI
    smoke job do).
    """
    return ServiceHTTPServer((host, port), service)
