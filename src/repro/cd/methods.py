"""The five CD methods' per-wave decision kernels.

Each method implements ``decide(rt, wave) -> outcomes`` classifying every
live (thread, node) pair of a frontier wave as ``OUT_NO`` / ``OUT_YES``
/ ``OUT_EXPAND`` (see :mod:`repro.cd.traversal`).  All methods are
*exact*: the ICA-based ones resolve every inconclusive pair, either with
the exact ``CHECKBOX`` fallback or (AICA) by expanding the voxel and
deciding the children — so all five produce identical accessibility
maps, which the integration tests assert.

Costs are charged to the per-thread counters as the paper counts them:
one ``ica_fly`` event covers the whole two-sphere ``CHECKICA``
(``10*N_c + 3`` ops), one ``ica_memo`` event the memoized variant
(3 ops), one ``box`` event a full ``CHECKBOX`` (``216*N_c``), one
``cull`` event the optimized-PBox AABB pre-test.
"""

from __future__ import annotations

import numpy as np

from repro.cd.traversal import OUT_EXPAND, OUT_NO, OUT_YES, Runtime, Wave
from repro.geometry.batch import tool_aabb_batch, tool_aabb_cull_batch
from repro.ica.cone import ica_bounds_cos
from repro.ica.table import SQRT3

__all__ = ["PBox", "PBoxOpt", "PICA", "MICA", "AICA", "METHODS", "method_by_name"]


def _box_check(rt: Runtime, wave: Wave, mask: np.ndarray) -> np.ndarray:
    """Exact whole-tool CHECKBOX on the masked pairs; returns (F,) bool
    (False outside the mask) and charges one box check per tested pair.

    Under the v2 engine (``wave.ctx`` set) the per-pair tool frames are
    gathered from the block's per-thread frame cache instead of being
    rebuilt inside the kernel — the frame depends only on the thread's
    direction, and :func:`repro.geometry.frames.frame_from_axis` is
    elementwise per row, so gathered frames are bit-equal to recomputed
    ones and the kernel's verdicts are unchanged.
    """
    out = np.zeros(wave.size, dtype=bool)
    if not mask.any():
        return out
    tool = rt.scene.tool
    ctx = wave.ctx
    if ctx is not None and ctx.use_panels:
        sel = np.flatnonzero(mask)
        if ctx.want_screen_panel(len(sel)):
            # Dense mask: the sphere screen is evaluated per (node,
            # thread) cell once for the whole level; each masked pair
            # gathers its verdict and only the undecided band runs the
            # exact rotate/clip/project kernel (on gathered geometry).
            scr_hit, scr_und = ctx.box_screen_panel()
            flat = ctx.pair_flat()[wave.offset : wave.offset + wave.size]
            np.take(scr_hit.reshape(-1), flat, out=out)
            out &= mask
            und = np.take(scr_und.reshape(-1), flat)
            und &= mask
            sel = np.flatnonzero(und)
            if len(sel):
                centers, dirs, frames = ctx.pair_geometry_subset(wave, sel)
                out[sel] = tool_aabb_batch(
                    rt.scene.pivot,
                    dirs,
                    centers,
                    wave.half,
                    tool.z0,
                    tool.z1,
                    tool.radius,
                    screen=False,
                    frames=frames,
                    backend=rt.backend,
                )
        elif len(sel):
            # Sparse mask (corner fallback, cull survivors): gather the
            # masked pairs' geometry and run the reference per-pair
            # kernel — the same rows through the same code path.
            centers, dirs, frames = ctx.pair_geometry_subset(wave, sel)
            out[sel] = tool_aabb_batch(
                rt.scene.pivot,
                dirs,
                centers,
                wave.half,
                tool.z0,
                tool.z1,
                tool.radius,
                frames=frames,
                backend=rt.backend,
            )
        rt.counters.add_threads("box_checks", wave.threads[mask], rt.counters.n_threads)
        return out
    frames = None
    if ctx is not None:
        frames = ctx.block_frames()[wave.threads[mask] - ctx.t0]
    out[mask] = tool_aabb_batch(
        rt.scene.pivot,
        wave.dirs[mask],
        wave.centers[mask],
        wave.half,
        tool.z0,
        tool.z1,
        tool.radius,
        frames=frames,
        backend=rt.backend if ctx is not None else None,
    )
    rt.counters.add_threads("box_checks", wave.threads[mask], rt.counters.n_threads)
    return out


class PBox:
    """Baseline: exact CHECKBOX at every visited node (Figure 4)."""

    name = "PBox"
    needs_table = False

    def decide(self, rt: Runtime, wave: Wave) -> np.ndarray:
        hit = _box_check(rt, wave, np.ones(wave.size, dtype=bool))
        return np.where(hit, OUT_YES, OUT_NO)


class PBoxOpt:
    """Optimized PBox: AABB cull after rotation, then exact CHECKBOX.

    The cull builds the world AABB of each oriented tool cylinder and
    tests it against the voxel; a miss proves no intersection, a hit
    still requires the exact test.  This is conservative-sound, so the
    result is identical to PBox — just cheaper on the (many) far-away
    nodes.
    """

    name = "PBoxOpt"
    needs_table = False

    def decide(self, rt: Runtime, wave: Wave) -> np.ndarray:
        tool = rt.scene.tool
        ctx = wave.ctx
        if ctx is None:
            possible = tool_aabb_cull_batch(
                rt.scene.pivot,
                wave.dirs,
                wave.centers,
                wave.half,
                tool.z0,
                tool.z1,
                tool.radius,
            )
        elif ctx.use_panels:
            # Panel mode: one cull verdict per (unique node, block thread)
            # cell; every pair of the wave gathers its cell.
            flat = ctx.pair_flat()[wave.offset : wave.offset + wave.size]
            possible = np.take(ctx.cull_panel().reshape(-1), flat)
        else:
            possible = self._cull_v2(rt, wave, ctx)
        rt.counters.add_threads("cull_checks", wave.threads, rt.counters.n_threads)
        hit = _box_check(rt, wave, possible)
        return np.where(hit, OUT_YES, OUT_NO)

    @staticmethod
    def _cull_v2(rt: Runtime, wave: Wave, ctx) -> np.ndarray:
        """The AABB cull against per-thread cylinder boxes hoisted per block.

        The cylinder AABBs depend only on (pivot, dir), so the block
        computes them once (``_RunCache.block_cyl_aabbs``) and each pair
        only gathers.  A union-AABB pre-reject shrinks the per-cylinder
        test to candidate pairs: the union box misses the voxel on some
        axis iff *every* cylinder box misses it on that axis (the union
        bound per axis is the min/max over cylinders), so rejected pairs
        are exactly the pairs whose per-cylinder test is all-False — the
        returned mask is bit-equal to ``tool_aabb_cull_batch``.
        """
        lo, hi, ulo, uhi = ctx.block_cyl_aabbs()
        ws = rt.workspace
        n = wave.size
        rows = ws.take("pbo.rows", n, np.intp)
        np.subtract(wave.threads, ctx.t0, out=rows)
        blo = ws.take("pbo.blo", (n, 3))
        np.subtract(wave.centers, wave.half, out=blo)
        bhi = ws.take("pbo.bhi", (n, 3))
        np.add(wave.centers, wave.half, out=bhi)

        cand = ((ulo[rows] <= bhi) & (blo <= uhi[rows])).all(axis=-1)
        possible = ws.take("pbo.possible", n, bool)
        possible[:] = False
        sel = np.flatnonzero(cand)
        if len(sel):
            rs = rows[sel]
            possible[sel] = (
                (lo[rs] <= bhi[sel, None, :]) & (blo[sel, None, :] <= hi[rs])
            ).all(axis=-1).any(axis=-1)
        return possible


class _IcaBase:
    """Shared CHECKICA logic (Algorithm 1) for PICA / MICA / AICA.

    Subclasses set ``use_memo`` (gather stage-1 table values when
    available) and ``expand_corners`` (AICA's Section 4.3 optimization).
    """

    use_memo = False
    expand_corners = False
    needs_table = False

    def decide(self, rt: Runtime, wave: Wave) -> np.ndarray:
        if wave.ctx is not None:
            if wave.ctx.use_panels:
                return self._decide_panel(rt, wave)
            return self._decide_v2(rt, wave)
        return self._decide_ref(rt, wave)

    def _decide_ref(self, rt: Runtime, wave: Wave) -> np.ndarray:
        """The v1 reference kernel: everything computed per (sub-)wave."""
        scene = rt.scene
        n_threads = rt.counters.n_threads

        rel = wave.centers - scene.pivot
        dist = np.sqrt(np.einsum("ij,ij->i", rel, rel))
        safe = np.maximum(dist, 1e-300)
        # Compare in cosine space throughout: theta <= ica  <=>  cos_angle
        # >= cos(ica), and the dot product gives the cosine for free.
        cos_angle = np.clip(np.einsum("ij,ij->i", wave.dirs, rel) / safe, -1.0, 1.0)
        cos_angle = np.where(dist == 0.0, 1.0, cos_angle)

        cos1 = np.empty(wave.size)
        cos2 = np.empty(wave.size)

        memo = np.zeros(wave.size, dtype=bool)
        if self.use_memo and rt.table is not None and rt.table.has_level(wave.level):
            memo = wave.idx >= 0
        if memo.any():
            cos1[memo], cos2[memo] = rt.table.lookup(wave.level, wave.idx[memo])
            rt.counters.add_threads("ica_memo_checks", wave.threads[memo], n_threads)
        fly = ~memo
        if fly.any():
            # The cone bounds depend only on (node center distance, cell
            # size), not on the thread, so compute once per unique node and
            # gather — a wall-clock dedup only; the simulated cost stays
            # per-pair (each GPU thread of PICA really does recompute its
            # own ICA, which is exactly the redundancy MICA's table removes).
            tool = scene.tool
            uniq, inverse = np.unique(wave.codes[fly], return_inverse=True)
            first = np.zeros(len(uniq), dtype=np.intp)
            first[inverse[::-1]] = np.nonzero(fly)[0][::-1]
            du = dist[first]
            lo, _ = ica_bounds_cos(
                tool.z0, tool.z1, tool.radius, du, np.full(len(uniq), wave.half)
            )
            _, hi = ica_bounds_cos(
                tool.z0, tool.z1, tool.radius, du, np.full(len(uniq), SQRT3 * wave.half)
            )
            cos1[fly] = lo[inverse]
            cos2[fly] = hi[inverse]
            rt.counters.add_threads("ica_fly_checks", wave.threads[fly], n_threads)

        yes = cos_angle >= cos1
        no = ~yes & (cos_angle <= cos2)
        corner = ~yes & ~no
        if corner.any():
            rt.counters.add_threads("corner_cases", wave.threads[corner], n_threads)

        outcomes = np.full(wave.size, OUT_NO, dtype=np.uint8)
        outcomes[yes] = OUT_YES

        if self.expand_corners and wave.level < scene.tree.depth:
            outcomes[corner] = OUT_EXPAND
        elif corner.any():
            hit = _box_check(rt, wave, corner)
            outcomes[corner & hit] = OUT_YES
        return outcomes

    def _decide_v2(self, rt: Runtime, wave: Wave) -> np.ndarray:
        """The v2 kernel: per-node quantities come from the level context.

        Distances and cone bounds are gathered from
        :class:`~repro.cd.traversal.LevelContext` (computed once per
        (block, level) over unique nodes instead of once per pair per
        chunk); only the genuinely per-pair dot product ``dir . rel``
        remains in the loop, evaluated into workspace buffers.  Every
        gathered value is bit-equal to what :meth:`_decide_ref` computes
        in place, and counters are charged with the same per-pair masks,
        so outcomes and counters are byte-identical.
        """
        scene = rt.scene
        n_threads = rt.counters.n_threads
        ctx = wave.ctx
        ws = rt.workspace
        n = wave.size
        sl = slice(wave.offset, wave.offset + n)

        dist = ctx.pair_dist()[sl]
        rel = ws.take("ica.rel", (n, 3))
        np.subtract(wave.centers, scene.pivot, out=rel)
        cos_angle = ws.take("ica.cos_angle", n)
        np.einsum("ij,ij->i", wave.dirs, rel, out=cos_angle)
        safe = ws.take("ica.safe", n)
        np.maximum(dist, 1e-300, out=safe)
        np.divide(cos_angle, safe, out=cos_angle)
        np.clip(cos_angle, -1.0, 1.0, out=cos_angle)
        cos_angle[dist == 0.0] = 1.0

        cos1_full, cos2_full, memo_stored = ctx.cos_bounds(self.use_memo)
        cos1 = cos1_full[sl]
        cos2 = cos2_full[sl]

        if memo_stored:
            memo = wave.idx >= 0
        else:
            memo = np.zeros(n, dtype=bool)
        if memo.any():
            rt.counters.add_threads("ica_memo_checks", wave.threads[memo], n_threads)
        fly = ~memo
        if fly.any():
            rt.counters.add_threads("ica_fly_checks", wave.threads[fly], n_threads)

        yes = cos_angle >= cos1
        no = ~yes & (cos_angle <= cos2)
        corner = ~yes & ~no
        if corner.any():
            rt.counters.add_threads("corner_cases", wave.threads[corner], n_threads)

        outcomes = np.full(n, OUT_NO, dtype=np.uint8)
        outcomes[yes] = OUT_YES

        if self.expand_corners and wave.level < scene.tree.depth:
            outcomes[corner] = OUT_EXPAND
        elif corner.any():
            hit = _box_check(rt, wave, corner)
            outcomes[corner & hit] = OUT_YES
        return outcomes

    def _decide_panel(self, rt: Runtime, wave: Wave) -> np.ndarray:
        """The panel kernel: the full (unique node x block thread) CHECKICA
        matrix is evaluated once per level and every pair gathers its cell.

        The panel einsum accumulates ``rel . dir`` over the coordinate
        axis in the same order as the per-pair einsum, so the gathered
        cosines — and therefore outcomes — are bit-equal to
        :meth:`_decide_v2`.  Counters are charged with the same per-pair
        masks in the same order (memo, fly, corner, box).
        """
        ctx = wave.ctx
        n = wave.size
        sl = slice(wave.offset, wave.offset + n)
        out_mat, corner_mat, memo_stored = ctx.ica_outcome_panel(
            self.use_memo, self.expand_corners
        )
        flat = ctx.pair_flat()[sl]
        outcomes = np.take(out_mat.reshape(-1), flat)
        corner = np.take(corner_mat.reshape(-1), flat)

        n_threads = rt.counters.n_threads
        if memo_stored:
            memo = wave.idx >= 0
        else:
            memo = np.zeros(n, dtype=bool)
        if memo.any():
            rt.counters.add_threads("ica_memo_checks", wave.threads[memo], n_threads)
        fly = ~memo
        if fly.any():
            rt.counters.add_threads("ica_fly_checks", wave.threads[fly], n_threads)
        if corner.any():
            rt.counters.add_threads("corner_cases", wave.threads[corner], n_threads)

        if self.expand_corners and wave.level < rt.scene.tree.depth:
            pass  # corners are already OUT_EXPAND in the panel
        elif corner.any():
            hit = _box_check(rt, wave, corner)
            outcomes[corner & hit] = OUT_YES
        return outcomes


class PICA(_IcaBase):
    """CHECKICA with on-the-fly cone angles; CHECKBOX fallback on corners."""

    name = "PICA"


class MICA(_IcaBase):
    """PICA plus the stage-1 memoized ICA table for the top ``S`` levels."""

    name = "MICA"
    use_memo = True
    needs_table = True


class AICA(_IcaBase):
    """MICA plus corner-case expansion (the paper's full method).

    An inconclusive voxel above leaf level is subdivided and CHECKICA is
    applied to its children instead of paying a 216-op CHECKBOX; only
    leaf-level corner cases still fall back to the exact test.
    """

    name = "AICA"
    use_memo = True
    needs_table = True
    expand_corners = True


METHODS: tuple = (PBox, PBoxOpt, PICA, MICA, AICA)


def method_by_name(name: str):
    """Instantiate a method by its paper name (case-insensitive)."""
    for cls in METHODS:
        if cls.name.lower() == name.lower():
            return cls()
    raise KeyError(f"unknown CD method {name!r}; choose from {[c.name for c in METHODS]}")
