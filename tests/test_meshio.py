"""Mesh file I/O roundtrips."""

import numpy as np
import pytest

from repro.geometry.aabb import AABB
from repro.solids.mesh import extract_mesh
from repro.solids.meshio import load_obj, mesh_bounds, save_obj, save_stl
from repro.solids.sdf import SphereSDF


@pytest.fixture(scope="module")
def sphere_mesh():
    dom = AABB((-10, -10, -10), (10, 10, 10))
    return extract_mesh(SphereSDF((0, 0, 0), 6.0), dom, 16)


class TestObj:
    def test_roundtrip_exact(self, sphere_mesh, tmp_path):
        V, F = sphere_mesh
        p = tmp_path / "m.obj"
        save_obj(p, V, F)
        V2, F2 = load_obj(p)
        np.testing.assert_array_equal(V, V2)
        np.testing.assert_array_equal(F, F2)

    def test_load_with_slashes_and_quads(self, tmp_path):
        p = tmp_path / "q.obj"
        p.write_text(
            "v 0 0 0\nv 1 0 0\nv 1 1 0\nv 0 1 0\n"
            "f 1/1/1 2/2/2 3/3/3 4/4/4\n"
        )
        V, F = load_obj(p)
        assert V.shape == (4, 3)
        # quad fan-triangulated into two triangles
        np.testing.assert_array_equal(F, [[0, 1, 2], [0, 2, 3]])

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            save_obj(tmp_path / "x.obj", np.zeros((2, 3)), np.array([[0, 1, 5]]))
        with pytest.raises(ValueError):
            save_obj(tmp_path / "x.obj", np.zeros((2, 2)), np.zeros((0, 3), int))


class TestStl:
    def test_stl_structure(self, sphere_mesh, tmp_path):
        V, F = sphere_mesh
        p = tmp_path / "m.stl"
        save_stl(p, V, F, name="ball")
        text = p.read_text()
        assert text.startswith("solid ball")
        assert text.rstrip().endswith("endsolid ball")
        assert text.count("facet normal") == len(F)
        assert text.count("vertex") == 3 * len(F)

    def test_normals_unit(self, sphere_mesh, tmp_path):
        V, F = sphere_mesh
        p = tmp_path / "m.stl"
        save_stl(p, V, F)
        for line in p.read_text().splitlines():
            if line.strip().startswith("facet normal"):
                n = np.array([float(x) for x in line.split()[2:]])
                assert np.linalg.norm(n) == pytest.approx(1.0, abs=1e-6)
                break

    def test_empty_mesh(self, tmp_path):
        p = tmp_path / "e.stl"
        save_stl(p, np.zeros((0, 3)), np.zeros((0, 3), int))
        assert "endsolid" in p.read_text()


class TestPipelineViaDisk:
    def test_obj_to_voxels(self, sphere_mesh, tmp_path):
        """Export -> import -> voxelize must match direct voxelization."""
        from repro.solids.voxelize import voxelize_mesh

        V, F = sphere_mesh
        dom = AABB((-10, -10, -10), (10, 10, 10))
        p = tmp_path / "m.obj"
        save_obj(p, V, F)
        V2, F2 = load_obj(p)
        a = voxelize_mesh(V, F, dom, 16)
        b = voxelize_mesh(V2, F2, dom, 16)
        np.testing.assert_array_equal(a, b)

    def test_mesh_bounds(self, sphere_mesh):
        V, _ = sphere_mesh
        lo, hi = mesh_bounds(V)
        assert (lo >= -6.8).all() and (hi <= 6.8).all()
        lo0, hi0 = mesh_bounds(np.zeros((0, 3)))
        assert (lo0 == 0).all() and (hi0 == 0).all()
