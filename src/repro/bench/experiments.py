"""One generator per table/figure of the paper (plus ablations).

Every function returns an :class:`ExperimentResult` whose rows hold the
measured data and whose ``paper`` dict carries the published values for
side-by-side comparison.  All functions take the scale preset (falling
back to :func:`repro.bench.config.current_scale`) so the same code runs
the tests' smoke sizes and the full bench sizes.

Index (see DESIGN.md §5):

========  ==========================================================
table1    benchmark statistics (triangles, octree voxels, path points)
table2    the simulated device presets
fig05     baseline PBox time vs object resolution / vs map resolution
fig09     theoretical + empirical ICA efficiency
fig13     octree nodes vs critical-thread checks
fig14     load imbalance & the parallel ICA precompute, both devices
fig15     corner-case optimization: box-check %, check increase
fig16     all five methods vs object resolution
fig17     all five methods vs map resolution
fig18     time breakdown vs the precompute depth S
fig19     time breakdown vs object resolution (AICA)
boxica    Section 6: ICA bounds for box volumes via 2 cylinders
ablation_costs / ablation_warp / ablation_start_level: design choices
========  ==========================================================
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.bench.config import BenchScale, current_scale
from repro.bench.paper import PAPER
from repro.bench.render import render_table
from repro.bench.runner import (
    Workload,
    build_workload,
    cached_raw_tree,
    run_workload,
)
from repro.cd import AICA, MICA, PBox, PBoxOpt, PICA
from repro.cd.traversal import TraversalConfig
from repro.engine.costs import DEFAULT_COSTS
from repro.engine.device import DEVICES, GTX_1080, GTX_1080_TI, scaled_device
from repro.geometry.orientation import OrientationGrid
from repro.ica.boxica import box_corner_fraction
from repro.ica.efficiency import theoretical_efficiency
from repro.octree.stats import octree_stats
from repro.solids.models import benchmark_models

__all__ = [
    "ExperimentResult",
    "table1",
    "table2",
    "fig05",
    "fig09",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "boxica",
    "am_overlap",
    "ablation_bvh",
    "ablation_costs",
    "ablation_mapping",
    "ablation_warp",
    "ablation_start_level",
    "wallclock",
    "ALL_EXPERIMENTS",
]

_METHOD_ORDER = (PBox, PBoxOpt, PICA, MICA, AICA)


@dataclass
class ExperimentResult:
    """Measured rows plus the paper's expectations for one experiment."""

    exp_id: str
    title: str
    headers: list[str]
    rows: list[list]
    paper: dict = field(default_factory=dict)
    notes: str = ""
    extras: dict = field(default_factory=dict)

    def render(self) -> str:
        note = self.notes
        if self.paper:
            shape = self.paper.get("shape")
            if shape:
                lines = shape if isinstance(shape, list) else [shape]
                note = (note + "\n" if note else "") + "paper: " + "; ".join(lines)
        return render_table(f"[{self.exp_id}] {self.title}", self.headers, self.rows, note)


def _grid(l: int) -> OrientationGrid:
    return OrientationGrid.square(l)


def _methods(scale: BenchScale):
    order = _METHOD_ORDER if scale.heavy_methods else (PICA, MICA, AICA)
    return [cls() for cls in order]


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------


def table1(scale: BenchScale | None = None) -> ExperimentResult:
    """Table 1: geometric statistics of the benchmarks, paper vs measured."""
    scale = scale or current_scale()
    rows = []
    for model in benchmark_models():
        path_paper = model.paper["path_points_k"]
        vox_paper = model.paper["voxels_m"]
        for res in scale.resolutions:
            tree = cached_raw_tree(model, res)
            stats = octree_stats(tree)
            wl = build_workload(model, res, n_pivots=1)
            rows.append(
                [
                    model.name,
                    f"{res}^3",
                    stats["total_nodes"],
                    vox_paper.get(res, None) and vox_paper[res] * 1e6,
                    stats["layers"],
                    model.paper["layers"].get(res),
                    len(wl.path),
                    path_paper.get(res, None) and path_paper[res] * 1e3,
                    round(stats["solid_volume"], 0),
                ]
            )
    return ExperimentResult(
        exp_id="table1",
        title="Benchmark statistics (measured vs paper where resolutions overlap)",
        headers=[
            "model",
            "resolution",
            "octree nodes",
            "paper nodes",
            "layers",
            "paper layers",
            "path points",
            "paper path pts",
            "solid volume mm^3",
        ],
        rows=rows,
        paper=PAPER["table1"],
        notes="Models are procedural analogues; paper columns apply to the "
        "original meshes and are shown only at the paper's resolutions.",
    )


def table2(scale: BenchScale | None = None) -> ExperimentResult:
    """Table 2: the two simulated platforms."""
    rows = [
        [d.name, d.cuda_cores, d.clock_ghz, d.warp_size, d.warp_slots, d.memory_gb]
        for d in DEVICES.values()
    ]
    return ExperimentResult(
        exp_id="table2",
        title="Simulated SIMT platforms (paper's Table 2 GPUs)",
        headers=["device", "cores", "clock GHz", "warp", "warp slots", "mem GB"],
        rows=rows,
        paper=PAPER["table2"],
    )


# ---------------------------------------------------------------------------
# Figures
# ---------------------------------------------------------------------------


def fig05(scale: BenchScale | None = None) -> ExperimentResult:
    """Figure 5: baseline (PBox) scaling in object and map resolution."""
    scale = scale or current_scale()
    device = scaled_device(GTX_1080_TI, scale.device_divisor)
    rows = []
    for res in scale.resolutions:
        wl = build_workload("head", res, n_pivots=scale.n_pivots)
        s = run_workload(wl, PBox(), _grid(scale.default_map), device=device)
        rows.append(["object sweep", f"{res}^3", f"{scale.default_map}^2", s["sim_total_ms"]])
    for l in scale.map_sizes:
        wl = build_workload("head", scale.default_resolution, n_pivots=scale.n_pivots)
        s = run_workload(wl, PBox(), _grid(l), device=device)
        rows.append(
            ["map sweep", f"{scale.default_resolution}^3", f"{l}^2", s["sim_total_ms"]]
        )
    return ExperimentResult(
        exp_id="fig05",
        title=f"Baseline PBox scaling (head model, device {device.name})",
        headers=["sweep", "object res", "map res", "sim time ms"],
        rows=rows,
        paper=PAPER["fig05"],
        notes="Expect sublinear growth down the object sweep and flat-then-"
        "linear growth down the map sweep (flat while threads <= cores).",
    )


def fig09(scale: BenchScale | None = None) -> ExperimentResult:
    """Figure 9: theoretical ICA efficiency, checked against measured rates."""
    scale = scale or current_scale()
    rows = []
    for x in (0.001, 0.005, 0.01, 0.05, 0.1, 0.2, 0.4):
        rows.append(["theory", x, float(theoretical_efficiency(x)) * 100.0])
    # Empirical counterpart: corner-case rate of MICA falls with resolution.
    for res in scale.resolutions:
        wl = build_workload("head", res, n_pivots=scale.n_pivots)
        s = run_workload(wl, MICA(), _grid(scale.default_map))
        # A representative r/dist for this resolution: leaf half-edge over
        # the mean pivot-to-center distance.
        r_over_d = (wl.model.cell_size(res) / 2.0) / float(
            np.mean(np.linalg.norm(wl.pivots, axis=1) + 1e-9) or 1.0
        )
        rows.append([f"measured {res}^3", round(r_over_d, 5), s["ica_efficiency"] * 100.0])
    return ExperimentResult(
        exp_id="fig09",
        title="ICA efficiency: theory vs measured corner-case rates",
        headers=["series", "r/dist", "efficiency %"],
        rows=rows,
        paper=PAPER["fig09"],
        notes="Measured efficiency counts every CHECKICA that avoided a "
        "CHECKBOX; higher resolutions (smaller voxels) are more efficient.",
    )


def fig13(scale: BenchScale | None = None) -> ExperimentResult:
    """Figure 13: total octree nodes vs checks on the critical thread."""
    scale = scale or current_scale()
    rows = []
    for model in benchmark_models():
        for res in scale.resolutions:
            wl = build_workload(model, res, n_pivots=scale.n_pivots)
            s = run_workload(wl, MICA(), _grid(scale.default_map))
            rows.append(
                [
                    model.name,
                    f"{res}^3",
                    wl.tree.total_nodes,
                    int(s["critical_thread_checks"]),
                    round(s["critical_thread_checks"] / wl.tree.total_nodes, 4),
                ]
            )
    return ExperimentResult(
        exp_id="fig13",
        title="Octree size vs critical-thread checks (orientation-per-thread mapping)",
        headers=["model", "resolution", "octree nodes", "critical checks", "ratio"],
        rows=rows,
        paper=PAPER["fig13"],
        notes="The ratio should be well below 1 and shrink with resolution: "
        "the adaptive octree prunes most of the tree per thread.",
    )


def fig14(scale: BenchScale | None = None) -> ExperimentResult:
    """Figure 14: load imbalance and the effect of the ICA precompute."""
    scale = scale or current_scale()
    res = scale.default_resolution
    grid = _grid(scale.default_map)
    wl = build_workload("head", res, n_pivots=1)
    rows = []
    checks_stats = None
    # Unscaled devices: this figure is about the clock-vs-core-count
    # tension between the two cards, which a scaled device would distort
    # (256-4096 threads are latency-bound on both full-size cards).
    for dev in (GTX_1080_TI, GTX_1080):
        device = dev
        for method in (PICA(), MICA(), AICA()):
            s = run_workload(wl, method, grid, device=device)
            r = s["last_result"]
            ops = r.counters.thread_ops(DEFAULT_COSTS)
            if checks_stats is None:
                nv = r.counters.nodes_visited
                checks_stats = (int(nv.min()), float(np.median(nv)), int(nv.max()))
            rows.append(
                [
                    dev.name,
                    method.name,
                    s["sim_precompute_ms"],
                    s["sim_cd_ms"],
                    s["sim_total_ms"],
                    float(ops.max()) / max(float(ops.mean()), 1.0),
                ]
            )
    return ExperimentResult(
        exp_id="fig14",
        title=f"Load imbalance & ICA precompute (head {res}^3, {grid.size} orientations)",
        headers=[
            "device",
            "method",
            "precompute ms",
            "CD ms",
            "total ms",
            "max/mean thread ops",
        ],
        rows=rows,
        paper=PAPER["fig14"],
        notes=f"per-thread checks (min/median/max): {checks_stats}. "
        "MICA/AICA move per-pair cone computation into the uniform "
        "precompute stage, shrinking the imbalance ratio.",
    )


def fig15(scale: BenchScale | None = None) -> ExperimentResult:
    """Figure 15: the corner-case optimization, MICA vs AICA."""
    scale = scale or current_scale()
    rows = []
    box_m_all, box_a_all, inc_all = [], [], []
    for model in benchmark_models():
        wl = build_workload(model, scale.default_resolution, n_pivots=scale.n_pivots)
        grid = _grid(scale.default_map)
        sm = run_workload(wl, MICA(), grid)
        sa = run_workload(wl, AICA(), grid)
        box_m = 100.0 * sm["box_checks"] / max(sm["total_checks"], 1.0)
        box_a = 100.0 * sa["box_checks"] / max(sa["total_checks"], 1.0)
        inc = 100.0 * (sa["total_checks"] - sm["total_checks"]) / max(sm["total_checks"], 1.0)
        box_m_all.append(box_m)
        box_a_all.append(box_a)
        inc_all.append(inc)
        rows.append([model.name, box_m, box_a, inc, sa["ica_efficiency"] * 100.0])
    rows.append(
        [
            "average",
            float(np.mean(box_m_all)),
            float(np.mean(box_a_all)),
            float(np.mean(inc_all)),
            100.0 - float(np.mean(box_a_all)),
        ]
    )
    return ExperimentResult(
        exp_id="fig15",
        title="Corner-case optimization: box-check share and total-check increase",
        headers=[
            "model",
            "MICA box %",
            "AICA box %",
            "total checks +%",
            "AICA efficiency %",
        ],
        rows=rows,
        paper=PAPER["fig15"],
        notes="Paper averages: 14.4% -> 0.9% box checks at +34.1% total "
        "checks, 99% ICA efficiency.",
    )


def _method_sweep(
    scale: BenchScale, *, resolutions=None, maps=None
) -> tuple[list[list], dict]:
    """Shared sweep machinery for Figures 16/17: all methods x one axis."""
    device = scaled_device(GTX_1080_TI, scale.device_divisor)
    rows = []
    sims: dict[tuple[str, object], float] = {}
    axis = resolutions if resolutions is not None else maps
    for val in axis:
        res = val if resolutions is not None else scale.default_resolution
        l = scale.default_map if resolutions is not None else val
        per_method = {}
        for model in benchmark_models():
            wl = build_workload(model, res, n_pivots=scale.n_pivots)
            for method in _methods(scale):
                s = run_workload(wl, method, _grid(l), device=device)
                per_method.setdefault(method.name, []).append(s["sim_total_ms"])
        for name, vals in per_method.items():
            sims[(name, val)] = float(np.mean(vals))
    for name in [m.name for m in _methods(scale)]:
        row = [name] + [sims[(name, v)] for v in axis]
        rows.append(row)
    # Speedup summary rows relative to PBox / PBoxOpt when present.
    if any(k[0] == "PBox" for k in sims):
        for target in ("PICA", "AICA"):
            rows.append(
                [f"PBox/{target}"]
                + [round(sims[("PBox", v)] / sims[(target, v)], 2) for v in axis]
            )
        rows.append(
            ["PBoxOpt/PICA"]
            + [round(sims[("PBoxOpt", v)] / sims[("PICA", v)], 2) for v in axis]
        )
    return rows, sims


def fig16(scale: BenchScale | None = None) -> ExperimentResult:
    """Figure 16: all methods vs object resolution (avg over 4 models)."""
    scale = scale or current_scale()
    rows, sims = _method_sweep(scale, resolutions=scale.resolutions)
    return ExperimentResult(
        exp_id="fig16",
        title=f"Method comparison vs object resolution (map {scale.default_map}^2), sim ms",
        headers=["series"] + [f"{r}^3" for r in scale.resolutions],
        rows=rows,
        paper=PAPER["fig16"],
        extras={"sims": sims},
        notes="Paper: PICA 23.9x over PBox, 4.8x over optimized PBox; MICA "
        "+28.3% over PICA; AICA +81.1% over MICA.",
    )


def fig17(scale: BenchScale | None = None) -> ExperimentResult:
    """Figure 17: all methods vs accessibility-map resolution."""
    scale = scale or current_scale()
    rows, sims = _method_sweep(scale, maps=scale.map_sizes)
    return ExperimentResult(
        exp_id="fig17",
        title=(
            f"Method comparison vs map resolution (object "
            f"{scale.default_resolution}^3), sim ms"
        ),
        headers=["series"] + [f"{l}^2" for l in scale.map_sizes],
        rows=rows,
        paper=PAPER["fig17"],
        extras={"sims": sims},
        notes="Paper: PICA 20.2x over PBox, 4.1x over optimized PBox; MICA "
        "+39.5%; AICA +84.8%.",
    )


def fig18(scale: BenchScale | None = None) -> ExperimentResult:
    """Figure 18: time breakdown vs the precompute depth ``S``."""
    scale = scale or current_scale()
    wl = build_workload("head", scale.default_resolution, n_pivots=scale.n_pivots)
    grid = _grid(scale.default_map)
    depth = wl.tree.depth
    rows = []
    for S in range(2, depth + 2):
        cfg = TraversalConfig(memo_levels=S)
        s = run_workload(wl, AICA(), grid, config=cfg)
        rows.append(
            [S, s["table_entries"], s["sim_precompute_ms"], s["sim_cd_ms"], s["sim_total_ms"]]
        )
    return ExperimentResult(
        exp_id="fig18",
        title=f"AICA time breakdown vs S (head {scale.default_resolution}^3)",
        headers=["S (memo levels)", "table entries", "precompute ms", "CD ms", "total ms"],
        rows=rows,
        paper=PAPER["fig18"],
        notes="CD time falls as more levels are memoized; precompute cost "
        "grows with the (exponentially growing) table.",
    )


def fig19(scale: BenchScale | None = None) -> ExperimentResult:
    """Figure 19: AICA time breakdown vs object resolution."""
    scale = scale or current_scale()
    rows = []
    for res in scale.resolutions:
        wl = build_workload("head", res, n_pivots=scale.n_pivots)
        s = run_workload(wl, AICA(), _grid(scale.default_map))
        rows.append(
            [f"{res}^3", s["table_entries"], s["sim_precompute_ms"], s["sim_cd_ms"], s["sim_total_ms"]]
        )
    return ExperimentResult(
        exp_id="fig19",
        title="AICA time breakdown vs object resolution (head model)",
        headers=["resolution", "table entries", "precompute ms", "CD ms", "total ms"],
        rows=rows,
        paper=PAPER["fig19"],
        notes="Most of the growth with resolution is the ICA precompute.",
    )


# ---------------------------------------------------------------------------
# Section 6 extension + ablations
# ---------------------------------------------------------------------------


def boxica(scale: BenchScale | None = None) -> ExperimentResult:
    """Section 6: ICA bounds for a box volume via two coaxial cylinders."""
    rows = []
    box = dict(z0=0.0, z1=60.0, wx=8.0, wy=5.0)
    for dist in (20.0, 40.0, 80.0, 150.0):
        for r in (0.5, 2.0):
            frac = box_corner_fraction(**box, dist=dist, sphere_r=r)
            rows.append([dist, r, 100.0 * frac])
    return ExperimentResult(
        exp_id="boxica",
        title="Box-as-2-cylinders ICA: undecided (corner) fraction of angles",
        headers=["dist", "sphere r", "corner %"],
        rows=rows,
        paper=PAPER["sec6_boxica"],
        notes="The undecided band stays small, supporting the Section 6 "
        "claim that ICA extends to bounding boxes.",
    )


def am_overlap(scale: BenchScale | None = None) -> ExperimentResult:
    """Section 8 future work, quantified: AM overlap between path neighbors.

    Runs AICA at consecutive path pivots and reports how many orientation
    cells keep their value from one pivot to the next — the headroom any
    AM-reuse scheme (the paper's proposed future work) could exploit.
    """
    scale = scale or current_scale()
    from repro.cd.pathrun import run_along_path
    from repro.tool.tool import Tool

    # A slender finishing tool: the paper's roughing tool blocks nearly
    # every orientation at a 1 mm standoff on these 50 mm parts, which
    # would make the overlap statistic trivially 100%.
    tool = Tool.from_segments([(1.5, 20.0), (2.5, 60.0), (8.0, 40.0)], name="finishing")
    rows = []
    grid = _grid(scale.default_map)
    for model in benchmark_models():
        wl = build_workload(model, scale.default_resolution, n_pivots=1)
        pivots = wl.path[: min(6, len(wl.path))]
        pr = run_along_path(wl.tree, tool, pivots, grid, AICA())
        rows.append(
            [
                model.name,
                len(pivots),
                100.0 * pr.mean_overlap,
                100.0 * float(pr.overlaps.min()),
                100.0 * float(np.mean(pr.accessible_fraction)),
            ]
        )
    return ExperimentResult(
        exp_id="am_overlap",
        title="AM overlap between consecutive path pivots (reuse headroom)",
        headers=["model", "pivots", "mean overlap %", "min overlap %", "accessible %"],
        rows=rows,
        paper={
            "shape": "Section 8: neighboring pivot points are likely to have "
            "AMs with overlapping values"
        },
        notes="High overlap supports the paper's proposed AM-reuse future work.",
    )


def ablation_bvh(scale: BenchScale | None = None) -> ExperimentResult:
    """Section 8: AICA over a BVH, compared with the octree traversal.

    Both structures hold the identical solid (the BVH is built over the
    octree's FULL cells) and produce identical maps; the comparison shows
    why the paper's octree is the right home for ICA: interior FULL nodes
    prove *hits* high up the tree, which a bounding hierarchy cannot.
    """
    scale = scale or current_scale()
    from repro.bvh.build import bvh_from_octree
    from repro.bvh.cd import BvhMethod, run_cd_bvh

    wl = build_workload("head", scale.default_resolution, n_pivots=1)
    grid = _grid(scale.default_map)
    pivot = wl.pivots[0]
    scene = wl.scene(0)
    bvh = bvh_from_octree(wl.tree)

    from repro.cd.traversal import run_cd as _run_cd

    oct_r = _run_cd(scene, grid, AICA())
    ica_r = run_cd_bvh(bvh, wl.tool, pivot, grid, BvhMethod(use_ica=True))
    box_r = run_cd_bvh(bvh, wl.tool, pivot, grid, BvhMethod(use_ica=False))
    assert bool(np.array_equal(oct_r.collides, ica_r.collides))
    assert bool(np.array_equal(oct_r.collides, box_r.collides))

    rows = [
        [
            "octree AICA",
            wl.tree.total_nodes,
            oct_r.counters.total_box_checks,
            oct_r.timing.total_s * 1e3,
        ],
        [
            "BVH ICA",
            bvh.n_nodes,
            ica_r.counters.total_box_checks,
            ica_r.timing.total_s * 1e3,
        ],
        [
            "BVH exact-only",
            bvh.n_nodes,
            box_r.counters.total_box_checks,
            box_r.timing.total_s * 1e3,
        ],
    ]
    return ExperimentResult(
        exp_id="ablation_bvh",
        title=f"AICA on octree vs BVH (head {scale.default_resolution}^3, "
        f"map {scale.default_map}^2, identical maps)",
        headers=["traversal", "nodes", "box checks", "sim total ms"],
        rows=rows,
        paper={
            "shape": "Section 8: AICA should be extended and tested against "
            "other spatial volume structures such as BVH"
        },
        notes="ICA prunes on both structures, but only the octree's solid "
        "interior nodes can *prove* hits above the leaves.",
    )


def ablation_costs(scale: BenchScale | None = None) -> ExperimentResult:
    """Sensitivity of the Fig 16 ordering to the cost-model constants."""
    scale = scale or current_scale()
    wl = build_workload("head", scale.default_resolution, n_pivots=1)
    grid = _grid(scale.default_map)
    rows = []
    for label, costs in (
        ("default", DEFAULT_COSTS),
        ("cull=84", DEFAULT_COSTS.scaled(cull_per_cyl=84)),
        ("box=108", DEFAULT_COSTS.scaled(box_per_cyl=108)),
        ("ica_fly=20", DEFAULT_COSTS.scaled(ica_fly_per_cyl=20)),
    ):
        sims = {}
        for method in _methods(scale):
            s = run_workload(wl, method, grid, costs=costs)
            sims[method.name] = s["sim_total_ms"]
        order = sorted(sims, key=sims.get)
        rows.append([label] + [sims[m.name] for m in _methods(scale)] + [" < ".join(order)])
    return ExperimentResult(
        exp_id="ablation_costs",
        title="Cost-constant sensitivity (head model)",
        headers=["cost model"] + [m.name for m in _methods(scale)] + ["ordering"],
        rows=rows,
        notes="The AICA < MICA < PICA < PBoxOpt < PBox ordering should "
        "survive substantial perturbation of the per-check constants.",
    )


def ablation_warp(scale: BenchScale | None = None) -> ExperimentResult:
    """Warp-width sensitivity of the SIMT model."""
    scale = scale or current_scale()
    wl = build_workload("head", scale.default_resolution, n_pivots=1)
    grid = _grid(scale.default_map)
    rows = []
    base = GTX_1080_TI  # unscaled: warp effects need many warp slots
    for warp in (1, 8, 32, 128):
        from repro.engine.device import DeviceSpec

        dev = DeviceSpec(
            name=f"warp{warp}",
            cuda_cores=base.cuda_cores,
            clock_ghz=base.clock_ghz,
            warp_size=warp,
        )
        s = run_workload(wl, AICA(), grid, device=dev)
        rows.append([warp, s["sim_cd_ms"]])
    return ExperimentResult(
        exp_id="ablation_warp",
        title="AICA CD time vs warp width (divergence penalty)",
        headers=["warp size", "CD ms"],
        rows=rows,
        notes="Wider warps pay more for divergence (warp cost = max over "
        "member threads); warp=1 is the no-SIMT lower bound.",
    )


def ablation_mapping(scale: BenchScale | None = None) -> ExperimentResult:
    """Section 4.1's choice: orientation-per-thread vs voxel-per-thread.

    Prices both mappings on the same scene with a device scaled so the
    orientation count saturates it (as at paper scale).  Expected result:
    the orientation mapping wins once occupancy is off the table, because
    the voxel mapping loses per-orientation early exit and is badly
    imbalanced (base cells near the pivot own huge subtrees).
    """
    scale = scale or current_scale()
    from repro.cd.mapping import run_voxel_mapping
    from repro.cd.traversal import run_cd as _run_cd

    wl = build_workload("head", scale.default_resolution, n_pivots=1)
    grid = _grid(scale.default_map)
    device = scaled_device(GTX_1080_TI, scale.device_divisor)
    scene = wl.scene(0)
    rows = []
    for method in (MICA(), AICA()):
        std = _run_cd(scene, grid, method, device=device)
        vox = run_voxel_mapping(scene, grid, method, device=device)
        assert bool(np.array_equal(std.collides, vox.collides))
        std_ops = std.counters.thread_ops(DEFAULT_COSTS)
        imb_std = float(std_ops.max()) / max(float(std_ops.mean()), 1.0)
        imb_vox = float(vox.thread_ops.max()) / max(float(vox.thread_ops.mean()), 1.0)
        rows.append(
            [
                method.name,
                std.timing.cd_tests_s * 1e3,
                vox.total_seconds * 1e3,
                round(imb_std, 2),
                round(imb_vox, 2),
            ]
        )
    return ExperimentResult(
        exp_id="ablation_mapping",
        title=f"Thread mapping (head {scale.default_resolution}^3, "
        f"map {scale.default_map}^2, {device.name})",
        headers=[
            "method",
            "orientation-mapping ms",
            "voxel-mapping ms",
            "imbalance (orient)",
            "imbalance (voxel)",
        ],
        rows=rows,
        paper={
            "shape": "Section 4.1 prefers orientation-per-thread: better "
            "pruning (early exit) and no inter-thread communication"
        },
        notes="The voxel mapping loses early exit and is heavily imbalanced "
        "(cells near the pivot own deep subtrees).",
    )


def ablation_start_level(scale: BenchScale | None = None) -> ExperimentResult:
    """The paper's top-level expansion: traversal start level on/off."""
    scale = scale or current_scale()
    grid = _grid(scale.default_map)
    rows = []
    for start in (0, 3, 5):
        wl = build_workload(
            "head", scale.default_resolution, n_pivots=1, start_level=start
        )
        cfg = TraversalConfig(start_level=start)
        s = run_workload(wl, AICA(), grid, config=cfg)
        rows.append([start, s["total_checks"], s["sim_cd_ms"]])
    return ExperimentResult(
        exp_id="ablation_start_level",
        title="Top-level expansion: traversal start level",
        headers=["start level", "total checks", "CD ms"],
        rows=rows,
        notes="Starting deeper trades a flat base-level scan for a shorter "
        "tree; the paper expands the top 5 levels into one.",
    )


def wallclock(scale: BenchScale | None = None) -> ExperimentResult:
    """Host wall-clock: frontier engine v1 vs v2 at the fig16 data point.

    Unlike every other experiment (which reports *simulated-GPU*
    milliseconds from the counter cost model), this one times the actual
    Python host loop: each method runs serially under both engines on
    the head model at the scale's default resolution and map, with a
    prebuilt ICA table shared by both runs so only the traversal is
    timed.  Each (method, engine) cell is the best of ``_WALLCLOCK_REPS``
    repetitions — min, not mean, is the right statistic for wall-clock
    gating since noise is strictly additive.

    The experiment also *asserts* the engines' equivalence contract on
    every method: byte-identical accessibility maps and per-thread
    counters.  A committed baseline (``BENCH_wallclock.json``) is
    compared in CI with ``repro-bench compare``: the ``*_s`` metrics
    gate wall-clock regressions at a generous threshold, the ``.pairs``
    counters gate counter drift exactly.

    The array backend is a run axis, not a loop here: ``run_cd``
    resolves it from ``REPRO_BACKEND`` (set by ``repro-bench
    --backend``), so one invocation times one backend and the committed
    baseline stays a numpy-backend artifact.  The equivalence
    assertions hold for every backend — maps and counters are boolean
    outcomes, exact under the backend contract.
    """
    scale = scale or current_scale()
    from repro.cd.traversal import resolve_backend, run_cd
    from repro.engine.counters import ThreadCounters
    from repro.ica.table import build_ica_table
    from repro.obs.metrics import get_metrics

    backend = resolve_backend(None)
    grid = _grid(scale.default_map)
    wl = build_workload("head", scale.default_resolution, n_pivots=1)
    scene = wl.scene(0)
    table = build_ica_table(
        scene.tree, scene.tool, scene.pivot, levels=TraversalConfig().memo_levels
    )

    metrics = get_metrics()
    rows = []
    speedups: dict[str, float] = {}
    for cls in _METHOD_ORDER:
        method = cls()
        results = {}
        best = {}
        for engine in ("v1", "v2"):
            cfg = TraversalConfig(engine=engine)
            t = None
            for _ in range(_WALLCLOCK_REPS):
                t0 = time.perf_counter()
                r = run_cd(scene, grid, method, config=cfg, table=table, workers=1)
                dt = time.perf_counter() - t0
                t = dt if t is None else min(t, dt)
            results[engine] = r
            best[engine] = t
        r1, r2 = results["v1"], results["v2"]
        assert np.array_equal(r1.collides, r2.collides), (
            f"{method.name}: v1/v2 maps differ"
        )
        for f in ThreadCounters.COUNTER_FIELDS:
            assert np.array_equal(getattr(r1.counters, f), getattr(r2.counters, f)), (
                f"{method.name}: v1/v2 counter {f} differs"
            )
        pairs = int(r2.counters.nodes_visited.sum())
        speedup = best["v1"] / best["v2"]
        speedups[method.name] = speedup
        m = method.name
        metrics.counter(f"wallclock.{m}.v1_s").inc(best["v1"])
        metrics.counter(f"wallclock.{m}.v2_s").inc(best["v2"])
        metrics.counter(f"wallclock.{m}.pairs").inc(pairs)
        metrics.gauge(f"wallclock.{m}.speedup").set(speedup)
        rows.append(
            [
                m,
                pairs,
                round(best["v1"] * 1e3, 1),
                round(best["v2"] * 1e3, 1),
                round(pairs / best["v2"] / 1e6, 2),
                round(speedup, 2),
            ]
        )
    return ExperimentResult(
        exp_id="wallclock",
        title=(
            f"Frontier engine v1 vs v2 wall-clock (head {scale.default_resolution}^3, "
            f"map {scale.default_map}^2, serial, backend {backend}, "
            f"best of {_WALLCLOCK_REPS})"
        ),
        headers=["method", "pairs", "v1 ms", "v2 ms", "v2 Mpairs/s", "v2/v1 speedup"],
        rows=rows,
        extras={"speedups": speedups, "backend": backend},
        notes="Wall-clock of the host traversal loop, not simulated-GPU ms; "
        "maps and per-thread counters are asserted byte-identical across "
        "engines before timing is reported.",
    )


#: Wall-clock repetitions per (method, engine) cell; the minimum is kept.
_WALLCLOCK_REPS = 3


ALL_EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "fig05": fig05,
    "fig09": fig09,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "fig17": fig17,
    "fig18": fig18,
    "fig19": fig19,
    "boxica": boxica,
    "am_overlap": am_overlap,
    "ablation_bvh": ablation_bvh,
    "ablation_costs": ablation_costs,
    "ablation_mapping": ablation_mapping,
    "ablation_warp": ablation_warp,
    "ablation_start_level": ablation_start_level,
    "wallclock": wallclock,
}
