"""Hypothesis property tests: octrees over arbitrary occupancy grids.

The benchmark-model tests exercise realistic solids; these push the
construction, canonicalization, expansion, and query code through
adversarial random occupancy patterns (including degenerate all-empty,
all-full, single-voxel, and checkerboard grids).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.aabb import AABB
from repro.octree.build import build_from_dense, expand_top
from repro.octree.linear import STATUS_FULL, STATUS_MIXED

DOMAIN = AABB((-8, -8, -8), (8, 8, 8))


@st.composite
def occupancy_grid(draw):
    depth = draw(st.integers(1, 3))
    k = 1 << depth
    flat = draw(
        st.lists(st.booleans(), min_size=k**3, max_size=k**3)
    )
    return np.array(flat, dtype=bool).reshape(k, k, k)


@st.composite
def structured_grid(draw):
    """Grids with spatial structure (random boxes), closer to real solids."""
    depth = draw(st.integers(2, 4))
    k = 1 << depth
    g = np.zeros((k, k, k), dtype=bool)
    for _ in range(draw(st.integers(0, 4))):
        lo = [draw(st.integers(0, k - 1)) for _ in range(3)]
        hi = [draw(st.integers(lo[a], k - 1)) for a in range(3)]
        g[lo[0] : hi[0] + 1, lo[1] : hi[1] + 1, lo[2] : hi[2] + 1] = True
    return g


class TestDenseRoundtrip:
    @given(occupancy_grid())
    @settings(max_examples=60)
    def test_leaf_occupancy_identity(self, grid):
        tree = build_from_dense(grid, DOMAIN)
        np.testing.assert_array_equal(tree.leaf_occupancy(), grid)

    @given(structured_grid())
    @settings(max_examples=40)
    def test_leaf_occupancy_identity_structured(self, grid):
        tree = build_from_dense(grid, DOMAIN)
        np.testing.assert_array_equal(tree.leaf_occupancy(), grid)

    @given(occupancy_grid())
    @settings(max_examples=40)
    def test_canonical_invariants(self, grid):
        tree = build_from_dense(grid, DOMAIN)
        for l, lev in enumerate(tree.levels):
            # MIXED => has children; FULL => no stored children
            mixed = lev.status == STATUS_MIXED
            full = lev.status == STATUS_FULL
            assert (lev.child_count[mixed] > 0).all()
            assert (lev.child_count[full] == 0).all()
            # codes strictly increasing
            if lev.n > 1:
                assert (np.diff(lev.codes.astype(np.int64)) > 0).all()
            # no 8-FULL sibling group below the root
            if l > 0 and full.any():
                _, counts = np.unique(lev.codes[full] >> np.uint64(3), return_counts=True)
                assert (counts < 8).all()

    @given(occupancy_grid())
    @settings(max_examples=40)
    def test_solid_volume_matches(self, grid):
        tree = build_from_dense(grid, DOMAIN)
        cell = 16.0 / grid.shape[0]
        assert tree.solid_volume() == pytest.approx(grid.sum() * cell**3, rel=1e-12)

    @given(structured_grid(), st.integers(0, 3))
    @settings(max_examples=40)
    def test_expand_top_preserves_everything(self, grid, start):
        tree = build_from_dense(grid, DOMAIN)
        e = expand_top(tree, start)
        np.testing.assert_array_equal(e.leaf_occupancy(), grid)
        assert e.solid_volume() == pytest.approx(tree.solid_volume(), rel=1e-12)

    @given(structured_grid())
    @settings(max_examples=30)
    def test_contains_points_matches_grid(self, grid):
        tree = build_from_dense(grid, DOMAIN)
        k = grid.shape[0]
        cell = 16.0 / k
        rng = np.random.default_rng(0)
        pts = rng.uniform(-8, 8, (200, 3)) * 0.999
        ijk = np.clip(((pts + 8.0) / cell).astype(int), 0, k - 1)
        exp = grid[ijk[:, 2], ijk[:, 1], ijk[:, 0]]
        np.testing.assert_array_equal(tree.contains_points(pts), exp)


class TestDegenerateGrids:
    def test_single_voxel(self):
        g = np.zeros((8, 8, 8), dtype=bool)
        g[3, 5, 1] = True
        tree = build_from_dense(g, DOMAIN)
        np.testing.assert_array_equal(tree.leaf_occupancy(), g)
        assert tree.count_status(STATUS_FULL) == 1

    def test_checkerboard_never_merges(self):
        k = 8
        z, y, x = np.indices((k, k, k))
        g = ((x + y + z) % 2).astype(bool)
        tree = build_from_dense(g, DOMAIN)
        # every FULL node must be a leaf (no uniform 2x2x2 block exists)
        for l in range(tree.depth):
            assert not (tree.levels[l].status == STATUS_FULL).any()
        np.testing.assert_array_equal(tree.leaf_occupancy(), g)

    def test_half_full(self):
        g = np.zeros((8, 8, 8), dtype=bool)
        g[:, :, :4] = True
        tree = build_from_dense(g, DOMAIN)
        np.testing.assert_array_equal(tree.leaf_occupancy(), g)
        # the solid half merges into 4 level-1 FULL nodes
        assert int((tree.levels[1].status == STATUS_FULL).sum()) == 4
