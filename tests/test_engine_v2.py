"""The v2 frontier engine: workspaces, dedup/panels, and the v1 contract.

The optimization contract under test is strict: for every method, any
worker count, and any chunking, the v2 engine must produce accessibility
maps AND per-thread counters byte-identical to the v1 reference — the
counters are the simulated-GPU cost model, so a host-side optimization
that changes them is changing the paper's numbers, not speeding them up.
"""

import numpy as np
import pytest

from repro.cd.methods import METHODS, PICA, method_by_name
from repro.cd.traversal import ENGINES, TraversalConfig, resolve_engine, run_cd
from repro.engine.counters import ThreadCounters
from repro.engine.workspace import (
    Workspace,
    get_ambient_workspace,
    use_workspace,
)
from repro.geometry.orientation import OrientationGrid
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.service.core import QuerySpec, Service

GRID = OrientationGrid.square(6)
METHOD_NAMES = [cls.name for cls in METHODS]


def _assert_identical(a, b, label: str) -> None:
    np.testing.assert_array_equal(
        a.collides, b.collides, err_msg=f"{label}: maps differ"
    )
    assert a.counters.n_threads == b.counters.n_threads
    for f in ThreadCounters.COUNTER_FIELDS:
        np.testing.assert_array_equal(
            getattr(a.counters, f),
            getattr(b.counters, f),
            err_msg=f"{label}: counter {f} differs",
        )


# ---------------------------------------------------------------------------
# Engine selection
# ---------------------------------------------------------------------------


class TestResolveEngine:
    def test_default_is_v2(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine() == "v2"
        assert resolve_engine(None) == "v2"
        assert resolve_engine("") == "v2"

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "v2")
        assert resolve_engine("v1") == "v1"

    def test_env_escape_hatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "v1")
        assert resolve_engine() == "v1"
        assert resolve_engine(TraversalConfig().engine) == "v1"

    def test_normalization_and_validation(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine(" V1 ") == "v1"
        with pytest.raises(ValueError, match="engine"):
            resolve_engine("v3")
        monkeypatch.setenv("REPRO_ENGINE", "bogus")
        with pytest.raises(ValueError, match="engine"):
            resolve_engine()

    def test_whitespace_defers_to_env(self, monkeypatch):
        # Regression: a whitespace-only config value used to skip the
        # env fallback and then fail validation on the stripped string.
        monkeypatch.setenv("REPRO_ENGINE", "v1")
        assert resolve_engine("   ") == "v1"
        monkeypatch.delenv("REPRO_ENGINE")
        assert resolve_engine("   ") == "v2"

    def test_engines_tuple(self):
        assert ENGINES == ("v1", "v2")


# ---------------------------------------------------------------------------
# Workspace arena
# ---------------------------------------------------------------------------


class TestWorkspace:
    def test_take_shape_and_dtype(self):
        ws = Workspace()
        a = ws.take("x", 10)
        assert a.shape == (10,) and a.dtype == np.float64
        b = ws.take("y", (3, 4), np.intp)
        assert b.shape == (3, 4) and b.dtype == np.intp

    def test_reuse_same_storage(self):
        ws = Workspace()
        a = ws.take("x", 100)
        a[:] = 7.0
        b = ws.take("x", 50)
        assert np.shares_memory(a, b)
        assert (b == 7.0).all()
        assert ws.reuse_hits == 1 and ws.grow_events == 1

    def test_geometric_growth(self):
        ws = Workspace()
        ws.take("x", 100)
        ws.take("x", 101)  # within the 1.5x growth headroom next time
        assert ws.grow_events == 2
        ws.take("x", 120)  # capacity is now >= 151: a reuse, not a grow
        assert ws.grow_events == 2 and ws.reuse_hits == 1

    def test_dtype_change_discards(self):
        ws = Workspace()
        ws.take("x", 8, np.float64)
        ws.take("x", 8, np.int64)
        assert ws.grow_events == 2

    def test_nbytes_and_stats(self):
        ws = Workspace()
        ws.take("x", 10, np.float64)
        ws.take("y", 4, np.uint8)
        assert ws.nbytes == 10 * 8 + 4
        before = ws.stats()
        ws.take("x", 5)
        delta = ws.stats_since(before)
        assert delta["reuse_hits"] == 1 and delta["grow_events"] == 0

    def test_clear_keeps_counters(self):
        ws = Workspace()
        ws.take("x", 10)
        ws.clear()
        assert ws.nbytes == 0 and ws.grow_events == 1

    def test_ambient_scoping(self):
        outer = Workspace()
        inner = Workspace()
        assert get_ambient_workspace() is None
        with use_workspace(outer):
            assert get_ambient_workspace() is outer
            with use_workspace(inner):
                assert get_ambient_workspace() is inner
            assert get_ambient_workspace() is outer
        assert get_ambient_workspace() is None


# ---------------------------------------------------------------------------
# v1/v2 equivalence: every method, serial + pooled, chunked + unchunked
# ---------------------------------------------------------------------------


class TestEngineEquivalence:
    @pytest.mark.parametrize("method", METHOD_NAMES)
    @pytest.mark.parametrize("workers", [1, 2])
    def test_maps_and_counters_identical(self, sphere_scene, method, workers):
        r1 = run_cd(
            sphere_scene, GRID, method_by_name(method),
            config=TraversalConfig(engine="v1"), workers=workers,
        )
        r2 = run_cd(
            sphere_scene, GRID, method_by_name(method),
            config=TraversalConfig(engine="v2"), workers=workers,
        )
        _assert_identical(r1, r2, f"{method} workers={workers}")

    @pytest.mark.parametrize("method", METHOD_NAMES)
    def test_chunked_identical_across_engines(self, sphere_scene, method):
        # max_pairs=7 forces many tiny chunks through every level —
        # the regression test for the counter-purity invariant that
        # chunked and unchunked runs (and both engines) charge the same.
        ref = run_cd(
            sphere_scene, GRID, method_by_name(method),
            config=TraversalConfig(engine="v1"),
        )
        for engine in ENGINES:
            chunked = run_cd(
                sphere_scene, GRID, method_by_name(method),
                config=TraversalConfig(engine=engine, max_pairs=7),
            )
            _assert_identical(ref, chunked, f"{method} {engine} max_pairs=7")

    def test_env_engine_respected_end_to_end(self, sphere_scene, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "v1")
        r1 = run_cd(sphere_scene, GRID, method_by_name("AICA"))
        monkeypatch.setenv("REPRO_ENGINE", "v2")
        r2 = run_cd(sphere_scene, GRID, method_by_name("AICA"))
        _assert_identical(r1, r2, "REPRO_ENGINE env switch")

    def test_workspace_metrics_exported(self, sphere_scene):
        # workers=1 pins the serial path even under REPRO_WORKERS: the
        # serial exporter owns the engine.workspace.* namespace (pooled
        # runs export engine.pool.workspace.* instead).
        with use_metrics(MetricsRegistry()) as reg:
            run_cd(
                sphere_scene, GRID, method_by_name("AICA"),
                config=TraversalConfig(engine="v2"), workers=1,
            )
        m = reg.as_dict()
        assert m["engine.workspace.grow_events"]["value"] > 0
        assert m["engine.workspace.bytes_held"]["value"] > 0

    def test_ambient_workspace_reused_across_runs(self, sphere_scene):
        # The amortization contract: a long-lived host installs one
        # arena and back-to-back runs stop growing — the second run's
        # takes are (almost) all reuse hits against the first's buffers.
        ws = Workspace()
        cfg = TraversalConfig(engine="v2")
        with use_workspace(ws), use_metrics(MetricsRegistry()) as reg:
            run_cd(
                sphere_scene, GRID, method_by_name("AICA"),
                config=cfg, workers=1,
            )
            grows_first = ws.grow_events
            run_cd(
                sphere_scene, GRID, method_by_name("AICA"),
                config=cfg, workers=1,
            )
        assert ws.grow_events == grows_first  # second run grew nothing
        assert ws.reuse_hits > 0
        m = reg.as_dict()
        assert m["engine.workspace.reuse_hits"]["value"] == ws.reuse_hits
        assert m["engine.workspace.grow_events"]["value"] == ws.grow_events

    def test_pool_workspace_metrics_exported(self, sphere_scene):
        # Small thread blocks give each pool worker several tasks, so
        # the per-process arenas record reuse across tasks of one run.
        with use_metrics(MetricsRegistry()) as reg:
            run_cd(
                sphere_scene, GRID, method_by_name("AICA"),
                config=TraversalConfig(engine="v2", thread_block=8), workers=2,
            )
        m = reg.as_dict()
        assert m["engine.pool.workspace.grow_events"]["value"] > 0
        assert m["engine.pool.workspace.reuse_hits"]["value"] > 0

    def test_v1_exports_no_workspace_metrics(self, sphere_scene):
        with use_metrics(MetricsRegistry()) as reg:
            run_cd(
                sphere_scene, GRID, method_by_name("AICA"),
                config=TraversalConfig(engine="v1"),
            )
        assert "engine.workspace.reuse_hits" not in reg.as_dict()


# ---------------------------------------------------------------------------
# CHECKBOX screen routing: dense panel pass vs gathered per-pair pass
# ---------------------------------------------------------------------------


class TestScreenPanelRouting:
    """Both ``want_screen_panel`` branches must be byte-identical.

    The dense branch screens the whole (node x thread) panel once and
    gathers verdicts; the sparse branch gathers the masked pairs and
    screens them per pair.  The heuristic picks between them on mask
    density, so each branch is forced explicitly here and checked
    against the v1 reference — backend routing must not regress either.
    """

    def test_heuristic(self):
        import types

        import repro.cd.traversal as trav

        fake = types.SimpleNamespace(
            _screen=None,
            _virtual=lambda: (None, (), None),
            _n_us=10,
            t0=0,
            t1=4,  # cells = 10 * 4 = 40
        )
        want = trav.LevelContext.want_screen_panel
        assert want(fake, 20) is True  # 2*20 >= 40: dense pays off
        assert want(fake, 19) is False  # sparse mask: per-pair gather
        fake._screen = object()  # matrix already built: gathering is free
        assert want(fake, 0) is True

    @pytest.mark.parametrize("engine_backend", [("v2", None), ("v2", "numpy_portable")])
    @pytest.mark.parametrize("dense", [True, False])
    @pytest.mark.parametrize("method", ["PBox", "PBoxOpt", "AICA"])
    def test_forced_branches_identical(
        self, sphere_scene, monkeypatch, method, dense, engine_backend
    ):
        import repro.cd.traversal as trav

        engine, backend = engine_backend
        ref = run_cd(
            sphere_scene, GRID, method_by_name(method),
            config=TraversalConfig(engine="v1", start_level=2),
        )
        # Low panel gates so the tiny scene runs panel mode at all
        # (n_masked spans tiny corner masks up to full-frontier masks),
        # then pin the branch.
        monkeypatch.setattr(trav, "_PANEL_MIN_PAIRS", 1)
        monkeypatch.setattr(trav, "_PANEL_OVERSAMPLE", 1e9)
        monkeypatch.setattr(
            trav.LevelContext, "want_screen_panel", lambda self, n: dense
        )
        forced = run_cd(
            sphere_scene, GRID, method_by_name(method),
            config=TraversalConfig(engine=engine, backend=backend, start_level=2),
        )
        _assert_identical(ref, forced, f"{method} dense={dense} backend={backend}")


# ---------------------------------------------------------------------------
# Counter purity under chunking
# ---------------------------------------------------------------------------


class _OverchargingPICA(PICA):
    """A deliberately broken method: charges threads outside its wave."""

    name = "OverchargingPICA"

    def decide(self, rt, wave):
        out = super().decide(rt, wave)
        # Charge one box check to *every* thread of the run — exactly the
        # level-global accounting the purity invariant forbids.
        rt.counters.add_threads(
            "box_checks",
            np.arange(rt.counters.n_threads),
            rt.counters.n_threads,
        )
        return out


class TestCounterPurity:
    def test_overcharging_method_is_caught_when_chunked(self, sphere_scene):
        # workers=1: the pool ships methods by registry name, so an ad
        # hoc method class only exists on the serial path — which is
        # where the purity assert lives anyway.
        with pytest.raises(AssertionError, match="outside its sub-wave"):
            run_cd(
                sphere_scene, GRID, _OverchargingPICA(),
                config=TraversalConfig(max_pairs=7), workers=1,
            )

    @pytest.mark.parametrize("engine", ENGINES)
    def test_honest_methods_pass_the_assert(self, sphere_scene, engine):
        # Runs with chunking active and __debug__ on: completing at all
        # means every per-chunk purity assert held.
        run_cd(
            sphere_scene, GRID, method_by_name("AICA"),
            config=TraversalConfig(engine=engine, max_pairs=7),
        )


# ---------------------------------------------------------------------------
# Served-query path
# ---------------------------------------------------------------------------


class TestServedQueries:
    def test_service_engines_agree_and_reuse_workspace(self, sphere_scene):
        with use_metrics(MetricsRegistry()) as reg, Service(workers=1) as svc:
            digest = svc.register_scene(sphere_scene)
            spec = QuerySpec(scene=digest, grid=GRID.shape, method="AICA")
            served = svc.query(spec)
            # Second, distinct query on the same dispatch thread: the
            # service's per-thread arena must serve it from reused
            # buffers (the grow events happened on the first query).
            before = reg.as_dict()["engine.workspace.grow_events"]["value"]
            svc.query(QuerySpec(scene=digest, grid=GRID.shape, method="MICA"))
            after = reg.as_dict()["engine.workspace.grow_events"]["value"]
        direct = run_cd(
            sphere_scene, GRID, method_by_name("AICA"),
            config=TraversalConfig(engine="v1"),
        )
        np.testing.assert_array_equal(served.accessible, direct.accessibility_map)
        m = reg.as_dict()
        assert m["engine.workspace.reuse_hits"]["value"] > 0
        # The second query grows at most a handful of method-specific
        # buffers; the bulk of the arena is reused across requests.
        assert after - before < before
