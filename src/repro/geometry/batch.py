"""Vectorized (batched) intersection kernels.

These are the "GPU kernels" of the reproduction: each function processes
a whole batch of (orientation, voxel) work items in one NumPy pass, the
way one CUDA thread per orientation would process them on the paper's
hardware.  All kernels chunk internally so peak memory stays bounded
regardless of batch size.

Every kernel here has a scalar reference twin in
:mod:`repro.geometry.predicates`; the test suite checks elementwise
agreement on randomized inputs, so the exactness argument only has to be
made once, for the readable scalar code.

Conventions
-----------
* ``dirs``: per-item unit tool directions, shape ``(P, 3)``.
* ``centers`` / ``halves``: per-item voxel boxes, shapes ``(P, 3)`` and
  ``(P,)`` (cubes) or ``(P, 3)``.
* ``z0s, z1s, rads``: the tool's cylinder stack, shape ``(C,)`` each
  (tool coordinates; see :class:`repro.geometry.cylinder.Cylinder`).
* ``pivot``: the single pivot point of the scene, shape ``(3,)``.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.frames import frame_from_axis
from repro.geometry.predicates import BOX_FACES

__all__ = [
    "tool_aabb_batch",
    "tool_aabb_cull_batch",
    "tool_point_distance_2d",
    "tool_point_distance_2d_xp",
    "DEFAULT_CHUNK",
]

DEFAULT_CHUNK = 16384

# Corner k of a box takes ``hi`` on axis a iff bit a of k is set (matches
# AABB.corners); expressed as -1/+1 multipliers of the half extent.
_CORNER_SIGNS = np.array(
    [[(k >> a) & 1 for a in range(3)] for k in range(8)], dtype=np.float64
) * 2.0 - 1.0

_FACE_IDX = np.asarray(BOX_FACES, dtype=np.intp)  # (6, 4)


def _as_halves3(halves, n: int) -> np.ndarray:
    """Normalize ``halves`` to shape ``(n, 3)``.

    Accepts a plain scalar (one cube size for the whole batch — the
    frontier engine's common case, every pair of a level shares the cell
    half-edge), a ``(n,)`` per-item-cube vector, or a full ``(n, 3)``
    array.  The result is a broadcast view; no per-call allocation.
    """
    h = np.asarray(halves, dtype=np.float64)
    if h.ndim == 1:
        h = h[:, None]
    return np.broadcast_to(h, (n, 3))


def _clip_slab_batch(poly: np.ndarray, z: np.ndarray, keep_greater: bool) -> np.ndarray:
    """Sutherland-Hodgman clip of batched convex polygons against a z half-space.

    ``poly`` has shape ``(..., K, 3)``.  Invalid rows are represented by
    *padding*: trailing slots repeat the first output vertex, so the
    geometric polygon is unchanged and no per-row vertex count is needed.
    Fully-clipped rows end up with all slots invalid; callers detect them
    through the returned all-pad rows being NaN-free but are expected to
    track liveness via :func:`_poly_alive` — here we simply return a
    polygon of shape ``(..., K+1, 3)`` plus rely on the caller-maintained
    ``alive`` mask (see :func:`_tool_aabb_block`).
    """
    sign = 1.0 if keep_greater else -1.0
    K = poly.shape[-2]
    lead = poly.shape[:-2]
    d = sign * (poly[..., 2] - z[..., None])  # (..., K)
    # Wraparound neighbors via two slice copies (np.roll's generic path
    # costs several times as much on these small trailing axes).
    d_next = np.empty_like(d)
    d_next[..., :-1] = d[..., 1:]
    d_next[..., -1] = d[..., 0]
    nxt = np.empty(lead + (K, 3), dtype=np.float64)
    nxt[..., :-1, :] = poly[..., 1:, :]
    nxt[..., -1, :] = poly[..., 0, :]

    keep_vertex = d >= 0.0
    crossing = ((d > 0.0) & (d_next < 0.0)) | ((d < 0.0) & (d_next > 0.0))

    denom = d - d_next
    t = np.where(crossing, d / np.where(crossing, denom, 1.0), 0.0)
    cross_pt = poly + t[..., None] * (nxt - poly)

    # Stable compaction by direct scatter: the output order interleaves
    # vertex i (if kept) then its crossing, so each valid entry's target
    # slot is the count of valid entries before it — a cumsum, no sort.
    # Entries past slot K (a convex K-gon clipped by one half-space has
    # at most K+1 vertices) and invalid entries land in a dump slot.
    s = keep_vertex.astype(np.int64)
    s += crossing
    np.cumsum(s, axis=-1, out=s)
    count = s[..., -1]
    pos_v = s - keep_vertex - crossing  # exclusive prefix: slot of vertex i
    pos_c = pos_v + keep_vertex  # crossing i goes right after its vertex
    dump = K + 1
    idx_v = np.where(keep_vertex & (pos_v <= K), pos_v, dump)
    idx_c = np.where(crossing & (pos_c <= K), pos_c, dump)

    res = np.empty(lead + (K + 2, 3), dtype=np.float64)
    np.put_along_axis(res, idx_v[..., None], poly, axis=-2)
    np.put_along_axis(res, idx_c[..., None], cross_pt, axis=-2)

    # Pad trailing slots with the first valid vertex (vertex 0 when the
    # row is fully clipped — matching the reference compaction).
    alive = count > 0
    pad = np.where(alive[..., None], res[..., 0, :], poly[..., 0, :])
    padmask = np.arange(K + 1) >= count[..., None]  # (..., K+1)
    out = np.where(padmask[..., None], pad[..., None, :], res[..., : K + 1, :])
    return out, alive


def _clip_slab_batch_xp(xp, poly, z, keep_greater: bool):
    """Portable twin of :func:`_clip_slab_batch` (Array-API namespace ``xp``).

    ``np.put_along_axis`` is not part of the Array API, so the stable
    compaction scatters through a one-hot mask + sum instead: each output
    slot receives exactly one valid entry (vertex/crossing slots are
    disjoint by construction) plus zeros, so every coordinate is
    reproduced exactly — up to ``-0.0`` collapsing to ``+0.0``, which no
    downstream comparison can observe.
    """
    sign = 1.0 if keep_greater else -1.0
    K = poly.shape[-2]
    d = sign * (poly[..., 2] - z[..., None])  # (..., K)
    d_next = xp.concat([d[..., 1:], d[..., :1]], axis=-1)
    nxt = xp.concat([poly[..., 1:, :], poly[..., :1, :]], axis=-2)

    keep_vertex = d >= 0.0
    crossing = xp.logical_or(
        xp.logical_and(d > 0.0, d_next < 0.0),
        xp.logical_and(d < 0.0, d_next > 0.0),
    )

    one = xp.asarray(1.0, dtype=xp.float64)
    zero = xp.asarray(0.0, dtype=xp.float64)
    denom = d - d_next
    t = xp.where(crossing, d / xp.where(crossing, denom, one), zero)
    cross_pt = poly + t[..., None] * (nxt - poly)

    keep_i = xp.astype(keep_vertex, xp.int64)
    cross_i = xp.astype(crossing, xp.int64)
    s = xp.cumulative_sum(keep_i + cross_i, axis=-1)
    count = s[..., -1]
    pos_v = s - keep_i - cross_i
    pos_c = pos_v + keep_i
    dump = xp.asarray(K + 1, dtype=xp.int64)
    idx_v = xp.where(xp.logical_and(keep_vertex, pos_v <= K), pos_v, dump)
    idx_c = xp.where(xp.logical_and(crossing, pos_c <= K), pos_c, dump)

    slots = xp.arange(K + 2, dtype=xp.int64)
    onehot_v = idx_v[..., :, None] == slots  # (..., K, K+2)
    onehot_c = idx_c[..., :, None] == slots
    res = xp.sum(
        xp.where(onehot_v[..., None], poly[..., :, None, :], zero), axis=-3
    ) + xp.sum(
        xp.where(onehot_c[..., None], cross_pt[..., :, None, :], zero), axis=-3
    )  # (..., K+2, 3)

    alive = count > 0
    pad = xp.where(alive[..., None], res[..., 0, :], poly[..., 0, :])
    padmask = slots[: K + 1] >= count[..., None]  # (..., K+1)
    out = xp.where(padmask[..., None], pad[..., None, :], res[..., : K + 1, :])
    return out, alive


def _poly_circle_hit(pts: np.ndarray, radius: np.ndarray) -> np.ndarray:
    """Does the 2D origin lie within ``radius`` of each batched convex polygon?

    ``pts`` has shape ``(..., K, 2)`` with pad slots repeating a real
    vertex (zero-length pad edges are neutral in both tests below).
    """
    nxt = np.empty_like(pts)
    nxt[..., :-1, :] = pts[..., 1:, :]
    nxt[..., -1, :] = pts[..., 0, :]
    cross = pts[..., 0] * nxt[..., 1] - pts[..., 1] * nxt[..., 0]  # (..., K)
    nondegenerate = np.any(cross != 0.0, axis=-1)
    inside = (np.all(cross >= 0.0, axis=-1) | np.all(cross <= 0.0, axis=-1)) & nondegenerate

    edge = nxt - pts
    len_sq = np.einsum("...i,...i->...", edge, edge)
    proj = -np.einsum("...i,...i->...", pts, edge)
    t = np.where(len_sq > 0.0, np.clip(proj / np.where(len_sq > 0.0, len_sq, 1.0), 0.0, 1.0), 0.0)
    closest = pts + t[..., None] * edge
    dist_sq = np.min(np.einsum("...i,...i->...", closest, closest), axis=-1)

    return inside | (dist_sq <= (radius * radius)[...])


def _poly_circle_hit_xp(xp, pts, radius):
    """Portable twin of :func:`_poly_circle_hit`.

    The 2-long dot products are written as explicit component sums,
    which are bit-equal to the reference's ``einsum("...i,...i->...")``
    (a 2-term contraction has only one summation order).
    """
    nxt = xp.concat([pts[..., 1:, :], pts[..., :1, :]], axis=-2)
    cross = pts[..., 0] * nxt[..., 1] - pts[..., 1] * nxt[..., 0]  # (..., K)
    nondegenerate = xp.any(cross != 0.0, axis=-1)
    inside = xp.logical_and(
        xp.logical_or(xp.all(cross >= 0.0, axis=-1), xp.all(cross <= 0.0, axis=-1)),
        nondegenerate,
    )

    edge = nxt - pts
    len_sq = edge[..., 0] * edge[..., 0] + edge[..., 1] * edge[..., 1]
    proj = -(pts[..., 0] * edge[..., 0] + pts[..., 1] * edge[..., 1])
    one = xp.asarray(1.0, dtype=xp.float64)
    zero = xp.asarray(0.0, dtype=xp.float64)
    t = xp.where(
        len_sq > 0.0,
        xp.clip(proj / xp.where(len_sq > 0.0, len_sq, one), 0.0, 1.0),
        zero,
    )
    closest = pts + t[..., None] * edge
    dist_sq = xp.min(
        closest[..., 0] * closest[..., 0] + closest[..., 1] * closest[..., 1], axis=-1
    )

    return xp.logical_or(inside, dist_sq <= radius * radius)


def _tool_aabb_block(
    pivot: np.ndarray,
    dirs: np.ndarray,
    centers: np.ndarray,
    halves3: np.ndarray,
    z0s: np.ndarray,
    z1s: np.ndarray,
    rads: np.ndarray,
    frames: np.ndarray | None = None,
) -> np.ndarray:
    """One chunk of the whole-tool CHECKBOX kernel; returns ``(P,)`` bool."""
    P = dirs.shape[0]
    C = z0s.shape[0]

    # Rotation step: all box corners into the (per-item) cylinder frame.
    if frames is None:
        frames = frame_from_axis(dirs)  # (P, 3, 3)
    corners = centers[:, None, :] + _CORNER_SIGNS[None, :, :] * halves3[:, None, :]
    local = np.einsum("pij,pkj->pki", frames, corners - pivot)  # (P, 8, 3)

    # Cylinder-inside-box: the axis midpoint of each cylinder is a cylinder
    # point; if it is inside the box the volumes overlap without any face
    # of the box entering the cylinder.
    mids = 0.5 * (z0s + z1s)  # (C,)
    mid_world = pivot[None, None, :] + mids[None, :, None] * dirs[:, None, :]  # (P, C, 3)
    inside_box = np.all(
        np.abs(mid_world - centers[:, None, :]) <= halves3[:, None, :], axis=-1
    )  # (P, C)
    hit = inside_box.any(axis=-1)

    # Decomposition + projection, face by face.  Two sound pre-rejects
    # shrink the clip batch without changing any verdict: a face whose
    # z-range misses the cylinder slab entirely would come out of the
    # two clips dead (``alive`` False) so its circle test cannot fire,
    # and a pair that already hit stays hit — ``hit`` only accumulates
    # through OR.  Only the surviving (pair, cylinder) rows are clipped.
    for f in range(6):
        quad = local[:, _FACE_IDX[f], :]  # (P, 4, 3)
        qz = quad[..., 2]
        qlo = qz.min(axis=-1)  # (P,)
        qhi = qz.max(axis=-1)
        act = (qlo[:, None] <= z1s[None, :]) & (qhi[:, None] >= z0s[None, :])
        act &= ~hit[:, None]
        pi, ci = np.nonzero(act)
        if not len(pi):
            continue
        poly, alive = _clip_slab_batch(quad[pi], z0s[ci], keep_greater=True)
        poly, alive2 = _clip_slab_batch(poly, z1s[ci], keep_greater=False)
        alive &= alive2
        face_hit = alive & _poly_circle_hit(poly[..., :2], rads[ci])
        hit[pi[face_hit]] = True
    return hit


def _tool_aabb_block_xp(
    bk,
    pivot: np.ndarray,
    dirs: np.ndarray,
    centers: np.ndarray,
    halves3: np.ndarray,
    z0s: np.ndarray,
    z1s: np.ndarray,
    rads: np.ndarray,
    frames: np.ndarray | None = None,
) -> np.ndarray:
    """Portable twin of :func:`_tool_aabb_block` on backend ``bk``.

    The rotation and the clip/project pipeline run on the device; the
    cheap O(P*C) mid-point test, the face pre-reject, and the scatter of
    per-face verdicts stay host-side (they need ``np.nonzero``-style
    compaction, which the Array API does not guarantee).  Verdicts are
    bit-equal to the reference: the rotated corners match the einsum
    accumulation order exactly, so every downstream comparison sees the
    same floats.
    """
    xp = bk.xp
    if frames is None:
        frames = frame_from_axis(dirs)  # (P, 3, 3)
    corners = centers[:, None, :] + _CORNER_SIGNS[None, :, :] * halves3[:, None, :]
    local_d = bk.rotate3(bk.to_device(frames), bk.to_device(corners - pivot))
    local = np.asarray(bk.to_host(local_d))  # (P, 8, 3)

    mids = 0.5 * (z0s + z1s)  # (C,)
    mid_world = pivot[None, None, :] + mids[None, :, None] * dirs[:, None, :]
    inside_box = np.all(
        np.abs(mid_world - centers[:, None, :]) <= halves3[:, None, :], axis=-1
    )  # (P, C)
    hit = inside_box.any(axis=-1)

    for f in range(6):
        quad = local[:, _FACE_IDX[f], :]  # (P, 4, 3)
        qz = quad[..., 2]
        qlo = qz.min(axis=-1)
        qhi = qz.max(axis=-1)
        act = (qlo[:, None] <= z1s[None, :]) & (qhi[:, None] >= z0s[None, :])
        act &= ~hit[:, None]
        pi, ci = np.nonzero(act)
        if not len(pi):
            continue
        quad_d = bk.to_device(quad[pi])
        poly, alive = _clip_slab_batch_xp(xp, quad_d, bk.to_device(z0s[ci]), keep_greater=True)
        poly, alive2 = _clip_slab_batch_xp(xp, poly, bk.to_device(z1s[ci]), keep_greater=False)
        alive = xp.logical_and(alive, alive2)
        face_hit = xp.logical_and(
            alive, _poly_circle_hit_xp(xp, poly[..., :2], bk.to_device(rads[ci]))
        )
        hit[pi[np.asarray(bk.to_host(face_hit))]] = True
    return hit


def tool_aabb_batch(
    pivot,
    dirs,
    centers,
    halves,
    z0s,
    z1s,
    rads,
    *,
    chunk: int = DEFAULT_CHUNK,
    screen: bool = True,
    frames: np.ndarray | None = None,
    backend=None,
) -> np.ndarray:
    """Batched whole-tool ``CHECKBOX``: does any tool cylinder hit each box?

    Exact (matches :func:`repro.geometry.predicates.tool_cylinders_aabb_intersects`
    elementwise).  Work items are processed in chunks of ``chunk`` to bound
    peak memory at roughly ``chunk * C * 300`` bytes.  ``halves`` may be
    a scalar (one cube size for the batch), ``(P,)`` or ``(P, 3)``.

    ``frames`` — optional precomputed per-item rotation frames
    ``(P, 3, 3)`` (``frame_from_axis(dirs)``, which is elementwise per
    item, so callers that know their items share directions may compute
    frames once per direction and gather).  Results are bit-identical
    with or without it; it only skips recomputation.

    ``screen=True`` first resolves each pair with the inscribed/
    circumscribed sphere argument (the geometric core of the paper's ICA
    abstraction, applied as a pure implementation shortcut): the 2D
    distance from the box center to the tool profile decides the pair
    exactly when it is ``<= r_inscribed`` (tool meets a sphere inside the
    box) or ``> r_circumscribed`` (tool misses a sphere containing the
    box).  Only pairs in the corner band — a few percent — run the
    expensive rotate/clip/project pipeline.  The result is bit-identical
    either way; ``screen=False`` exists so tests can exercise the full
    geometric pipeline on every input.

    Note this wall-clock shortcut has no effect on the *simulated* cost
    accounting: callers charge the paper's ``216 * N_c`` per CHECKBOX
    regardless of how this Python implementation resolves it.

    ``backend`` — optional :class:`repro.engine.backend.ArrayBackend`.
    ``None`` or the numpy backend runs the reference numpy pipeline
    unchanged; any other backend routes the arithmetic through its
    Array-API namespace (verdicts stay bit-equal — they are boolean
    outcomes of identical float comparisons).
    """
    pivot = np.asarray(pivot, dtype=np.float64)
    dirs = np.asarray(dirs, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    z0s = np.atleast_1d(np.asarray(z0s, dtype=np.float64))
    z1s = np.atleast_1d(np.asarray(z1s, dtype=np.float64))
    rads = np.atleast_1d(np.asarray(rads, dtype=np.float64))
    P = dirs.shape[0]
    halves3 = _as_halves3(halves, P)
    bk = backend if backend is not None and not backend.is_numpy else None

    if screen and P:
        if bk is not None:
            xp = bk.xp
            rel_d = bk.to_device(centers - pivot)
            dirs_d = bk.to_device(dirs)
            axial = bk.dot3(rel_d, dirs_d)
            radial = xp.sqrt(
                xp.maximum(
                    bk.dot3(rel_d, rel_d) - axial * axial,
                    xp.asarray(0.0, dtype=xp.float64),
                )
            )
            d2d = np.asarray(
                bk.to_host(tool_point_distance_2d_xp(bk, z0s, z1s, rads, axial, radial))
            )
        else:
            rel = centers - pivot
            axial = np.einsum("ij,ij->i", rel, dirs)
            radial = np.sqrt(
                np.maximum(np.einsum("ij,ij->i", rel, rel) - axial * axial, 0.0)
            )
            d2d = tool_point_distance_2d(z0s, z1s, rads, axial, radial)
        r_in = halves3.min(axis=1)
        r_circ = np.sqrt(np.einsum("ij,ij->i", halves3, halves3))
        out = d2d <= r_in
        undecided = ~out & (d2d <= r_circ)
        if undecided.any():
            out[undecided] = tool_aabb_batch(
                pivot,
                dirs[undecided],
                centers[undecided],
                halves3[undecided],
                z0s,
                z1s,
                rads,
                chunk=chunk,
                screen=False,
                frames=frames[undecided] if frames is not None else None,
                backend=bk,
            )
        return out

    out = np.empty(P, dtype=bool)
    block = _tool_aabb_block if bk is None else (
        lambda *a, frames=None: _tool_aabb_block_xp(bk, *a, frames=frames)
    )
    for start in range(0, P, chunk):
        sl = slice(start, min(start + chunk, P))
        out[sl] = block(
            pivot, dirs[sl], centers[sl], halves3[sl], z0s, z1s, rads,
            frames=frames[sl] if frames is not None else None,
        )
    return out


def tool_aabb_cull_batch(
    pivot, dirs, centers, halves, z0s, z1s, rads, *, chunk: int = 131072,
    backend=None,
) -> np.ndarray:
    """Conservative AABB cull used by the *optimized PBox* method.

    For each work item, build the world-space AABB of every (oriented)
    tool cylinder and test it against the voxel box.  ``False`` means the
    exact test can be skipped (provably no intersection); ``True`` means
    "possible" and the exact kernel must run.  This is the paper's
    optimized-PBox trick: apply AABBs to the voxel after each rotation.
    ``halves`` may be a scalar, ``(P,)`` or ``(P, 3)``.  ``backend``
    routes the arithmetic like in :func:`tool_aabb_batch`.
    """
    pivot = np.asarray(pivot, dtype=np.float64)
    dirs = np.asarray(dirs, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    z0s = np.atleast_1d(np.asarray(z0s, dtype=np.float64))
    z1s = np.atleast_1d(np.asarray(z1s, dtype=np.float64))
    rads = np.atleast_1d(np.asarray(rads, dtype=np.float64))
    P = dirs.shape[0]
    halves3 = _as_halves3(halves, P)
    bk = backend if backend is not None and not backend.is_numpy else None

    if P > chunk:
        out = np.empty(P, dtype=bool)
        for start in range(0, P, chunk):
            sl = slice(start, min(start + chunk, P))
            out[sl] = tool_aabb_cull_batch(
                pivot, dirs[sl], centers[sl], halves3[sl], z0s, z1s, rads,
                chunk=chunk, backend=bk,
            )
        return out

    if bk is not None:
        xp = bk.xp
        dirs_d = bk.to_device(dirs)
        pivot_d = bk.to_device(pivot)
        z0_d = bk.to_device(z0s)
        z1_d = bk.to_device(z1s)
        r_d = bk.to_device(rads)
        lateral = r_d[None, :, None] * xp.sqrt(
            xp.clip(1.0 - dirs_d[:, None, :] ** 2, 0.0, 1.0)
        )  # (P, C, 3)
        c0 = pivot_d + z0_d[None, :, None] * dirs_d[:, None, :]
        c1 = pivot_d + z1_d[None, :, None] * dirs_d[:, None, :]
        lo = xp.minimum(c0, c1) - lateral
        hi = xp.maximum(c0, c1) + lateral
        blo = (bk.to_device(centers) - bk.to_device(halves3))[:, None, :]
        bhi = (bk.to_device(centers) + bk.to_device(halves3))[:, None, :]
        overlap = xp.all(xp.logical_and(lo <= bhi, blo <= hi), axis=-1)
        return np.ascontiguousarray(bk.to_host(xp.any(overlap, axis=-1)))

    # Per-axis lateral reach of an oriented cylinder: r * sqrt(1 - d_a^2).
    lateral = rads[None, :, None] * np.sqrt(
        np.clip(1.0 - dirs[:, None, :] ** 2, 0.0, 1.0)
    )  # (P, C, 3)
    c0 = pivot + z0s[None, :, None] * dirs[:, None, :]
    c1 = pivot + z1s[None, :, None] * dirs[:, None, :]
    lo = np.minimum(c0, c1) - lateral
    hi = np.maximum(c0, c1) + lateral

    blo = (centers - halves3)[:, None, :]
    bhi = (centers + halves3)[:, None, :]
    overlap = np.all((lo <= bhi) & (blo <= hi), axis=-1)  # (P, C)
    return overlap.any(axis=-1)


def tool_point_distance_2d(z0s, z1s, rads, axial, radial) -> np.ndarray:
    """Distance from (axial, radial) points to the tool's 2D profile.

    The tool is a solid of revolution, so this 2D rectangle distance *is*
    the 3D point-to-tool distance — the exact reduction behind the ICA
    abstraction.  ``axial``/``radial`` broadcast; the result has the
    broadcast shape (minimum over the tool's cylinders).
    """
    z0s = np.atleast_1d(np.asarray(z0s, dtype=np.float64))
    z1s = np.atleast_1d(np.asarray(z1s, dtype=np.float64))
    rads = np.atleast_1d(np.asarray(rads, dtype=np.float64))
    axial = np.asarray(axial, dtype=np.float64)[..., None]
    radial = np.asarray(radial, dtype=np.float64)[..., None]
    dz = np.maximum(z0s - axial, 0.0) + np.maximum(axial - z1s, 0.0)
    dr = np.maximum(radial - rads, 0.0)
    return np.min(np.hypot(dz, dr), axis=-1)


def tool_point_distance_2d_xp(bk, z0s, z1s, rads, axial, radial):
    """Portable twin of :func:`tool_point_distance_2d` on backend ``bk``.

    ``axial``/``radial`` are already device arrays in ``bk``'s namespace;
    the cylinder stack is staged on demand.  Returns a device array of
    the broadcast shape.
    """
    xp = bk.xp
    z0_d = bk.to_device(np.atleast_1d(np.asarray(z0s, dtype=np.float64)))
    z1_d = bk.to_device(np.atleast_1d(np.asarray(z1s, dtype=np.float64)))
    r_d = bk.to_device(np.atleast_1d(np.asarray(rads, dtype=np.float64)))
    ax = axial[..., None]
    ra = radial[..., None]
    zero = xp.asarray(0.0, dtype=xp.float64)
    dz = xp.maximum(z0_d - ax, zero) + xp.maximum(ax - z1_d, zero)
    dr = xp.maximum(ra - r_d, zero)
    return xp.min(xp.hypot(dz, dr), axis=-1)
