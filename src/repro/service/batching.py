"""Request coalescing and bounded dispatch with explicit backpressure.

Two clients asking for the same accessibility map at the same time
should cost one traversal, not two: the broker keys every computation by
its full query digest and a submission whose key is already *in flight*
joins the existing future instead of enqueueing a duplicate
(``service.coalesced`` counts the joins).

Distinct queries go through a bounded dispatch queue.  When the number
of admitted-but-unfinished computations reaches ``max_queue`` the broker
*rejects* the submission with :class:`Backpressure` (the HTTP layer maps
it to ``503`` + ``Retry-After``) — heavy traffic degrades into explicit
retry pressure on the client instead of unbounded queue growth in the
server.

Dispatch runs on ``dispatch_threads`` daemon threads.  The default of 1
serializes compute — each query still parallelizes internally across the
worker-process pool, and a single dispatcher keeps the (thread-oblivious)
ambient tracer coherent; raise it only for workloads dominated by many
small independent queries.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor

from repro.obs.context import TraceContext, use_trace_context
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer

__all__ = ["Backpressure", "QueryBroker", "current_queue_wait_s"]


# Dispatch-thread-local bookkeeping: how long the currently-running
# computation sat in the queue.  The service's cost ledger reads it from
# inside ``fn`` (same thread), so the broker doesn't need to thread the
# number through every computation signature.
_dispatch_tls = threading.local()


def current_queue_wait_s() -> float:
    """Queue wait of the computation running on *this* dispatch thread."""
    return getattr(_dispatch_tls, "queue_wait_s", 0.0)


class Backpressure(Exception):
    """Submission rejected: the dispatch queue is full.

    ``retry_after_s`` is the broker's estimate of when capacity frees up
    (surfaced as the HTTP ``Retry-After`` header).
    """

    def __init__(self, retry_after_s: float, depth: int):
        self.retry_after_s = float(retry_after_s)
        self.depth = int(depth)
        super().__init__(
            f"dispatch queue full ({depth} queries in flight); "
            f"retry in {retry_after_s:g}s"
        )


class QueryBroker:
    """Coalescing, bounded-queue dispatcher for query computations."""

    def __init__(
        self,
        *,
        dispatch_threads: int = 1,
        max_queue: int = 32,
        retry_after_s: float = 1.0,
    ) -> None:
        if dispatch_threads < 1:
            raise ValueError(f"dispatch_threads must be >= 1, got {dispatch_threads}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.max_queue = int(max_queue)
        self.retry_after_s = float(retry_after_s)
        self._executor = ThreadPoolExecutor(
            max_workers=int(dispatch_threads), thread_name_prefix="repro-serve"
        )
        self._lock = threading.Lock()
        self._inflight: dict[str, Future] = {}
        self._depth = 0  # admitted and not yet finished (queued + running)

    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    def submit(
        self,
        key: str,
        fn,
        *,
        request_id: str | None = None,
        trace_ctx: TraceContext | None = None,
    ) -> tuple[Future, bool]:
        """Admit (or join) the computation for ``key``.

        Returns ``(future, coalesced)``: ``coalesced`` is True when an
        identical query was already in flight and this call joined it.
        Raises :class:`Backpressure` instead of admitting beyond
        ``max_queue``.

        ``request_id`` (when given) tags the admitting request's
        queue-wait span, so a trace answers "how long did request X sit
        in the dispatch queue" — joiners share the admitter's span.
        ``trace_ctx`` is the admitting request's trace context: it is
        installed ambiently on the dispatch thread while ``fn`` runs, so
        every span recorded underneath (queue wait, the engine's own
        tree, pool-worker spans) carries the request's trace ID.  An
        *unsampled* context swaps in the no-op tracer for the duration —
        the dropped path records nothing and costs nothing.

        ``fn`` must perform its own result publication (e.g. write the
        result cache) *before returning* — the in-flight key is retired
        when ``fn`` finishes, so anything later would open a window where
        a duplicate query neither coalesces nor hits the cache.
        """
        with self._lock:
            existing = self._inflight.get(key)
            if existing is not None:
                get_metrics().counter("service.coalesced").inc()
                return existing, True
            if self._depth >= self.max_queue:
                get_metrics().counter("service.rejected").inc()
                raise Backpressure(self.retry_after_s, self._depth)
            self._depth += 1
            get_metrics().gauge("service.queue.depth").set(self._depth)
            submitted = time.perf_counter()
            future = self._executor.submit(
                self._run, key, fn, submitted, request_id, trace_ctx
            )
            self._inflight[key] = future
            return future, False

    def _run(
        self,
        key: str,
        fn,
        submitted: float,
        request_id: str | None = None,
        trace_ctx: TraceContext | None = None,
    ):
        wait_s = time.perf_counter() - submitted
        _dispatch_tls.queue_wait_s = wait_s
        get_metrics().histogram("service.queue.wait_ms").observe(wait_s * 1e3)
        with use_trace_context(trace_ctx):
            # get_tracer() resolves to the no-op tracer under an
            # unsampled context — the dropped path records nothing.
            tracer = get_tracer()
            if tracer.enabled:
                attrs = {"key": key[:12]}
                if request_id is not None:
                    attrs["request_id"] = request_id
                tracer.record_span(
                    "service.queue.wait",
                    t0=tracer.now() - wait_s,
                    wall_s=wait_s,
                    attrs=attrs,
                )
            try:
                return fn()
            finally:
                with self._lock:
                    self._inflight.pop(key, None)
                    self._depth -= 1
                    get_metrics().gauge("service.queue.depth").set(self._depth)

    def shutdown(self) -> None:
        """Drain queued work and stop the dispatch threads; idempotent."""
        self._executor.shutdown(wait=True)
