"""AICA: aggressive inaccessible cone angle collision detection.

A from-scratch reproduction of "Faster parallel collision detection at
high resolution for CNC milling applications" (ICPP 2019): given a
target object stored as an adaptive voxel octree, a tool bounded by a
stack of cylinders, and a pivot point, compute the *accessibility map* —
which tool orientations collide with the target — using the paper's
five methods (PBox, optimized PBox, PICA, MICA, AICA) on a simulated
SIMT device.

Quickstart
----------
>>> import numpy as np
>>> from repro import (Scene, run_cd, AICA, OrientationGrid,
...                    build_from_sdf, expand_top, paper_tool)
>>> from repro.solids import SphereSDF
>>> from repro.geometry import AABB
>>> domain = AABB((-40, -40, -40), (40, 40, 40))
>>> tree = expand_top(build_from_sdf(SphereSDF((0, 0, 0), 20.0), domain, 64))
>>> scene = Scene(tree, paper_tool(), np.array([0.0, 0.0, 21.0]))
>>> result = run_cd(scene, OrientationGrid.square(16), AICA())
>>> bool(result.n_accessible) and bool(result.n_colliding)
True

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.cd import (
    AICA,
    MICA,
    PBox,
    PBoxOpt,
    PICA,
    CDResult,
    Scene,
    TraversalConfig,
    method_by_name,
    run_cd,
)
from repro.engine import DeviceSpec, GTX_1080, GTX_1080_TI, CostModel, DEFAULT_COSTS
from repro.geometry import AABB, Cylinder, OrientationGrid, Sphere
from repro.ica import build_ica_table, tool_ica, tool_ica_batch
from repro.obs import (
    MetricsRegistry,
    RunReport,
    Tracer,
    build_report,
    compare,
    use_metrics,
    use_tracer,
)
from repro.octree import LinearOctree, build_from_dense, build_from_sdf, expand_top
from repro.path import offset_path, sample_pivots
from repro.solids import benchmark_models
from repro.tool import Tool, ball_end_mill, paper_tool

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # problem setup
    "Scene",
    "OrientationGrid",
    "Tool",
    "paper_tool",
    "ball_end_mill",
    "AABB",
    "Sphere",
    "Cylinder",
    # target construction
    "LinearOctree",
    "build_from_sdf",
    "build_from_dense",
    "expand_top",
    "benchmark_models",
    "offset_path",
    "sample_pivots",
    # methods & execution
    "run_cd",
    "TraversalConfig",
    "CDResult",
    "PBox",
    "PBoxOpt",
    "PICA",
    "MICA",
    "AICA",
    "method_by_name",
    # ICA
    "tool_ica",
    "tool_ica_batch",
    "build_ica_table",
    # simulated device
    "DeviceSpec",
    "GTX_1080_TI",
    "GTX_1080",
    "CostModel",
    "DEFAULT_COSTS",
    # observability
    "Tracer",
    "use_tracer",
    "MetricsRegistry",
    "use_metrics",
    "RunReport",
    "build_report",
    "compare",
]
