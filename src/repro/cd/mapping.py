"""The Section 4.1 thread-mapping alternative, for the mapping ablation.

The paper weighs two parallelization strategies for the CD stage:

* **orientation-per-thread** (chosen): each thread traverses the octree
  for one orientation; collisions early-out the whole thread; no
  inter-thread communication.
* **voxel-per-thread** (rejected): each thread owns one base-level cell
  and tests all ``M`` orientations against its subtree; the per-
  orientation verdicts must then be OR-reduced across threads, and a
  thread cannot exploit another subtree's collision to stop early.

This module prices the rejected mapping on the *same* work distribution
so the ablation bench can quantify the paper's argument.  The work items
(orientation, node) are identical to the chosen mapping's up to early
exits; what changes is (a) cost attribution — to the base cell, not the
orientation, (b) the loss of cross-subtree early-out (an orientation
that collides in subtree A is still fully processed in subtree B), and
(c) a final ``M``-wide OR-reduction stage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cd.scene import Scene
from repro.cd.traversal import (
    OUT_EXPAND,
    OUT_YES,
    Runtime,
    TraversalConfig,
    Wave,
    _advance,
    initial_frontier,
)
from repro.engine.costs import CostModel, DEFAULT_COSTS
from repro.engine.counters import ThreadCounters
from repro.engine.device import DeviceSpec, GTX_1080_TI
from repro.engine.simt import simulate_kernel, simulate_stage
from repro.geometry.orientation import OrientationGrid
from repro.octree.linear import STATUS_FULL

__all__ = ["VoxelMappingResult", "run_voxel_mapping"]


@dataclass
class VoxelMappingResult:
    """Outcome of pricing the voxel-per-thread mapping."""

    collides: np.ndarray  # (M,) — identical map to the standard mapping
    n_threads: int  # number of base cells (the thread count)
    thread_ops: np.ndarray  # (n_threads,) op cost per voxel thread
    cd_seconds: float  # simulated CD-stage time
    reduce_seconds: float  # simulated OR-reduction stage

    @property
    def total_seconds(self) -> float:
        return self.cd_seconds + self.reduce_seconds


def run_voxel_mapping(
    scene: Scene,
    grid: OrientationGrid,
    method,
    *,
    device: DeviceSpec = GTX_1080_TI,
    costs: CostModel = DEFAULT_COSTS,
    config: TraversalConfig = TraversalConfig(),
) -> VoxelMappingResult:
    """Price the voxel-per-thread mapping for ``method`` on ``scene``.

    Runs the same frontier machinery with cost attribution keyed by each
    pair's base-level ancestor and with early exit *disabled* (a voxel
    thread has no global knowledge of other subtrees' collisions).  The
    resulting map is identical; only the schedule differs.
    """
    M = grid.size
    L0, base_codes, base_idx, base_status = initial_frontier(scene, config.start_level)
    n_base = len(base_codes)
    # Per-pair "thread" = index of the base cell the pair descends from.
    # Counters are indexed by base cell, so reuse ThreadCounters with
    # n_threads = number of base cells.
    counters = ThreadCounters(n_threads=max(n_base, 1), n_cyl=scene.n_cylinders)
    rt = Runtime(
        scene=scene,
        grid=grid,
        counters=counters,
        costs=costs,
        config=config,
    )
    if getattr(method, "needs_table", False):
        from repro.ica.table import build_ica_table

        rt.table = build_ica_table(
            scene.tree, scene.tool, scene.pivot, levels=config.memo_levels
        )

    collides = np.zeros(M, dtype=bool)
    tree = scene.tree

    # Process orientations in blocks as before, but key the frontier's
    # "threads" by base-cell index and never drop pairs on collision.
    for t0 in range(0, M, config.thread_block):
        t1 = min(t0 + config.thread_block, M)
        block = np.arange(t0, t1, dtype=np.intp)
        nb = len(block)

        owner = np.tile(np.arange(n_base, dtype=np.intp), nb)  # base-cell id
        orient = np.repeat(block, n_base)  # true orientation id
        codes = np.tile(base_codes, nb)
        idx = np.tile(base_idx, nb)
        status = np.tile(base_status, nb)

        level = L0
        while len(owner):
            centers = tree.centers_of_codes(level, codes)
            wave = Wave(
                level=level,
                threads=owner,  # cost attribution target
                codes=codes,
                idx=idx,
                status=status,
                centers=centers,
                half=tree.cell_half(level),
                dirs=rt.all_dirs[orient],
            )
            counters.add_threads("nodes_visited", owner, counters.n_threads)
            outcomes = method.decide(rt, wave)

            hit = (outcomes == OUT_YES) & (status == STATUS_FULL)
            if hit.any():
                collides[np.unique(orient[hit])] = True

            # No early exit: expand every YES-on-MIXED / EXPAND pair.  We
            # reuse _advance with per-pair pseudo-thread ids (so both the
            # owner cell and the orientation can be recovered after the
            # children are emitted) and an all-false collision vector,
            # which disables its early-out filtering.
            wave_pairs = Wave(
                level=level,
                threads=np.arange(len(owner), dtype=np.intp),
                codes=codes,
                idx=idx,
                status=status,
                centers=centers,
                half=tree.cell_half(level),
                dirs=rt.all_dirs[orient],
            )
            new_pairs, codes, idx, status = _advance(
                rt, wave_pairs, outcomes, np.zeros(len(owner), dtype=bool)
            )
            owner = owner[new_pairs]
            orient = orient[new_pairs]
            level += 1
            if level > tree.depth:
                break

    thread_ops = counters.thread_ops(costs)
    cd_s = simulate_kernel(thread_ops, device)
    # OR-reduction of n_base partial verdict vectors of length M: model as
    # log2(n_base) rounds of M-thread elementwise ORs (1 op each).
    rounds = int(np.ceil(np.log2(max(n_base, 2))))
    reduce_s = sum(simulate_stage(1.0, M, device) for _ in range(rounds))
    return VoxelMappingResult(
        collides=collides,
        n_threads=n_base,
        thread_ops=thread_ops,
        cd_seconds=cd_s,
        reduce_seconds=reduce_s,
    )
