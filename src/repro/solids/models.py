"""The four CAD benchmark analogues (Table 1 of the paper).

The paper's meshes (Head, Candle Holder, Turbine, Teapot) ship with
SculptPrint and are not public.  Each analogue here is a procedural
implicit solid with the *same bounding dimensions* (Table 1) and the
same qualitative occupancy structure: the head is a convex-ish bust with
facial concavities, the candle holder is a lathed part with a hollow
cup, the turbine is a hub with thin twisted blades (the hardest case for
pruning), and the teapot has a through-hole handle and protruding spout.

Each model also records the paper's published statistics so the Table 1
bench can print paper-vs-measured rows side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.aabb import AABB
from repro.solids.sdf import (
    SDF,
    BoxSDF,
    CapsuleSDF,
    CylinderSDF,
    Difference,
    EllipsoidSDF,
    Rotate,
    SphereSDF,
    TorusSDF,
    RevolvedPolygonSDF,
    Union,
    union_all,
)

__all__ = [
    "BenchmarkModel",
    "head_model",
    "candle_holder_model",
    "turbine_model",
    "teapot_model",
    "benchmark_models",
    "PAPER_RESOLUTIONS",
]

#: The object resolutions the paper sweeps (effective grid edge k for k^3).
PAPER_RESOLUTIONS: tuple[int, ...] = (256, 512, 1024, 2048)


@dataclass(frozen=True)
class BenchmarkModel:
    """A benchmark solid plus its octree domain and the paper's statistics.

    ``domain`` is the cubic octree root cell: a cube enclosing the model
    with some margin, so effective resolution ``k`` gives cells of edge
    ``domain_edge / k``.
    """

    name: str
    sdf: SDF
    dims: tuple[float, float, float]
    domain: AABB
    paper: dict = field(default_factory=dict, compare=False)

    @property
    def domain_edge(self) -> float:
        return float(self.domain.size[0])

    def cell_size(self, resolution: int) -> float:
        """Edge length of a leaf voxel at effective resolution ``resolution^3``."""
        return self.domain_edge / resolution


def _cubic_domain(dims, margin: float = 1.15) -> AABB:
    """Cube centered at the origin enclosing a model of extents ``dims``."""
    edge = max(dims) * margin
    half = np.full(3, edge / 2.0)
    return AABB(-half, half)


def _rot_x(deg: float) -> np.ndarray:
    a = np.deg2rad(deg)
    c, s = np.cos(a), np.sin(a)
    return np.array([[1, 0, 0], [0, c, -s], [0, s, c]], dtype=np.float64)


def _rot_z(deg: float) -> np.ndarray:
    a = np.deg2rad(deg)
    c, s = np.cos(a), np.sin(a)
    return np.array([[c, -s, 0], [s, c, 0], [0, 0, 1]], dtype=np.float64)


def head_model() -> BenchmarkModel:
    """Bust analogue: skull + jaw + neck, with eye-socket and mouth concavities.

    Dimensions 48.6 x 46.0 x 64.4 mm (Table 1).  The face looks toward -y.
    """
    skull = EllipsoidSDF((0.0, 0.5, 11.0), (21.5, 22.0, 21.0))
    jaw = EllipsoidSDF((0.0, -4.0, -6.0), (14.0, 15.0, 13.0))
    neck = CylinderSDF((0.0, 2.0), -32.2, -10.0, 10.0)
    nose = CapsuleSDF((0.0, -18.5, 4.0), (0.0, -20.0, -1.0), 3.0)
    ear_l = EllipsoidSDF((-22.0, 2.0, 6.0), (2.3, 5.0, 7.0))
    ear_r = EllipsoidSDF((22.0, 2.0, 6.0), (2.3, 5.0, 7.0))
    base = CylinderSDF((0.0, 0.0), -32.2, -27.0, 16.0)

    eye_l = SphereSDF((-8.0, -19.5, 12.0), 4.0)
    eye_r = SphereSDF((8.0, -19.5, 12.0), 4.0)
    mouth = CapsuleSDF((-6.0, -20.0, -8.0), (6.0, -20.0, -8.0), 2.2)

    solid = union_all([skull, jaw, neck, nose, ear_l, ear_r, base])
    solid = Difference(solid, union_all([eye_l, eye_r, mouth]))

    dims = (48.6, 46.0, 64.4)
    return BenchmarkModel(
        name="head",
        sdf=solid,
        dims=dims,
        domain=_cubic_domain(dims),
        paper={
            "triangles": 23028,
            "bounding_volume": 51331,
            "layers": {256: 6, 512: 7, 1024: 8, 2048: 9},
            "voxels_m": {256: 0.44, 512: 1.06, 1024: 4.26, 2048: 17.56},
            "path_points_k": {256: 61.14, 512: 101.3, 1024: 203.7, 2048: 409.3},
        },
    )


def candle_holder_model() -> BenchmarkModel:
    """Lathed candle holder: base plate, slender stem with bulges, hollow cup.

    Dimensions 48.4 x 48.9 x 57.7 mm.  Built as a solid of revolution (the
    shape class lathe-turned CAM parts come from), minus an inner cylinder
    for the cup cavity — a deep concavity that limits accessibility from
    above, like the real benchmark.
    """
    half_h = 57.7 / 2.0
    # Outer profile polygon in (rho, z), counterclockwise.
    profile = np.array(
        [
            (0.0, -half_h),
            (23.5, -half_h),
            (23.5, -half_h + 4.0),
            (9.0, -half_h + 7.0),
            (5.5, -12.0),
            (8.5, -8.0),
            (5.5, -4.0),
            (5.5, 6.0),
            (16.0, 10.0),
            (12.0, 13.0),
            (13.5, half_h),
            (0.0, half_h),
        ],
        dtype=np.float64,
    )
    outer = RevolvedPolygonSDF((0.0, 0.0, 0.0), profile)
    cavity = CylinderSDF((0.0, 0.0), 16.0, half_h + 2.0, 10.0)
    stem_bead = TorusSDF((0.0, 0.0, -8.0), 8.0, 2.5)
    solid = Difference(Union(outer, stem_bead), cavity)

    dims = (48.4, 48.9, 57.7)
    return BenchmarkModel(
        name="candle_holder",
        sdf=solid,
        dims=dims,
        domain=_cubic_domain(dims),
        paper={
            "triangles": 38000,
            "bounding_volume": 21275,
            "layers": {256: 7, 512: 7, 1024: 8, 2048: 9},
            "voxels_m": {256: 0.57, 512: 1.59, 1024: 5.92, 2048: 26.94},
            "path_points_k": {256: 58.32, 512: 97.32, 1024: 196.9, 2048: 360.6},
        },
    )


def turbine_model(n_blades: int = 9) -> BenchmarkModel:
    """Bladed disk: hub + shaft + thin twisted blades + center bore.

    Dimensions 48.9 x 48.9 x 31.1 mm.  The blades are the pruning stress
    test: thin, oblique features spread over a large bounding volume (note
    the real turbine has the *smallest* solid volume of the four models
    despite mid-pack voxel counts — lots of surface, little interior).
    """
    half_h = 31.1 / 2.0
    hub = CylinderSDF((0.0, 0.0), -5.0, 5.0, 9.0)
    shaft = CylinderSDF((0.0, 0.0), -half_h, half_h, 4.0)

    blades = []
    for k in range(n_blades):
        blade = BoxSDF((15.0, 0.0, 0.0), (9.2, 1.1, 11.0))
        blade = Rotate(blade, _rot_x(28.0))  # pitch twist about the radial axis
        blade = Rotate(blade, _rot_z(360.0 * k / n_blades))
        blades.append(blade)

    bore = CylinderSDF((0.0, 0.0), -half_h - 1.0, half_h + 1.0, 2.2)
    solid = Difference(union_all([hub, shaft, *blades]), bore)

    dims = (48.9, 48.9, 31.1)
    return BenchmarkModel(
        name="turbine",
        sdf=solid,
        dims=dims,
        domain=_cubic_domain(dims),
        paper={
            "triangles": 57792,
            "bounding_volume": 7823,
            "layers": {256: 6, 512: 7, 1024: 8, 2048: 9},
            "voxels_m": {256: 0.62, 512: 1.37, 1024: 6.44, 2048: 26.06},
            "path_points_k": {256: 29.43, 512: 41.46, 1024: 83.48, 2048: 168.2},
        },
    )


def teapot_model() -> BenchmarkModel:
    """Teapot analogue: lathed body, through-hole handle (torus), spout, knob.

    Dimensions 46 x 46 x 31 mm.  The handle's through hole and the spout
    overhang create orientation-dependent inaccessibility, the signature
    of the original Utah-teapot benchmark in 5-axis machining papers.
    """
    body = EllipsoidSDF((0.0, 0.0, -1.5), (15.0, 20.5, 11.5))
    foot = CylinderSDF((0.0, 0.0), -15.5, -11.5, 9.0)
    lid = EllipsoidSDF((0.0, 0.0, 9.5), (8.5, 10.0, 3.5))
    knob = SphereSDF((0.0, 0.0, 13.0), 2.4)
    spout = CapsuleSDF((12.0, 0.0, -4.0), (20.4, 0.0, 5.0), 2.6)
    handle = Rotate(
        TorusSDF((0.0, 0.0, 0.0), 6.5, 1.8), _rot_x(90.0)
    ).translated((-14.7, 0.0, 1.0))

    solid = union_all([body, foot, lid, knob, spout, handle])

    dims = (46.0, 46.0, 31.0)
    return BenchmarkModel(
        name="teapot",
        sdf=solid,
        dims=dims,
        domain=_cubic_domain(dims),
        paper={
            "triangles": 57600,
            "bounding_volume": 25619,
            "layers": {256: 6, 512: 7, 1024: 8, 2048: 9},
            "voxels_m": {256: 0.74, 512: 1.53, 1024: 6.14, 2048: 23.89},
            "path_points_k": {256: 30.60, 512: 44.57, 1024: 89.37, 2048: 179.1},
        },
    )


def benchmark_models() -> list[BenchmarkModel]:
    """All four benchmarks, in the paper's Table 1 order."""
    return [head_model(), candle_holder_model(), turbine_model(), teapot_model()]
