"""W3C trace-context: codec fuzz, sampling, identity, pool propagation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.context import (
    TraceContext,
    current_trace_context,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    sample_rate_from_env,
    trace_sampled,
    use_trace_context,
)
from repro.obs.trace import Tracer, get_tracer, use_tracer

TID = "4bf92f3577b34da6a3ce929d0e0e4736"
SID = "00f067aa0ba902b7"


class TestParseTraceparent:
    def test_valid_sampled(self):
        ctx = parse_traceparent(f"00-{TID}-{SID}-01")
        assert ctx is not None
        assert ctx.trace_id == TID and ctx.span_id == SID and ctx.sampled

    def test_valid_unsampled(self):
        ctx = parse_traceparent(f"00-{TID}-{SID}-00")
        assert ctx is not None and not ctx.sampled

    def test_whitespace_tolerated(self):
        assert parse_traceparent(f"  00-{TID}-{SID}-01  ") is not None

    def test_future_version_accepted(self):
        # Unknown versions parse their first four fields (forward compat),
        # including trailing extra fields.
        assert parse_traceparent(f"cc-{TID}-{SID}-01-extra") is not None

    @pytest.mark.parametrize(
        "value",
        [
            None,
            "",
            "garbage",
            f"00-{TID}-{SID}",  # missing flags
            f"00-{TID}-{SID}-01-extra",  # version 00 forbids extra fields
            f"ff-{TID}-{SID}-01",  # version ff forbidden
            f"0-{TID}-{SID}-01",  # short version
            f"00-{TID[:31]}-{SID}-01",  # short trace id
            f"00-{TID}x-{SID}-01",  # long trace id
            f"00-{'0' * 32}-{SID}-01",  # all-zero trace id
            f"00-{TID}-{'0' * 16}-01",  # all-zero span id
            f"00-{TID}-{SID[:15]}-01",  # short span id
            f"00-{TID.upper()}-{SID}-01",  # uppercase hex forbidden
            f"00-{TID}-{SID}-1",  # short flags
            f"00-{TID}-{SID}-zz",  # non-hex flags
        ],
    )
    def test_malformed_means_none_never_raises(self, value):
        assert parse_traceparent(value) is None

    def test_roundtrip(self):
        ctx = TraceContext(trace_id=TID, span_id=SID, sampled=False)
        assert parse_traceparent(format_traceparent(ctx)) == ctx
        ctx = TraceContext(trace_id=TID, span_id=SID, sampled=True)
        assert parse_traceparent(format_traceparent(ctx)) == ctx

    def test_format_needs_span(self):
        with pytest.raises(ValueError):
            format_traceparent(TraceContext(trace_id=TID))


class TestTraceContext:
    def test_id_validation(self):
        with pytest.raises(ValueError):
            TraceContext(trace_id="0" * 32)
        with pytest.raises(ValueError):
            TraceContext(trace_id="zz" * 16)
        with pytest.raises(ValueError):
            TraceContext(trace_id=TID, span_id="nope")

    def test_child_mints_and_links(self):
        parent = TraceContext(trace_id=TID, span_id=SID)
        child = parent.child()
        assert child.trace_id == TID
        assert child.span_id and child.span_id != SID
        assert child.parent_id == SID

    def test_minted_ids_are_well_formed(self):
        for _ in range(32):
            assert parse_traceparent(f"00-{new_trace_id()}-{new_span_id()}-01")

    def test_ambient_scoping(self):
        assert current_trace_context() is None
        ctx = TraceContext(trace_id=TID, span_id=SID)
        with use_trace_context(ctx):
            assert current_trace_context() is ctx
            with use_trace_context(None):
                assert current_trace_context() is None
        assert current_trace_context() is None


class TestSampling:
    def test_extremes(self):
        assert trace_sampled(TID, 1.0) and trace_sampled(TID, 2.0)
        assert not trace_sampled(TID, 0.0) and not trace_sampled(TID, -1.0)

    def test_deterministic(self):
        tid = new_trace_id()
        assert trace_sampled(tid, 0.37) == trace_sampled(tid, 0.37)

    def test_ratio_roughly_holds(self):
        n = 2000
        hits = sum(trace_sampled(new_trace_id(), 0.5) for _ in range(n))
        assert 0.4 * n < hits < 0.6 * n

    def test_monotone_in_rate(self):
        # A trace sampled at rate p is sampled at every rate above p.
        for _ in range(64):
            tid = new_trace_id()
            if trace_sampled(tid, 0.25):
                assert trace_sampled(tid, 0.75)

    def test_rate_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_SAMPLE", raising=False)
        assert sample_rate_from_env() == 1.0
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "0.25")
        assert sample_rate_from_env() == 0.25
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "7")
        assert sample_rate_from_env() == 1.0  # clamped
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "nonsense")
        assert sample_rate_from_env() == 1.0  # unparsable -> default

    def test_unsampled_context_nulls_the_tracer(self):
        tracer = Tracer()
        dropped = TraceContext(trace_id=TID, span_id=SID, sampled=False)
        with use_tracer(tracer):
            assert get_tracer() is tracer
            with use_trace_context(dropped):
                assert not get_tracer().enabled
            assert get_tracer() is tracer


class TestSpanIdentity:
    def test_every_span_has_ids(self):
        t = Tracer()
        with t.span("root"):
            with t.span("child"):
                pass
        root, child = t.to_dicts()
        assert root["trace_id"] == child["trace_id"] == t.trace_id
        assert root["span_id"] != child["span_id"]
        assert root["parent_span_id"] == ""
        assert child["parent_span_id"] == root["span_id"]

    def test_ambient_context_drives_roots(self):
        ctx = TraceContext(trace_id=TID, span_id=SID)
        t = Tracer()
        with use_trace_context(ctx), t.span("served"):
            pass
        (rec,) = t.to_dicts()
        assert rec["trace_id"] == TID
        assert rec["parent_span_id"] == SID

    def test_absorb_preserves_ids(self):
        ctx = TraceContext(trace_id=TID, span_id=SID)
        worker = Tracer()
        with use_trace_context(ctx):
            with worker.span("w.root"):
                with worker.span("w.child"):
                    pass
        parent = Tracer()
        with parent.span("traversal") as tsp:
            pass
        parent.absorb(worker.to_dicts(), parent=tsp.index, epoch_ns=worker.epoch_ns)
        absorbed = parent.to_dicts()[1:]
        originals = worker.to_dicts()
        assert [a["span_id"] for a in absorbed] == [o["span_id"] for o in originals]
        assert all(a["trace_id"] == TID for a in absorbed)
        # The worker root still links to the propagated parent span, not
        # to the local record it hangs under.
        assert absorbed[0]["parent_span_id"] == SID

    def test_absorb_mints_for_legacy_payloads(self):
        parent = Tracer()
        with parent.span("traversal") as tsp:
            pass
        legacy = [
            {"name": "a", "t0": 0.0, "wall_s": 0.1, "cpu_s": 0.0, "depth": 0,
             "parent": -1, "attrs": {}},
            {"name": "b", "t0": 0.0, "wall_s": 0.1, "cpu_s": 0.0, "depth": 1,
             "parent": 0, "attrs": {}},
        ]
        parent.absorb(legacy, parent=tsp.index)
        a, b = parent.to_dicts()[1:]
        assert a["span_id"] and b["span_id"]
        assert a["trace_id"] == parent.trace_id
        assert b["parent_span_id"] == a["span_id"]
        assert a["parent_span_id"] == parent.to_dicts()[0]["span_id"]


class TestPoolPropagationParity:
    """workers=1 vs workers=2: same trace ID everywhere, parents resolve."""

    @pytest.fixture(scope="class")
    def scene(self, sphere_scene):
        return sphere_scene

    def _run(self, scene, workers: int):
        from repro.cd.methods import method_by_name
        from repro.cd.traversal import run_cd
        from repro.geometry.orientation import OrientationGrid

        tracer = Tracer()
        ctx = TraceContext(trace_id=new_trace_id(), span_id=new_span_id())
        with use_tracer(tracer), use_trace_context(ctx):
            result = run_cd(
                scene, OrientationGrid(6, 6), method_by_name("AICA"),
                workers=workers,
            )
        return ctx, tracer.to_dicts(), result

    @pytest.mark.parametrize("workers", [1, 2])
    def test_one_trace_resolvable_parents(self, scene, workers):
        ctx, spans, _ = self._run(scene, workers)
        assert spans
        assert all(s["trace_id"] == ctx.trace_id for s in spans)
        ids = {s["span_id"] for s in spans}
        assert len(ids) == len(spans)  # unique
        for s in spans:
            parent = s["parent_span_id"]
            assert parent == "" or parent == ctx.span_id or parent in ids

    def test_worker_count_does_not_change_map(self, scene):
        _, spans1, r1 = self._run(scene, 1)
        _, spans2, r2 = self._run(scene, 2)
        assert np.array_equal(r1.collides, r2.collides)
        # Parallel runs really did shard: worker roots are absorbed with
        # pool attribution and still carry the propagated trace.
        attributed = [s for s in spans2 if "pool_worker" in s["attrs"]]
        assert attributed
