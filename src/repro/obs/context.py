"""W3C trace-context: trace/span identity, propagation, and sampling.

A single process can get away with implicit span parentage (the
tracer's nesting stack); a *fleet* cannot.  The moment a request hops
process or host boundaries — HTTP front end to service, service to pool
worker, router to replica — the only thing that can stitch its spans
back into one trace is explicit identity: a 128-bit **trace ID** shared
by every span of the request, a 64-bit **span ID** per span, and a
``parent_span_id`` link.  This module owns that identity and its wire
form, the W3C Trace Context ``traceparent`` header
(https://www.w3.org/TR/trace-context/)::

    traceparent: 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
                 ^^ ^^^^^^^^^^^^ trace-id ^^^^^^^^^^ ^^ span-id ^^^^^^ ^^
              version                                            trace-flags

* :class:`TraceContext` — an immutable (trace_id, span_id, sampled,
  tracestate) tuple.  ``span_id`` is the *current* span on the caller's
  side (the parent of whatever the callee opens); ``child()`` mints the
  next hop.
* :func:`parse_traceparent` / :func:`format_traceparent` — strict wire
  codec.  Parsing is defensive: any malformed header (bad version,
  short IDs, all-zero trace ID, bad flags) returns ``None`` so the
  caller mints a fresh context instead of crashing or trusting garbage.
* ambient context — :func:`current_trace_context` et al. install a
  context per *thread*: span records created while one is active
  (:mod:`repro.obs.trace`) inherit its trace ID, and root spans link to
  its span ID.  The service's dispatch threads scope a context per
  request; everything recorded underneath lands in that request's trace.
* head sampling — :func:`trace_sampled` implements the deterministic
  trace-ID-ratio sampler (the low 64 bits of the trace ID interpreted
  as a fraction), so every participant that sees the same trace ID and
  the same ``REPRO_TRACE_SAMPLE`` rate makes the same decision, and an
  inbound ``sampled`` flag is simply honored.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, replace

__all__ = [
    "TraceContext",
    "new_trace_id",
    "new_span_id",
    "parse_traceparent",
    "format_traceparent",
    "trace_sampled",
    "sample_rate_from_env",
    "current_trace_context",
    "set_trace_context",
    "use_trace_context",
]

TRACEPARENT_HEADER = "traceparent"
TRACESTATE_HEADER = "tracestate"

_HEX = set("0123456789abcdef")


def new_trace_id() -> str:
    """A fresh 128-bit trace ID: 32 lowercase hex chars, never all-zero."""
    while True:
        tid = os.urandom(16).hex()
        if tid != "0" * 32:
            return tid


def new_span_id() -> str:
    """A fresh 64-bit span ID: 16 lowercase hex chars, never all-zero."""
    while True:
        sid = os.urandom(8).hex()
        if sid != "0" * 16:
            return sid


def _is_hex(value: str, length: int) -> bool:
    return len(value) == length and set(value) <= _HEX


@dataclass(frozen=True)
class TraceContext:
    """One hop of a distributed trace.

    ``span_id`` is the span the *sender* is currently inside — the
    parent of anything the receiver opens.  A locally-originated root
    context may carry ``span_id = ""`` (no parent anywhere); such a
    context cannot be serialized to a ``traceparent`` until ``child()``
    mints a real span.  ``parent_id`` remembers the previous hop's span
    (what ``span_id`` was before the last ``child()``), so a span
    recorded *as* ``span_id`` knows its parent link without a second
    context object.
    """

    trace_id: str
    span_id: str = ""
    sampled: bool = True
    tracestate: str = ""
    parent_id: str = ""

    def __post_init__(self) -> None:
        if not _is_hex(self.trace_id, 32) or self.trace_id == "0" * 32:
            raise ValueError(f"trace_id must be 32 non-zero hex chars, got {self.trace_id!r}")
        if self.span_id and (not _is_hex(self.span_id, 16) or self.span_id == "0" * 16):
            raise ValueError(f"span_id must be 16 non-zero hex chars, got {self.span_id!r}")

    def child(self) -> "TraceContext":
        """The next hop: a fresh span ID parented on this context's span."""
        return replace(self, span_id=new_span_id(), parent_id=self.span_id)

    def to_traceparent(self) -> str:
        return format_traceparent(self)


def parse_traceparent(value: str | None) -> TraceContext | None:
    """Parse a ``traceparent`` header; ``None`` on anything malformed.

    Strict per the W3C spec: 2-hex version (``ff`` forbidden), 32-hex
    non-zero trace ID, 16-hex non-zero parent span ID, 2-hex flags —
    all lowercase.  Version ``00`` must have exactly four fields; a
    higher (unknown) version is accepted if its first four fields parse
    (forward compatibility).  The caller's contract: a ``None`` return
    means *mint a fresh context*, never crash.
    """
    if not value or not isinstance(value, str):
        return None
    parts = value.strip().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, span_id, flags = parts[0], parts[1], parts[2], parts[3]
    if not _is_hex(version, 2) or version == "ff":
        return None
    if version == "00" and len(parts) != 4:
        return None
    if not _is_hex(trace_id, 32) or trace_id == "0" * 32:
        return None
    if not _is_hex(span_id, 16) or span_id == "0" * 16:
        return None
    if not _is_hex(flags, 2):
        return None
    sampled = bool(int(flags, 16) & 0x01)
    return TraceContext(trace_id=trace_id, span_id=span_id, sampled=sampled)


def format_traceparent(ctx: TraceContext) -> str:
    """The context as a version-00 ``traceparent`` header value."""
    if not ctx.span_id:
        raise ValueError("cannot format a context without a span_id; call child() first")
    return f"00-{ctx.trace_id}-{ctx.span_id}-{'01' if ctx.sampled else '00'}"


# ---------------------------------------------------------------------------
# Head sampling
# ---------------------------------------------------------------------------

_SCALE = 1 << 64  # the span-id half of the trace ID, as a fraction denominator


def sample_rate_from_env(default: float = 1.0) -> float:
    """The head-sampling probability from ``REPRO_TRACE_SAMPLE``.

    A float in ``[0, 1]`` (clamped); unset or unparsable means
    ``default`` (sample everything — tracing stays opt-in via the
    tracer itself).
    """
    raw = os.environ.get("REPRO_TRACE_SAMPLE", "").strip()
    if not raw:
        return default
    try:
        rate = float(raw)
    except ValueError:
        return default
    return min(1.0, max(0.0, rate))


def trace_sampled(trace_id: str, rate: float) -> bool:
    """Deterministic trace-ID-ratio decision: same ID + rate ⇒ same answer.

    Interprets the low 64 bits of the trace ID as a uniform fraction —
    the standard OpenTelemetry ``TraceIdRatioBased`` sampler — so every
    process in a fleet agrees without coordination.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    return int(trace_id[16:32], 16) < rate * _SCALE


# ---------------------------------------------------------------------------
# Ambient (per-thread) context
# ---------------------------------------------------------------------------

_tls = threading.local()


def current_trace_context() -> TraceContext | None:
    """The context installed for the current thread, if any."""
    return getattr(_tls, "context", None)


def set_trace_context(ctx: TraceContext | None) -> TraceContext | None:
    """Install ``ctx`` for this thread (``None`` clears); returns previous."""
    prev = current_trace_context()
    _tls.context = ctx
    return prev


@contextmanager
def use_trace_context(ctx: TraceContext | None):
    """Scoped :func:`set_trace_context`: installs for the block, restores."""
    prev = set_trace_context(ctx)
    try:
        yield ctx
    finally:
        set_trace_context(prev)
