"""Figure 5: baseline PBox scaling in object and map resolution."""

from repro.bench.experiments import fig05


def test_fig05(benchmark, scale, record):
    result = benchmark.pedantic(fig05, args=(scale,), rounds=1, iterations=1)
    record(result)

    obj = [r for r in result.rows if r[0] == "object sweep"]
    maps = [r for r in result.rows if r[0] == "map sweep"]

    # Object sweep is sublinear: 8x voxels (2x per edge) costs << 8x time.
    for a, b in zip(obj, obj[1:]):
        ratio = b[3] / a[3]
        assert ratio < 4.0, f"object-resolution scaling should be sublinear, got {ratio}"

    # Map sweep grows: 4x orientations never costs more than ~4x + slack,
    # and the largest step (past the core count) shows real growth.
    for a, b in zip(maps, maps[1:]):
        ratio = b[3] / a[3]
        assert ratio <= 4.5
    assert maps[-1][3] / maps[0][3] > 1.2, "map sweep should leave the flat region"
