"""repro.service — long-lived accessibility-map query service.

Turns the one-shot ``run_cd`` / ``run_along_path`` pipeline into a
server: scenes are registered once under their content digest
(:mod:`~repro.service.registry`), identical concurrent queries coalesce
into one traversal (:mod:`~repro.service.batching`), finished results
are served from a bounded cache (:mod:`~repro.service.cache`), and a
stdlib JSON/HTTP front end (:mod:`~repro.service.http`) exposes it all
— see ``docs/serving.md`` and the ``repro-serve`` / ``repro-loadgen``
console scripts.  ``repro.cluster`` scales it horizontally: a
consistent-hash router shards scenes across N replicas of this service.

The service core (dispatch, cache, registry) is transport-agnostic:
importing :class:`Service` / :class:`QuerySpec` does not pull in the
HTTP front end — ``ServiceHTTPServer`` / ``serve`` load lazily on
first access, so embedders and alternative transports pay nothing for
the stdlib HTTP stack.
"""

from repro.service.batching import Backpressure, QueryBroker
from repro.service.cache import ResultCache
from repro.service.core import QueryResult, QuerySpec, Service
from repro.service.registry import SceneRegistry, UnknownSceneError

__all__ = [
    "Backpressure",
    "QueryBroker",
    "QueryResult",
    "QuerySpec",
    "ResultCache",
    "SceneRegistry",
    "Service",
    "ServiceHTTPServer",
    "UnknownSceneError",
    "serve",
]

_HTTP_EXPORTS = {"ServiceHTTPServer", "serve"}


def __getattr__(name: str):
    # PEP 562 lazy exports: the HTTP front end is optional for library
    # embedders, so it is imported only when actually asked for.
    if name in _HTTP_EXPORTS:
        from repro.service import http

        return getattr(http, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
