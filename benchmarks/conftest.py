"""Benchmark-suite fixtures.

Each bench regenerates one of the paper's tables/figures via
:mod:`repro.bench.experiments`, records the rendered table under
``benchmarks/results/``, and asserts the paper's *shape* claims (who
wins, roughly by how much, where crossovers fall).  Absolute numbers are
simulated-GPU milliseconds, not wall time, so they are stable across
machines; the pytest-benchmark timings measure this Python harness.

Scale is controlled by ``REPRO_BENCH_SCALE`` (default ``small``); see
:mod:`repro.bench.config`.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def scale():
    from repro.bench.config import current_scale

    return current_scale()


@pytest.fixture
def record(results_dir):
    """Write an experiment's rendered table to results/ and echo it."""

    def _record(result):
        text = result.render()
        (results_dir / f"{result.exp_id}.txt").write_text(text + "\n")
        print("\n" + text)
        return result

    return _record
