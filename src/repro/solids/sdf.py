"""Signed-distance functions with conservative clearance bounds.

Octree construction (:mod:`repro.octree.build`) classifies a cubic cell
as uniformly full/empty when it can prove the solid's boundary does not
cross the cell.  That proof needs two things from a solid:

* ``value(points)`` — a *sign-exact* implicit function: negative strictly
  inside the solid, positive strictly outside.  The magnitude need not be
  a distance.
* ``clearance(points)`` — a *lower bound* on the Euclidean distance from
  each point to the solid's **boundary**.  If ``clearance(c) > half
  diagonal`` of a cell centered at ``c``, the whole cell is on one side
  of the boundary and ``sign(value(c))`` classifies it.

For exact-distance primitives ``clearance == |value|``.  For CSG
combinators, the boundary of the result is a subset of the union of the
children's boundaries, so the minimum of the children's clearances is a
valid bound regardless of how the signs combine — this is what makes the
whole CSG tree safe for conservative cell classification even though
``min``/``max`` of SDFs is not an exact distance.

Everything is vectorized over ``(..., 3)`` point arrays.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.vec import as_vec3

__all__ = [
    "SDF",
    "SphereSDF",
    "BoxSDF",
    "CylinderSDF",
    "CapsuleSDF",
    "TorusSDF",
    "EllipsoidSDF",
    "RevolvedPolygonSDF",
    "HalfSpaceSDF",
    "Union",
    "Intersection",
    "Difference",
    "Translate",
    "Rotate",
    "Scale",
    "union_all",
]


class SDF:
    """Base class for implicit solids (see module docstring for the contract)."""

    def value(self, points) -> np.ndarray:
        """Sign-exact implicit value: ``< 0`` inside, ``> 0`` outside."""
        raise NotImplementedError

    def clearance(self, points) -> np.ndarray:
        """Lower bound on distance to the solid's boundary.

        Default assumes :meth:`value` is an exact (or under-estimating)
        distance; primitives for which that does not hold must override.
        """
        return np.abs(self.value(points))

    def contains(self, points) -> np.ndarray:
        """Boolean inside test (boundary counts as inside)."""
        return self.value(points) <= 0.0

    # -- CSG sugar -----------------------------------------------------
    def __or__(self, other: "SDF") -> "SDF":
        return Union(self, other)

    def __and__(self, other: "SDF") -> "SDF":
        return Intersection(self, other)

    def __sub__(self, other: "SDF") -> "SDF":
        return Difference(self, other)

    def translated(self, offset) -> "SDF":
        return Translate(self, offset)

    def rotated(self, matrix) -> "SDF":
        return Rotate(self, matrix)

    def scaled(self, factor: float) -> "SDF":
        return Scale(self, factor)


def _pts(points) -> np.ndarray:
    return np.asarray(points, dtype=np.float64)


# ---------------------------------------------------------------------------
# Primitives (exact distances unless noted)
# ---------------------------------------------------------------------------


class SphereSDF(SDF):
    """Ball of ``radius`` at ``center`` (exact distance)."""

    def __init__(self, center, radius: float):
        self.center = as_vec3(center)
        self.radius = float(radius)
        if self.radius <= 0:
            raise ValueError("sphere radius must be positive")

    def value(self, points):
        p = _pts(points) - self.center
        return np.sqrt(np.einsum("...i,...i->...", p, p)) - self.radius


class BoxSDF(SDF):
    """Axis-aligned box from center and half extents (exact distance)."""

    def __init__(self, center, half):
        self.center = as_vec3(center)
        self.half = np.broadcast_to(np.asarray(half, np.float64), (3,)).copy()
        if np.any(self.half <= 0):
            raise ValueError("box half extents must be positive")

    def value(self, points):
        q = np.abs(_pts(points) - self.center) - self.half
        outside = np.sqrt(np.einsum("...i,...i->...", np.maximum(q, 0.0), np.maximum(q, 0.0)))
        inside = np.minimum(np.max(q, axis=-1), 0.0)
        return outside + inside


class CylinderSDF(SDF):
    """Solid cylinder along +z: ``z in [z0, z1]``, radius ``r`` (exact)."""

    def __init__(self, center_xy, z0: float, z1: float, radius: float):
        cx, cy = center_xy
        self.cx, self.cy = float(cx), float(cy)
        self.z0, self.z1 = float(z0), float(z1)
        self.radius = float(radius)
        if self.z1 <= self.z0 or self.radius <= 0:
            raise ValueError("degenerate cylinder")

    def value(self, points):
        p = _pts(points)
        rho = np.hypot(p[..., 0] - self.cx, p[..., 1] - self.cy)
        # 2D box distance in the (rho, z) half-plane.
        dr = rho - self.radius
        mid = 0.5 * (self.z0 + self.z1)
        dz = np.abs(p[..., 2] - mid) - 0.5 * (self.z1 - self.z0)
        outside = np.hypot(np.maximum(dr, 0.0), np.maximum(dz, 0.0))
        inside = np.minimum(np.maximum(dr, dz), 0.0)
        return outside + inside


class CapsuleSDF(SDF):
    """Capsule (sphere-swept segment) between points ``a`` and ``b`` (exact)."""

    def __init__(self, a, b, radius: float):
        self.a = as_vec3(a)
        self.b = as_vec3(b)
        self.radius = float(radius)
        if self.radius <= 0:
            raise ValueError("capsule radius must be positive")

    def value(self, points):
        p = _pts(points) - self.a
        ab = self.b - self.a
        denom = float(ab @ ab)
        t = np.clip(np.einsum("...i,i->...", p, ab) / max(denom, 1e-300), 0.0, 1.0)
        d = p - t[..., None] * ab
        return np.sqrt(np.einsum("...i,...i->...", d, d)) - self.radius


class TorusSDF(SDF):
    """Torus about +z at ``center``: major radius ``R``, tube radius ``r`` (exact)."""

    def __init__(self, center, major: float, minor: float):
        self.center = as_vec3(center)
        self.major = float(major)
        self.minor = float(minor)
        if not (0 < self.minor < self.major):
            raise ValueError("torus needs 0 < minor < major")

    def value(self, points):
        p = _pts(points) - self.center
        q = np.hypot(p[..., 0], p[..., 1]) - self.major
        return np.hypot(q, p[..., 2]) - self.minor


class EllipsoidSDF(SDF):
    """Axis-aligned ellipsoid with semi-axes ``s`` (sign-exact, bounded clearance).

    No closed-form exact distance exists; ``value`` is the normalized
    implicit ``|p/s| - 1``, which is ``1/min(s)``-Lipschitz, so
    ``clearance = |value| * min(s)`` is a valid lower bound on boundary
    distance.
    """

    def __init__(self, center, semi_axes):
        self.center = as_vec3(center)
        self.s = np.broadcast_to(np.asarray(semi_axes, np.float64), (3,)).copy()
        if np.any(self.s <= 0):
            raise ValueError("semi-axes must be positive")

    def value(self, points):
        p = (_pts(points) - self.center) / self.s
        return np.sqrt(np.einsum("...i,...i->...", p, p)) - 1.0

    def clearance(self, points):
        return np.abs(self.value(points)) * float(np.min(self.s))


class HalfSpaceSDF(SDF):
    """Half space ``normal . p <= offset`` (exact for unit normal)."""

    def __init__(self, normal, offset: float):
        n = as_vec3(normal)
        ln = float(np.linalg.norm(n))
        if ln == 0:
            raise ValueError("zero normal")
        self.normal = n / ln
        self.offset = float(offset) / ln

    def value(self, points):
        return np.einsum("...i,i->...", _pts(points), self.normal) - self.offset


class RevolvedPolygonSDF(SDF):
    """Solid of revolution of a 2D polygon profile about the +z axis (exact).

    The profile is a simple polygon in the ``(rho, z)`` half-plane
    (``rho >= 0``); revolving it around the z axis through ``center``
    gives lathed shapes (candle holders, goblets, teapot bodies).  Because
    the solid is rotationally symmetric, the exact 3D distance equals the
    exact 2D signed distance from ``(rho, z)`` to the polygon, evaluated
    with the standard point-polygon distance/winding formula.
    """

    def __init__(self, center, profile):
        self.center = as_vec3(center)
        prof = np.asarray(profile, dtype=np.float64)
        if prof.ndim != 2 or prof.shape[1] != 2 or prof.shape[0] < 3:
            raise ValueError("profile must be an (n>=3, 2) polygon in (rho, z)")
        if np.any(prof[:, 0] < 0.0):
            raise ValueError("profile must lie in the rho >= 0 half-plane")
        self.profile = prof

    def value(self, points):
        p = _pts(points) - self.center
        rho = np.hypot(p[..., 0], p[..., 1])
        z = p[..., 2]
        return _polygon_signed_distance(self.profile, rho, z)


def _polygon_signed_distance(poly: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Exact signed distance from broadcast points to a simple 2D polygon.

    Negative inside.  Vectorized over the point arrays; loops only over
    the polygon's (small) vertex count.
    """
    n = poly.shape[0]
    vx, vy = poly[:, 0], poly[:, 1]
    d_sq = np.full(np.broadcast(x, y).shape, np.inf, dtype=np.float64)
    sign_flip = np.zeros(np.broadcast(x, y).shape, dtype=bool)
    for i in range(n):
        j = (i + 1) % n
        ex, ey = vx[j] - vx[i], vy[j] - vy[i]
        wx, wy = x - vx[i], y - vy[i]
        len_sq = ex * ex + ey * ey
        t = np.clip((wx * ex + wy * ey) / max(len_sq, 1e-300), 0.0, 1.0)
        dx, dy = wx - t * ex, wy - t * ey
        d_sq = np.minimum(d_sq, dx * dx + dy * dy)
        # Even-odd crossing count for the inside test.
        cond = (vy[i] <= y) != (vy[j] <= y)
        denom = vy[j] - vy[i]
        with np.errstate(divide="ignore", invalid="ignore"):
            x_cross = vx[i] + (y - vy[i]) / denom * ex
        sign_flip ^= cond & (x < np.where(cond, x_cross, np.inf))
    d = np.sqrt(d_sq)
    return np.where(sign_flip, -d, d)


# ---------------------------------------------------------------------------
# Combinators
# ---------------------------------------------------------------------------


class _Binary(SDF):
    def __init__(self, a: SDF, b: SDF):
        self.a = a
        self.b = b

    def clearance(self, points):
        # Boundary of the CSG result is a subset of the union of children
        # boundaries, so the min of lower bounds is a lower bound.
        return np.minimum(self.a.clearance(points), self.b.clearance(points))


class Union(_Binary):
    """``A ∪ B``: sign-exact via elementwise min."""

    def value(self, points):
        return np.minimum(self.a.value(points), self.b.value(points))


class Intersection(_Binary):
    """``A ∩ B``: sign-exact via elementwise max."""

    def value(self, points):
        return np.maximum(self.a.value(points), self.b.value(points))


class Difference(_Binary):
    """``A \\ B``: sign-exact via ``max(a, -b)``."""

    def value(self, points):
        return np.maximum(self.a.value(points), -self.b.value(points))


def union_all(solids) -> SDF:
    """Balanced union of a sequence of solids (balanced to keep the
    evaluation tree shallow for long lists, e.g. turbine blades)."""
    solids = list(solids)
    if not solids:
        raise ValueError("union_all of empty sequence")
    while len(solids) > 1:
        solids = [
            Union(solids[i], solids[i + 1]) if i + 1 < len(solids) else solids[i]
            for i in range(0, len(solids), 2)
        ]
    return solids[0]


class Translate(SDF):
    """Rigid translation (distances unchanged)."""

    def __init__(self, child: SDF, offset):
        self.child = child
        self.offset = as_vec3(offset)

    def value(self, points):
        return self.child.value(_pts(points) - self.offset)

    def clearance(self, points):
        return self.child.clearance(_pts(points) - self.offset)


class Rotate(SDF):
    """Rigid rotation by an orthonormal matrix (distances unchanged).

    ``matrix`` maps child coordinates to world coordinates; evaluation
    applies the inverse (transpose) to query points.
    """

    def __init__(self, child: SDF, matrix):
        self.child = child
        m = np.asarray(matrix, dtype=np.float64)
        if m.shape != (3, 3):
            raise ValueError("rotation matrix must be 3x3")
        if not np.allclose(m @ m.T, np.eye(3), atol=1e-9):
            raise ValueError("rotation matrix must be orthonormal")
        self.matrix = m

    def value(self, points):
        return self.child.value(np.einsum("ji,...j->...i", self.matrix, _pts(points)))

    def clearance(self, points):
        return self.child.clearance(np.einsum("ji,...j->...i", self.matrix, _pts(points)))


class Scale(SDF):
    """Uniform scaling by ``factor`` (distances scale by ``factor``)."""

    def __init__(self, child: SDF, factor: float):
        self.child = child
        self.factor = float(factor)
        if self.factor <= 0:
            raise ValueError("scale factor must be positive")

    def value(self, points):
        return self.child.value(_pts(points) / self.factor) * self.factor

    def clearance(self, points):
        return self.child.clearance(_pts(points) / self.factor) * self.factor
