"""``repro-obs`` — offline analysis of saved run reports, plus a live
console against a running server.

Usage::

    repro-obs tree r.json                      # span tree with totals
    repro-obs tree r.json --depth 3 --min-wall 0.01
    repro-obs top r.json --by cpu -n 10        # hotspots by wall/cpu/cost
    repro-obs export r.json --format perfetto -o trace.json
    repro-obs export r.json --format collapsed -o stacks.txt
    repro-obs export r.json --format otlp -o otlp.json
    repro-obs diff baseline.json current.json  # per-span + per-metric deltas
    repro-obs watch http://127.0.0.1:8077      # live serving dashboard

``tree`` and ``top`` read the trace out of a ``repro-bench ... --json``
report; ``export`` converts it to a Perfetto timeline (open at
https://ui.perfetto.dev), collapsed stacks (``flamegraph.pl`` /
https://speedscope.app), or OTLP/JSON (POST to any OpenTelemetry
collector's ``/v1/traces``); ``diff`` prints every tracked metric's movement
between two reports and exits nonzero on regression (same engine as
``repro-bench compare``, plus the full delta table).

``watch`` polls a live ``repro-serve`` (``/v1/healthz`` +
``/v1/metrics``) every ``--interval`` seconds and renders a terminal
dashboard: uptime, the rolling 1s/10s/60s request window (RPS, error
rate, latency quantiles), sparklines of the 10s window across polls,
cache hit rate / queue depth, and the counters that moved most since
the previous poll.  ``--once`` renders a single frame and exits — the
mode tests and CI use.

Exit codes: ``0`` success, ``1`` ``diff`` flagged a regression, ``2``
usage errors (unreadable report, bad format, unreachable server).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request

from repro.obs.otlp import otlp_json
from repro.obs.report import RunReport, compare, load_report
from repro.obs.timeline import perfetto_json, to_collapsed

__all__ = ["main"]


class UsageError(Exception):
    """Usage error carrying its message; `main` maps it to exit code 2."""


def _load(path: str) -> RunReport:
    try:
        return load_report(path)
    except (OSError, ValueError) as exc:
        raise UsageError(f"cannot load report {path!r}: {exc}") from None


# ---------------------------------------------------------------------------
# tree — render the span tree with aggregated totals
# ---------------------------------------------------------------------------


def _aggregate_tree(spans: list[dict]) -> dict:
    """Nest spans by name-path, summing repeats.

    Two ``cd.level`` spans under the same ``cd.traversal`` fold into one
    node with ``count=2`` — the totals view, not the timeline view (that
    is what ``export --format perfetto`` is for).
    """
    root: dict = {"children": {}}
    paths: list[dict] = []
    for s in spans:
        parent = s.get("parent", -1)
        bucket = paths[parent] if parent >= 0 else root
        node = bucket["children"].setdefault(
            s["name"], {"count": 0, "wall_s": 0.0, "cpu_s": 0.0, "children": {}}
        )
        node["count"] += 1
        node["wall_s"] += s["wall_s"]
        node["cpu_s"] += s["cpu_s"]
        paths.append(node)
    return root


def _render_tree(node: dict, *, depth: int, max_depth: int, min_wall: float, out: list):
    children = sorted(
        node["children"].items(), key=lambda kv: kv[1]["wall_s"], reverse=True
    )
    for name, child in children:
        if child["wall_s"] < min_wall:
            continue
        count = f" x{child['count']}" if child["count"] > 1 else ""
        out.append(
            f"{'  ' * depth}{name}{count}  "
            f"wall {child['wall_s']:.3f}s  cpu {child['cpu_s']:.3f}s"
        )
        if depth + 1 < max_depth:
            _render_tree(
                child, depth=depth + 1, max_depth=max_depth, min_wall=min_wall, out=out
            )


def _cmd_tree(args) -> int:
    report = _load(args.report)
    if not report.spans:
        print("(report has no spans — was it written with --json/--trace?)")
        return 0
    lines: list[str] = []
    _render_tree(
        _aggregate_tree(report.spans),
        depth=0,
        max_depth=args.depth,
        min_wall=args.min_wall,
        out=lines,
    )
    print(f"{report.label}: {len(report.spans)} spans")
    print("\n".join(lines))
    return 0


# ---------------------------------------------------------------------------
# top — hotspots by aggregated wall/cpu time
# ---------------------------------------------------------------------------


def cost_totals(spans: list[dict]) -> dict[str, dict]:
    """Aggregate *attributed* cost per span name: ``cost.cpu_ms`` etc.

    Unlike ``span_totals`` (measured wall/CPU of the span itself), this
    sums the cost-ledger attributes a serving span carries — the CPU
    milliseconds, workspace bytes, and queue-wait the *request* was
    billed, wherever the work actually ran (pool workers included).
    """
    out: dict[str, dict] = {}
    for s in spans:
        attrs = s.get("attrs", {}) or {}
        if "cost.cpu_ms" not in attrs:
            continue
        agg = out.setdefault(
            s["name"],
            {"count": 0, "cpu_ms": 0.0, "workspace_bytes": 0, "queue_wait_ms": 0.0},
        )
        agg["count"] += 1
        agg["cpu_ms"] += float(attrs.get("cost.cpu_ms", 0.0) or 0.0)
        agg["workspace_bytes"] += int(attrs.get("cost.workspace_bytes", 0) or 0)
        agg["queue_wait_ms"] += float(attrs.get("cost.queue_wait_ms", 0.0) or 0.0)
    return out


def _cmd_top(args) -> int:
    report = _load(args.report)
    if args.by == "cost":
        totals = cost_totals(report.spans)
        if not totals:
            print(
                "(report has no cost-attributed spans — cost attributes are "
                "recorded by the serving layer)"
            )
            return 0
        order = sorted(totals, key=lambda n: totals[n]["cpu_ms"], reverse=True)
        order = order[: args.limit]
        denom = max((totals[n]["cpu_ms"] for n in totals), default=0.0)
        width = max((len(n) for n in order), default=4)
        print(f"{report.label}: top {len(order)} spans by attributed cost")
        for name in order:
            agg = totals[name]
            share = agg["cpu_ms"] / denom if denom else 0.0
            print(
                f"{name:{width}s}  x{agg['count']:<6d} cpu {agg['cpu_ms']:9.1f}ms  "
                f"queue {agg['queue_wait_ms']:8.1f}ms  "
                f"ws {agg['workspace_bytes']:>12d}B  {share:6.1%}"
            )
        return 0
    totals = report.span_totals
    if not totals:
        print("(report has no span totals)")
        return 0
    key = "wall_s" if args.by == "wall" else "cpu_s"
    order = sorted(totals, key=lambda n: totals[n][key], reverse=True)[: args.limit]
    denom = max((totals[n][key] for n in totals), default=0.0)
    width = max((len(n) for n in order), default=4)
    print(f"{report.label}: top {len(order)} spans by {args.by} time")
    for name in order:
        agg = totals[name]
        share = agg[key] / denom if denom else 0.0
        print(
            f"{name:{width}s}  x{agg['count']:<6d} wall {agg['wall_s']:9.3f}s  "
            f"cpu {agg['cpu_s']:9.3f}s  {share:6.1%}"
        )
    return 0


# ---------------------------------------------------------------------------
# export — Perfetto trace-event JSON / collapsed stacks
# ---------------------------------------------------------------------------


def _cmd_export(args) -> int:
    report = _load(args.report)
    if args.format == "perfetto":
        payload = perfetto_json(report, label=report.label or "repro", indent=None)
    elif args.format == "otlp":
        payload = otlp_json(report, label=report.label or "repro")
    else:
        payload = to_collapsed(report)
    if args.output in (None, "-"):
        print(payload)
    else:
        try:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(payload)
                fh.write("\n")
        except OSError as exc:
            raise UsageError(f"cannot write {args.output!r}: {exc}") from None
        print(f"[{args.format} export written to {args.output}]", file=sys.stderr)
    return 0


# ---------------------------------------------------------------------------
# diff — full per-span/per-metric delta table + regression gate
# ---------------------------------------------------------------------------


def _cmd_diff(args) -> int:
    baseline = _load(args.baseline)
    current = _load(args.current)
    result = compare(
        baseline,
        current,
        time_threshold=args.time_threshold,
        count_threshold=args.count_threshold,
        min_time_delta_s=args.min_time_delta,
    )
    print(f"baseline: {args.baseline} ({baseline.label})")
    print(f"current:  {args.current} ({current.label})")
    flagged = {id(d) for d in result.regressions}
    better = {id(d) for d in result.improvements}
    shown = [
        d
        for d in result.deltas
        if args.all or d.baseline != d.current or id(d) in flagged
    ]
    for d in sorted(shown, key=lambda d: d.metric):
        mark = (
            "REGRESSION " if id(d) in flagged else "improvement" if id(d) in better
            else "           "
        )
        print(f"  {mark} {d.describe()}")
    if not shown:
        print("  (no metric moved)")
    print(result.render())
    return 0 if result.ok else 1


# ---------------------------------------------------------------------------
# watch — live console against a running repro-serve
# ---------------------------------------------------------------------------

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def _spark(values: list[float], width: int = 30) -> str:
    """Unicode sparkline of the last ``width`` values (empty-safe)."""
    values = [float(v) for v in values][-width:]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK_CHARS[0] * len(values)
    scale = (len(_SPARK_CHARS) - 1) / (hi - lo)
    return "".join(_SPARK_CHARS[int((v - lo) * scale)] for v in values)


def _fetch_json(url: str, timeout: float = 10.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


def _counter_values(metrics: dict) -> dict[str, float]:
    return {
        name: float(m.get("value") or 0)
        for name, m in metrics.items()
        if isinstance(m, dict) and m.get("type") == "counter"
    }


def _fmt_uptime(seconds: float) -> str:
    seconds = int(seconds)
    if seconds < 120:
        return f"{seconds}s"
    if seconds < 7200:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"


def _render_watch_frame(
    base: str,
    healthz: dict,
    metrics: dict,
    prev_counters: dict[str, float] | None,
    history: dict[str, list[float]],
    *,
    deltas_limit: int = 8,
) -> str:
    lines = [
        f"repro-serve @ {base}  up {_fmt_uptime(healthz.get('uptime_s', 0))}"
        f"  scenes {healthz.get('scenes', '?')}"
        f"  queue {healthz.get('queue_depth', '?')}"
        f"  cache {healthz.get('cache_entries', '?')} entries",
    ]
    window = healthz.get("window", {})
    if window:
        lines.append(
            f"{'window':>8} {'rps':>8} {'err%':>7} {'p50ms':>8} {'p95ms':>8} "
            f"{'p99ms':>8} {'n':>6}"
        )
        for label in ("1s", "10s", "60s"):
            stats = window.get(label)
            if not stats:
                continue
            lines.append(
                f"{label:>8} {stats['rps']:8.1f} {stats['error_rate'] * 100:6.1f}% "
                f"{stats['p50_ms']:8.1f} {stats['p95_ms']:8.1f} "
                f"{stats['p99_ms']:8.1f} {stats['count']:6d}"
            )
        ten = window.get("10s")
        if ten is not None:
            history["rps"].append(ten["rps"])
            history["p95"].append(ten["p95_ms"])
            history["err"].append(ten["error_rate"] * 100)
            lines.append(
                f"   rps(10s) {_spark(history['rps']):<30}  "
                f"p95(10s) {_spark(history['p95']):<30}  "
                f"err(10s) {_spark(history['err'])}"
            )
    counters = _counter_values(metrics)
    hits = counters.get("service.cache.hits", 0.0)
    misses = counters.get("service.cache.misses", 0.0)
    hit_rate = hits / (hits + misses) if hits + misses else 0.0
    lines.append(
        f"cache hit rate {hit_rate:.0%} ({hits:g} hits / {misses:g} misses)  "
        f"coalesced {counters.get('service.coalesced', 0):g}  "
        f"rejected {counters.get('service.rejected', 0):g}  "
        f"errors {counters.get('service.errors', 0):g}"
    )
    if prev_counters is None:
        lines.append("top deltas: (first poll)")
    else:
        deltas = sorted(
            (
                (name, value - prev_counters.get(name, 0.0))
                for name, value in counters.items()
                if value != prev_counters.get(name, 0.0)
            ),
            key=lambda pair: abs(pair[1]),
            reverse=True,
        )[:deltas_limit]
        if deltas:
            width = max(len(name) for name, _ in deltas)
            lines.append("top deltas since last poll:")
            lines.extend(
                f"  {name:<{width}}  {delta:+g}" for name, delta in deltas
            )
        else:
            lines.append("top deltas since last poll: (no counter moved)")
    return "\n".join(lines)


def _cmd_watch(args) -> int:
    base = args.url.rstrip("/")
    prev_counters: dict[str, float] | None = None
    history: dict[str, list[float]] = {"rps": [], "p95": [], "err": []}
    frame = 0
    clear = sys.stdout.isatty() and not args.once
    while True:
        try:
            healthz = _fetch_json(f"{base}/v1/healthz")
            metrics = _fetch_json(f"{base}/v1/metrics")
        except (urllib.error.URLError, OSError, ValueError) as exc:
            if frame == 0:
                raise UsageError(f"cannot reach {base}: {exc}") from None
            print(f"[poll failed: {exc}]", flush=True)
            time.sleep(args.interval)
            continue
        text = _render_watch_frame(base, healthz, metrics, prev_counters, history)
        if clear:
            print("\x1b[2J\x1b[H", end="")
        print(text, flush=True)
        prev_counters = _counter_values(metrics)
        frame += 1
        if args.once or (args.frames and frame >= args.frames):
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0
        if not clear:
            print()  # frame separator when scrolling instead of clearing


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Analyze repro-bench --json run reports: span trees, "
        "hotspots, Perfetto/flamegraph export, report diffs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_tree = sub.add_parser("tree", help="render the span tree with totals")
    p_tree.add_argument("report")
    p_tree.add_argument("--depth", type=int, default=6, help="max tree depth shown")
    p_tree.add_argument(
        "--min-wall", type=float, default=0.0, metavar="SECONDS",
        help="hide aggregated nodes below this wall time",
    )
    p_tree.set_defaults(fn=_cmd_tree)

    p_top = sub.add_parser("top", help="hotspots by aggregated span time")
    p_top.add_argument("report")
    p_top.add_argument("--by", choices=("wall", "cpu", "cost"), default="wall")
    p_top.add_argument("-n", "--limit", type=int, default=15)
    p_top.set_defaults(fn=_cmd_top)

    p_exp = sub.add_parser("export", help="export the trace for external viewers")
    p_exp.add_argument("report")
    p_exp.add_argument(
        "--format", choices=("perfetto", "collapsed", "otlp"), default="perfetto",
        help="perfetto: Chrome trace-event JSON; collapsed: flamegraph "
        "stacks; otlp: OTLP/JSON for any OpenTelemetry collector",
    )
    p_exp.add_argument(
        "-o", "--output", default=None, help="output path (default stdout)"
    )
    p_exp.set_defaults(fn=_cmd_export)

    p_diff = sub.add_parser("diff", help="per-span and per-metric report deltas")
    p_diff.add_argument("baseline")
    p_diff.add_argument("current")
    p_diff.add_argument("--time-threshold", type=float, default=0.25)
    p_diff.add_argument("--count-threshold", type=float, default=0.01)
    p_diff.add_argument(
        "--min-time-delta", type=float, default=0.01, metavar="SECONDS"
    )
    p_diff.add_argument(
        "--all", action="store_true", help="also show metrics that did not move"
    )
    p_diff.set_defaults(fn=_cmd_diff)

    p_watch = sub.add_parser(
        "watch", help="live dashboard polling a running repro-serve"
    )
    p_watch.add_argument("url", help="base URL of a running repro-serve")
    p_watch.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="seconds between polls (default 2)",
    )
    p_watch.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (for tests/CI)",
    )
    p_watch.add_argument(
        "--frames", type=int, default=0, metavar="N",
        help="stop after N frames (0 = run until interrupted)",
    )
    p_watch.set_defaults(fn=_cmd_watch)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except UsageError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
