"""Figure 15: the corner-case optimization (MICA -> AICA box-check share)."""

from repro.bench.experiments import fig15


def test_fig15(benchmark, scale, record):
    result = benchmark.pedantic(fig15, args=(scale,), rounds=1, iterations=1)
    record(result)

    avg = result.rows[-1]
    assert avg[0] == "average"
    mica_box_pct, aica_box_pct = avg[1], avg[2]

    # AICA's expansion must cut the box-check share hard (paper: 14.4 -> 0.9;
    # our spherical-bound corner rates are lower overall, so the bar is a
    # relative one) and land in the paper's ~99% efficiency regime.
    assert aica_box_pct <= mica_box_pct * 0.5 + 1e-9
    assert avg[4] > 97.0  # AICA efficiency %

    # Per-model: AICA never does more box checks than MICA.
    for row in result.rows[:-1]:
        assert row[2] <= row[1] + 1e-9
