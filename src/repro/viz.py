"""Terminal visualization helpers (ASCII) for maps, octrees, and stock.

Everything in the pipeline is easier to debug when you can look at it;
these renderers keep the examples and bug reports dependency-free.
"""

from __future__ import annotations

import numpy as np

from repro.cd.result import CDResult
from repro.octree.linear import LinearOctree

__all__ = [
    "render_accessibility",
    "render_octree_slice",
    "render_grid_slice",
    "histogram_ascii",
]


def render_accessibility(result: CDResult, *, accessible: str = ".", blocked: str = "#") -> str:
    """The AM with phi/gamma axis labels (Figure 2, labelled).

    Rows run phi = 0..pi top to bottom, columns gamma = 0..2pi left to
    right, matching :meth:`repro.cd.result.CDResult.render_ascii`.
    """
    body = result.render_ascii(accessible, blocked).splitlines()
    m = len(body)
    out = [f"gamma: 0 .. 2pi ({result.grid.n} cols)"]
    for i, row in enumerate(body):
        tag = ""
        if i == 0:
            tag = " phi=0 (+z)"
        elif i == m - 1:
            tag = " phi=pi (-z)"
        out.append(row + tag)
    out.append(
        f"accessible {result.n_accessible}/{result.grid.size} "
        f"({100.0 * result.n_accessible / result.grid.size:.1f}%)"
    )
    return "\n".join(out)


def render_grid_slice(grid: np.ndarray, z_index: int, *, solid: str = "#", air: str = " ", stride: int = 1) -> str:
    """One z slice of a dense (z, y, x) boolean grid."""
    grid = np.asarray(grid, dtype=bool)
    if grid.ndim != 3:
        raise ValueError("grid must be 3D (z, y, x)")
    if not 0 <= z_index < grid.shape[0]:
        raise ValueError("z_index out of range")
    sl = grid[z_index, ::stride, ::stride]
    return "\n".join("".join(solid if c else air for c in row) for row in sl)


def render_octree_slice(tree: LinearOctree, z: float, *, width: int = 64) -> str:
    """A solid/air slice through the octree at world height ``z``.

    Sampled at ``width x width`` points across the domain — a quick
    visual check that a model voxelized the way you expected.
    """
    lo = tree.domain.lo
    hi = tree.domain.hi
    if not lo[2] <= z <= hi[2]:
        raise ValueError(f"z={z} outside the domain [{lo[2]}, {hi[2]}]")
    xs = np.linspace(lo[0], hi[0], width)
    ys = np.linspace(lo[1], hi[1], width)
    X, Y = np.meshgrid(xs, ys, indexing="xy")
    pts = np.stack([X, Y, np.full_like(X, z)], axis=-1)
    inside = tree.contains_points(pts)
    return "\n".join(
        "".join("#" if c else "." for c in row) for row in inside
    )


def histogram_ascii(values, *, bins: int = 10, width: int = 40, label: str = "") -> str:
    """A horizontal ASCII histogram (for per-thread check counts, Fig 14)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return "(no data)"
    counts, edges = np.histogram(values, bins=bins)
    peak = max(int(counts.max()), 1)
    out = [label] if label else []
    for c, e0, e1 in zip(counts, edges[:-1], edges[1:]):
        bar = "*" * max(int(round(width * c / peak)), 1 if c else 0)
        out.append(f"[{e0:10.1f}, {e1:10.1f}) {c:6d} {bar}")
    return "\n".join(out)
