"""Unit tests for the vector helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry.vec import as_vec3, clamp, cross, dot, lerp, norm, norm_sq, normalize

finite = st.floats(-1e6, 1e6, allow_nan=False)
vec3 = arrays(np.float64, 3, elements=finite)


class TestAsVec3:
    def test_list_input(self):
        v = as_vec3([1.0, 2.0, 3.0])
        assert v.shape == (3,)
        assert v.dtype == np.float64

    def test_batch_input(self):
        v = as_vec3(np.ones((5, 3)))
        assert v.shape == (5, 3)

    def test_rejects_wrong_trailing_dim(self):
        with pytest.raises(ValueError):
            as_vec3([1.0, 2.0])

    def test_rejects_scalar(self):
        with pytest.raises(ValueError):
            as_vec3(1.0)


class TestDotNorm:
    @given(vec3, vec3)
    def test_dot_symmetry(self, a, b):
        assert dot(a, b) == pytest.approx(dot(b, a), rel=1e-12, abs=1e-9)

    @given(vec3)
    def test_norm_sq_consistency(self, a):
        assert norm_sq(a) == pytest.approx(norm(a) ** 2, rel=1e-9, abs=1e-9)

    def test_dot_batched(self):
        a = np.arange(12.0).reshape(4, 3)
        b = np.ones((4, 3))
        assert dot(a, b).shape == (4,)
        np.testing.assert_allclose(dot(a, b), a.sum(axis=1))

    def test_dot_broadcasts(self):
        a = np.ones((2, 5, 3))
        b = np.array([1.0, 2.0, 3.0])
        assert dot(a, b).shape == (2, 5)


class TestNormalize:
    @given(vec3.filter(lambda v: np.linalg.norm(v) > 1e-6))
    def test_unit_length(self, v):
        assert np.linalg.norm(normalize(v)) == pytest.approx(1.0, abs=1e-12)

    def test_zero_vector_raises(self):
        with pytest.raises(ValueError):
            normalize([0.0, 0.0, 0.0])

    def test_batch(self):
        v = np.array([[2.0, 0.0, 0.0], [0.0, 0.0, -5.0]])
        u = normalize(v)
        np.testing.assert_allclose(u, [[1, 0, 0], [0, 0, -1]])


class TestCrossLerpClamp:
    def test_cross_orthogonal(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([-4.0, 0.5, 2.0])
        c = cross(a, b)
        assert dot(a, c) == pytest.approx(0.0, abs=1e-12)
        assert dot(b, c) == pytest.approx(0.0, abs=1e-12)

    def test_lerp_endpoints(self):
        a = np.array([0.0, 0.0, 0.0])
        b = np.array([2.0, 4.0, 6.0])
        np.testing.assert_allclose(lerp(a, b, np.array(0.0)), a)
        np.testing.assert_allclose(lerp(a, b, np.array(1.0)), b)

    def test_lerp_batch_t(self):
        a = np.zeros(3)
        b = np.array([1.0, 1.0, 1.0])
        out = lerp(a, b, np.array([0.0, 0.5, 1.0]))
        assert out.shape == (3, 3)
        np.testing.assert_allclose(out[1], [0.5, 0.5, 0.5])

    def test_clamp(self):
        np.testing.assert_allclose(clamp(np.array([-1.0, 0.5, 2.0]), 0.0, 1.0), [0, 0.5, 1])
