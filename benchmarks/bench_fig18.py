"""Figure 18: AICA time breakdown vs the precompute depth S."""

from repro.bench.experiments import fig18


def test_fig18(benchmark, scale, record):
    result = benchmark.pedantic(fig18, args=(scale,), rounds=1, iterations=1)
    record(result)
    rows = result.rows  # [S, entries, precompute_ms, cd_ms, total_ms]

    # Table entries grow monotonically (roughly 8x per level near the leaves).
    entries = [r[1] for r in rows]
    assert entries == sorted(entries)

    # Precompute cost is monotone in S; CD cost is non-increasing in S.
    pre = [r[2] for r in rows]
    cd = [r[3] for r in rows]
    assert all(b >= a - 1e-12 for a, b in zip(pre, pre[1:]))
    assert all(b <= a * 1.001 + 1e-12 for a, b in zip(cd, cd[1:]))

    # Deep memoization wins overall: the best total is at (or near) max S,
    # exactly the paper's conclusion for S = 8.
    totals = [r[4] for r in rows]
    assert min(totals) == min(totals[-2:])
