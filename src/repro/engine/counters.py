"""Per-thread instrumentation counters.

The traversal records, for every logical GPU thread (= orientation), how
many checks of each kind it executed.  These counts are the raw material
for almost every figure in the paper: per-thread check histograms
(Fig 14 col 1), critical-thread checks (Fig 13), box-check percentages
and ICA efficiency (Fig 15), and — through the cost model and SIMT
scheduler — every timing plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.costs import CostModel

__all__ = ["ThreadCounters", "StageBreakdown"]


@dataclass
class ThreadCounters:
    """Check counts per logical thread, by check type.

    ``n_threads`` is the CD-stage thread count ``M``; all arrays have that
    length.  "Checks" counts node visits (line 3 of Algorithm 2);
    the typed counters attribute each visit's work.
    """

    n_threads: int
    n_cyl: int
    box_checks: np.ndarray = field(default=None)  # exact CHECKBOX calls
    ica_fly_checks: np.ndarray = field(default=None)  # CHECKICA, on-the-fly cone
    ica_memo_checks: np.ndarray = field(default=None)  # CHECKICA, table lookup
    cull_checks: np.ndarray = field(default=None)  # PBoxOpt AABB pre-tests
    corner_cases: np.ndarray = field(default=None)  # CHECKICA inconclusive events
    nodes_visited: np.ndarray = field(default=None)  # stack pops (total checks)

    def __post_init__(self) -> None:
        for name in (
            "box_checks",
            "ica_fly_checks",
            "ica_memo_checks",
            "cull_checks",
            "corner_cases",
            "nodes_visited",
        ):
            if getattr(self, name) is None:
                setattr(self, name, np.zeros(self.n_threads, dtype=np.int64))

    # -- accumulation -----------------------------------------------------

    def add(self, name: str, thread_idx: np.ndarray, count=1) -> None:
        """Accumulate ``count`` events of type ``name`` on a batch of threads."""
        arr = getattr(self, name)
        np.add.at(arr, thread_idx, count)

    def add_threads(self, name: str, thread_idx: np.ndarray, n_threads: int) -> None:
        """Count one event per entry of ``thread_idx`` (bincount — much
        faster than ``np.add.at`` for the large frontier batches)."""
        if len(thread_idx) == 0:
            return
        arr = getattr(self, name)
        arr += np.bincount(thread_idx, minlength=n_threads).astype(np.int64)

    # -- derived quantities -------------------------------------------------

    def thread_ops(self, costs: CostModel) -> np.ndarray:
        """Elementary-operation totals per thread under a cost model."""
        c = costs
        return (
            self.box_checks * c.checkbox(self.n_cyl)
            + self.ica_fly_checks * c.checkica_fly(self.n_cyl)
            + self.ica_memo_checks * c.checkica_memo(self.n_cyl)
            + self.cull_checks * c.aabb_cull(self.n_cyl)
            + self.nodes_visited * c.traversal_overhead
        )

    @property
    def total_checks(self) -> int:
        """All CD tests executed (the denominator of Figure 15)."""
        return int(
            (self.box_checks + self.ica_fly_checks + self.ica_memo_checks).sum()
        )

    @property
    def total_box_checks(self) -> int:
        return int(self.box_checks.sum())

    def box_check_fraction(self) -> float:
        """Fraction of CD tests that fell back to CHECKBOX (Fig 15)."""
        total = self.total_checks
        return self.total_box_checks / total if total else 0.0

    def ica_efficiency(self) -> float:
        """1 - box-check fraction: the paper's headline ~99% metric."""
        return 1.0 - self.box_check_fraction()

    def critical_thread(self) -> int:
        """Index of the thread with the most node visits (Fig 13/14)."""
        return int(np.argmax(self.nodes_visited))

    # -- observability ----------------------------------------------------

    COUNTER_FIELDS = (
        "box_checks",
        "ica_fly_checks",
        "ica_memo_checks",
        "cull_checks",
        "corner_cases",
        "nodes_visited",
    )

    def export(self, registry, prefix: str = "cd") -> None:
        """Accumulate this run's totals into a metrics registry.

        Counter names are ``{prefix}.{field}`` plus ``{prefix}.total_checks``;
        the per-thread visit distribution feeds the
        ``{prefix}.nodes_visited_per_thread`` histogram and the load-imbalance
        gauges (Fig 13/14's critical-thread view).
        """
        for name in self.COUNTER_FIELDS:
            registry.counter(f"{prefix}.{name}").inc(int(getattr(self, name).sum()))
        registry.counter(f"{prefix}.total_checks").inc(self.total_checks)
        registry.histogram(f"{prefix}.nodes_visited_per_thread").observe_many(
            self.nodes_visited
        )
        registry.gauge(f"{prefix}.ica_efficiency").set(self.ica_efficiency())
        registry.gauge(f"{prefix}.critical_thread_checks").set(
            int(self.nodes_visited.max(initial=0))
        )

    def merged_with(self, other: "ThreadCounters") -> "ThreadCounters":
        """Elementwise sum (for accumulating over pivots or thread blocks)."""
        if self.n_threads != other.n_threads or self.n_cyl != other.n_cyl:
            raise ValueError("cannot merge counters of different shapes")
        return ThreadCounters(
            n_threads=self.n_threads,
            n_cyl=self.n_cyl,
            box_checks=self.box_checks + other.box_checks,
            ica_fly_checks=self.ica_fly_checks + other.ica_fly_checks,
            ica_memo_checks=self.ica_memo_checks + other.ica_memo_checks,
            cull_checks=self.cull_checks + other.cull_checks,
            corner_cases=self.corner_cases + other.corner_cases,
            nodes_visited=self.nodes_visited + other.nodes_visited,
        )


@dataclass(frozen=True)
class StageBreakdown:
    """Simulated seconds per pipeline stage (Fig 18/19 stacked bars)."""

    ica_precompute_s: float = 0.0
    cd_tests_s: float = 0.0
    wall_s: float = 0.0  # measured NumPy wall time, for honesty alongside

    @property
    def total_s(self) -> float:
        """Simulated end-to-end kernel time (precompute + CD stage)."""
        return self.ica_precompute_s + self.cd_tests_s

    def to_dict(self) -> dict:
        return {
            "ica_precompute_s": self.ica_precompute_s,
            "cd_tests_s": self.cd_tests_s,
            "total_s": self.total_s,
            "wall_s": self.wall_s,
        }
