"""CD run results: the accessibility map plus full instrumentation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.counters import StageBreakdown, ThreadCounters
from repro.geometry.orientation import OrientationGrid

__all__ = ["CDResult"]


@dataclass
class CDResult:
    """Output of one accessibility-map generation.

    ``collides[t]`` is True when orientation ``t`` (row-major over the
    grid) drives the tool into the target — a *black* point of the
    paper's Figure 2.  ``timing`` carries both the simulated GPU kernel
    time (the reproduction's comparable-to-paper metric) and the measured
    NumPy wall time.
    """

    method: str
    grid: OrientationGrid
    collides: np.ndarray  # (M,) bool
    counters: ThreadCounters
    timing: StageBreakdown
    device_name: str
    table_entries: int = 0

    @property
    def accessibility_map(self) -> np.ndarray:
        """The AM as an ``(m, n)`` boolean array, True = accessible."""
        return self.grid.unflatten(~self.collides)

    @property
    def n_accessible(self) -> int:
        return int((~self.collides).sum())

    @property
    def n_colliding(self) -> int:
        return int(self.collides.sum())

    def render_ascii(self, accessible: str = ".", blocked: str = "#") -> str:
        """Figure 2 as text: rows are phi (top = toward +z), columns gamma."""
        am = self.accessibility_map
        return "\n".join(
            "".join(accessible if cell else blocked for cell in row) for row in am
        )

    def summary(self) -> dict:
        """Flat metrics dict, the unit the bench harness aggregates."""
        c = self.counters
        return {
            "method": self.method,
            "orientations": self.grid.size,
            "colliding": self.n_colliding,
            "total_checks": c.total_checks,
            "box_checks": c.total_box_checks,
            "ica_efficiency": c.ica_efficiency(),
            "corner_cases": int(c.corner_cases.sum()),
            "critical_thread_checks": int(c.nodes_visited.max(initial=0)),
            "sim_precompute_ms": self.timing.ica_precompute_s * 1e3,
            "sim_cd_ms": self.timing.cd_tests_s * 1e3,
            "sim_total_ms": self.timing.total_s * 1e3,
            "wall_ms": self.timing.wall_s * 1e3,
            "table_entries": self.table_entries,
        }
