"""Milling simulation: stock removal, gouge guarantee, planner loop."""

import numpy as np
import pytest

from repro.cd import AICA
from repro.geometry.aabb import AABB
from repro.geometry.orientation import OrientationGrid
from repro.milling.planner import GreedyRougher
from repro.milling.stock import VoxelStock
from repro.octree.build import build_from_sdf, expand_top
from repro.solids.sdf import SphereSDF
from repro.solids.voxelize import voxelize_sdf
from repro.tool.tool import Tool, ball_end_mill

DOMAIN = AABB((-20, -20, -20), (20, 20, 20))


@pytest.fixture()
def sphere_setup():
    sdf = SphereSDF((0, 0, 0), 10.0)
    res = 32
    target = voxelize_sdf(sdf, DOMAIN, res)
    tree = expand_top(build_from_sdf(sdf, DOMAIN, res), 5)
    stock = VoxelStock.block_around(DOMAIN, res, target)
    return tree, target, stock


class TestVoxelStock:
    def test_block_starts_full(self, sphere_setup):
        _, target, stock = sphere_setup
        assert stock.remaining_cells() == 32**3
        assert stock.completion() == 0.0

    def test_cut_removes_local_cells(self, sphere_setup):
        _, _, stock = sphere_setup
        tool = ball_end_mill(radius=2.0, flute=10.0, shank=20.0)
        before = stock.remaining_cells()
        removed = stock.cut(tool, np.array([0.0, 0.0, 15.0]), np.array([0.0, 0.0, 1.0]))
        assert removed > 0
        assert stock.remaining_cells() == before - removed

    def test_cut_never_removes_target(self, sphere_setup):
        _, target, stock = sphere_setup
        tool = ball_end_mill(radius=2.0)
        # Deliberately plunge straight through the part.
        stock.cut(tool, np.array([0.0, 0.0, -18.0]), np.array([0.0, 0.0, 1.0]))
        assert (stock.grid & target).sum() == target.sum()
        assert stock.gouged_cells > 0  # the violation is *recorded*

    def test_cut_outside_domain_noop(self, sphere_setup):
        _, _, stock = sphere_setup
        tool = ball_end_mill(radius=1.0, flute=5.0, shank=5.0)
        removed = stock.cut(tool, np.array([100.0, 0.0, 0.0]), np.array([0.0, 0.0, 1.0]))
        assert removed == 0

    def test_cut_idempotent(self, sphere_setup):
        _, _, stock = sphere_setup
        tool = ball_end_mill(radius=2.0)
        pose = (np.array([0.0, 0.0, 15.0]), np.array([0.0, 0.0, 1.0]))
        stock.cut(tool, *pose)
        assert stock.cut(tool, *pose) == 0

    def test_completion_monotone(self, sphere_setup):
        _, _, stock = sphere_setup
        tool = ball_end_mill(radius=3.0, flute=15.0, shank=30.0)
        rng = np.random.default_rng(0)
        last = stock.completion()
        for _ in range(5):
            p = rng.uniform(-15, 15, 3)
            p[2] = 14.0
            stock.cut(tool, p, np.array([0.0, 0.0, 1.0]))
            now = stock.completion()
            assert now >= last
            last = now

    def test_validation(self):
        with pytest.raises(ValueError):
            VoxelStock(AABB((0, 0, 0), (1, 2, 1)), np.ones((4, 4, 4), bool))
        with pytest.raises(ValueError):
            VoxelStock(DOMAIN, np.ones((4, 4), bool))
        with pytest.raises(ValueError):
            VoxelStock(DOMAIN, np.ones((4, 4, 4), bool), target=np.ones((2, 2, 2), bool))


class TestGreedyRougher:
    def test_roughing_pass_no_gouges(self, sphere_setup):
        """The central guarantee: accessible orientations never gouge."""
        tree, _, stock = sphere_setup
        tool = Tool.from_segments([(1.5, 12.0), (2.5, 40.0)], name="finisher")
        rougher = GreedyRougher(
            tree, tool, OrientationGrid.square(10), AICA(), safety_steps=0
        )
        # pivots on a ring 1mm above the sphere surface
        ang = np.linspace(0, 2 * np.pi, 8, endpoint=False)
        pivots = np.stack(
            [11.0 * np.cos(ang), 11.0 * np.sin(ang), np.zeros_like(ang)], axis=-1
        )
        report = rougher.run(stock, pivots)
        assert report.points_total == 8
        assert report.points_cut > 0
        assert report.gouged_cells == 0
        assert report.cells_removed > 0
        assert 0.0 < report.completion <= 1.0

    def test_plan_point_none_when_blocked(self, sphere_setup):
        tree, _, _ = sphere_setup
        tool = ball_end_mill()
        rougher = GreedyRougher(tree, tool, OrientationGrid.square(6), AICA())
        # pivot deep inside the part: nothing is accessible
        assert rougher.plan_point(np.zeros(3)) is None

    def test_safety_margin_reduces_choices(self, sphere_setup):
        tree, _, _ = sphere_setup
        tool = Tool.from_segments([(1.5, 12.0), (2.5, 40.0)])
        pivot = np.array([0.0, 0.0, 11.5])
        loose = GreedyRougher(tree, tool, OrientationGrid.square(10), AICA(), safety_steps=0)
        tight = GreedyRougher(tree, tool, OrientationGrid.square(10), AICA(), safety_steps=2)
        a = loose.plan_point(pivot)
        b = tight.plan_point(pivot)
        assert a is not None
        # the tight margin may refuse or pick a (deeper) orientation
        if b is not None:
            assert isinstance(b[0], float)

    def test_report_summary_text(self, sphere_setup):
        tree, _, stock = sphere_setup
        tool = Tool.from_segments([(1.5, 12.0), (2.5, 40.0)])
        rougher = GreedyRougher(tree, tool, OrientationGrid.square(8), AICA())
        report = rougher.run(stock, np.array([[0.0, 0.0, 11.5]]))
        text = report.summary()
        assert "completion" in text and "gouges" in text
