"""ASCII visualization helpers."""

import numpy as np
import pytest

from repro.viz import (
    histogram_ascii,
    render_accessibility,
    render_grid_slice,
    render_octree_slice,
)


class TestRenderAccessibility:
    def test_labels_and_stats(self, sphere_scene):
        from repro.cd import AICA, run_cd
        from repro.geometry.orientation import OrientationGrid

        r = run_cd(sphere_scene, OrientationGrid.square(6), AICA())
        text = render_accessibility(r)
        assert "phi=0" in text and "phi=pi" in text
        assert "accessible" in text
        assert f"{r.n_accessible}/36" in text


class TestGridSlice:
    def test_basic(self):
        g = np.zeros((2, 3, 4), dtype=bool)
        g[1, 1, 2] = True
        out = render_grid_slice(g, 1)
        lines = out.splitlines()
        assert len(lines) == 3
        assert lines[1][2] == "#"

    def test_stride(self):
        g = np.ones((1, 8, 8), dtype=bool)
        out = render_grid_slice(g, 0, stride=2)
        assert out.splitlines()[0] == "####"

    def test_validation(self):
        with pytest.raises(ValueError):
            render_grid_slice(np.ones((2, 2), bool), 0)
        with pytest.raises(ValueError):
            render_grid_slice(np.ones((2, 2, 2), bool), 5)


class TestOctreeSlice:
    def test_sphere_slice_shape(self, head_tree_32, head):
        out = render_octree_slice(head_tree_32, 0.0, width=20)
        lines = out.splitlines()
        assert len(lines) == 20
        assert all(len(l) == 20 for l in lines)
        assert "#" in out and "." in out

    def test_out_of_domain(self, head_tree_32):
        with pytest.raises(ValueError):
            render_octree_slice(head_tree_32, 1e9)


class TestHistogram:
    def test_bins_and_bars(self):
        out = histogram_ascii(np.concatenate([np.zeros(90), np.ones(10) * 9]), bins=2)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].count("*") > lines[1].count("*")

    def test_label_and_empty(self):
        assert histogram_ascii(np.zeros(0)) == "(no data)"
        out = histogram_ascii([1.0, 2.0], label="checks")
        assert out.splitlines()[0] == "checks"
