"""Wall-clock gate: the v2 frontier engine must beat v1 on the host.

Every other bench asserts on simulated-GPU milliseconds; this one gates
real host time.  The experiment itself asserts map + counter
byte-equality across engines, so a passing run certifies both halves of
the engine contract: same answer, faster wall-clock.
"""

from repro.bench.experiments import wallclock


def test_wallclock(benchmark, scale, record):
    result = benchmark.pedantic(wallclock, args=(scale,), rounds=1, iterations=1)
    record(result)
    speedups = result.extras["speedups"]

    # v2 must never be a regression on any method.
    for name, s in speedups.items():
        assert s > 0.9, f"{name}: v2 slower than v1 ({s:.2f}x)"

    # The headline gate — the two methods whose hot loops the v2 engine
    # targets (panel dedup for AICA, hoisted cull + panels for PBoxOpt)
    # must hold a 2x serial speedup at the fig16 data point.  The smoke
    # scale's frontier is too small to amortize panel setup, so only the
    # no-regression floor applies there.
    if scale.name != "smoke":
        assert speedups["AICA"] >= 2.0, f"AICA speedup {speedups['AICA']:.2f}x < 2x"
        assert speedups["PBoxOpt"] >= 2.0, (
            f"PBoxOpt speedup {speedups['PBoxOpt']:.2f}x < 2x"
        )
