"""Automatic tuning of the precompute depth ``S`` (Section 8 future work).

The paper tunes ``S`` (how many octree levels get memoized ICA tables)
by hand per GPU and suggests "an algorithm that can intelligently tune
the parameter S" as future work.  :func:`tune_memo_levels` is that
algorithm in its simplest sound form: sweep the candidate depths on the
target device's *simulated* cost model and keep the argmin of total
(precompute + CD) time.  Because the simulation is deterministic and
cheap relative to production runs, the sweep is an offline planning
step — exactly how a CAM system would calibrate per installed GPU.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.engine.costs import CostModel, DEFAULT_COSTS
from repro.engine.device import DeviceSpec, GTX_1080_TI
from repro.geometry.orientation import OrientationGrid

if TYPE_CHECKING:  # the CD layer sits above the engine; import lazily
    from repro.cd.traversal import TraversalConfig

__all__ = ["TuneRow", "tune_memo_levels"]


@dataclass(frozen=True)
class TuneRow:
    """One sweep point of the S tuner."""

    memo_levels: int
    table_entries: int
    precompute_s: float
    cd_s: float

    @property
    def total_s(self) -> float:
        return self.precompute_s + self.cd_s


def tune_memo_levels(
    scene,
    grid: OrientationGrid,
    method,
    *,
    device: DeviceSpec = GTX_1080_TI,
    costs: CostModel = DEFAULT_COSTS,
    min_levels: int = 2,
    base_config: "TraversalConfig | None" = None,
) -> tuple[int, list[TuneRow]]:
    """Pick the simulated-time-optimal ``S`` for (scene, grid, device).

    Returns ``(best_S, rows)`` where ``rows`` holds the full sweep for
    reporting.  Ties prefer the smaller table (less memory).
    """
    from repro.cd.traversal import TraversalConfig, run_cd

    if base_config is None:
        base_config = TraversalConfig()
    rows: list[TuneRow] = []
    for S in range(min_levels, scene.tree.depth + 2):
        # replace() keeps every other knob (max_pairs, workers, ...) of
        # the caller's config instead of enumerating fields by hand.
        cfg = replace(base_config, memo_levels=S)
        r = run_cd(scene, grid, method, device=device, costs=costs, config=cfg)
        rows.append(
            TuneRow(
                memo_levels=S,
                table_entries=r.table_entries,
                precompute_s=r.timing.ica_precompute_s,
                cd_s=r.timing.cd_tests_s,
            )
        )
    best = min(rows, key=lambda row: (row.total_s, row.table_entries))
    return best.memo_levels, rows
