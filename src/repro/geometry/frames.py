"""Orthonormal frames and the cylinder axis-alignment rotation.

The paper's ``CHECKBOX`` pipeline begins with a *rotation* step: change
coordinates so that the tool cylinder becomes axis-aligned (its axis is
the local ``+z``), which costs 9 elementary operations per transformed
point (a 3x3 matrix-vector product).  This module builds those rotation
matrices.

The construction must be deterministic and continuous almost everywhere
so that batched kernels (:mod:`repro.geometry.batch`) and scalar
predicates (:mod:`repro.geometry.predicates`) agree bit-for-bit; both
call :func:`frame_from_axis`.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.vec import normalize

__all__ = ["frame_from_axis", "rotation_to_axis", "apply_rotation"]


def frame_from_axis(axis) -> np.ndarray:
    """Return a right-handed orthonormal frame ``(u, v, w)`` with ``w = axis``.

    ``axis`` may be a single 3-vector or a batch ``(..., 3)``; the result has
    shape ``(..., 3, 3)`` with rows ``u, v, w``.  The in-plane axes are
    derived from the smallest component of ``w`` (the standard
    branch-stable construction), so nearly-parallel inputs do not produce
    degenerate frames.
    """
    w = normalize(axis)
    # Pick the helper axis least aligned with w, elementwise for batches.
    aw = np.abs(w)
    helper = np.zeros_like(w)
    idx = np.argmin(aw, axis=-1)
    np.put_along_axis(helper, idx[..., None], 1.0, axis=-1)
    u = np.cross(helper, w)
    u = normalize(u)
    v = np.cross(w, u)
    return np.stack([u, v, w], axis=-2)


def rotation_to_axis(axis) -> np.ndarray:
    """Rotation matrix ``R`` such that ``R @ axis = (0, 0, |axis|)``.

    This is the paper's axis-alignment rotation: applying ``R`` to world
    points expresses them in a frame whose ``+z`` is the cylinder axis.
    Shape ``(..., 3, 3)``.
    """
    return frame_from_axis(axis)


def apply_rotation(R, points) -> np.ndarray:
    """Rotate ``points (..., 3)`` by ``R (..., 3, 3)`` with broadcasting.

    Exactly the 9-multiply/6-add kernel the paper counts as 9 elementary
    operations per point.
    """
    R = np.asarray(R, dtype=np.float64)
    p = np.asarray(points, dtype=np.float64)
    return np.einsum("...ij,...j->...i", R, p)
