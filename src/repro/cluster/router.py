"""The cluster router: scene-sharded fan-out over ``repro-serve`` replicas.

One ``repro-serve`` process tops out at its own worker pool; the paper's
idea — shard the work, keep the answer bit-exact — applies one layer up.
The router owns no compute: it maps every scene (by content digest) to
an owning replica on a consistent-hash ring (:mod:`repro.cluster.ring`),
forwards ``/v1/scenes`` and ``/v1/cd`` there, and spends its effort on
the failure modes that appear the moment there is more than one server:

* **503 backpressure** — retried against the same replica honoring
  ``Retry-After`` (with jitter, capped by ``retry_budget_s``); the
  router absorbs transient overload instead of bouncing it to clients.
* **tail latency** — a request still unanswered after ``hedge_after_s``
  is *hedged* to the next replica on the key's preference list; the
  first non-error answer wins and the loser is cancelled or discarded
  (``cluster.hedge.*`` counters).  Hedging never double-counts: the
  router's request window and the client-visible cost ledger see only
  the winning answer.
* **replica death** — transport failures feed the health tracker
  (:mod:`repro.cluster.health`) and the request fails over down the
  preference list.  A fallback replica that has never seen the scene
  answers 404; the router replays the original registration body
  (kept per digest) and retries — so losing the owner mid-run degrades
  to one extra registration, not client-visible errors.

Every hop keeps the observability contract: inbound ``X-Request-Id``
and ``traceparent`` are propagated to the replica (one trace across
router and replica), the router records ``cluster.route`` /
``cluster.upstream`` spans into its own tracer for OTLP export, and
responses carry the router's identity header plus which replica
actually answered.

Endpoints: the replica API (``/v1/scenes``, ``/v1/cd``) plus
``/v1/ring`` (membership, health, vnodes, per-scene placement — pass
``?key=DIGEST`` for one key's preference list), ``/v1/healthz``, and
``/v1/metrics`` — all on the shared wire dialect
(:mod:`repro.service.wire`).
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from http.server import ThreadingHTTPServer

from repro.cluster.health import HealthMonitor, replica_label
from repro.cluster.ring import HashRing
from repro.obs.context import TraceContext, format_traceparent
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.obs.window import RequestWindow
from repro.service.wire import (
    JsonRequestHandler,
    ServiceUnreachable,
    TransportError,
    http_json,
    retry_after_from,
)

__all__ = ["ClusterRouter", "RouterHTTPServer", "serve_router"]

ROUTER_HEADER = "X-Repro-Router"
REPLICA_HEADER = "X-Repro-Replica"


class _Attempt:
    """Outcome of one upstream try: an HTTP answer or a transport error."""

    __slots__ = ("replica", "status", "payload", "headers", "error", "retried")

    def __init__(self, replica, status=None, payload=None, headers=None,
                 error=None, retried=0):
        self.replica = replica
        self.status = status
        self.payload = payload
        self.headers = headers or {}
        self.error = error  # a TransportError, or None
        self.retried = retried

    @property
    def won(self) -> bool:
        """A winning answer: an HTTP response that is not a server error."""
        return self.error is None and self.status is not None and self.status < 500


class ClusterRouter:
    """Routing logic, transport-free (the HTTP shell lives below).

    ``replicas`` are base URLs of running ``repro-serve`` instances.
    The router may be driven directly (tests) or through
    :func:`serve_router`.
    """

    def __init__(
        self,
        replicas,
        *,
        vnodes: int = 64,
        hedge_after_s: float = 0.25,
        retry_budget_s: float = 5.0,
        probe_interval_s: float = 2.0,
        probe_timeout_s: float = 5.0,
        upstream_timeout_s: float = 300.0,
        down_after: int = 3,
        up_after: int = 2,
        max_upstream_threads: int = 32,
        name: str | None = None,
        rng: random.Random | None = None,
    ) -> None:
        replicas = [str(r).rstrip("/") for r in replicas]
        if not replicas:
            raise ValueError("a cluster needs at least one replica URL")
        if len(set(replicas)) != len(replicas):
            raise ValueError(f"duplicate replica URLs: {replicas}")
        self.ring = HashRing(replicas, vnodes=vnodes)
        self.health = HealthMonitor(
            replicas,
            self._probe,
            probe_interval_s=probe_interval_s,
            down_after=down_after,
            up_after=up_after,
        )
        self.hedge_after_s = float(hedge_after_s)
        self.retry_budget_s = float(retry_budget_s)
        self.probe_timeout_s = float(probe_timeout_s)
        self.upstream_timeout_s = float(upstream_timeout_s)
        self.name = name or "repro-router"
        self.window = RequestWindow()
        self._rng = rng if rng is not None else random.Random()
        self._executor = ThreadPoolExecutor(
            max_workers=int(max_upstream_threads),
            thread_name_prefix="repro-router",
        )
        # digest -> the original /v1/scenes body: the replay material for
        # re-registration on failover.  Which replicas are known to hold
        # the scene rides alongside.
        self._scene_lock = threading.Lock()
        self._scene_bodies: dict[str, dict] = {}
        self._scene_on: dict[str, set[str]] = {}
        self._started = time.perf_counter()
        self._closed = False

    # -- health probing ---------------------------------------------------

    def _probe(self, replica: str) -> bool:
        try:
            status, _, _ = http_json(
                f"{replica}/v1/healthz", timeout=self.probe_timeout_s
            )
        except TransportError:
            return False
        return status == 200

    # -- placement --------------------------------------------------------

    def candidates(self, digest: str) -> list[str]:
        """The key's preference list, routable replicas first.

        Ring order decides within each group, so two routers (or one
        router before and after a flap) agree on the failover target.
        DOWN replicas stay at the tail as a last resort — with the whole
        cluster marked down, trying beats answering 503 from memory.
        """
        pref = self.ring.preference(digest)
        up = [r for r in pref if self.health.routable(r)]
        down = [r for r in pref if not self.health.routable(r)]
        return up + down

    def _remember_scene(self, digest: str, body: dict, replica: str) -> None:
        with self._scene_lock:
            self._scene_bodies.setdefault(digest, dict(body))
            self._scene_on.setdefault(digest, set()).add(replica)

    def _scene_body(self, digest: str) -> dict | None:
        with self._scene_lock:
            body = self._scene_bodies.get(digest)
            return dict(body) if body is not None else None

    def scenes(self) -> dict[str, dict]:
        """Tracked scenes: digest -> owner + replicas known to hold it."""
        with self._scene_lock:
            return {
                digest: {
                    "owner": self.ring.owner(digest),
                    "registered_on": sorted(self._scene_on.get(digest, ())),
                }
                for digest in self._scene_bodies
            }

    # -- scene registration -----------------------------------------------

    def register_scene(self, body: dict, *, headers: dict | None = None):
        """Forward a ``/v1/scenes`` body.

        Returns ``(status, payload, headers, replica)``.

        The owner is only known once the replica reports the content
        digest, so registration lands on the first routable replica,
        then is replayed onto the ring owner when that is a different
        node.  The body is retained for failover re-registration.
        """
        first_error: _Attempt | None = None
        for replica in self.candidates("scenes:" + repr(sorted(body.items()))):
            try:
                status, payload, resp_headers = http_json(
                    f"{replica}/v1/scenes", body,
                    timeout=self.upstream_timeout_s, headers=headers,
                )
            except TransportError as exc:
                self.health.record_failure(replica)
                self._count_replica(replica, error=True)
                first_error = first_error or _Attempt(replica, error=exc)
                continue
            self.health.record_success(replica)
            self._count_replica(replica, error=status >= 500)
            if status != 200:
                return status, payload, resp_headers, replica
            digest = payload["scene"]
            self._remember_scene(digest, body, replica)
            owner = self.candidates(digest)[0]
            if owner != replica:
                # Replay onto the ring owner so queries route there warm.
                try:
                    o_status, _, _ = http_json(
                        f"{owner}/v1/scenes", body,
                        timeout=self.upstream_timeout_s, headers=headers,
                    )
                    self.health.record_success(owner)
                    if o_status == 200:
                        self._remember_scene(digest, body, owner)
                except TransportError:
                    self.health.record_failure(owner)
            payload["cluster"] = {
                "owner": owner,
                "registered_on": self.scenes()[digest]["registered_on"],
            }
            return status, payload, resp_headers, replica
        # Every replica was unreachable.
        assert first_error is not None
        raise first_error.error

    # -- query routing ----------------------------------------------------

    def route_cd(
        self,
        body: dict,
        *,
        headers: dict | None = None,
        trace_ctx: TraceContext | None = None,
    ):
        """Route one ``/v1/cd`` body to the owning replica.

        Returns ``(status, payload, resp_headers, replica, hedged)``.
        Raises :class:`ServiceUnreachable` only when every candidate
        failed at the transport level.
        """
        metrics = get_metrics()
        metrics.counter("cluster.requests").inc()
        digest = str(body.get("scene", ""))
        cands = self.candidates(digest)
        if not cands:
            raise ServiceUnreachable("(no replicas)", "hash ring is empty")
        deadline = time.perf_counter() + max(
            self.retry_budget_s, self.upstream_timeout_s
        )
        t0 = time.perf_counter()

        pending: dict = {}  # future -> replica

        def submit(replica: str):
            fut = self._executor.submit(
                self._attempt_cd, replica, dict(body), headers, deadline, trace_ctx
            )
            pending[fut] = replica

        remaining = iter(cands)
        submit(next(remaining))
        hedged = False
        winner: _Attempt | None = None
        last: _Attempt | None = None
        while pending:
            can_hedge = not hedged and len(cands) > 1
            done, _ = wait(
                set(pending),
                timeout=self.hedge_after_s if can_hedge else None,
                return_when=FIRST_COMPLETED,
            )
            if not done:
                # The primary is slow: hedge to the next preference replica.
                nxt = next(remaining, None)
                hedged = True
                if nxt is not None:
                    metrics.counter("cluster.hedge.fired").inc()
                    submit(nxt)
                continue
            for fut in done:
                replica = pending.pop(fut)
                attempt: _Attempt = fut.result()
                last = attempt
                if attempt.won:
                    winner = attempt
                    break
            if winner is not None:
                break
            if not pending:
                # Everything in flight failed: fail over to the next
                # candidate, if any is left.
                nxt = next(remaining, None)
                if nxt is None:
                    break
                metrics.counter("cluster.failover").inc()
                submit(nxt)

        # Discard losers: cancel what never started; what's already
        # running finishes on the executor and is counted, but its
        # answer reaches neither the client nor the window.
        for fut, _replica in pending.items():
            if not fut.cancel():
                metrics.counter("cluster.hedge.discarded").inc()

        if winner is None:
            if last is not None and last.error is None:
                # Best server answer we got (e.g. 503 after budget).
                self._finish(last, t0)
                return last.status, last.payload, last.headers, last.replica, hedged
            raise ServiceUnreachable(
                digest or "(no scene)",
                f"all {len(cands)} replicas failed: "
                + "; ".join(f"{replica_label(c)}" for c in cands),
            )
        if hedged:
            if winner.replica != cands[0]:
                metrics.counter("cluster.hedge.wins").inc()
            else:
                metrics.counter("cluster.hedge.primary_wins").inc()
        self._finish(winner, t0)
        return winner.status, winner.payload, winner.headers, winner.replica, hedged

    def _finish(self, attempt: _Attempt, t0: float) -> None:
        metrics = get_metrics()
        metrics.histogram("cluster.route.ms").observe(
            (time.perf_counter() - t0) * 1e3
        )
        if attempt.retried:
            metrics.counter("cluster.retry.503").inc(attempt.retried)

    def _attempt_cd(
        self,
        replica: str,
        body: dict,
        headers: dict | None,
        deadline: float,
        trace_ctx: TraceContext | None,
    ) -> _Attempt:
        """One replica's full attempt: 503 retries + 404 re-registration.

        Never raises — transport failures come back as an
        :class:`_Attempt` with ``error`` set (the routing loop must see
        them, not lose them inside a future).
        """
        tracer = get_tracer()
        fwd = dict(headers or {})
        attempt_ctx = None
        if trace_ctx is not None:
            # One child span per upstream hop: the replica's spans parent
            # onto it, so router and replica land on one trace.
            attempt_ctx = trace_ctx.child()
            fwd["traceparent"] = format_traceparent(attempt_ctx)
            if trace_ctx.tracestate:
                fwd["tracestate"] = trace_ctx.tracestate
        metrics = get_metrics()
        t0 = time.perf_counter()
        retried = 0
        reregistered = False
        outcome = "ok"
        try:
            while True:
                try:
                    status, payload, resp_headers = http_json(
                        f"{replica}/v1/cd", body,
                        timeout=self.upstream_timeout_s, headers=fwd,
                    )
                except TransportError as exc:
                    self.health.record_failure(replica)
                    self._count_replica(replica, error=True)
                    outcome = "transport_error"
                    return _Attempt(replica, error=exc, retried=retried)
                # Any HTTP answer proves the replica is alive.
                self.health.record_success(replica)
                self._count_replica(replica, error=status >= 500)
                if (
                    status == 404
                    and not reregistered
                    and "unknown scene" in str(payload.get("error", ""))
                ):
                    # A fallback replica that never saw this scene:
                    # replay the original registration, then retry.
                    scene_body = self._scene_body(str(body.get("scene", "")))
                    if scene_body is not None:
                        reregistered = True
                        metrics.counter("cluster.reregistered").inc()
                        try:
                            r_status, _, _ = http_json(
                                f"{replica}/v1/scenes", scene_body,
                                timeout=self.upstream_timeout_s,
                            )
                        except TransportError as exc:
                            self.health.record_failure(replica)
                            outcome = "transport_error"
                            return _Attempt(replica, error=exc, retried=retried)
                        if r_status == 200:
                            self._remember_scene(
                                str(body.get("scene", "")), scene_body, replica
                            )
                            continue
                if status == 503:
                    delay = retry_after_from(resp_headers, payload)
                    delay += self._rng.uniform(0.0, 0.25 * delay + 0.01)
                    if time.perf_counter() + delay > deadline:
                        outcome = "503_budget_exhausted"
                        return _Attempt(
                            replica, status, payload, resp_headers, retried=retried
                        )
                    retried += 1
                    time.sleep(delay)
                    continue
                outcome = f"http_{status}"
                return _Attempt(replica, status, payload, resp_headers, retried=retried)
        finally:
            if tracer.enabled and (trace_ctx is None or trace_ctx.sampled):
                wall = time.perf_counter() - t0
                identity = {}
                if attempt_ctx is not None:
                    identity = {
                        "trace_id": attempt_ctx.trace_id,
                        "span_id": attempt_ctx.span_id,
                        "parent_span_id": attempt_ctx.parent_id,
                    }
                tracer.record_span(
                    "cluster.upstream",
                    t0=tracer.now() - wall,
                    wall_s=wall,
                    attrs={
                        "replica": replica_label(replica),
                        "outcome": outcome,
                        "retried": retried,
                        "reregistered": reregistered,
                    },
                    **identity,
                )
            metrics.histogram("cluster.upstream.ms").observe(
                (time.perf_counter() - t0) * 1e3
            )

    def _count_replica(self, replica: str, *, error: bool) -> None:
        label = replica_label(replica)
        metrics = get_metrics()
        metrics.counter(f"cluster.replica.{label}.requests").inc()
        if error:
            metrics.counter(f"cluster.replica.{label}.errors").inc()

    # -- lifecycle --------------------------------------------------------

    @property
    def uptime_s(self) -> float:
        return time.perf_counter() - self._started

    def start(self, tick_interval_s: float = 0.25) -> None:
        """Start background health probing."""
        self.health.start(tick_interval_s)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.health.stop()
        self._executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "ClusterRouter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


# ---------------------------------------------------------------------------
# HTTP shell
# ---------------------------------------------------------------------------


class _RouterHandler(JsonRequestHandler):
    server: "RouterHTTPServer"

    known_routes = frozenset(
        {"/v1/scenes", "/v1/cd", "/v1/ring", "/v1/healthz", "/v1/metrics"}
    )
    error_counter = "cluster.errors"

    def _route_get(self, path: str) -> None:
        router = self.server.router
        if path == "/v1/healthz":
            self._send_json(200, {
                "status": "ok",
                "role": "router",
                "router": router.name,
                "uptime_s": router.uptime_s,
                "scenes": len(router.scenes()),
                "replicas": router.health.snapshot(),
                "window": router.window.snapshot(),
            })
        elif path == "/v1/ring":
            import urllib.parse

            params = urllib.parse.parse_qs(urllib.parse.urlsplit(self.path).query)
            out = {
                **router.ring.describe(),
                "router": router.name,
                "hedge_after_s": router.hedge_after_s,
                "health": {
                    replica: snap["state"]
                    for replica, snap in router.health.snapshot().items()
                },
                "scenes": router.scenes(),
            }
            key = params.get("key", [None])[-1]
            if key:
                out["key"] = key
                out["preference"] = router.ring.preference(key)
                out["candidates"] = router.candidates(key)
            self._send_json(200, out)
        elif path == "/v1/metrics":
            self._route_metrics()
        else:
            self._send_json(404, {"error": f"no route {path!r}"})

    def _route_post(self, path: str) -> None:
        router = self.server.router
        try:
            body = self._read_json()
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        fwd_headers = {"X-Request-Id": self._request_id}

        if path == "/v1/scenes":
            try:
                status, payload, _, replica = router.register_scene(
                    body, headers=fwd_headers
                )
            except TransportError as exc:
                self._send_json(
                    502, {"error": f"no replica reachable: {exc}"},
                )
                return
            if isinstance(payload, dict) and "scene" in payload:
                self._log_fields["scene"] = str(payload["scene"])[:12]
            self._send_json(status, payload, headers={REPLICA_HEADER: replica})
        elif path == "/v1/cd":
            ctx = self._trace_ctx
            # The router's own span for this request: minted up front so
            # replica-side spans (children of per-attempt spans) and the
            # response traceparent all hang off one identity.
            route_ctx = ctx.child()
            self._response_traceparent = format_traceparent(route_ctx)
            self._log_fields["scene"] = str(body.get("scene", ""))[:12]
            t0 = time.perf_counter()
            try:
                status, payload, _, replica, hedged = router.route_cd(
                    body, headers=fwd_headers, trace_ctx=route_ctx
                )
            except TransportError as exc:
                self._log_fields["served"] = "unreachable"
                self._send_json(
                    502, {"error": f"no replica could answer: {exc}"},
                )
                return
            finally:
                tracer = get_tracer()
                if tracer.enabled and ctx.sampled:
                    wall = time.perf_counter() - t0
                    tracer.record_span(
                        "cluster.route",
                        t0=tracer.now() - wall,
                        wall_s=wall,
                        attrs={
                            "scene": str(body.get("scene", ""))[:12],
                            "request_id": self._request_id,
                        },
                        trace_id=route_ctx.trace_id,
                        span_id=route_ctx.span_id,
                        parent_span_id=route_ctx.parent_id,
                    )
            if isinstance(payload, dict):
                self._log_fields["served"] = payload.get("served") or (
                    "cache" if payload.get("cached")
                    else "coalesced" if payload.get("coalesced")
                    else "computed" if status == 200 else "error"
                )
            extra = {REPLICA_HEADER: replica}
            if status == 503:
                retry_after = retry_after_from({}, payload, default=1.0)
                extra["Retry-After"] = f"{max(1, round(retry_after))}"
            if hedged:
                extra["X-Repro-Hedged"] = "1"
            self._send_json(status, payload, headers=extra)
        else:
            self._send_json(404, {"error": f"no route {path!r}"})


class RouterHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ClusterRouter`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], router: ClusterRouter):
        super().__init__(address, _RouterHandler)
        self.router = router
        self.extra_headers = {ROUTER_HEADER: router.name}

    @property
    def window(self):
        return self.router.window


def serve_router(
    router: ClusterRouter, host: str = "127.0.0.1", port: int = 8070
) -> RouterHTTPServer:
    """Bind (``port`` 0 picks a free one) and return the server unstarted;
    callers drive it like :func:`repro.service.http.serve`."""
    return RouterHTTPServer((host, port), router)
