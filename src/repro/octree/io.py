"""Octree serialization (single-file ``.npz``).

Octree construction dominates pipeline setup time at high resolutions,
and a CAM application builds the model once and answers many
accessibility queries against it — so the tree must round-trip to disk.
The format is a flat ``.npz``: domain bounds, depth, and per-level code
and status arrays; forward-compatible via an explicit version tag.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.aabb import AABB
from repro.octree.linear import LinearOctree, OctreeLevel

__all__ = ["save_octree", "load_octree", "FORMAT_VERSION"]

FORMAT_VERSION = 1


def save_octree(tree: LinearOctree, path) -> None:
    """Write ``tree`` to ``path`` as a compressed ``.npz``."""
    payload: dict[str, np.ndarray] = {
        "format_version": np.asarray(FORMAT_VERSION),
        "domain_lo": tree.domain.lo,
        "domain_hi": tree.domain.hi,
        "depth": np.asarray(tree.depth),
    }
    for l, lev in enumerate(tree.levels):
        payload[f"codes_{l}"] = lev.codes
        payload[f"status_{l}"] = lev.status
    np.savez_compressed(path, **payload)


def load_octree(path) -> LinearOctree:
    """Load a tree written by :func:`save_octree` (child links are rebuilt)."""
    with np.load(path) as data:
        version = int(data["format_version"])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported octree format version {version} (expected {FORMAT_VERSION})"
            )
        domain = AABB(data["domain_lo"], data["domain_hi"])
        depth = int(data["depth"])
        levels = []
        for l in range(depth + 1):
            codes = data[f"codes_{l}"].astype(np.uint64)
            status = data[f"status_{l}"].astype(np.uint8)
            levels.append(
                OctreeLevel(
                    codes=codes,
                    status=status,
                    child_start=np.full(len(codes), -1, dtype=np.intp),
                    child_count=np.zeros(len(codes), dtype=np.int8),
                )
            )
    return LinearOctree(domain, depth, levels)
