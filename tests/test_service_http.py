"""JSON/HTTP front end and the repro-loadgen report pipeline.

A real :class:`ServiceHTTPServer` runs on a loopback port (0 = ephemeral)
for the whole module; tests talk to it with urllib only — the same
stdlib surface external clients use.
"""

from __future__ import annotations

import base64
import io
import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.cd.methods import method_by_name
from repro.cd.traversal import run_cd
from repro.geometry.orientation import OrientationGrid
from repro.octree.io import save_octree
from repro.service import Service, serve
from repro.service.http import scene_from_request, tool_from_spec


@pytest.fixture(scope="module")
def server(sphere_scene):
    svc = Service(workers=1, max_queue=8)
    digest = svc.register_scene(sphere_scene)
    httpd = serve(svc, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{httpd.server_address[1]}"
    yield base, digest
    httpd.shutdown()
    httpd.server_close()
    svc.close()


def _post(url: str, body: dict):
    req = urllib.request.Request(
        url, data=json.dumps(body).encode(), headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _get(url: str):
    with urllib.request.urlopen(url, timeout=60) as resp:
        return resp.status, json.loads(resp.read())


class TestEndpoints:
    def test_healthz(self, server):
        base, _ = server
        status, body = _get(f"{base}/v1/healthz")
        assert status == 200 and body["status"] == "ok"
        assert body["scenes"] >= 1

    def test_metrics(self, server):
        base, _ = server
        status, body = _get(f"{base}/v1/metrics")
        assert status == 200
        assert body["service.registry.scenes"]["type"] == "gauge"

    def test_unknown_route(self, server):
        base, _ = server
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(f"{base}/v1/nope")
        assert exc.value.code == 404

    def test_register_roundtrip_digest(self, server, sphere_scene):
        base, digest = server
        buf = io.BytesIO()
        save_octree(sphere_scene.tree, buf)
        status, body = _post(f"{base}/v1/scenes", {
            "npz_b64": base64.b64encode(buf.getvalue()).decode(),
            "tool": "paper",
            "pivot": sphere_scene.pivot.tolist(),
        })
        assert status == 200
        # Content addressing: the uploaded copy is the registered scene.
        assert body["scene"] == digest
        assert body["depth"] == sphere_scene.tree.depth

    def test_register_validation(self, server):
        base, _ = server
        status, body = _post(f"{base}/v1/scenes", {"pivot": [0, 0, 1]})
        assert status == 400 and "npz_b64" in body["error"]
        status, body = _post(f"{base}/v1/scenes", {"model": "head"})
        assert status == 400 and "pivot" in body["error"]
        status, body = _post(
            f"{base}/v1/scenes",
            {"model": "not_a_model", "pivot": [0, 0, 1]},
        )
        assert status == 400 and "unknown model" in body["error"]

    def test_query_served_map_matches_direct(self, server, sphere_scene):
        base, digest = server
        status, body = _post(f"{base}/v1/cd", {
            "scene": digest, "grid": [10, 10], "method": "AICA",
        })
        assert status == 200
        direct = run_cd(sphere_scene, OrientationGrid(10, 10), method_by_name("AICA"))
        assert np.array_equal(
            np.asarray(body["map"], dtype=bool), direct.accessibility_map
        )
        assert body["n_accessible"] == direct.n_accessible
        # Same query again: a cache hit, same payload.
        status, again = _post(f"{base}/v1/cd", {
            "scene": digest, "grid": [10, 10], "method": "AICA",
        })
        assert status == 200 and again["cached"] is True
        assert again["map"] == body["map"]

    def test_query_include_map_false(self, server):
        base, digest = server
        status, body = _post(f"{base}/v1/cd", {
            "scene": digest, "grid": [10, 10], "method": "AICA",
            "include_map": False,
        })
        assert status == 200 and "map" not in body
        assert "n_accessible" in body

    def test_query_unknown_scene_404(self, server):
        base, _ = server
        status, body = _post(f"{base}/v1/cd", {"scene": "f" * 64, "grid": [4, 4]})
        assert status == 404 and "unknown scene" in body["error"]

    def test_query_bad_spec_400(self, server):
        base, digest = server
        status, body = _post(f"{base}/v1/cd", {"scene": digest, "gird": [4, 4]})
        assert status == 400 and "unknown query field" in body["error"]
        status, body = _post(f"{base}/v1/cd", {"scene": digest, "method": "NOPE"})
        assert status == 400 and "unknown method" in body["error"]

    def test_non_json_body_400(self, server):
        base, _ = server
        req = urllib.request.Request(
            f"{base}/v1/cd", data=b"not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=60)
        assert exc.value.code == 400


class TestSceneParsing:
    def test_tool_specs(self):
        assert tool_from_spec(None).name == tool_from_spec("paper").name
        assert tool_from_spec("ball").name.startswith("endmill")
        custom = tool_from_spec({"segments": [[1.0, 5.0], [2.0, 10.0]], "name": "t"})
        assert custom.n_cylinders == 2
        with pytest.raises(ValueError, match="tool"):
            tool_from_spec("chainsaw")

    def test_exactly_one_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            scene_from_request({"pivot": [0, 0, 1]})
        with pytest.raises(ValueError, match="exactly one"):
            scene_from_request({
                "model": "head", "path": "x.npz", "pivot": [0, 0, 1],
            })

    def test_model_source_builds_scene(self):
        scene = scene_from_request({
            "model": "head", "resolution": 16, "pivot": [0, -30, 5],
        })
        assert scene.tree.depth == 4
        assert scene.pivot.tolist() == [0.0, -30.0, 5.0]


class TestLoadgenReport:
    def test_loadgen_emits_gateable_run_report(self, server, tmp_path):
        from repro.obs.report import compare, load_report
        from repro.service.cli import main_loadgen

        base, digest = server
        out = tmp_path / "loadgen.json"
        code = main_loadgen([
            "--url", base, "--scene", digest, "--pivot", "0", "0", "21",
            "-n", "12", "-c", "4", "--distinct", "2",
            "--grid", "6", "6", "--json", str(out),
        ])
        assert code == 0

        report = load_report(out)
        assert report.schema == "repro.obs.report/v1"
        assert report.label == "loadgen"
        assert report.metrics["loadgen.ok"]["value"] == 12
        assert report.metrics["loadgen.p95_ms"]["type"] == "counter"
        assert report.metrics["loadgen.rps"]["value"] > 0
        assert 0.0 <= report.metrics["loadgen.cache_hit_rate"]["value"] <= 1.0
        (row,) = report.results[0]["rows"]
        assert row[0] == 12 and row[1] == 12

        # The report must flow through the standard regression gate.
        comparison = compare(report, report)
        assert not comparison.regressions
