"""Batch kernels must agree elementwise with the scalar predicates."""

import numpy as np
import pytest

from repro.geometry.aabb import AABB
from repro.geometry.batch import (
    tool_aabb_batch,
    tool_aabb_cull_batch,
    tool_point_distance_2d,
)
from repro.geometry.cylinder import Cylinder
from repro.geometry.frames import frame_from_axis
from repro.geometry.orientation import direction_from_angles
from repro.geometry.predicates import tool_cylinders_aabb_intersects


@pytest.fixture(scope="module")
def random_batch(rng):
    P = 600
    pivot = np.array([0.5, -0.25, 1.0])
    z0s = np.array([0.0, 2.0, 8.0])
    z1s = np.array([2.0, 8.0, 11.0])
    rads = np.array([0.5, 1.5, 3.0])
    dirs = direction_from_angles(
        rng.uniform(0.01, np.pi - 0.01, P), rng.uniform(0, 2 * np.pi, P)
    )
    centers = rng.uniform(-10, 10, (P, 3))
    halves = rng.uniform(0.05, 2.5, P)
    return pivot, dirs, centers, halves, z0s, z1s, rads


def _scalar_reference(pivot, dirs, centers, halves, z0s, z1s, rads):
    out = np.zeros(len(dirs), dtype=bool)
    for i in range(len(dirs)):
        cyls = [
            Cylinder(pivot, dirs[i], z0s[c], z1s[c], rads[c]) for c in range(len(z0s))
        ]
        out[i] = tool_cylinders_aabb_intersects(cyls, AABB.cube(centers[i], halves[i]))
    return out


class TestToolAabbBatch:
    def test_matches_scalar_screened(self, random_batch):
        exp = _scalar_reference(*random_batch)
        got = tool_aabb_batch(*random_batch, screen=True)
        np.testing.assert_array_equal(got, exp)

    def test_matches_scalar_unscreened(self, random_batch):
        pivot, dirs, centers, halves, z0s, z1s, rads = random_batch
        exp = _scalar_reference(pivot, dirs[:200], centers[:200], halves[:200], z0s, z1s, rads)
        got = tool_aabb_batch(
            pivot, dirs[:200], centers[:200], halves[:200], z0s, z1s, rads, screen=False
        )
        np.testing.assert_array_equal(got, exp)

    def test_screen_invariance(self, random_batch):
        a = tool_aabb_batch(*random_batch, screen=True)
        b = tool_aabb_batch(*random_batch, screen=False)
        np.testing.assert_array_equal(a, b)

    def test_chunking_invariance(self, random_batch):
        a = tool_aabb_batch(*random_batch, chunk=64)
        b = tool_aabb_batch(*random_batch, chunk=100000)
        np.testing.assert_array_equal(a, b)

    def test_empty_batch(self):
        got = tool_aabb_batch(
            np.zeros(3),
            np.zeros((0, 3)),
            np.zeros((0, 3)),
            np.zeros(0),
            [0.0],
            [1.0],
            [1.0],
        )
        assert got.shape == (0,)

    def test_single_cylinder_scalar_tool_params(self):
        got = tool_aabb_batch(
            np.zeros(3),
            np.array([[0.0, 0.0, 1.0]]),
            np.array([[0.0, 0.0, 5.0]]),
            np.array([0.5]),
            0.0,
            10.0,
            2.0,
        )
        assert got[0]

    def test_per_axis_halves(self):
        # a slab box: thin in x, long in z — touches only via its z extent
        got = tool_aabb_batch(
            np.zeros(3),
            np.array([[0.0, 0.0, 1.0]]),
            np.array([[2.5, 0.0, 5.0]]),
            np.array([[0.5, 0.5, 4.0]]),
            0.0,
            10.0,
            2.0,
        )
        assert got[0]


class TestScalarHalvesAndFrames:
    """The frontier engine's fast-path arguments must not change verdicts."""

    def test_scalar_half_matches_vector(self, random_batch):
        # v2 passes the level's shared cube half-edge as a plain scalar;
        # it must decide exactly like the equivalent per-item vector.
        pivot, dirs, centers, _, z0s, z1s, rads = random_batch
        h = 1.25
        vec = np.full(len(dirs), h)
        np.testing.assert_array_equal(
            tool_aabb_batch(pivot, dirs, centers, h, z0s, z1s, rads),
            tool_aabb_batch(pivot, dirs, centers, vec, z0s, z1s, rads),
        )
        np.testing.assert_array_equal(
            tool_aabb_cull_batch(pivot, dirs, centers, h, z0s, z1s, rads),
            tool_aabb_cull_batch(pivot, dirs, centers, vec, z0s, z1s, rads),
        )

    def test_scalar_half_matches_scalar_reference(self, random_batch):
        pivot, dirs, centers, _, z0s, z1s, rads = random_batch
        h = 1.25
        exp = _scalar_reference(
            pivot, dirs, centers, np.full(len(dirs), h), z0s, z1s, rads
        )
        np.testing.assert_array_equal(
            tool_aabb_batch(pivot, dirs, centers, h, z0s, z1s, rads), exp
        )

    def test_precomputed_frames_identical(self, random_batch):
        # v2 hoists the per-thread tool frames once per block and passes
        # them in; frame_from_axis is deterministic, so the kernel must
        # return bit-identical verdicts either way.
        pivot, dirs, centers, halves, z0s, z1s, rads = random_batch
        frames = frame_from_axis(dirs)
        np.testing.assert_array_equal(
            tool_aabb_batch(
                pivot, dirs, centers, halves, z0s, z1s, rads, frames=frames
            ),
            tool_aabb_batch(pivot, dirs, centers, halves, z0s, z1s, rads),
        )
        # ...including through the internal chunk loop.
        np.testing.assert_array_equal(
            tool_aabb_batch(
                pivot, dirs, centers, halves, z0s, z1s, rads,
                frames=frames, chunk=77,
            ),
            tool_aabb_batch(pivot, dirs, centers, halves, z0s, z1s, rads),
        )


class TestCullBatch:
    def test_conservative(self, random_batch):
        """Cull == False must imply the exact test is False."""
        exact = tool_aabb_batch(*random_batch)
        cull = tool_aabb_cull_batch(*random_batch)
        assert not (exact & ~cull).any()

    def test_cull_actually_culls(self, random_batch):
        cull = tool_aabb_cull_batch(*random_batch)
        assert (~cull).sum() > 0  # it should reject a decent share

    def test_chunking_invariance(self, random_batch):
        pivot, dirs, centers, halves, z0s, z1s, rads = random_batch
        a = tool_aabb_cull_batch(pivot, dirs, centers, halves, z0s, z1s, rads, chunk=77)
        b = tool_aabb_cull_batch(pivot, dirs, centers, halves, z0s, z1s, rads)
        np.testing.assert_array_equal(a, b)


class TestToolPointDistance2D:
    def test_matches_cylinder_distance(self, rng):
        z0s = np.array([0.0, 3.0])
        z1s = np.array([3.0, 9.0])
        rads = np.array([1.0, 2.5])
        pivot = np.zeros(3)
        d = np.array([0.0, 0.0, 1.0])
        cyls = [Cylinder(pivot, d, z0s[c], z1s[c], rads[c]) for c in range(2)]
        pts = rng.uniform(-12, 12, (300, 3))
        axial = pts[:, 2]
        radial = np.hypot(pts[:, 0], pts[:, 1])
        got = tool_point_distance_2d(z0s, z1s, rads, axial, radial)
        exp = np.minimum(cyls[0].distance_to_point(pts), cyls[1].distance_to_point(pts))
        np.testing.assert_allclose(got, exp, atol=1e-12)

    def test_inside_zero(self):
        got = tool_point_distance_2d([0.0], [5.0], [2.0], np.array([2.5]), np.array([1.0]))
        assert got[0] == 0.0
