"""Metrics registry: counters, gauges, and histograms.

Where the tracer answers "where did the time go", the registry answers
"how much work happened": total check counts by type, memo-table hit
volumes, per-thread visit distributions.  Instrumentation points grab
the ambient registry with :func:`get_metrics` and accumulate into it;
:class:`~repro.engine.counters.ThreadCounters` exports its per-thread
arrays here at the end of every CD run (see ``ThreadCounters.export``).

Metric types:

* :class:`Counter` — monotone accumulator (int or float); ``inc()``.
* :class:`Gauge` — last-write-wins value; ``set()``.
* :class:`Histogram` — running count/sum/min/max plus power-of-two
  bucket counts; ``observe()`` / vectorized ``observe_many()``.

Unlike tracing, metric accumulation is always on (a handful of scalar
adds per CD run — far below measurement noise); swap in a fresh registry
with :func:`use_metrics` to scope collection to one report.

Thread safety: the registry's create-or-get and every metric mutation
take a lock, because the serving tier mutates the ambient registry from
many ``ThreadingHTTPServer`` dispatch threads at once — unlocked
``value += amount`` read-modify-writes lose updates under preemption.
The locks are per-metric and per-registry (no global), the hot
vectorized path of :meth:`Histogram.observe_many` stays outside the
lock (numpy reductions first, one locked accumulate after), and the
single-threaded bench path pays one uncontended lock per run — noise.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "use_metrics",
]


class Counter:
    """Monotonically increasing accumulator."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        with self._lock:
            self.value += amount

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-write-wins scalar."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = None
        self._lock = threading.Lock()

    def set(self, value) -> None:
        with self._lock:
            self.value = value

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Running summary stats plus power-of-two bucket counts.

    Bucket ``i`` counts observations in ``[2^(i-1), 2^i)`` (bucket 0 is
    ``[0, 1)``), which suits the long-tailed per-thread check counts the
    paper histograms in Figure 14 — exact quantiles are not needed for
    regression tracking, the shape is.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets", "_lock")

    N_BUCKETS = 64

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets = [0] * self.N_BUCKETS
        self._lock = threading.Lock()

    def observe(self, value) -> None:
        self.observe_many(np.asarray([value], dtype=np.float64))

    def observe_many(self, values) -> None:
        """Vectorized observe over an array of non-negative values."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        vmin = float(values.min())
        if vmin < 0:
            raise ValueError(f"histogram {self.name} takes non-negative values")
        vmax = float(values.max())
        vsum = float(values.sum())
        # log2 bucket index: [0,1) -> 0, [1,2) -> 1, [2,4) -> 2, ...
        idx = np.zeros(values.shape, dtype=np.intp)
        pos = values >= 1.0
        idx[pos] = np.floor(np.log2(values[pos])).astype(np.intp) + 1
        np.clip(idx, 0, self.N_BUCKETS - 1, out=idx)
        unique_idx, unique_counts = np.unique(idx, return_counts=True)
        # All numpy reductions above run unlocked; only the scalar
        # accumulate into shared state is serialized.
        with self._lock:
            self.count += int(values.size)
            self.total += vsum
            self.min = min(self.min, vmin)
            self.max = max(self.max, vmax)
            for i, c in zip(unique_idx, unique_counts):
                self.buckets[int(i)] += int(c)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        with self._lock:  # a consistent (count, sum, buckets) snapshot
            hi = max((i for i, c in enumerate(self.buckets) if c), default=-1)
            return {
                "type": "histogram",
                "count": self.count,
                "sum": self.total,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None,
                "mean": self.total / self.count if self.count else 0.0,
                "buckets": self.buckets[: hi + 1],
            }


class MetricsRegistry:
    """Create-or-get registry of named metrics (thread-safe)."""

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(metric).__name__}, not a {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def as_dict(self) -> dict[str, dict]:
        """JSON-ready snapshot, ordered by metric name."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        return {name: metric.to_dict() for name, metric in metrics}

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()


_CURRENT = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The ambient registry instrumentation points accumulate into."""
    return _CURRENT


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` (``None`` = fresh); returns the previous one."""
    global _CURRENT
    prev = _CURRENT
    _CURRENT = registry if registry is not None else MetricsRegistry()
    return prev


@contextmanager
def use_metrics(registry: MetricsRegistry | None = None):
    """Scoped :func:`set_metrics`: collect into ``registry`` for the block."""
    registry = registry if registry is not None else MetricsRegistry()
    prev = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(prev)
