"""Octree serialization (single-file ``.npz``).

Octree construction dominates pipeline setup time at high resolutions,
and a CAM application builds the model once and answers many
accessibility queries against it — so the tree must round-trip to disk.
The format is a flat ``.npz``: domain bounds, depth, and per-level code
and status arrays; forward-compatible via an explicit version tag.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.aabb import AABB
from repro.octree.linear import LinearOctree, OctreeLevel

__all__ = ["save_octree", "load_octree", "FORMAT_VERSION"]

FORMAT_VERSION = 1


def save_octree(tree: LinearOctree, path) -> None:
    """Write ``tree`` to ``path`` as a compressed ``.npz``."""
    payload: dict[str, np.ndarray] = {
        "format_version": np.asarray(FORMAT_VERSION),
        "domain_lo": tree.domain.lo,
        "domain_hi": tree.domain.hi,
        "depth": np.asarray(tree.depth),
    }
    for l, lev in enumerate(tree.levels):
        payload[f"codes_{l}"] = lev.codes
        payload[f"status_{l}"] = lev.status
    np.savez_compressed(path, **payload)


def _read(data, key: str, path) -> np.ndarray:
    """One ``.npz`` member, with a clear error on truncated/corrupt files."""
    try:
        return data[key]
    except KeyError:
        raise ValueError(
            f"corrupt or truncated octree file {path!r}: missing array {key!r}"
        ) from None


def load_octree(path) -> LinearOctree:
    """Load a tree written by :func:`save_octree` (child links are rebuilt).

    Raises :class:`ValueError` — naming the missing array — when the file
    is truncated or not an octree ``.npz`` at all, rather than leaking a
    bare :class:`KeyError` from the archive lookup.
    """
    with np.load(path) as data:
        version = int(_read(data, "format_version", path))
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported octree format version {version} (expected {FORMAT_VERSION})"
            )
        domain = AABB(_read(data, "domain_lo", path), _read(data, "domain_hi", path))
        depth = int(_read(data, "depth", path))
        levels = []
        for l in range(depth + 1):
            codes = _read(data, f"codes_{l}", path).astype(np.uint64)
            status = _read(data, f"status_{l}", path).astype(np.uint8)
            levels.append(
                OctreeLevel(
                    codes=codes,
                    status=status,
                    child_start=np.full(len(codes), -1, dtype=np.intp),
                    child_count=np.zeros(len(codes), dtype=np.int8),
                )
            )
    return LinearOctree(domain, depth, levels)
