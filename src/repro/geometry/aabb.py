"""Axis-aligned bounding boxes (the *voxel* primitive).

Octree voxels are cubes, but the predicate layer works with general
AABBs so the same code serves bounding-volume culling (the *optimized
PBox* method) and the Section 6 box-as-two-cylinders extension.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.vec import as_vec3

__all__ = ["AABB"]


@dataclass(frozen=True)
class AABB:
    """Closed axis-aligned box ``[lo, hi]`` in world coordinates."""

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "lo", as_vec3(self.lo).astype(np.float64))
        object.__setattr__(self, "hi", as_vec3(self.hi).astype(np.float64))
        if self.lo.shape != (3,) or self.hi.shape != (3,):
            raise ValueError("AABB endpoints must be single 3-vectors")
        if np.any(self.hi < self.lo):
            raise ValueError(f"inverted AABB: lo={self.lo}, hi={self.hi}")

    @classmethod
    def from_center_half(cls, center, half) -> "AABB":
        """Box from center and (scalar or per-axis) half extent."""
        center = as_vec3(center)
        half = np.broadcast_to(np.asarray(half, np.float64), (3,))
        return cls(center - half, center + half)

    @classmethod
    def cube(cls, center, half: float) -> "AABB":
        """Axis-aligned cube — the shape of every octree voxel."""
        return cls.from_center_half(center, float(half))

    @property
    def center(self) -> np.ndarray:
        return 0.5 * (self.lo + self.hi)

    @property
    def half_extent(self) -> np.ndarray:
        return 0.5 * (self.hi - self.lo)

    @property
    def size(self) -> np.ndarray:
        return self.hi - self.lo

    @property
    def inscribed_radius(self) -> float:
        """Radius of the largest sphere inside the box (``sphere_1`` of Fig. 8)."""
        return float(np.min(self.half_extent))

    @property
    def circumscribed_radius(self) -> float:
        """Radius of the smallest sphere containing the box (``sphere_2``).

        For a cube of half-edge ``r`` this is ``sqrt(3)*r``, the factor the
        paper uses in ``CHECKICA`` line 4.
        """
        return float(np.linalg.norm(self.half_extent))

    def corners(self) -> np.ndarray:
        """The 8 corners, shape ``(8, 3)``, in lexicographic bit order.

        Corner ``k`` takes ``hi`` on axis ``a`` iff bit ``a`` of ``k`` is
        set; the fixed ordering lets edge tables in the predicates index
        corners by bit arithmetic.
        """
        k = np.arange(8)
        bits = np.stack([(k >> a) & 1 for a in range(3)], axis=-1).astype(np.float64)
        return self.lo + bits * self.size

    def contains(self, points) -> np.ndarray:
        """Broadcasted point-in-box test (closed box)."""
        p = np.asarray(points, dtype=np.float64)
        return np.all((p >= self.lo) & (p <= self.hi), axis=-1)

    def distance_to_point(self, points) -> np.ndarray:
        """Broadcasted Euclidean distance from point(s) to the box (0 inside)."""
        p = np.asarray(points, dtype=np.float64)
        d = np.maximum(self.lo - p, 0.0) + np.maximum(p - self.hi, 0.0)
        return np.sqrt(np.einsum("...i,...i->...", d, d))

    def intersects(self, other: "AABB") -> bool:
        """Closed box-box overlap (touching counts as intersecting)."""
        return bool(np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi))

    def union(self, other: "AABB") -> "AABB":
        return AABB(np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi))

    def octant(self, k: int) -> "AABB":
        """Child octant ``k`` (0..7) using the same bit order as :meth:`corners`."""
        if not 0 <= k < 8:
            raise ValueError(f"octant index must be 0..7, got {k}")
        c = self.center
        bits = np.array([(k >> a) & 1 for a in range(3)], dtype=np.float64)
        lo = self.lo + bits * self.half_extent
        return AABB(lo, lo + self.half_extent)
