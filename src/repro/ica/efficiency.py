"""Theoretical ICA efficiency (Figure 9 of the paper).

*ICA efficiency* is the fraction of CD tests that CHECKICA resolves
without falling back to CHECKBOX.  Figure 9 estimates it analytically in
the simplified setting where the tool is a straight line through the
pivot and orientations are uniform in the polar angle:

* inscribed sphere (radius ``r`` at distance ``d``): the line touches it
  for ``theta <= arcsin(r/d)``;
* circumscribed sphere (radius ``sqrt(3) r``): ``theta <= arcsin(sqrt(3) r/d)``.

The *corner-case band* is the gap between the two, so its probability
under a uniform ``theta`` is ``(arcsin(sqrt(3) x) - arcsin(x)) / pi``
with ``x = r / d``.  Efficiency is one minus that — increasing toward 1
as ``x`` shrinks, which is why the method *gains* efficiency at higher
object resolutions (smaller voxels), the paper's key scaling argument.
"""

from __future__ import annotations

import numpy as np

__all__ = ["corner_case_probability", "theoretical_efficiency", "efficiency_vs_resolution"]

_SQRT3 = float(np.sqrt(3.0))


def corner_case_probability(r_over_dist) -> np.ndarray:
    """Probability that a uniform polar orientation lands in the corner band.

    ``r_over_dist`` broadcasts; values are clipped to the physical range
    (``x > 1/sqrt(3)`` means even the circumscribed arcsine saturates).
    """
    x = np.asarray(r_over_dist, dtype=np.float64)
    if np.any(x < 0.0):
        raise ValueError("r/dist must be non-negative")
    lo = np.arcsin(np.clip(x, 0.0, 1.0))
    hi = np.arcsin(np.clip(_SQRT3 * x, 0.0, 1.0))
    return (hi - lo) / np.pi


def theoretical_efficiency(r_over_dist) -> np.ndarray:
    """Figure 9's ICA efficiency estimate: ``1 - corner_case_probability``."""
    return 1.0 - corner_case_probability(r_over_dist)


def efficiency_vs_resolution(
    object_extent: float, pivot_distance: float, resolutions
) -> dict[int, float]:
    """Efficiency for voxels of a ``k^3`` grid over an object of given extent.

    A voxel at effective resolution ``k`` has inscribed radius
    ``object_extent / (2k)``; the ratio to the pivot distance drives the
    corner-case band.  Returns ``{k: efficiency}`` — the "efficiency
    benefits naturally from high-resolution representations" trend.
    """
    out = {}
    for k in resolutions:
        r = object_extent / (2.0 * int(k))
        out[int(k)] = float(theoretical_efficiency(r / pivot_distance))
    return out
