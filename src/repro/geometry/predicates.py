"""Exact scalar intersection predicates, including the paper's ``CHECKBOX``.

These are the *reference* implementations: readable, loop-based, and
exact (up to floating point).  The hot paths of the library use the
vectorized equivalents in :mod:`repro.geometry.batch`, which are
property-tested against these functions.

``CHECKBOX`` — cylinder vs. axis-aligned box
--------------------------------------------

The paper (Section 2, Figure 4) describes the baseline test as three
computationally intensive steps, which this implementation follows
literally:

1. *Rotation* — express the box corners in the cylinder frame (axis =
   local ``+z``), 9 elementary operations per point.
2. *Decomposition* — split the box into its 6 faces; each face is
   clipped to the cylinder's axial slab ``z in [z0, z1]`` (the clipping
   walks the face's 4 edge segments, matching the paper's 6 x 4
   decomposition).
3. *Projection* — project the clipped face polygon onto the cylinder's
   cross-section plane and compare its distance from the axis against
   the radius.

The cylinder intersects the box iff some face passes the projected test
or the cylinder lies entirely inside the box.  This is exact for
flat-capped finite cylinders; no capsule or sampling approximation is
involved, which is essential because ``CHECKBOX`` serves as the
ground-truth fallback inside ``CHECKICA``.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.aabb import AABB
from repro.geometry.cylinder import Cylinder
from repro.geometry.frames import apply_rotation, rotation_to_axis
from repro.geometry.sphere import Sphere

__all__ = [
    "aabb_aabb_intersects",
    "sphere_aabb_intersects",
    "sphere_sphere_intersects",
    "cylinder_sphere_intersects",
    "cylinder_point_contains",
    "cylinder_aabb_intersects",
    "tool_cylinders_aabb_intersects",
    "BOX_FACES",
]

# Faces of a box whose corners are indexed by bits (bit a set => ``hi`` on
# axis a, the order produced by :meth:`AABB.corners`).  Each row lists the
# 4 corner indices of one face in cyclic order, so a face can be treated
# directly as a polygon.
BOX_FACES: tuple[tuple[int, int, int, int], ...] = (
    (0, 2, 6, 4),  # x = lo
    (1, 3, 7, 5),  # x = hi
    (0, 1, 5, 4),  # y = lo
    (2, 3, 7, 6),  # y = hi
    (0, 1, 3, 2),  # z = lo
    (4, 5, 7, 6),  # z = hi
)


def aabb_aabb_intersects(a: AABB, b: AABB) -> bool:
    """Closed box-box overlap."""
    return a.intersects(b)


def sphere_aabb_intersects(s: Sphere, box: AABB) -> bool:
    """Closed sphere-box overlap (clamped center distance)."""
    return s.intersects_aabb(box)


def sphere_sphere_intersects(a: Sphere, b: Sphere) -> bool:
    return a.intersects_sphere(b)


def cylinder_sphere_intersects(cyl: Cylinder, s: Sphere) -> bool:
    """Exact cylinder-sphere overlap.

    Because the cylinder is a solid of revolution, the 3D distance from
    the sphere center to the cylinder equals the 2D distance from the
    center's (axial, radial) coordinates to the generating rectangle —
    the reduction the whole ICA abstraction is built on.
    """
    return bool(cyl.distance_to_point(s.center) <= s.radius)


def cylinder_point_contains(cyl: Cylinder, point) -> bool:
    """Closed membership of a single point in the solid cylinder."""
    return bool(cyl.contains(point))


def _clip_polygon_halfspace(poly: list[np.ndarray], z: float, keep_greater: bool) -> list:
    """Sutherland-Hodgman clip of an ordered 3D polygon against ``z >= z``
    (``keep_greater``) or ``z <= z``.

    Returns the clipped polygon as an ordered vertex list (possibly empty).
    Convexity is preserved, so repeated clipping stays exact.
    """
    if not poly:
        return []
    sign = 1.0 if keep_greater else -1.0
    out: list[np.ndarray] = []
    n = len(poly)
    for i in range(n):
        a = poly[i]
        b = poly[(i + 1) % n]
        da = sign * (a[2] - z)
        db = sign * (b[2] - z)
        if da >= 0.0:
            out.append(a)
        if (da > 0.0 and db < 0.0) or (da < 0.0 and db > 0.0):
            t = da / (da - db)
            out.append(a + t * (b - a))
    return out


def _origin_distance_convex_polygon(pts: np.ndarray) -> float:
    """Distance from the 2D origin to an ordered convex polygon (0 inside).

    Handles degenerate polygons (collinear projections, repeated vertices)
    by falling back to edge distances: the strict-interior test only fires
    for genuinely 2-dimensional polygons, and boundary contact is always
    caught by the edge minimum.
    """
    n = len(pts)
    if n == 0:
        return np.inf
    if n == 1:
        return float(np.hypot(pts[0, 0], pts[0, 1]))
    nxt = np.roll(pts, -1, axis=0)
    cross = pts[:, 0] * nxt[:, 1] - pts[:, 1] * nxt[:, 0]
    if n >= 3 and (np.all(cross >= 0.0) or np.all(cross <= 0.0)) and np.any(cross != 0.0):
        return 0.0
    # Origin outside (or polygon degenerate): distance to the boundary.
    edge = nxt - pts
    len_sq = np.einsum("ij,ij->i", edge, edge)
    t = np.zeros(n)
    ok = len_sq > 0.0
    t[ok] = np.clip(-np.einsum("ij,ij->i", pts, edge)[ok] / len_sq[ok], 0.0, 1.0)
    closest = pts + t[:, None] * edge
    return float(np.min(np.hypot(closest[:, 0], closest[:, 1])))


def cylinder_aabb_intersects(cyl: Cylinder, box: AABB) -> bool:
    """``CHECKBOX``: exact overlap between a finite solid cylinder and a box.

    See the module docstring for the rotate / decompose / project pipeline.
    The op-count model for this test (``216 * N_c`` elementary operations
    per tool of ``N_c`` cylinders) lives in :mod:`repro.engine.costs`.
    """
    # Cylinder entirely inside the box is the one case no face test sees:
    # any cylinder point (the axis midpoint is the cheapest) inside the box
    # proves overlap.  All other overlap configurations cross the boundary
    # of the box and are caught by a face below.
    mid = cyl.pivot + 0.5 * (cyl.z0 + cyl.z1) * cyl.direction
    if box.contains(mid):
        return True

    # Rotation step: box corners in the cylinder frame.
    R = rotation_to_axis(cyl.direction)
    local = apply_rotation(R, box.corners() - cyl.pivot)

    # Decomposition + projection steps, face by face.
    for face in BOX_FACES:
        poly = [local[i] for i in face]
        poly = _clip_polygon_halfspace(poly, cyl.z0, keep_greater=True)
        poly = _clip_polygon_halfspace(poly, cyl.z1, keep_greater=False)
        if not poly:
            continue
        pts2 = np.asarray(poly, dtype=np.float64)[:, :2]
        if _origin_distance_convex_polygon(pts2) <= cyl.radius:
            return True
    return False


def tool_cylinders_aabb_intersects(cylinders, box: AABB) -> bool:
    """True iff *any* cylinder of the tool intersects the box.

    This is the whole-tool ``CHECKBOX`` the octree traversal invokes: the
    tool is the union of its bounding cylinders.
    """
    return any(cylinder_aabb_intersects(c, box) for c in cylinders)
