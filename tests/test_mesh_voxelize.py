"""Mesh extraction and the two voxelization paths."""

import numpy as np
import pytest

from repro.geometry.aabb import AABB
from repro.solids.mesh import extract_mesh, mesh_stats
from repro.solids.models import head_model
from repro.solids.sdf import BoxSDF, SphereSDF
from repro.solids.voxelize import grid_centers, voxelize_mesh, voxelize_sdf

DOMAIN = AABB((-10, -10, -10), (10, 10, 10))


class TestGridCenters:
    def test_shape_and_spacing(self):
        g = grid_centers(DOMAIN, 4)
        assert g.shape == (4, 4, 4, 3)
        # first center is half a cell from the corner
        np.testing.assert_allclose(g[0, 0, 0], [-7.5, -7.5, -7.5])
        np.testing.assert_allclose(g[-1, -1, -1], [7.5, 7.5, 7.5])

    def test_slab_slicing(self):
        g_all = grid_centers(DOMAIN, 8)
        g_sl = grid_centers(DOMAIN, 8, slice(2, 5))
        np.testing.assert_allclose(g_sl, g_all[2:5])


class TestVoxelizeSdf:
    def test_sphere_volume(self):
        g = voxelize_sdf(SphereSDF((0, 0, 0), 6.0), DOMAIN, 64)
        vol = g.sum() * (20 / 64) ** 3
        assert vol == pytest.approx(4 / 3 * np.pi * 6**3, rel=0.02)

    def test_center_sampling_semantics(self):
        # a box aligned exactly to cell boundaries fills exactly its cells
        g = voxelize_sdf(BoxSDF((0, 0, 0), (5.0, 5.0, 5.0)), DOMAIN, 8)
        assert g.sum() == 4 * 4 * 4

    def test_slab_invariance(self):
        s = SphereSDF((1, 2, 3), 5.0)
        a = voxelize_sdf(s, DOMAIN, 32, slab=4)
        b = voxelize_sdf(s, DOMAIN, 32, slab=64)
        np.testing.assert_array_equal(a, b)


class TestExtractMesh:
    def test_sphere_mesh_closed_and_sized(self):
        V, F = extract_mesh(SphereSDF((0, 0, 0), 6.0), DOMAIN, 32)
        stats = mesh_stats(V, F)
        assert stats["triangles"] > 500
        # surface area close to a sphere's
        assert stats["surface_area"] == pytest.approx(4 * np.pi * 36, rel=0.15)
        # closed 2-manifold: every edge appears exactly twice
        edges = {}
        for tri in F:
            for a, b in ((tri[0], tri[1]), (tri[1], tri[2]), (tri[2], tri[0])):
                key = (min(a, b), max(a, b))
                edges[key] = edges.get(key, 0) + 1
        counts = set(edges.values())
        assert counts == {2}, f"non-manifold edge counts: {counts}"

    def test_vertices_near_surface(self):
        s = SphereSDF((0, 0, 0), 6.0)
        V, _ = extract_mesh(s, DOMAIN, 32)
        # surface-net vertices sit within a cell of the true surface
        assert np.abs(s.value(V)).max() < 2 * (20 / 32)

    def test_empty_solid(self):
        V, F = extract_mesh(SphereSDF((100, 100, 100), 1.0), DOMAIN, 16)
        assert len(V) == 0 and len(F) == 0


class TestVoxelizeMesh:
    def test_sphere_roundtrip(self):
        s = SphereSDF((0.3, -0.2, 0.1), 6.0)
        V, F = extract_mesh(s, DOMAIN, 48)
        gm = voxelize_mesh(V, F, DOMAIN, 32)
        gs = voxelize_sdf(s, DOMAIN, 32)
        agree = (gm == gs).mean()
        assert agree > 0.985, f"mesh/sdf voxel agreement {agree}"

    def test_head_roundtrip(self):
        m = head_model()
        V, F = extract_mesh(m.sdf, m.domain, 48)
        gm = voxelize_mesh(V, F, m.domain, 32)
        gs = voxelize_sdf(m.sdf, m.domain, 32)
        assert (gm == gs).mean() > 0.97

    def test_rejects_bad_faces(self):
        with pytest.raises(ValueError):
            voxelize_mesh(np.zeros((3, 3)), np.zeros((2, 4), dtype=int), DOMAIN, 8)

    def test_column_chunk_invariance(self):
        s = SphereSDF((0, 0, 0), 6.0)
        V, F = extract_mesh(s, DOMAIN, 24)
        a = voxelize_mesh(V, F, DOMAIN, 16, column_chunk=7)
        b = voxelize_mesh(V, F, DOMAIN, 16, column_chunk=100000)
        np.testing.assert_array_equal(a, b)
