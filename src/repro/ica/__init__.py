"""The Inaccessible Cone Angle (ICA) abstraction — the paper's Section 3.

For a sphere of radius ``r`` whose center sits at distance ``dist`` from
the pivot, the set of tool orientations that touch the sphere forms a
cone around the pivot-to-center vector (Figure 6).  Because the tool is
a solid of revolution, the cone's opening angle is computed exactly in
2D: the arc of radius ``dist`` against the tool's generating rectangles
expanded by ``r`` (Figure 7, the "5 components per rectangle").

This package computes those angles exactly (including the configurations
the paper's prose glosses over, such as voxels beyond the tool's reach),
builds the memoized per-voxel table of stage 1 of AICA, and provides the
theoretical ICA-efficiency model of Figure 9.
"""

from repro.ica.cone import (
    tool_ica,
    tool_ica_batch,
    ica_bounds_arrays,
    inaccessible_intervals,
)
from repro.ica.table import IcaTable, build_ica_table
from repro.ica.io import load_ica_table, save_ica_table
from repro.ica.efficiency import (
    corner_case_probability,
    theoretical_efficiency,
)

__all__ = [
    "tool_ica",
    "tool_ica_batch",
    "ica_bounds_arrays",
    "inaccessible_intervals",
    "IcaTable",
    "build_ica_table",
    "save_ica_table",
    "load_ica_table",
    "corner_case_probability",
    "theoretical_efficiency",
]
