"""The shared level-synchronous octree traversal (Algorithm 2, batched).

On the GPU, each thread runs Algorithm 2's explicit-stack DFS over the
octree for its orientation.  The vectorized equivalent used here is a
*frontier*: the set of live (thread, node) pairs, advanced one octree
level at a time.  Per level, the active method classifies every pair
(``NO`` = prune, ``YES`` = the tool provably intersects the node's box,
``EXPAND`` = AICA's inconclusive-but-expandable corner case), and the
frontier is rebuilt:

* ``YES`` on a FULL node -> the thread's orientation collides; all of
  the thread's other pairs are dropped (Algorithm 2's early return);
* ``YES`` on a MIXED node -> the node's stored children join the
  frontier;
* ``EXPAND`` on a FULL interior node -> eight *virtual* FULL sub-cells
  join the frontier (geometric subdivision of a solid region, which the
  stored tree does not materialize).

The traversal visits exactly the nodes the per-thread DFS would visit,
up to within-level ordering after a collision (a sequential thread stops
mid-level; the batched version finishes the level).  Check counts per
thread are recorded in :class:`~repro.engine.counters.ThreadCounters`
and converted to simulated kernel time by :mod:`repro.engine.simt`.

Threads are processed in blocks (GPU thread blocks) so peak frontier
memory stays bounded at any map resolution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.cd.result import CDResult
from repro.cd.scene import Scene
from repro.engine.costs import CostModel, DEFAULT_COSTS
from repro.engine.counters import StageBreakdown, ThreadCounters
from repro.engine.device import DeviceSpec, GTX_1080_TI
from repro.engine.simt import simulate_kernel, simulate_stage
from repro.geometry.orientation import OrientationGrid
from repro.ica.table import IcaTable, build_ica_table
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.octree.linear import STATUS_FULL, STATUS_MIXED

__all__ = ["TraversalConfig", "Runtime", "Wave", "run_cd", "OUT_NO", "OUT_YES", "OUT_EXPAND"]

OUT_NO = np.uint8(0)
OUT_YES = np.uint8(1)
OUT_EXPAND = np.uint8(2)


@dataclass(frozen=True)
class TraversalConfig:
    """Tunable parameters of the parallel scheme.

    ``start_level`` is the paper's top-level expansion (top 5 levels
    collapsed into one 32^3 base level); ``memo_levels`` is the paper's
    ``S`` (stage-1 precompute depth, default 8); ``thread_block`` bounds
    the number of orientations processed per frontier sweep.
    """

    start_level: int = 5
    memo_levels: int = 8
    thread_block: int = 2048
    max_pairs: int = 4_000_000  # frontier chunking threshold inside a block


@dataclass
class Wave:
    """One frontier level's pair arrays, as seen by a method's decide()."""

    level: int
    threads: np.ndarray  # (F,) global thread (orientation) indices
    codes: np.ndarray  # (F,) uint64 Morton codes at `level`
    idx: np.ndarray  # (F,) stored-node index at `level`, -1 if virtual
    status: np.ndarray  # (F,) uint8 node status (virtual nodes are FULL)
    centers: np.ndarray  # (F, 3) node centers
    half: float  # cell half-edge at `level`
    dirs: np.ndarray  # (F, 3) tool direction per pair

    @property
    def size(self) -> int:
        return len(self.threads)


@dataclass
class Runtime:
    """Per-run shared state handed to the methods."""

    scene: Scene
    grid: OrientationGrid
    counters: ThreadCounters
    costs: CostModel
    config: TraversalConfig
    table: IcaTable | None = None
    all_dirs: np.ndarray = field(default=None)

    def __post_init__(self) -> None:
        if self.all_dirs is None:
            self.all_dirs = self.grid.directions()


def _ranges(counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(c)`` for each c in counts: [0..c0), [0..c1), ..."""
    counts = np.asarray(counts, dtype=np.intp)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.intp)
    starts = np.repeat(np.cumsum(counts) - counts, counts)
    return np.arange(total, dtype=np.intp) - starts


def initial_frontier(scene: Scene, start_level: int):
    """Base cells after the top-level expansion.

    Returns ``(level, codes, idx, status)`` where the cells are all
    stored nodes at ``start_level`` plus the virtual leaf-ward expansion
    of any FULL node living above it (a solid region coarser than the
    base level still has to be visible to every thread).
    """
    tree = scene.tree
    L0 = min(start_level, tree.depth)
    codes = [tree.levels[L0].codes]
    idx = [np.arange(tree.levels[L0].n, dtype=np.intp)]
    status = [tree.levels[L0].status]
    for l in range(L0):
        lev = tree.levels[l]
        full = lev.status == STATUS_FULL
        if not full.any():
            continue
        shift = np.uint64(3 * (L0 - l))
        base = lev.codes[full] << shift
        n_sub = 1 << (3 * (L0 - l))
        sub = (base[:, None] + np.arange(n_sub, dtype=np.uint64)).ravel()
        codes.append(sub)
        idx.append(np.full(len(sub), -1, dtype=np.intp))
        status.append(np.full(len(sub), STATUS_FULL, dtype=np.uint8))
    return (
        L0,
        np.concatenate(codes),
        np.concatenate(idx),
        np.concatenate(status),
    )


def _advance(rt: Runtime, wave: Wave, outcomes: np.ndarray, collides: np.ndarray):
    """Apply one level's outcomes; return the next level's frontier arrays.

    Marks collisions, drops pairs of collided threads, and expands the
    surviving YES-on-MIXED / EXPAND pairs (stored children for MIXED,
    virtual FULL octants for FULL interior nodes).
    """
    tree = rt.scene.tree
    level = wave.level

    hit = (outcomes == OUT_YES) & (wave.status == STATUS_FULL)
    if hit.any():
        collides[np.unique(wave.threads[hit])] = True

    live = ~collides[wave.threads]
    grow = ((outcomes == OUT_YES) & (wave.status == STATUS_MIXED)) | (outcomes == OUT_EXPAND)
    grow &= live
    if not grow.any() or level >= tree.depth:
        return (
            np.zeros(0, dtype=wave.threads.dtype),
            np.zeros(0, dtype=np.uint64),
            np.zeros(0, dtype=np.intp),
            np.zeros(0, dtype=np.uint8),
        )

    nxt = tree.levels[level + 1]
    out_threads = []
    out_codes = []
    out_idx = []
    out_status = []

    stored = grow & (wave.status == STATUS_MIXED)
    if stored.any():
        parent_idx = wave.idx[stored]
        lev = tree.levels[level]
        cs = lev.child_start[parent_idx]
        cc = lev.child_count[parent_idx].astype(np.intp)
        child_idx = np.repeat(cs, cc) + _ranges(cc)
        out_threads.append(np.repeat(wave.threads[stored], cc))
        out_codes.append(nxt.codes[child_idx])
        out_idx.append(child_idx)
        out_status.append(nxt.status[child_idx])

    virtual = grow & (wave.status == STATUS_FULL)
    if virtual.any():
        base = wave.codes[virtual] << np.uint64(3)
        sub = (base[:, None] + np.arange(8, dtype=np.uint64)).ravel()
        out_threads.append(np.repeat(wave.threads[virtual], 8))
        out_codes.append(sub)
        out_idx.append(np.full(len(sub), -1, dtype=np.intp))
        out_status.append(np.full(len(sub), STATUS_FULL, dtype=np.uint8))

    return (
        np.concatenate(out_threads),
        np.concatenate(out_codes),
        np.concatenate(out_idx),
        np.concatenate(out_status),
    )


def run_cd(
    scene: Scene,
    grid: OrientationGrid,
    method,
    *,
    device: DeviceSpec = GTX_1080_TI,
    costs: CostModel = DEFAULT_COSTS,
    config: TraversalConfig = TraversalConfig(),
) -> CDResult:
    """Generate the accessibility map for ``scene`` with ``method``.

    ``method`` is one of the classes in :mod:`repro.cd.methods`.  Returns
    a :class:`CDResult` whose counters and timing cover both traversal
    stages (the ICA precompute, when the method uses one, and the CD
    tests).
    """
    t_wall0 = time.perf_counter()
    tracer = get_tracer()
    M = grid.size
    counters = ThreadCounters(n_threads=M, n_cyl=scene.n_cylinders)
    rt = Runtime(scene=scene, grid=grid, counters=counters, costs=costs, config=config)

    with tracer.span("cd.run", method=method.name, orientations=M) as run_sp:
        table_entries = 0
        if getattr(method, "needs_table", False):
            rt.table = build_ica_table(
                scene.tree, scene.tool, scene.pivot, levels=config.memo_levels
            )
            table_entries = rt.table.n_entries

        L0, base_codes, base_idx, base_status = initial_frontier(scene, config.start_level)
        collides = np.zeros(M, dtype=bool)
        tree = scene.tree

        with tracer.span("cd.traversal", start_level=L0):
            for t0 in range(0, M, config.thread_block):
                t1 = min(t0 + config.thread_block, M)
                block = np.arange(t0, t1, dtype=np.intp)
                nb = len(base_codes)
                threads = np.repeat(block, nb)
                codes = np.tile(base_codes, len(block))
                idx = np.tile(base_idx, len(block))
                status = np.tile(base_status, len(block))

                level = L0
                while len(threads):
                    with tracer.span("cd.level", level=level, pairs=len(threads)):
                        centers = tree.centers_of_codes(level, codes)
                        wave = Wave(
                            level=level,
                            threads=threads,
                            codes=codes,
                            idx=idx,
                            status=status,
                            centers=centers,
                            half=tree.cell_half(level),
                            dirs=rt.all_dirs[threads],
                        )
                        counters.add_threads("nodes_visited", threads, M)
                        outcomes = method.decide(rt, wave)
                        threads, codes, idx, status = _advance(rt, wave, outcomes, collides)
                    level += 1
                    if level > tree.depth:
                        break

        wall = time.perf_counter() - t_wall0
        cd_s = simulate_kernel(counters.thread_ops(costs), device)
        pre_s = (
            simulate_stage(costs.ica_precompute(scene.n_cylinders), table_entries, device)
            if table_entries
            else 0.0
        )
        run_sp.set(
            colliding=int(collides.sum()),
            total_checks=counters.total_checks,
            table_entries=table_entries,
            sim_cd_s=cd_s,
            sim_precompute_s=pre_s,
        )

    metrics = get_metrics()
    counters.export(metrics, prefix="cd")
    metrics.counter("cd.runs").inc()
    metrics.counter("cd.table_entries").inc(table_entries)
    metrics.counter("cd.sim_cd_s").inc(cd_s)
    metrics.counter("cd.sim_precompute_s").inc(pre_s)
    metrics.counter("cd.wall_s").inc(wall)

    return CDResult(
        method=method.name,
        grid=grid,
        collides=collides,
        counters=counters,
        timing=StageBreakdown(ica_precompute_s=pre_s, cd_tests_s=cd_s, wall_s=wall),
        device_name=device.name,
        table_entries=table_entries,
        config=config,
    )
