"""The memoized ICA table, the Fig 9 efficiency model, and box-ICA."""

import numpy as np
import pytest

from repro.ica.boxica import box_corner_fraction, box_ica_bounds_cos
from repro.ica.cone import ica_bounds_cos
from repro.ica.efficiency import (
    corner_case_probability,
    efficiency_vs_resolution,
    theoretical_efficiency,
)
from repro.ica.table import SQRT3, build_ica_table
from repro.tool.tool import paper_tool


class TestIcaTable:
    @pytest.fixture(scope="class")
    def table(self, head_tree_64_expanded):
        return build_ica_table(
            head_tree_64_expanded, paper_tool(), np.array([0.0, -30.0, 5.0])
        )

    def test_covers_requested_levels(self, table, head_tree_64_expanded):
        # Default is the paper's S = 8, capped at the level count (depth+1).
        assert table.levels == min(8, head_tree_64_expanded.depth + 1)
        for l in range(table.levels):
            assert len(table.cos1[l]) == head_tree_64_expanded.levels[l].n

    def test_entry_count(self, table, head_tree_64_expanded):
        expected = sum(
            head_tree_64_expanded.levels[l].n for l in range(table.levels)
        )
        assert table.n_entries == expected

    def test_values_match_direct_computation(self, table, head_tree_64_expanded):
        tool = paper_tool()
        tree = head_tree_64_expanded
        l = tree.depth
        centers = tree.centers(l)
        dist = np.linalg.norm(centers - table.pivot, axis=1)
        half = tree.cell_half(l)
        lo, _ = ica_bounds_cos(tool.z0, tool.z1, tool.radius, dist, np.full(len(dist), half))
        _, hi = ica_bounds_cos(
            tool.z0, tool.z1, tool.radius, dist, np.full(len(dist), SQRT3 * half)
        )
        np.testing.assert_array_equal(table.cos1[l], lo)
        np.testing.assert_array_equal(table.cos2[l], hi)

    def test_lookup_gathers(self, table):
        l = table.levels - 1
        idx = np.array([0, min(2, len(table.cos1[l]) - 1)])
        c1, c2 = table.lookup(l, idx)
        np.testing.assert_array_equal(c1, table.cos1[l][idx])
        np.testing.assert_array_equal(c2, table.cos2[l][idx])

    def test_lookup_beyond_levels_raises(self, table):
        with pytest.raises(KeyError):
            table.lookup(table.levels, np.array([0]))

    def test_partial_levels(self, head_tree_64_expanded):
        t = build_ica_table(
            head_tree_64_expanded, paper_tool(), np.zeros(3), levels=3
        )
        assert t.levels == 3
        assert not t.has_level(3)
        assert t.has_level(2)


class TestDefaultMemoLevels:
    """The default S must be the paper's 8, matching TraversalConfig.

    Regression: the default used to evaluate to ``min(8, depth) + 1`` —
    nine memoized levels on deep trees, one more than the documented
    ``S = 8`` and than ``TraversalConfig.memo_levels`` requests.
    """

    @pytest.fixture(scope="class")
    def chain_tree(self):
        """Depth-9 single-branch tree: one MIXED node per level, FULL leaf."""
        from repro.geometry.aabb import AABB
        from repro.octree.linear import (
            STATUS_FULL,
            STATUS_MIXED,
            LinearOctree,
            OctreeLevel,
        )

        depth = 9
        levels = [
            OctreeLevel(
                codes=np.zeros(1, dtype=np.uint64),
                status=np.full(1, STATUS_MIXED if l < depth else STATUS_FULL),
                child_start=np.full(1, -1, dtype=np.intp),
                child_count=np.zeros(1, dtype=np.int8),
            )
            for l in range(depth + 1)
        ]
        return LinearOctree(AABB((0, 0, 0), (64, 64, 64)), depth, levels)

    def test_default_is_paper_s8(self, chain_tree):
        table = build_ica_table(chain_tree, paper_tool(), np.zeros(3))
        assert table.levels == 8
        assert table.n_entries == 8  # one node per memoized level 0..7

    def test_default_matches_traversal_config(self, chain_tree):
        from repro.cd.traversal import TraversalConfig

        explicit = build_ica_table(
            chain_tree, paper_tool(), np.zeros(3),
            levels=TraversalConfig().memo_levels,
        )
        default = build_ica_table(chain_tree, paper_tool(), np.zeros(3))
        assert default.levels == explicit.levels == TraversalConfig().memo_levels
        assert default.n_entries == explicit.n_entries == 8

    def test_shallow_tree_still_capped_at_level_count(self, head_tree_64_expanded):
        table = build_ica_table(
            head_tree_64_expanded, paper_tool(), np.zeros(3)
        )
        assert table.levels == head_tree_64_expanded.depth + 1  # depth 6 < S
        assert table.n_entries == head_tree_64_expanded.total_nodes


class TestEfficiencyModel:
    def test_limits(self):
        assert theoretical_efficiency(0.0) == pytest.approx(1.0)
        assert corner_case_probability(0.0) == pytest.approx(0.0)

    def test_formula(self):
        x = 0.1
        expected = (np.arcsin(np.sqrt(3) * x) - np.arcsin(x)) / np.pi
        assert corner_case_probability(x) == pytest.approx(expected, rel=1e-12)

    def test_monotone_decreasing(self):
        xs = np.linspace(0, 0.5, 50)
        eff = theoretical_efficiency(xs)
        assert (np.diff(eff) <= 1e-12).all()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            corner_case_probability(-0.1)

    def test_efficiency_vs_resolution_increases(self):
        out = efficiency_vs_resolution(60.0, 40.0, (64, 256, 1024))
        vals = list(out.values())
        assert vals == sorted(vals)
        assert out[1024] > 0.99


class TestBoxIca:
    def test_bounds_sound_against_box(self):
        """lo implies the sphere hits the box; hi implies it misses it."""
        z0, z1, wx, wy = 0.0, 40.0, 6.0, 4.0
        rng = np.random.default_rng(5)
        for _ in range(200):
            dist = rng.uniform(1.0, 80.0)
            r = rng.uniform(0.1, 3.0)
            lo, hi = box_ica_bounds_cos(z0, z1, wx, wy, np.array([dist]), np.array([r]))
            theta = rng.uniform(0, np.pi)
            ca = np.cos(theta)
            # exact sphere-box distance in the box frame (axis = +z):
            center = np.array([dist * np.sin(theta), 0.0, dist * np.cos(theta)])
            d = np.maximum(np.abs(center) - np.array([wx, wy, 0.0]), 0.0)
            dz = max(z0 - center[2], center[2] - z1, 0.0)
            box_dist = np.sqrt(d[0] ** 2 + d[1] ** 2 + dz**2)
            if ca >= lo[0]:
                assert box_dist <= r + 1e-9
            if ca <= hi[0]:
                assert box_dist >= r - 1e-9

    def test_corner_fraction_decreases_with_distance(self):
        f_near = box_corner_fraction(0.0, 60.0, 8.0, 5.0, 25.0, 1.0)
        f_far = box_corner_fraction(0.0, 60.0, 8.0, 5.0, 200.0, 1.0)
        assert f_far <= f_near

    def test_validation(self):
        with pytest.raises(ValueError):
            box_ica_bounds_cos(0.0, 10.0, -1.0, 1.0, np.array([5.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            box_ica_bounds_cos(5.0, 5.0, 1.0, 1.0, np.array([5.0]), np.array([1.0]))
