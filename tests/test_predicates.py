"""Exactness tests for the scalar CHECKBOX predicate.

The cylinder-box test is the ground truth everything else falls back to,
so it gets the heaviest scrutiny: hand-constructed configurations for
every contact class (cap, side, edge, corner, containment both ways) and
a Monte-Carlo soundness property under hypothesis.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.aabb import AABB
from repro.geometry.cylinder import Cylinder
from repro.geometry.orientation import direction_from_angles
from repro.geometry.predicates import (
    cylinder_aabb_intersects,
    cylinder_sphere_intersects,
    tool_cylinders_aabb_intersects,
)
from repro.geometry.sphere import Sphere

Z = np.array([0.0, 0.0, 1.0])


def _cyl(z0=0.0, z1=10.0, r=2.0, direction=Z, pivot=(0, 0, 0)):
    return Cylinder(np.asarray(pivot, float), direction, z0, z1, r)


class TestCylinderBoxHandConstructed:
    def test_box_far_away(self):
        assert not cylinder_aabb_intersects(_cyl(), AABB.cube([20, 0, 5], 1.0))

    def test_box_touching_side_exactly(self):
        # box face at x = 2.0 == radius
        assert cylinder_aabb_intersects(_cyl(), AABB([2.0, -1, 4], [4.0, 1, 6]))

    def test_box_just_past_side(self):
        assert not cylinder_aabb_intersects(_cyl(), AABB([2.001, -1, 4], [4.0, 1, 6]))

    def test_box_touching_cap(self):
        assert cylinder_aabb_intersects(_cyl(), AABB([-1, -1, 10.0], [1, 1, 12]))
        assert not cylinder_aabb_intersects(_cyl(), AABB([-1, -1, 10.001], [1, 1, 12]))

    def test_box_at_cap_edge_circle(self):
        # Box corner near the rim of the top cap: closest cylinder point is
        # the rim (2/sqrt(2), 2/sqrt(2), 10).
        e = 2.0 / np.sqrt(2.0)
        assert cylinder_aabb_intersects(
            _cyl(), AABB([e, e, 10.0], [e + 1, e + 1, 11.0])
        )
        assert not cylinder_aabb_intersects(
            _cyl(), AABB([e + 1e-3, e + 1e-3, 10.0 + 1e-3], [e + 1, e + 1, 11.0])
        )

    def test_cylinder_inside_box(self):
        assert cylinder_aabb_intersects(_cyl(), AABB([-50, -50, -50], [50, 50, 50]))

    def test_box_inside_cylinder(self):
        assert cylinder_aabb_intersects(_cyl(), AABB.cube([0, 0, 5], 0.5))

    def test_box_straddles_slab_without_corners_inside(self):
        # Tall thin box passing through the whole cylinder vertically.
        assert cylinder_aabb_intersects(_cyl(), AABB([-0.5, -0.5, -5], [0.5, 0.5, 20]))

    def test_box_beside_axis_but_outside_radius(self):
        assert not cylinder_aabb_intersects(_cyl(), AABB([3, 3, 0], [4, 4, 10]))

    def test_oblique_cylinder(self):
        d = direction_from_angles(np.pi / 4, 0.0)  # 45 deg in the xz plane
        c = _cyl(direction=d, r=1.0, z1=20.0)
        # a box sitting on the axis halfway out
        center = 10.0 * d
        assert cylinder_aabb_intersects(c, AABB.cube(center, 0.5))
        # same box displaced perpendicular by more than the radius + diag
        perp = np.array([d[2], 0, -d[0]])
        assert not cylinder_aabb_intersects(c, AABB.cube(center + 3.0 * perp, 0.5))

    def test_degenerate_projection_face(self):
        # Cylinder axis parallel to a box face: that face projects to a
        # segment in the cross-section plane; must still be exact.
        c = _cyl(direction=np.array([1.0, 0.0, 0.0]), z0=0.0, z1=10.0, r=1.0)
        assert cylinder_aabb_intersects(c, AABB([2, -1.0, -1.0], [4, 1.0, 1.0]))
        assert not cylinder_aabb_intersects(c, AABB([2, 1.001, -1.0], [4, 3.0, 1.0]))


class TestToolWrapper:
    def test_any_cylinder_hits(self):
        cyls = [_cyl(0, 1, 0.5), _cyl(5, 6, 3.0)]
        assert tool_cylinders_aabb_intersects(cyls, AABB.cube([2.9, 0, 5.5], 0.1))
        assert not tool_cylinders_aabb_intersects(cyls, AABB.cube([2.9, 0, 2.5], 0.1))


class TestCylinderSphere:
    def test_touching(self):
        assert cylinder_sphere_intersects(_cyl(), Sphere([3.0, 0, 5], 1.0))
        assert not cylinder_sphere_intersects(_cyl(), Sphere([3.01, 0, 5], 1.0))

    def test_cap_contact(self):
        assert cylinder_sphere_intersects(_cyl(), Sphere([0, 0, 11.0], 1.0))
        assert not cylinder_sphere_intersects(_cyl(), Sphere([0, 0, 11.01], 1.0))

    def test_corner_contact(self):
        # sphere near the rim corner (2, 0, 10): true distance is exactly 1,
        # so nudge the radius by an ulp-scale epsilon on each side
        assert cylinder_sphere_intersects(_cyl(), Sphere([2.6, 0, 10.8], 1.0 + 1e-9))
        assert not cylinder_sphere_intersects(_cyl(), Sphere([2.6, 0, 10.8], 1.0 - 1e-9))


@st.composite
def random_case(draw):
    phi = draw(st.floats(0.01, np.pi - 0.01))
    gamma = draw(st.floats(0, 2 * np.pi))
    z0 = draw(st.floats(-3, 3))
    height = draw(st.floats(0.5, 15))
    r = draw(st.floats(0.2, 4))
    cx = draw(st.floats(-12, 12))
    cy = draw(st.floats(-12, 12))
    cz = draw(st.floats(-12, 12))
    half = draw(st.floats(0.1, 3))
    return phi, gamma, z0, z0 + height, r, np.array([cx, cy, cz]), half


class TestMonteCarloSoundness:
    """If random sampling finds a common point, the predicate must say yes;
    if the predicate says yes, a fine sampling of the box must come within
    a tolerance of the cylinder."""

    @given(random_case())
    @settings(max_examples=40)
    def test_no_false_negatives(self, case):
        phi, gamma, z0, z1, r, center, half = case
        d = direction_from_angles(phi, gamma)
        cyl = _cyl(z0=z0, z1=z1, r=r, direction=d)
        box = AABB.cube(center, half)
        rng = np.random.default_rng(42)
        pts = center + rng.uniform(-half, half, (2000, 3))
        mc_hit = bool(cyl.contains(pts).any())
        got = cylinder_aabb_intersects(cyl, box)
        if mc_hit:
            assert got, "sampling found a common point but CHECKBOX said no"

    @given(random_case())
    @settings(max_examples=40)
    def test_positive_implies_near_contact(self, case):
        phi, gamma, z0, z1, r, center, half = case
        d = direction_from_angles(phi, gamma)
        cyl = _cyl(z0=z0, z1=z1, r=r, direction=d)
        box = AABB.cube(center, half)
        if cylinder_aabb_intersects(cyl, box):
            # distance from a dense box grid to the cylinder should reach ~0
            g = np.linspace(-half, half, 12)
            X, Y, Zg = np.meshgrid(g, g, g, indexing="ij")
            pts = center + np.stack([X, Y, Zg], axis=-1).reshape(-1, 3)
            dmin = cyl.distance_to_point(pts).min()
            # grid spacing bounds how far the true witness can be from a node
            spacing = np.sqrt(3) * (2 * half / 11)
            assert dmin <= spacing + 1e-9
