"""Adaptive volumetric octree over voxelized solids.

The target object of the CD problem is stored as a high-resolution
adaptive octree (Figure 3 of the paper): solid uniform regions collapse
into coarse FULL nodes, empty space is simply absent, and the boundary
is refined down to leaf voxels.  The octree is stored *linearly* — one
sorted Morton-code array per level — which is the layout a GPU port
would use and what the vectorized frontier traversal in
:mod:`repro.cd.traversal` consumes.
"""

from repro.octree.morton import morton_encode, morton_decode
from repro.octree.linear import (
    LinearOctree,
    OctreeLevel,
    STATUS_MIXED,
    STATUS_FULL,
)
from repro.octree.build import build_from_sdf, build_from_dense, expand_top
from repro.octree.stats import octree_stats

__all__ = [
    "morton_encode",
    "morton_decode",
    "LinearOctree",
    "OctreeLevel",
    "STATUS_MIXED",
    "STATUS_FULL",
    "build_from_sdf",
    "build_from_dense",
    "expand_top",
    "octree_stats",
]
