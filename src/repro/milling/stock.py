"""Dense voxel stock model with material removal and gouge accounting.

The stock is the block being machined: a dense boolean grid over the
same cubic domain as the target octree.  Cutting with the tool at a pose
clears every stock voxel whose center lies inside the tool's *cutting
portion* (by convention the first cylinder of the stack — the flutes;
the shank and holder must never touch anything, which is exactly what
the accessibility map guarantees when the pose comes from a CD query).

Removal is vectorized: only the cells inside the cutting cylinder's
world AABB are tested, so a cut costs O(local volume), not O(grid).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.aabb import AABB
from repro.geometry.cylinder import Cylinder
from repro.tool.tool import Tool

__all__ = ["VoxelStock"]


class VoxelStock:
    """A machinable dense voxel block.

    ``grid`` is boolean ``(k, k, k)`` in (z, y, x) order — the same
    layout as :func:`repro.solids.voxelize.voxelize_sdf` — where True
    means material present.  ``target`` (optional, same shape) marks
    cells that belong to the final part; removing one is a *gouge* and is
    tallied rather than silently allowed, so planner bugs surface.
    """

    def __init__(self, domain: AABB, grid: np.ndarray, target: np.ndarray | None = None):
        size = domain.size
        if not np.allclose(size, size[0]):
            raise ValueError("stock domain must be cubic")
        grid = np.asarray(grid, dtype=bool)
        if grid.ndim != 3 or len(set(grid.shape)) != 1:
            raise ValueError("stock grid must be a cubic 3D boolean array")
        self.domain = domain
        self.grid = grid.copy()
        self.resolution = grid.shape[0]
        self.cell = float(size[0]) / self.resolution
        if target is not None:
            target = np.asarray(target, dtype=bool)
            if target.shape != grid.shape:
                raise ValueError("target must match the stock grid shape")
        self.target = target
        self.gouged_cells = 0
        self.removed_cells = 0

    @classmethod
    def block_around(cls, domain: AABB, resolution: int, target: np.ndarray) -> "VoxelStock":
        """A full rectangular block of stock enclosing a target part."""
        grid = np.ones((resolution,) * 3, dtype=bool)
        return cls(domain, grid, target=target)

    # -- geometry helpers ---------------------------------------------------

    def _cell_range(self, lo: np.ndarray, hi: np.ndarray) -> tuple[slice, slice, slice]:
        """Grid slices (z, y, x) covering a world-space AABB, clamped."""
        i0 = np.floor((lo - self.domain.lo) / self.cell).astype(int)
        i1 = np.ceil((hi - self.domain.lo) / self.cell).astype(int)
        i0 = np.clip(i0, 0, self.resolution)
        i1 = np.clip(i1, 0, self.resolution)
        return (slice(i0[2], i1[2]), slice(i0[1], i1[1]), slice(i0[0], i1[0]))

    def _centers(self, sl: tuple[slice, slice, slice]) -> np.ndarray:
        zs = self.domain.lo[2] + (np.arange(sl[0].start, sl[0].stop) + 0.5) * self.cell
        ys = self.domain.lo[1] + (np.arange(sl[1].start, sl[1].stop) + 0.5) * self.cell
        xs = self.domain.lo[0] + (np.arange(sl[2].start, sl[2].stop) + 0.5) * self.cell
        Z, Y, X = np.meshgrid(zs, ys, xs, indexing="ij")
        return np.stack([X, Y, Z], axis=-1)

    # -- machining ------------------------------------------------------------

    def cut(self, tool: Tool, pivot, direction) -> int:
        """Remove material inside the tool's cutting cylinder at a pose.

        Returns the number of cells removed.  Cells belonging to the
        target are *not* removed; they are counted in ``gouged_cells``
        (a correct planner keeps that count at zero by only cutting at
        accessible orientations with an adequate margin).
        """
        pivot = np.asarray(pivot, dtype=np.float64)
        cutter = Cylinder(
            pivot,
            direction,
            float(tool.z0[0]),
            float(tool.z1[0]),
            float(tool.radius[0]),
        )
        box = cutter.aabb_world()
        sl = self._cell_range(box.lo, box.hi)
        if sl[0].start >= sl[0].stop or sl[1].start >= sl[1].stop or sl[2].start >= sl[2].stop:
            return 0
        centers = self._centers(sl)
        inside = cutter.contains(centers)
        region = self.grid[sl]
        hit = inside & region
        if self.target is not None:
            gouge = hit & self.target[sl]
            self.gouged_cells += int(gouge.sum())
            hit &= ~self.target[sl]
        removed = int(hit.sum())
        region[hit] = False
        self.grid[sl] = region
        self.removed_cells += removed
        return removed

    # -- progress metrics -------------------------------------------------------

    def remaining_cells(self) -> int:
        return int(self.grid.sum())

    def excess_cells(self) -> int:
        """Stock cells still present that are not part of the target."""
        if self.target is None:
            return self.remaining_cells()
        return int((self.grid & ~self.target).sum())

    def completion(self) -> float:
        """Fraction of removable (non-target) material already removed."""
        if self.target is None:
            total = self.grid.size
        else:
            total = int((~self.target).sum())
        if total == 0:
            return 1.0
        return 1.0 - self.excess_cells() / total

    def volume_mm3(self) -> float:
        return self.remaining_cells() * self.cell**3
