"""Benchmark scaling presets.

The paper sweeps 256^3-2048^3 object resolutions, 32^2-256^2 maps, and
2000 pivots per data point on CUDA hardware; a pure-NumPy single-core
substrate reproduces the *shape* of every experiment at reduced scale.
The preset is chosen with the ``REPRO_BENCH_SCALE`` environment variable
(``smoke`` | ``small`` | ``medium`` | ``large``); ``small`` is the
default and finishes the full bench suite in minutes.

Every experiment documents its own axes in terms of these presets so
EXPERIMENTS.md can state exactly what was run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["BenchScale", "SCALES", "current_scale"]


@dataclass(frozen=True)
class BenchScale:
    """One scaling preset for the whole bench suite."""

    name: str
    resolutions: tuple[int, ...]  # object-resolution sweep (paper: 256..2048)
    map_sizes: tuple[int, ...]  # AM-resolution sweep (paper: 32..256)
    default_resolution: int  # fixed object res for map sweeps
    default_map: int  # fixed map res for object sweeps
    n_pivots: int  # pivots averaged per data point (paper: 2000)
    heavy_methods: bool  # include PBox/PBoxOpt in full sweeps
    device_divisor: int = 1  # shrink the simulated device (see scaled_device)

    @property
    def resolution_labels(self) -> list[str]:
        return [f"{k}^3" for k in self.resolutions]


SCALES: dict[str, BenchScale] = {
    "smoke": BenchScale(
        name="smoke",
        resolutions=(16, 32),
        map_sizes=(4, 8),
        default_resolution=32,
        default_map=8,
        n_pivots=1,
        heavy_methods=True,
        device_divisor=64,
    ),
    "small": BenchScale(
        name="small",
        resolutions=(32, 64, 128),
        map_sizes=(8, 16, 32),
        default_resolution=64,
        default_map=16,
        n_pivots=2,
        heavy_methods=True,
        device_divisor=32,
    ),
    "medium": BenchScale(
        name="medium",
        resolutions=(64, 128, 256),
        map_sizes=(16, 32, 64),
        default_resolution=128,
        default_map=32,
        n_pivots=4,
        heavy_methods=True,
        device_divisor=8,
    ),
    "large": BenchScale(
        name="large",
        resolutions=(64, 128, 256, 512),
        map_sizes=(16, 32, 64, 128),
        default_resolution=256,
        default_map=64,
        n_pivots=8,
        heavy_methods=True,
        device_divisor=2,
    ),
}


def current_scale() -> BenchScale:
    """The preset selected by ``REPRO_BENCH_SCALE`` (default ``small``)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    try:
        return SCALES[name]
    except KeyError:
        raise KeyError(
            f"REPRO_BENCH_SCALE={name!r}; choose from {sorted(SCALES)}"
        ) from None
