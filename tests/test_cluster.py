"""The cluster tier: hash ring, health machine, wire client, router e2e.

The ring invariants are asserted *exactly* (every key either keeps its
owner or moves to the newcomer), not statistically — SHA-256 placement
is deterministic, so there is nothing to sample.  The router tests run
real ``ServiceHTTPServer`` replicas plus a real ``RouterHTTPServer`` on
loopback ports and drive them through the same wire client external
callers use.
"""

from __future__ import annotations

import base64
import io
import json
import os
import socket
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.cluster.health import (
    HealthMonitor,
    ReplicaHealth,
    ReplicaState,
    replica_label,
)
from repro.cluster.ring import HashRing, remapped_fraction
from repro.cluster.router import ClusterRouter, serve_router
from repro.obs.metrics import get_metrics
from repro.service.core import Service
from repro.service.http import serve
from repro.service.wire import (
    ServiceTimeout,
    ServiceUnreachable,
    http_json,
    retry_after_from,
)

REPLICAS3 = ["http://10.0.0.1:8077", "http://10.0.0.2:8077", "http://10.0.0.3:8077"]


def _keys(n: int) -> list[str]:
    return [f"scene-digest-{i:05d}" for i in range(n)]


# ---------------------------------------------------------------------------
# Consistent-hash ring
# ---------------------------------------------------------------------------


class TestHashRing:
    def test_balanced_distribution(self):
        ring = HashRing(REPLICAS3, vnodes=64)
        counts = {r: 0 for r in REPLICAS3}
        keys = _keys(3000)
        for k in keys:
            counts[ring.owner(k)] += 1
        assert sum(counts.values()) == len(keys)
        # A chi-square-style bound: with 64 vnodes each replica's share
        # must sit within ±35% of the uniform 1/3 (the observed spread
        # is ~±10%; the slack keeps the bound meaningful, not flaky —
        # nothing here is random, so a failure means the ring changed).
        mean = len(keys) / len(REPLICAS3)
        for replica, count in counts.items():
            assert 0.65 * mean < count < 1.35 * mean, (replica, count)
        chi2 = sum((c - mean) ** 2 / mean for c in counts.values())
        assert chi2 < 40.0

    def test_join_moves_keys_only_to_the_newcomer(self):
        keys = _keys(2000)
        before = HashRing(REPLICAS3, vnodes=64)
        after = HashRing(REPLICAS3, vnodes=64)
        after.add("http://10.0.0.4:8077")
        moved = 0
        for k in keys:
            o0, o1 = before.owner(k), after.owner(k)
            # The exact invariant: no key ever shuffles between
            # survivors — it keeps its owner or joins the new replica.
            assert o1 == o0 or o1 == "http://10.0.0.4:8077", (k, o0, o1)
            moved += o1 != o0
        # ...and the newcomer takes roughly its 1/(R+1) share.
        assert 0.10 < moved / len(keys) < 0.45
        assert remapped_fraction(before, after, keys) == moved / len(keys)

    def test_leave_moves_only_the_departed_replicas_keys(self):
        keys = _keys(2000)
        extra = "http://10.0.0.4:8077"
        before = HashRing(REPLICAS3 + [extra], vnodes=64)
        after = HashRing(REPLICAS3 + [extra], vnodes=64)
        after.remove(extra)
        for k in keys:
            o0, o1 = before.owner(k), after.owner(k)
            if o0 != extra:
                assert o1 == o0, (k, o0, o1)  # survivors keep their keys
            else:
                assert o1 != extra
        assert remapped_fraction(before, after, keys) < 0.45

    def test_departing_owners_keys_go_to_its_preference_successor(self):
        ring = HashRing(REPLICAS3, vnodes=64)
        without = {
            r: HashRing([x for x in REPLICAS3 if x != r], vnodes=64)
            for r in REPLICAS3
        }
        for k in _keys(300):
            pref = ring.preference(k)
            assert pref[0] == ring.owner(k)
            assert without[pref[0]].owner(k) == pref[1]

    def test_preference_lists_distinct_and_prefix_stable(self):
        ring = HashRing(REPLICAS3, vnodes=64)
        for k in _keys(100):
            pref = ring.preference(k)
            assert len(pref) == len(REPLICAS3)
            assert len(set(pref)) == len(pref)
            assert ring.preference(k, 2) == pref[:2]
            assert ring.preference(k, 99) == pref

    def test_insertion_order_does_not_matter(self):
        a = HashRing(REPLICAS3, vnodes=32)
        b = HashRing(list(reversed(REPLICAS3)), vnodes=32)
        for k in _keys(200):
            assert a.owner(k) == b.owner(k)

    def test_cross_process_determinism(self):
        ring = HashRing(REPLICAS3, vnodes=32)
        keys = _keys(64)
        local = [ring.owner(k) for k in keys]
        code = (
            "import json\n"
            "from repro.cluster.ring import HashRing\n"
            f"ring = HashRing({REPLICAS3!r}, vnodes=32)\n"
            f"print(json.dumps([ring.owner(k) for k in {keys!r}]))\n"
        )
        env = dict(os.environ)
        # A different hash seed must not change placement: the ring
        # hashes with SHA-256, never the process-seeded hash().
        env["PYTHONHASHSEED"] = "271828"
        import repro

        env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert out.returncode == 0, out.stderr
        assert json.loads(out.stdout) == local

    def test_membership_is_idempotent(self):
        ring = HashRing(REPLICAS3, vnodes=8)
        ring.add(REPLICAS3[0])
        assert len(ring) == 3
        ring.remove("http://not-there")
        owner = ring.owner("k")
        ring.remove(REPLICAS3[0])
        ring.remove(REPLICAS3[0])
        assert len(ring) == 2 and REPLICAS3[0] not in ring
        ring.add(REPLICAS3[0])
        assert ring.owner("k") == owner  # re-adding restores placement

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)
        with pytest.raises(ValueError):
            HashRing([""])
        empty = HashRing()
        assert empty.preference("k") == []
        with pytest.raises(LookupError):
            empty.owner("k")


# ---------------------------------------------------------------------------
# Health state machine
# ---------------------------------------------------------------------------


class FakeClock:
    def __init__(self, t: float = 100.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, s: float) -> None:
        self.t += s


class TestReplicaHealth:
    def test_state_machine_transitions(self):
        h = ReplicaHealth(
            "http://r:1", down_after=3, up_after=2, clock=FakeClock()
        )
        assert h.state is ReplicaState.HEALTHY and h.routable
        h.record_failure()
        assert h.state is ReplicaState.DEGRADED and h.routable  # one blip
        h.record_failure()
        assert h.state is ReplicaState.DEGRADED
        h.record_failure()
        assert h.state is ReplicaState.DOWN and not h.routable
        # One success is not enough to re-trust a flapping replica...
        h.record_success()
        assert h.state is ReplicaState.DEGRADED and h.routable
        # ...but up_after consecutive successes are.
        h.record_success()
        assert h.state is ReplicaState.HEALTHY
        # A failure mid-recovery resets the success streak.
        h.record_failure()
        h.record_success()
        assert h.state is ReplicaState.DEGRADED
        h.record_success()
        assert h.state is ReplicaState.HEALTHY

    def test_down_probe_backoff_doubles_and_caps(self):
        clock = FakeClock()
        h = ReplicaHealth(
            "http://r:1", down_after=1, up_after=1,
            probe_interval_s=2.0, backoff_base_s=0.5, backoff_max_s=4.0,
            clock=clock,
        )
        h.record_failure()  # -> DOWN (down_after=1), next probe in 0.5s
        assert h.state is ReplicaState.DOWN
        assert h.snapshot()["backoff_s"] == 0.5
        assert not h.probe_due()
        clock.advance(0.6)
        assert h.probe_due()
        for expect in (1.0, 2.0, 4.0, 4.0):  # doubles, then caps
            h.record_failure()
            assert h.snapshot()["backoff_s"] == expect
        # Recovery resets the backoff to base.
        h.record_success()
        assert h.snapshot()["backoff_s"] == 0.0  # reported only while DOWN
        assert h.state is ReplicaState.DEGRADED

    def test_healthy_probe_schedule(self):
        clock = FakeClock()
        h = ReplicaHealth("http://r:1", probe_interval_s=2.0, clock=clock)
        assert h.probe_due()  # a fresh replica is probed immediately
        h.record_success()
        assert not h.probe_due()
        clock.advance(2.1)
        assert h.probe_due()

    def test_replica_label(self):
        assert replica_label("http://127.0.0.1:8091") == "127_0_0_1_8091"
        assert replica_label("https://replica-3.internal:80/") == "replica_3_internal_80"
        assert replica_label("") == "replica"


class TestHealthMonitor:
    def test_tick_drives_the_state_machine(self):
        clock = FakeClock()
        answers = {"ok": False}
        mon = HealthMonitor(
            ["http://a:1"], lambda r: answers["ok"],
            probe_interval_s=2.0, down_after=2, up_after=1,
            backoff_base_s=0.5, clock=clock,
        )
        assert mon.tick() == 1  # due immediately
        assert mon.state("http://a:1") is ReplicaState.DEGRADED
        assert mon.tick() == 0  # not due again yet
        clock.advance(2.1)
        assert mon.tick() == 1
        assert mon.state("http://a:1") is ReplicaState.DOWN
        assert not mon.routable("http://a:1")
        # The replica restarts; the backoff re-probe notices.
        answers["ok"] = True
        clock.advance(0.6)
        assert mon.tick() == 1
        assert mon.state("http://a:1") is ReplicaState.DEGRADED
        clock.advance(2.1)
        mon.tick()
        assert mon.state("http://a:1") is ReplicaState.HEALTHY
        snap = mon.snapshot()
        assert snap["http://a:1"]["state"] == "healthy"

    def test_probe_exception_counts_as_failure(self):
        clock = FakeClock()

        def explode(replica):
            raise OSError("boom")

        mon = HealthMonitor(
            ["http://a:1"], explode, down_after=1, clock=clock
        )
        mon.tick()
        assert mon.state("http://a:1") is ReplicaState.DOWN


# ---------------------------------------------------------------------------
# Wire client: typed transport failures, Retry-After parsing
# ---------------------------------------------------------------------------


class TestWireClient:
    def test_connection_refused_is_service_unreachable(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nobody listens here now
        with pytest.raises(ServiceUnreachable) as exc:
            http_json(f"http://127.0.0.1:{port}/v1/healthz", timeout=5.0)
        assert "unreachable" in str(exc.value)
        assert exc.value.url.endswith("/v1/healthz")

    def test_silent_server_is_service_timeout(self):
        mute = socket.socket()
        mute.bind(("127.0.0.1", 0))
        mute.listen(1)  # accepts the connection, never answers
        port = mute.getsockname()[1]
        try:
            with pytest.raises(ServiceTimeout) as exc:
                http_json(f"http://127.0.0.1:{port}/v1/cd", {}, timeout=0.3)
            assert "timed out" in str(exc.value)
        finally:
            mute.close()

    def test_typed_errors_are_transport_errors_not_http(self):
        assert issubclass(ServiceUnreachable, Exception)
        assert issubclass(ServiceTimeout, Exception)
        from repro.service.wire import TransportError

        assert issubclass(ServiceUnreachable, TransportError)
        assert issubclass(ServiceTimeout, TransportError)

    def test_retry_after_precedence(self):
        # Header beats body beats default.
        assert retry_after_from({"Retry-After": "3"}, {"retry_after_s": 9}) == 3.0
        assert retry_after_from({"retry-after": " 1.5 "}, {}) == 1.5
        assert retry_after_from({}, {"retry_after_s": 0.7}) == 0.7
        assert retry_after_from({}, {}) == 0.2
        assert retry_after_from({}, None, default=1.0) == 1.0
        # Garbage header (e.g. an HTTP-date) falls through to the body.
        assert retry_after_from(
            {"Retry-After": "Fri, 08 Aug 2026 00:00:00 GMT"},
            {"retry_after_s": 0.4},
        ) == 0.4
        # Negative values clamp to zero — never sleep backwards.
        assert retry_after_from({"Retry-After": "-5"}, {}) == 0.0
        assert retry_after_from({}, {"retry_after_s": -1}) == 0.0


# ---------------------------------------------------------------------------
# Router end-to-end (real replicas + real router on loopback)
# ---------------------------------------------------------------------------


def _start_replica(**kwargs):
    svc = Service(workers=1, max_queue=kwargs.pop("max_queue", 8), **kwargs)
    httpd = serve(svc, port=0)
    threading.Thread(target=httpd.serve_forever, daemon=True).start()
    return svc, httpd, f"http://127.0.0.1:{httpd.server_address[1]}"


def _stop_replica(svc, httpd):
    httpd.shutdown()
    httpd.server_close()
    svc.close()


@pytest.fixture(scope="module")
def scene_body(sphere_scene):
    from repro.octree.io import save_octree

    buf = io.BytesIO()
    save_octree(sphere_scene.tree, buf)
    return {
        "npz_b64": base64.b64encode(buf.getvalue()).decode(),
        "tool": "paper",
        "pivot": sphere_scene.pivot.tolist(),
    }


@pytest.fixture(scope="module")
def cluster(scene_body):
    """Two live replicas behind a live router; the scene registered
    through the router (hedging effectively off for determinism)."""
    replicas = [_start_replica() for _ in range(2)]
    urls = [u for _, _, u in replicas]
    router = ClusterRouter(urls, hedge_after_s=30.0, probe_interval_s=0.5)
    httpd = serve_router(router, port=0)
    threading.Thread(target=httpd.serve_forever, daemon=True).start()
    router.start(0.1)
    base = f"http://127.0.0.1:{httpd.server_address[1]}"
    status, payload, _ = http_json(f"{base}/v1/scenes", scene_body, timeout=120.0)
    assert status == 200, payload
    yield base, payload["scene"], router, urls
    httpd.shutdown()
    httpd.server_close()
    router.close()
    for svc, rep_httpd, _ in replicas:
        _stop_replica(svc, rep_httpd)


def _counter(name: str) -> float:
    m = get_metrics().as_dict().get(name, {})
    return float(m.get("value", 0) or 0)


class TestRouterEndToEnd:
    def test_registration_reports_cluster_placement(self, cluster, sphere_scene):
        base, digest, router, urls = cluster
        # Content addressing survives the extra hop.
        assert digest == sphere_scene.content_digest()
        scenes = router.scenes()
        assert digest in scenes
        assert scenes[digest]["owner"] in urls
        assert set(scenes[digest]["registered_on"]) <= set(urls)

    def test_byte_identity_through_router_all_methods(self, cluster, sphere_scene):
        from repro.cd.methods import METHODS, method_by_name
        from repro.cd.traversal import run_cd
        from repro.geometry.orientation import OrientationGrid

        base, digest, _, _ = cluster
        assert len(METHODS) == 5
        for cls in METHODS:
            status, body, headers = http_json(f"{base}/v1/cd", {
                "scene": digest, "grid": [6, 6], "method": cls.name,
            }, timeout=120.0)
            assert status == 200, (cls.name, body)
            direct = run_cd(
                sphere_scene, OrientationGrid(6, 6), method_by_name(cls.name)
            )
            assert np.array_equal(
                np.asarray(body["map"], dtype=bool), direct.accessibility_map
            ), cls.name
            assert body["n_accessible"] == direct.n_accessible

    def test_identity_headers_and_request_id_echo(self, cluster):
        base, digest, router, urls = cluster
        status, body, headers = http_json(
            f"{base}/v1/cd",
            {"scene": digest, "grid": [6, 6], "method": "AICA"},
            timeout=120.0,
            headers={"X-Request-Id": "cluster-test-0001"},
        )
        assert status == 200
        assert headers.get("X-Request-Id") == "cluster-test-0001"
        assert headers.get("X-Repro-Router") == router.name
        assert headers.get("X-Repro-Replica") in urls

    def test_ring_endpoint_reports_placement(self, cluster):
        base, digest, _, urls = cluster
        status, ring, _ = http_json(f"{base}/v1/ring", timeout=30.0)
        assert status == 200
        assert sorted(ring["replicas"]) == sorted(urls)
        assert ring["vnodes"] == 64
        assert set(ring["health"].values()) <= {"healthy", "degraded", "down"}
        assert digest in ring["scenes"]
        status, keyed, _ = http_json(f"{base}/v1/ring?key={digest}", timeout=30.0)
        assert status == 200
        assert keyed["preference"][0] == ring["scenes"][digest]["owner"]
        assert sorted(keyed["candidates"]) == sorted(urls)

    def test_healthz_shows_router_role_and_replicas(self, cluster):
        base, _, _, urls = cluster
        status, body, _ = http_json(f"{base}/v1/healthz", timeout=30.0)
        assert status == 200
        assert body["role"] == "router"
        assert sorted(body["replicas"]) == sorted(urls)
        assert "60s" in body["window"]

    def test_router_metrics_exports_cluster_counters_and_window(self, cluster):
        base, digest, _, urls = cluster
        http_json(f"{base}/v1/cd", {
            "scene": digest, "grid": [6, 6], "method": "AICA",
        }, timeout=120.0)
        status, metrics, _ = http_json(f"{base}/v1/metrics", timeout=30.0)
        assert status == 200
        assert metrics["cluster.requests"]["value"] >= 1
        for url in urls:
            label = replica_label(url)
            assert f"cluster.replica.{label}.state" in metrics
        # The rolling window rides the standard gauge prefix.
        assert "service.window.60s.count" in metrics

    def test_unknown_scene_404_passes_through(self, cluster):
        base, _, _, _ = cluster
        status, body, _ = http_json(f"{base}/v1/cd", {
            "scene": "0" * 64, "grid": [4, 4], "method": "AICA",
        }, timeout=120.0)
        assert status == 404
        assert "unknown scene" in body["error"]

    def test_loadgen_cluster_report(self, cluster, tmp_path):
        from repro.obs.report import compare, load_report
        from repro.service.cli import main_loadgen

        base, digest, _, urls = cluster
        out = tmp_path / "cluster_loadgen.json"
        code = main_loadgen([
            "--url", base, "--scene", digest, "--pivot", "0", "0", "21",
            "-n", "10", "-c", "4", "--distinct", "2",
            "--grid", "6", "6", "--cluster", "--json", str(out),
        ])
        assert code == 0
        report = load_report(out)
        assert report.schema == "repro.obs.report/v1"
        # One disposition per request, summing to exactly -n.
        assert sum(report.meta["dispositions"].values()) == 10
        assert report.meta["dispositions"].get("ok", 0) >= 1
        # The aggregate report carries the whole fleet.
        assert sorted(report.meta["cluster"]["replicas"]) == sorted(urls)
        by_id = {r["exp_id"]: r for r in report.results}
        assert "loadgen.cluster" in by_id
        rows = by_id["loadgen.cluster"]["rows"]
        assert sorted(row[0] for row in rows) == sorted(urls)
        assert sum(row[2] for row in rows) >= 10  # routed requests
        # ...and still flows through the standard regression gate.
        assert not compare(report, report).regressions

    def test_loadgen_unreachable_target_exits_2(self):
        from repro.service.cli import main_loadgen

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        code = main_loadgen([
            "--url", f"http://127.0.0.1:{port}", "--scene", "0" * 64,
            "--pivot", "0", "0", "21", "-n", "1",
        ])
        assert code == 2


class TestRouterFailover:
    def test_owner_death_fails_over_without_client_errors(
        self, scene_body, sphere_scene
    ):
        from repro.cd.methods import method_by_name
        from repro.cd.traversal import run_cd
        from repro.geometry.orientation import OrientationGrid

        replicas = [_start_replica() for _ in range(2)]
        urls = [u for _, _, u in replicas]
        router = ClusterRouter(urls, hedge_after_s=30.0, probe_interval_s=30.0)
        httpd = serve_router(router, port=0)
        threading.Thread(target=httpd.serve_forever, daemon=True).start()
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        try:
            status, payload, _ = http_json(
                f"{base}/v1/scenes", scene_body, timeout=120.0
            )
            assert status == 200
            digest = payload["scene"]
            owner = payload["cluster"]["owner"]
            survivor = next(u for u in urls if u != owner)

            failovers0 = _counter("cluster.failover")
            for svc, rep_httpd, url in replicas:
                if url == owner:
                    _stop_replica(svc, rep_httpd)

            # The owner is dead and not yet probed out: the request must
            # still come back 200, transparently failing over (and
            # re-registering the scene if the survivor never saw it).
            status, body, headers = http_json(f"{base}/v1/cd", {
                "scene": digest, "grid": [5, 5], "method": "AICA",
            }, timeout=120.0)
            assert status == 200, body
            assert headers.get("X-Repro-Replica") == survivor
            assert _counter("cluster.failover") == failovers0 + 1
            direct = run_cd(
                sphere_scene, OrientationGrid(5, 5), method_by_name("AICA")
            )
            assert np.array_equal(
                np.asarray(body["map"], dtype=bool), direct.accessibility_map
            )
            # The router noticed the death passively (no probe needed).
            assert router.health.state(owner) is not ReplicaState.HEALTHY

            # Subsequent requests keep working against the survivor.
            status, body, _ = http_json(f"{base}/v1/cd", {
                "scene": digest, "grid": [5, 5], "method": "AICA",
            }, timeout=120.0)
            assert status == 200
        finally:
            httpd.shutdown()
            httpd.server_close()
            router.close()
            for svc, rep_httpd, url in replicas:
                if url != owner:
                    _stop_replica(svc, rep_httpd)


class TestRouterHedging:
    def test_hedge_fires_and_window_counts_once(self, scene_body):
        replicas = [_start_replica() for _ in range(2)]
        urls = [u for _, _, u in replicas]
        # hedge_after_s=0: every /v1/cd hedges immediately — the loser
        # must be discarded and the client must see exactly one answer.
        router = ClusterRouter(urls, hedge_after_s=0.0, probe_interval_s=30.0)
        httpd = serve_router(router, port=0)
        threading.Thread(target=httpd.serve_forever, daemon=True).start()
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        try:
            status, payload, _ = http_json(
                f"{base}/v1/scenes", scene_body, timeout=120.0
            )
            assert status == 200
            digest = payload["scene"]

            fired0 = _counter("cluster.hedge.fired")
            requests0 = _counter("cluster.requests")
            window0 = router.window.stats(60)["count"]
            status, body, headers = http_json(f"{base}/v1/cd", {
                "scene": digest, "grid": [5, 5], "method": "AICA",
            }, timeout=120.0)
            assert status == 200, body
            assert headers.get("X-Repro-Hedged") == "1"
            assert _counter("cluster.hedge.fired") == fired0 + 1
            assert _counter("cluster.requests") == requests0 + 1
            wins = (
                _counter("cluster.hedge.wins")
                + _counter("cluster.hedge.primary_wins")
            )
            assert wins >= 1
            # The acceptance invariant: one inbound request, one window
            # entry — the hedged duplicate never double-counts.
            assert router.window.stats(60)["count"] == window0 + 1
            # The cost ledger is the winner's alone: exactly one ledger.
            assert isinstance(body.get("cost"), dict)
        finally:
            httpd.shutdown()
            httpd.server_close()
            router.close()
            for svc, rep_httpd, _ in replicas:
                _stop_replica(svc, rep_httpd)


class TestRouterTracing:
    def test_router_and_replica_spans_land_on_one_trace(self, cluster):
        from repro.obs.context import new_span_id, new_trace_id, parse_traceparent
        from repro.obs.otlp import otlp_spans, to_otlp, validate_otlp
        from repro.obs.trace import Tracer, use_tracer

        base, digest, _, _ = cluster
        tid, caller_span = new_trace_id(), new_span_id()
        tracer = Tracer()
        with use_tracer(tracer):
            status, body, headers = http_json(
                f"{base}/v1/cd",
                {"scene": digest, "grid": [7, 7], "method": "AICA"},
                timeout=120.0,
                headers={"traceparent": f"00-{tid}-{caller_span}-01"},
            )
        assert status == 200

        # The response traceparent stays on the caller's trace and names
        # the router's own span.
        echo = parse_traceparent(headers["traceparent"])
        assert echo is not None and echo.trace_id == tid and echo.sampled

        spans = tracer.to_dicts()
        names = {s["name"] for s in spans}
        assert {"cluster.route", "cluster.upstream"} <= names
        assert all(s["trace_id"] == tid for s in spans)
        (route,) = [s for s in spans if s["name"] == "cluster.route"]
        assert route["span_id"] == echo.span_id
        assert route["parent_span_id"] == caller_span
        # Upstream hops hang under the route span; replica-side request
        # spans hang under the upstream hop — one connected trace.
        upstream = [s for s in spans if s["name"] == "cluster.upstream"]
        assert upstream and all(
            s["parent_span_id"] == route["span_id"] for s in upstream
        )
        served = [s for s in spans if s["name"] == "service.request"]
        assert served and all(
            s["parent_span_id"] in {u["span_id"] for u in upstream}
            for s in served
        )

        # The export passes the strict OTLP validator; the only
        # unresolved parent is the caller's remote span.
        doc = to_otlp(tracer, service_name="repro-router", label="cluster-e2e")
        assert validate_otlp(doc, allow_unresolved_parents={caller_span}) == []
        assert all(s["traceId"] == tid for s in otlp_spans(doc))
