"""The Section 8 future-work features: AM overlap along paths, S tuning."""

import numpy as np
import pytest

from repro.cd import AICA, MICA, Scene
from repro.cd.pathrun import map_overlap, run_along_path
from repro.engine.autotune import tune_memo_levels
from repro.engine.device import GTX_1080, GTX_1080_TI, DeviceSpec
from repro.geometry.orientation import OrientationGrid
from repro.tool.tool import paper_tool


class TestMapOverlap:
    def test_identical(self):
        a = np.array([True, False, True])
        assert map_overlap(a, a) == 1.0

    def test_disjoint(self):
        assert map_overlap(np.array([True, True]), np.array([False, False])) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            map_overlap(np.zeros(3, bool), np.zeros(4, bool))

    def test_empty(self):
        assert map_overlap(np.zeros(0, bool), np.zeros(0, bool)) == 1.0


class TestRunAlongPath:
    @pytest.fixture(scope="class")
    def path_result(self, head_tree_64_expanded):
        from repro.path.offset import offset_path
        from repro.solids.models import head_model

        path = offset_path(head_model(), 64)
        # consecutive points along one slice
        pivots = path[:4]
        return run_along_path(
            head_tree_64_expanded, paper_tool(), pivots, OrientationGrid.square(8), AICA()
        )

    def test_one_result_per_pivot(self, path_result):
        assert len(path_result.results) == 4
        assert path_result.overlaps.shape == (3,)

    def test_neighbors_overlap_heavily(self, path_result):
        """The paper's Section 8 premise: nearby pivots share AM values."""
        assert path_result.mean_overlap > 0.8

    def test_accessible_fraction_shape(self, path_result):
        f = path_result.accessible_fraction
        assert f.shape == (4,)
        assert ((0 <= f) & (f <= 1)).all()

    def test_total_simulated_time(self, path_result):
        assert path_result.total_simulated_seconds() > 0

    def test_validates_pivot_shape(self, head_tree_64_expanded):
        with pytest.raises(ValueError):
            run_along_path(
                head_tree_64_expanded,
                paper_tool(),
                np.zeros((3, 2)),
                OrientationGrid.square(4),
                AICA(),
            )


class TestTuneMemoLevels:
    def test_basic_sweep(self, head_scene):
        grid = OrientationGrid.square(8)
        best, rows = tune_memo_levels(head_scene, grid, AICA())
        assert 2 <= best <= head_scene.tree.depth + 1
        assert len(rows) == head_scene.tree.depth
        # the returned best really is the sweep minimum
        totals = {r.memo_levels: r.total_s for r in rows}
        assert totals[best] == min(totals.values())

    def test_prefers_deep_memoization(self, head_scene):
        """On these devices the table is nearly free, so large S wins —
        the paper's own conclusion for S = 8."""
        grid = OrientationGrid.square(8)
        best, _ = tune_memo_levels(head_scene, grid, MICA())
        assert best >= head_scene.tree.depth - 1

    def test_weak_device_prefers_smaller_table(self, head_scene):
        """A drastically weaker device shifts the optimum toward smaller S
        (or at least never past the strong device's optimum)."""
        grid = OrientationGrid.square(8)
        strong, _ = tune_memo_levels(head_scene, grid, AICA(), device=GTX_1080_TI)
        weak_dev = DeviceSpec("weak", cuda_cores=64, clock_ghz=0.2)
        weak, _ = tune_memo_levels(head_scene, grid, AICA(), device=weak_dev)
        assert weak <= strong

    def test_gtx1080_vs_ti_consistent(self, head_scene):
        grid = OrientationGrid.square(8)
        b1, _ = tune_memo_levels(head_scene, grid, AICA(), device=GTX_1080_TI)
        b2, _ = tune_memo_levels(head_scene, grid, AICA(), device=GTX_1080)
        assert abs(b1 - b2) <= 1
