"""Independent ground-truth verification of accessibility maps.

:func:`brute_force_map` recomputes a scene's collision map directly:
gather *every* FULL cell of the octree (at any level) and run the exact
whole-tool CHECKBOX against each, with no octree pruning, no cone
bounds, and no shared traversal code.  It is O(M x FULL-cells) — far too
slow for production — but shares no logic with
:mod:`repro.cd.traversal`, which makes it the arbiter the test suite
(and any downstream user integrating a new method) checks against.
"""

from __future__ import annotations

import numpy as np

from repro.cd.result import CDResult
from repro.cd.scene import Scene
from repro.geometry.batch import tool_aabb_batch
from repro.geometry.orientation import OrientationGrid
from repro.octree.linear import STATUS_FULL

__all__ = ["brute_force_map", "verify_result"]


def brute_force_map(scene: Scene, grid: OrientationGrid) -> np.ndarray:
    """The exact collision map, computed without any acceleration.

    Returns a ``(M,)`` boolean array aligned with
    :attr:`repro.cd.result.CDResult.collides`.
    """
    tree = scene.tree
    centers_parts = []
    halves_parts = []
    for l, lev in enumerate(tree.levels):
        full = lev.status == STATUS_FULL
        if full.any():
            centers_parts.append(tree.centers(l, np.nonzero(full)[0]))
            halves_parts.append(np.full(int(full.sum()), tree.cell_half(l)))
    if not centers_parts:
        return np.zeros(grid.size, dtype=bool)
    centers = np.concatenate(centers_parts)
    halves = np.concatenate(halves_parts)

    dirs = grid.directions()
    out = np.zeros(grid.size, dtype=bool)
    for t in range(grid.size):
        hit = tool_aabb_batch(
            scene.pivot,
            np.broadcast_to(dirs[t], (len(centers), 3)),
            centers,
            halves,
            scene.tool.z0,
            scene.tool.z1,
            scene.tool.radius,
        )
        out[t] = bool(hit.any())
    return out


def verify_result(scene: Scene, result: CDResult) -> bool:
    """True iff ``result``'s map matches the brute-force ground truth."""
    return bool(np.array_equal(result.collides, brute_force_map(scene, result.grid)))
