"""Plain-text rendering of experiment results (tables and series).

The paper's figures are line/bar plots; without a display the harness
prints each figure as a table whose columns are the plot's x-axis values
and whose rows are its series — enough to read off who wins, by what
factor, and where crossovers fall.
"""

from __future__ import annotations

__all__ = ["render_table", "render_series", "format_value"]


def format_value(v) -> str:
    """Compact numeric formatting for table cells."""
    if v is None:
        return "-"
    if isinstance(v, bool):
        return "yes" if v else "no"
    if isinstance(v, float):
        a = abs(v)
        if v == 0.0:
            return "0"
        if a >= 1e5 or a < 1e-3:
            return f"{v:.2e}"
        if a >= 100:
            return f"{v:.1f}"
        return f"{v:.3g}"
    return str(v)


def render_table(title: str, headers: list[str], rows: list[list], notes: str = "") -> str:
    """Monospace table with a title rule and optional trailing notes."""
    cells = [[format_value(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    out = [title, "=" * len(title)]
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in cells:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    if notes:
        out.append("")
        out.append(notes)
    return "\n".join(out)


def render_series(
    title: str,
    x_label: str,
    x_values: list,
    series: dict[str, list],
    notes: str = "",
) -> str:
    """A figure-as-table: one row per series over the x-axis values."""
    headers = [x_label] + [format_value(x) for x in x_values]
    rows = [[name] + list(vals) for name, vals in series.items()]
    return render_table(title, headers, rows, notes)
