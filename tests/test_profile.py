"""Profiling layer: Perfetto/collapsed export, pool utilization, heartbeat,
and the `repro-obs` analysis CLI."""

import io
import json

import pytest

from repro.cd.methods import AICA, MICA
from repro.cd.traversal import TraversalConfig, run_cd
from repro.engine.costs import DEFAULT_COSTS
from repro.engine.device import GTX_1080_TI
from repro.engine.pool import run_cd_parallel
from repro.geometry.orientation import OrientationGrid
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.profile import (
    Heartbeat,
    PoolStats,
    peak_rss_bytes,
    progress_enabled,
    record_memory_metrics,
)
from repro.obs.report import build_report, load_report
from repro.obs.timeline import perfetto_json, span_tracks, to_collapsed, to_perfetto
from repro.obs.trace import Tracer, use_tracer

GRID = OrientationGrid.square(6)


def _synthetic_spans():
    """A hand-built trace: main root with one child + one worker subtree."""
    return [
        {"name": "cd.run", "t0": 0.0, "wall_s": 1.0, "cpu_s": 0.9,
         "depth": 0, "parent": -1, "attrs": {"method": "AICA"}},
        {"name": "cd.traversal", "t0": 0.1, "wall_s": 0.8, "cpu_s": 0.7,
         "depth": 1, "parent": 0, "attrs": {}},
        {"name": "cd.run", "t0": 0.2, "wall_s": 0.5, "cpu_s": 0.5,
         "depth": 2, "parent": 1, "attrs": {"pool_worker": 0}},
        {"name": "cd.level", "t0": 0.25, "wall_s": 0.3, "cpu_s": 0.3,
         "depth": 3, "parent": 2, "attrs": {"level": 5}},
    ]


class TestSpanTracks:
    def test_main_is_track_zero(self):
        tids = span_tracks(_synthetic_spans())
        assert tids[0] == 0 and tids[1] == 0

    def test_worker_subtree_inherits_track(self):
        tids = span_tracks(_synthetic_spans())
        assert tids[2] == 1  # tagged root -> worker 0 -> tid 1
        assert tids[3] == 1  # untagged child inherits the root's track


class TestPerfettoExport:
    def test_schema_and_roundtrip(self):
        doc = json.loads(perfetto_json(_synthetic_spans()))
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 4
        for e in slices:
            assert set(e) >= {"name", "ph", "ts", "dur", "pid", "tid", "args"}
            assert e["dur"] >= 0

    def test_metadata_names_tracks(self):
        doc = to_perfetto(_synthetic_spans(), label="unit")
        meta = {
            (e["tid"], e["args"]["name"])
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert meta == {(0, "main"), (1, "pool-worker-0")}
        proc = [e for e in doc["traceEvents"] if e["name"] == "process_name"]
        assert proc[0]["args"]["name"] == "unit"

    def test_per_track_timestamps_monotone(self):
        doc = to_perfetto(_synthetic_spans())
        last = {}
        for e in doc["traceEvents"]:
            if e["ph"] != "X":
                continue
            assert e["ts"] >= last.get(e["tid"], -1.0)
            last[e["tid"]] = e["ts"]

    def test_pooled_run_export(self, sphere_scene):
        """End-to-end: pooled traced run -> Perfetto doc with worker tracks
        on absolute (parent-epoch) timestamps."""
        with use_tracer(Tracer()) as tr, use_metrics(MetricsRegistry()):
            run_cd(sphere_scene, GRID, MICA(), workers=2)
        doc = json.loads(perfetto_json(tr))
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        tids = {e["tid"] for e in slices}
        assert {1, 2} <= tids, "one track per pool worker"
        # absolute epochs: no worker span starts before the parent's
        # cd.traversal span (which opened before the pool spawned)
        trav_ts = min(e["ts"] for e in slices if e["name"] == "cd.traversal")
        for e in slices:
            if e["tid"] > 0:
                assert e["ts"] >= trav_ts
        # worker tid matches the pool_worker attr of the absorbed spans
        for e in slices:
            worker = e["args"].get("pool_worker")
            if worker is not None:
                assert e["tid"] == worker + 1
        last = {}
        for e in slices:
            assert e["ts"] >= last.get(e["tid"], -1.0), "per-track monotone"
            last[e["tid"]] = e["ts"]


class TestCollapsedExport:
    def test_self_time_stacks(self):
        lines = dict(
            (line.rsplit(" ", 1)[0], int(line.rsplit(" ", 1)[1]))
            for line in to_collapsed(_synthetic_spans()).splitlines()
        )
        # cd.run self = 1.0 - 0.8 child
        assert lines["cd.run"] == pytest.approx(200_000, abs=2)
        assert lines["cd.run;cd.traversal"] == pytest.approx(300_000, abs=2)
        assert lines["cd.run;cd.traversal;cd.run;cd.level"] == pytest.approx(
            300_000, abs=2
        )

    def test_zero_weight_dropped(self):
        spans = [
            {"name": "a", "t0": 0.0, "wall_s": 0.5, "cpu_s": 0.0,
             "depth": 0, "parent": -1, "attrs": {}},
            {"name": "b", "t0": 0.0, "wall_s": 0.5, "cpu_s": 0.0,
             "depth": 1, "parent": 0, "attrs": {}},
        ]
        out = to_collapsed(spans)
        assert "a;b 500000" in out
        assert "\na " not in out and not out.startswith("a ")  # a's self = 0


class TestPoolStats:
    def _stats(self, busy_by_task, pids, workers=2):
        st = PoolStats(workers, arena_bytes=1024)
        for i, (busy, pid) in enumerate(zip(busy_by_task, pids)):
            st.add_sample(
                i,
                {"pid": pid, "busy_s": busy, "start_ns": st.submit_ns + i * 1000,
                 "max_rss_bytes": 10_000 + i},
            )
        return st

    def test_utilization_and_imbalance(self):
        st = self._stats([1.0, 3.0], pids=[11, 22], workers=2)
        assert st.total_busy_s() == 4.0
        assert st.utilization(wall_s=4.0) == pytest.approx(0.5)
        # max busy 3.0 vs mean 2.0
        assert st.imbalance_ratio() == pytest.approx(1.5)

    def test_idle_worker_counts_in_imbalance(self):
        st = self._stats([2.0, 2.0], pids=[11, 11], workers=2)
        # one worker did everything: max 4.0 over mean 2.0
        assert st.imbalance_ratio() == pytest.approx(2.0)

    def test_export_gauges(self):
        st = self._stats([1.0, 1.0], pids=[1, 2], workers=2)
        reg = MetricsRegistry()
        st.export(reg, wall_s=2.0)
        d = reg.as_dict()
        assert d["engine.pool.workers"]["value"] == 2
        assert d["engine.pool.tasks"]["value"] == 2
        assert d["engine.pool.utilization"]["value"] == pytest.approx(0.5)
        assert d["engine.pool.imbalance_ratio"]["value"] == pytest.approx(1.0)
        assert d["engine.pool.arena_bytes"]["value"] == 1024
        assert d["engine.pool.worker_peak_rss_bytes"]["value"] == 10_001
        assert d["engine.pool.idle_s"]["value"] == pytest.approx(2.0)
        assert d["proc.peak_rss_bytes"]["value"] > 0

    def test_wait_spans(self):
        st = self._stats([1.0, 1.0], pids=[1, 2], workers=2)
        tr = Tracer()
        with tr.span("cd.traversal"):
            pass
        st.emit_wait_spans(tr, parent=0)
        waits = [r for r in tr.records if r.name == "pool.task.wait"]
        assert len(waits) == 2
        assert all(r.parent == 0 and r.wall_s >= 0 for r in waits)
        assert {r.attrs["pool_worker"] for r in waits} == {0, 1}

    def test_empty_dispatch(self):
        st = PoolStats(4)
        assert st.utilization(1.0) == 0.0
        assert st.imbalance_ratio() == 1.0
        assert st.max_worker_rss_bytes() == 0


class TestPoolGauges:
    """The acceptance gauges on real pooled runs, workers=1 vs 4."""

    def _parallel_run(self, scene, workers):
        with use_metrics(MetricsRegistry()) as reg:
            result = run_cd_parallel(
                scene, GRID, AICA(),
                device=GTX_1080_TI, costs=DEFAULT_COSTS,
                config=TraversalConfig(), workers=workers,
            )
        return result, reg.as_dict()

    def test_single_worker_pool(self, sphere_scene):
        _, d = self._parallel_run(sphere_scene, 1)
        assert 0.0 < d["engine.pool.utilization"]["value"] <= 1.0 + 1e-9
        assert d["engine.pool.imbalance_ratio"]["value"] == pytest.approx(1.0)
        assert d["engine.pool.workers"]["value"] == 1
        assert d["engine.pool.arena_bytes"]["value"] > 0
        assert d["engine.pool.worker_peak_rss_bytes"]["value"] > 0
        assert d["proc.peak_rss_bytes"]["value"] > 0

    def test_four_worker_pool(self, sphere_scene):
        res4, d = self._parallel_run(sphere_scene, 4)
        assert 0.0 < d["engine.pool.utilization"]["value"] <= 1.0 + 1e-9
        assert d["engine.pool.imbalance_ratio"]["value"] >= 1.0
        assert d["engine.pool.tasks"]["value"] >= 2
        assert d["engine.pool.arena_bytes"]["value"] > 0
        # profiling changes nothing: same map as the single-worker pool
        res1, _ = self._parallel_run(sphere_scene, 1)
        assert (res4.collides == res1.collides).all()

    def test_pooled_report_contains_gauges(self, sphere_scene, tmp_path):
        """The ISSUE acceptance path: pooled run -> report -> gauges."""
        with use_tracer(Tracer()) as tr, use_metrics(MetricsRegistry()) as reg:
            run_cd(sphere_scene, GRID, AICA(), workers=2)
        rep = build_report("pooled", tracer=tr, metrics=reg)
        path = tmp_path / "pooled.json"
        rep.save(path)
        loaded = load_report(path)
        for gauge in (
            "engine.pool.utilization",
            "engine.pool.imbalance_ratio",
            "engine.pool.arena_bytes",
            "engine.pool.worker_peak_rss_bytes",
            "proc.peak_rss_bytes",
        ):
            assert gauge in loaded.metrics, gauge
            assert loaded.metrics[gauge]["type"] == "gauge"
        assert loaded.meta["trace_epoch_ns"] == tr.epoch_ns
        assert "pool.task.wait" in loaded.span_names()


class TestMemoryTelemetry:
    def test_peak_rss_positive(self):
        assert peak_rss_bytes() > 1024 * 1024  # a Python process is > 1 MiB

    def test_record_memory_metrics(self):
        reg = MetricsRegistry()
        record_memory_metrics(reg)
        assert reg.gauge("proc.peak_rss_bytes").value == peak_rss_bytes()


class TestHeartbeat:
    def test_disabled_by_default(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_PROGRESS", raising=False)
        assert not progress_enabled()
        hb = Heartbeat(4, "block")
        hb.tick()
        assert capsys.readouterr().err == ""

    def test_line_format_and_eta(self):
        out = io.StringIO()
        hb = Heartbeat(4, "block", enabled=True, stream=out)
        hb.tick(t0=0, t1=2048)
        hb.tick(t0=2048, t1=4096)
        lines = out.getvalue().strip().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("[progress] unit=block done=1/4 ")
        assert "eta=" in lines[0] and "t1=2048" in lines[0]
        assert "done=2/4" in lines[1]

    def test_serial_run_emits_heartbeat(self, sphere_scene, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_PROGRESS", "1")
        small = TraversalConfig(thread_block=16)  # 36 threads -> 3 blocks
        run_cd(sphere_scene, GRID, AICA(), config=small, workers=1)
        err = capsys.readouterr().err
        lines = [l for l in err.splitlines() if l.startswith("[progress]")]
        assert len(lines) == 3
        assert "unit=block" in lines[0] and "done=3/3" in lines[-1]
        assert "eta=" in lines[0]

    def test_pooled_run_emits_parent_heartbeat(
        self, sphere_scene, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_PROGRESS", "1")
        run_cd(sphere_scene, GRID, AICA(), workers=2)
        err = capsys.readouterr().err
        lines = [l for l in err.splitlines() if l.startswith("[progress]")]
        assert lines, "parent pool loop should print per-task heartbeats"
        assert all("unit=block" in l for l in lines)

    def test_progress_off_keeps_stderr_clean(self, sphere_scene, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_PROGRESS", raising=False)
        run_cd(sphere_scene, GRID, AICA(), workers=2)
        assert "[progress]" not in capsys.readouterr().err


class TestReproObsCli:
    @pytest.fixture()
    def report_path(self, sphere_scene, tmp_path):
        with use_tracer(Tracer()) as tr, use_metrics(MetricsRegistry()) as reg:
            run_cd(sphere_scene, GRID, AICA(), workers=2)
        rep = build_report("cli-test", tracer=tr, metrics=reg)
        path = tmp_path / "report.json"
        rep.save(path)
        return path

    def test_tree(self, report_path, capsys):
        from repro.obs.cli import main

        assert main(["tree", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "cd.run" in out and "wall" in out

    def test_top(self, report_path, capsys):
        from repro.obs.cli import main

        assert main(["top", str(report_path), "--by", "cpu", "-n", "5"]) == 0
        out = capsys.readouterr().out
        assert "cd." in out

    def test_export_perfetto(self, report_path, tmp_path, capsys):
        from repro.obs.cli import main

        out_path = tmp_path / "trace.json"
        assert main(
            ["export", str(report_path), "--format", "perfetto", "-o", str(out_path)]
        ) == 0
        doc = json.loads(out_path.read_text())
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        tids = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {1, 2} <= tids  # two worker tracks

    def test_export_collapsed_stdout(self, report_path, capsys):
        from repro.obs.cli import main

        assert main(["export", str(report_path), "--format", "collapsed"]) == 0
        out = capsys.readouterr().out
        assert any(
            line.startswith("cd.run") and line.rsplit(" ", 1)[1].isdigit()
            for line in out.splitlines()
            if line.strip()
        )

    def test_diff(self, report_path, tmp_path, capsys):
        from repro.obs.cli import main

        inflated = tmp_path / "inflated.json"
        rep = load_report(report_path)
        rep.metrics["cd.total_checks"]["value"] *= 2
        rep.save(inflated)
        assert main(["diff", str(report_path), str(report_path)]) == 0
        assert main(["diff", str(report_path), str(inflated)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "cd.total_checks" in out

    def test_unreadable_report_is_usage_error(self, capsys):
        from repro.obs.cli import main

        assert main(["tree", "/nonexistent/report.json"]) == 2
        assert "cannot load report" in capsys.readouterr().err
