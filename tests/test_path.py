"""Offset-path generation and pivot sampling."""

import numpy as np
import pytest

from repro.path.offset import offset_path, offset_point
from repro.path.sampling import sample_pivots
from repro.solids.models import head_model, turbine_model


@pytest.fixture(scope="module")
def head_path():
    return offset_path(head_model(), 32)


class TestOffsetPath:
    def test_all_points_outside(self, head_path):
        m = head_model()
        assert (m.sdf.value(head_path) > 0).all()

    def test_points_near_surface(self, head_path):
        """Each pivot should be within a few mm of the surface (1 mm target,
        ray obliquity can stretch it)."""
        m = head_model()
        vals = m.sdf.value(head_path)
        # value is sign-exact, and for the head's primitives near-metric
        assert np.median(vals) < 3.0
        assert vals.min() > 0.0

    def test_count_scales_with_resolution(self):
        m = head_model()
        n32 = len(offset_path(m, 32))
        n64 = len(offset_path(m, 64))
        assert n64 == pytest.approx(2 * n32, rel=0.1)

    def test_slices_span_height(self, head_path):
        zs = np.unique(np.round(head_path[:, 2], 6))
        assert len(zs) >= 4

    def test_turbine_path(self):
        m = turbine_model()
        path = offset_path(m, 32, n_slices=4)
        assert len(path) > 50
        assert (m.sdf.value(path) > 0).all()

    def test_offset_point_pushes_outside(self):
        m = head_model()
        surf = np.array([0.0, -20.5, 4.0])  # near the face
        p = offset_point(m.sdf, surf, np.array([0.0, -1.0, 0.0]), 1.0)
        assert float(m.sdf.value(p)) > 0


class TestSamplePivots:
    def test_deterministic(self, head_path):
        a = sample_pivots(head_path, 5, seed=9)
        b = sample_pivots(head_path, 5, seed=9)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self, head_path):
        a = sample_pivots(head_path, 5, seed=1)
        b = sample_pivots(head_path, 5, seed=2)
        assert not np.array_equal(a, b)

    def test_without_replacement(self, head_path):
        n = min(len(head_path), 50)
        s = sample_pivots(head_path, n, seed=0)
        assert len(np.unique(s, axis=0)) == n

    def test_oversampling_falls_back(self):
        path = np.arange(9.0).reshape(3, 3)
        s = sample_pivots(path, 10, seed=0)
        assert s.shape == (10, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_pivots(np.zeros((0, 3)), 1)
        with pytest.raises(ValueError):
            sample_pivots(np.zeros((5, 2)), 1)
