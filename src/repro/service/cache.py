"""Result cache: finished accessibility maps keyed by query digest.

The second tier of reuse (after the registry's per-scene artifacts):
a query that already ran to completion is answered from memory with
zero traversals.  Keys are full query digests
(:meth:`repro.service.core.QuerySpec.digest`), which fold in the scene's
*content* digest — so a cache entry can never serve a stale map for a
re-registered-but-different scene.

Eviction is LRU under two simultaneous bounds: ``max_entries`` and
``max_bytes`` (per-entry sizes are supplied by the caller, who knows the
payload layout).  Hit/miss/eviction counters and entry/byte gauges are
exported through :mod:`repro.obs.metrics` under ``service.cache.*`` so
``repro-bench compare`` and ``repro-obs diff`` track serving efficiency
like any other run metric.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.obs.metrics import get_metrics

__all__ = ["ResultCache"]


class ResultCache:
    """Bounded LRU cache of finished query payloads (thread-safe)."""

    def __init__(self, max_entries: int = 256, max_bytes: int = 256 * 1024 * 1024):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self._entries: OrderedDict[str, tuple[object, int]] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()

    def get(self, key: str):
        """The cached payload (refreshing LRU), or ``None`` on a miss."""
        with self._lock:
            hit = self._entries.get(key)
            if hit is None:
                get_metrics().counter("service.cache.misses").inc()
                return None
            self._entries.move_to_end(key)
            get_metrics().counter("service.cache.hits").inc()
            return hit[0]

    def put(self, key: str, value, nbytes: int) -> None:
        """Insert (or refresh) ``key``; evicts LRU entries to stay in bounds.

        A payload larger than ``max_bytes`` is simply not cached — it
        would evict everything else and then be evicted itself by the
        next insert.
        """
        nbytes = int(nbytes)
        if nbytes > self.max_bytes:
            return
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (value, nbytes)
            self._bytes += nbytes
            while len(self._entries) > self.max_entries or self._bytes > self.max_bytes:
                _, (_, dropped) = self._entries.popitem(last=False)
                self._bytes -= dropped
                get_metrics().counter("service.cache.evictions").inc()
            metrics = get_metrics()
            metrics.gauge("service.cache.entries").set(len(self._entries))
            metrics.gauge("service.cache.bytes").set(self._bytes)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        with self._lock:
            return self._bytes

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            metrics = get_metrics()
            metrics.gauge("service.cache.entries").set(0)
            metrics.gauge("service.cache.bytes").set(0)
