"""Octree construction: top-down from implicit solids, bottom-up from grids.

Both builders produce the *canonical* adaptive octree of the same dense
center-sampled voxelization: FULL regions are merged as far up as
possible and MIXED nodes always have at least one stored child.  The
test suite checks the two construction paths produce *identical* level
arrays, which pins down both the conservative-classification logic of
the SDF path and the merge logic of the dense path.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.aabb import AABB
from repro.obs.trace import get_tracer
from repro.octree.linear import LinearOctree, OctreeLevel, STATUS_FULL, STATUS_MIXED
from repro.octree.morton import morton_decode, morton_encode
from repro.solids.sdf import SDF

__all__ = ["build_from_sdf", "build_from_dense", "depth_for_resolution", "expand_top"]

_SQRT3 = float(np.sqrt(3.0))


def depth_for_resolution(resolution: int) -> int:
    """Octree depth whose leaf grid is ``resolution^3`` (must be a power of 2)."""
    depth = int(resolution).bit_length() - 1
    if (1 << depth) != resolution:
        raise ValueError(f"resolution must be a power of two, got {resolution}")
    return depth


def _empty_level() -> OctreeLevel:
    return OctreeLevel(
        codes=np.zeros(0, dtype=np.uint64),
        status=np.zeros(0, dtype=np.uint8),
        child_start=np.zeros(0, dtype=np.intp),
        child_count=np.zeros(0, dtype=np.int8),
    )


def _level(codes: np.ndarray, status: np.ndarray) -> OctreeLevel:
    order = np.argsort(codes)
    return OctreeLevel(
        codes=codes[order].astype(np.uint64),
        status=status[order].astype(np.uint8),
        child_start=np.full(len(codes), -1, dtype=np.intp),
        child_count=np.zeros(len(codes), dtype=np.int8),
    )


def build_from_sdf(sdf: SDF, domain: AABB, resolution: int, *, chunk: int = 262144) -> LinearOctree:
    """Top-down adaptive construction from an implicit solid.

    Level by level, a cell is classified with one implicit evaluation at
    its center:

    * ``clearance(center) > sqrt(3) * half`` — the solid's boundary cannot
      cross the cell, so the sign of ``value(center)`` classifies it as
      uniformly FULL or uniformly empty (dropped);
    * otherwise, at leaf level the cell is a voxel classified by the sign
      at its center (matching :func:`repro.solids.voxelize.voxelize_sdf`);
    * otherwise the cell is provisionally MIXED and its children are
      examined on the next level.

    A final canonicalization pass merges 8-FULL sibling groups upward and
    deletes provisionally-MIXED cells none of whose descendants turned
    out solid.
    """
    with get_tracer().span("octree.build", resolution=resolution, source="sdf") as sp:
        tree = _build_from_sdf(sdf, domain, resolution, chunk=chunk)
        sp.set(nodes=tree.total_nodes, depth=tree.depth)
    return tree


def _build_from_sdf(sdf: SDF, domain: AABB, resolution: int, *, chunk: int) -> LinearOctree:
    depth = depth_for_resolution(resolution)
    lo = np.asarray(domain.lo, dtype=np.float64)
    edge = float(domain.size[0])

    level_codes: list[np.ndarray] = []
    level_status: list[np.ndarray] = []

    frontier = np.zeros(1, dtype=np.uint64)  # the root cell of level 0
    for l in range(depth + 1):
        cell = edge / (1 << l)
        half = 0.5 * cell
        codes_out = []
        status_out = []
        next_frontier = []
        for start in range(0, len(frontier), chunk):
            codes = frontier[start : start + chunk]
            i, j, k = morton_decode(codes)
            centers = lo + (np.stack([i, j, k], axis=-1) + 0.5) * cell
            clear = np.asarray(sdf.clearance(centers))
            val = np.asarray(sdf.value(centers))
            uniform = clear > _SQRT3 * half
            solid = val <= 0.0

            if l == depth:
                codes_out.append(codes[solid])
                status_out.append(np.full(int(solid.sum()), STATUS_FULL, dtype=np.uint8))
            else:
                full = uniform & solid
                mixed = ~uniform
                codes_out.append(codes[full])
                status_out.append(np.full(int(full.sum()), STATUS_FULL, dtype=np.uint8))
                codes_out.append(codes[mixed])
                status_out.append(np.full(int(mixed.sum()), STATUS_MIXED, dtype=np.uint8))
                next_frontier.append(codes[mixed])
        level_codes.append(np.concatenate(codes_out) if codes_out else np.zeros(0, np.uint64))
        level_status.append(
            np.concatenate(status_out) if status_out else np.zeros(0, np.uint8)
        )
        if l < depth:
            if next_frontier:
                children = np.concatenate(next_frontier)
                frontier = (
                    (children[:, None] << np.uint64(3)) + np.arange(8, dtype=np.uint64)
                ).ravel()
            else:
                frontier = np.zeros(0, dtype=np.uint64)

    levels = [_level(c, s) for c, s in zip(level_codes, level_status)]
    _canonicalize(levels, depth)
    return LinearOctree(domain, depth, levels)


def build_from_dense(grid: np.ndarray, domain: AABB) -> LinearOctree:
    """Bottom-up adaptive construction from a dense ``(z, y, x)`` bool grid."""
    grid = np.asarray(grid, dtype=bool)
    if grid.ndim != 3 or len(set(grid.shape)) != 1:
        raise ValueError("grid must be a cubic 3D boolean array")
    depth = depth_for_resolution(grid.shape[0])

    zz, yy, xx = np.nonzero(grid)
    codes = morton_encode(xx.astype(np.uint64), yy.astype(np.uint64), zz.astype(np.uint64))
    codes = np.sort(codes)
    status = np.full(len(codes), STATUS_FULL, dtype=np.uint8)

    levels: list[OctreeLevel | None] = [None] * (depth + 1)
    levels[depth] = _level(codes, status)

    for l in range(depth - 1, -1, -1):
        child = levels[l + 1]
        parents, inverse, counts = np.unique(
            child.codes >> np.uint64(3), return_inverse=True, return_counts=True
        )
        full_children = np.bincount(
            inverse, weights=(child.status == STATUS_FULL).astype(np.float64),
            minlength=len(parents),
        ).astype(np.int64)
        parent_full = (counts == 8) & (full_children == 8)
        p_status = np.where(parent_full, STATUS_FULL, STATUS_MIXED).astype(np.uint8)
        # Children of merged-FULL parents are absorbed into the parent.
        keep = ~parent_full[inverse]
        levels[l + 1] = _level(child.codes[keep], child.status[keep])
        levels[l] = _level(parents, p_status)

    return LinearOctree(domain, depth, levels)  # type: ignore[arg-type]


def expand_top(tree: LinearOctree, start_level: int = 5) -> LinearOctree:
    """Materialize the paper's top-level expansion.

    Section 5.1: "We directly expand the top 5 levels of octree into one
    level" — the traversal then starts from a flat 32^3-cell base instead
    of descending a tall, skinny top.  Concretely, every FULL node above
    ``start_level`` is subdivided into its (all-FULL) descendant cells at
    ``start_level``, and all surviving ancestors become MIXED.  The
    represented solid is unchanged (the tests check leaf occupancy), but
    the base level now stores every cell a traversal can start from —
    which also lets the stage-1 ICA table cover them.

    Returns a new tree; the input is not modified.
    """
    L0 = min(int(start_level), tree.depth)
    if L0 <= 0:
        return tree
    with get_tracer().span("octree.expand_top", start_level=L0) as sp:
        expanded = _expand_top(tree, L0)
        sp.set(nodes=expanded.total_nodes)
    return expanded


def _expand_top(tree: LinearOctree, L0: int) -> LinearOctree:

    # extra[t] collects descendant cells to add at level t: MIXED chain
    # cells for t < L0, the FULL payload cells at t == L0.
    extra: list[list[np.ndarray]] = [[] for _ in range(L0 + 1)]
    for l in range(L0):
        lev = tree.levels[l]
        full = lev.status == STATUS_FULL
        if not full.any():
            continue
        for target in range(l + 1, L0 + 1):
            shift = np.uint64(3 * (target - l))
            n_sub = 1 << (3 * (target - l))
            base = lev.codes[full] << shift
            extra[target].append(
                (base[:, None] + np.arange(n_sub, dtype=np.uint64)).ravel()
            )

    new_levels: list[OctreeLevel] = []
    for l in range(tree.depth + 1):
        lev = tree.levels[l]
        if l > L0:
            new_levels.append(_level(lev.codes.copy(), lev.status.copy()))
            continue
        if l < L0:
            # Surviving originals above the base are all interior now.
            status = np.full(lev.n, STATUS_MIXED, dtype=np.uint8)
            fill = STATUS_MIXED
        else:
            status = lev.status.copy()
            fill = STATUS_FULL
        codes = lev.codes
        if extra[l]:
            added = np.concatenate(extra[l])
            codes = np.concatenate([codes, added])
            status = np.concatenate(
                [status, np.full(len(added), fill, dtype=np.uint8)]
            )
        new_levels.append(_level(codes.copy(), status))
    return LinearOctree(tree.domain, tree.depth, new_levels)


def _canonicalize(levels: list[OctreeLevel], depth: int) -> None:
    """Merge 8-FULL sibling groups upward; drop childless MIXED nodes.

    Operates bottom-up in place so both effects cascade: a parent whose
    children all merge into FULL becomes a FULL candidate itself, and a
    MIXED node whose children were all dropped disappears too.
    """
    for l in range(depth - 1, -1, -1):
        parent = levels[l]
        child = levels[l + 1]
        if parent.n == 0:
            continue
        pc = parent.codes << np.uint64(3)
        lo = np.searchsorted(child.codes, pc)
        hi = np.searchsorted(child.codes, pc + np.uint64(8))
        n_children = hi - lo
        mixed = parent.status == STATUS_MIXED

        # Count FULL children per parent via prefix sums over the child level.
        full_prefix = np.concatenate(
            [[0], np.cumsum(child.status == STATUS_FULL)]
        )
        n_full = full_prefix[hi] - full_prefix[lo]

        promote = mixed & (n_children == 8) & (n_full == 8)
        drop_parent = mixed & (n_children == 0)

        if promote.any():
            # Remove the absorbed children.
            remove = np.zeros(child.n, dtype=bool)
            for s, e in zip(lo[promote], hi[promote]):
                remove[s:e] = True
            levels[l + 1] = _level(child.codes[~remove], child.status[~remove])
            parent.status[promote] = STATUS_FULL
        if drop_parent.any():
            keep = ~drop_parent
            levels[l] = _level(parent.codes[keep], parent.status[keep])
