"""The CD problem instance: target octree + tool + pivot point."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.octree.linear import LinearOctree
from repro.tool.tool import Tool

__all__ = ["Scene"]


@dataclass(frozen=True)
class Scene:
    """One collision-detection problem instance (inputs (a)-(c) of §2).

    The orientation set (input (d)) is supplied separately as an
    :class:`repro.geometry.orientation.OrientationGrid` so the same scene
    can be queried at several map resolutions (the Figure 17 sweep).
    """

    tree: LinearOctree
    tool: Tool
    pivot: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "pivot", np.asarray(self.pivot, dtype=np.float64).reshape(3)
        )

    @property
    def n_cylinders(self) -> int:
        return self.tool.n_cylinders

    def with_pivot(self, pivot) -> "Scene":
        """Same target and tool, new pivot (for per-path-point sweeps)."""
        # __post_init__ normalizes the pivot; don't convert twice here.
        return Scene(self.tree, self.tool, pivot)

    def content_digest(self) -> str:
        """Stable sha256 identity of the full problem instance.

        Hashes the octree's domain, depth and per-level code/status
        arrays, the tool's cylinder stack, and the pivot — everything
        the accessibility map depends on.  Two scenes with equal digests
        produce byte-identical maps for every method and grid, which is
        what lets :mod:`repro.service` key registered scenes, memoized
        ICA tables, and cached query results by content rather than by
        object identity.

        The child-link arrays are derived from the codes and deliberately
        excluded, so a tree loaded from ``.npz`` (links rebuilt) hashes
        the same as the tree that was saved.
        """
        h = hashlib.sha256()
        h.update(b"repro.scene/v1")
        h.update(np.asarray(self.tree.domain.lo, dtype=np.float64).tobytes())
        h.update(np.asarray(self.tree.domain.hi, dtype=np.float64).tobytes())
        h.update(int(self.tree.depth).to_bytes(4, "little"))
        for lev in self.tree.levels:
            h.update(np.ascontiguousarray(lev.codes, dtype=np.uint64).tobytes())
            h.update(np.ascontiguousarray(lev.status, dtype=np.uint8).tobytes())
        for arr in (self.tool.z0, self.tool.z1, self.tool.radius):
            h.update(np.ascontiguousarray(arr, dtype=np.float64).tobytes())
        h.update(self.pivot.tobytes())
        return h.hexdigest()
