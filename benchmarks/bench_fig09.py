"""Figure 9: theoretical ICA efficiency vs measured corner-case rates."""

from repro.bench.experiments import fig09


def test_fig09(benchmark, scale, record):
    result = benchmark.pedantic(fig09, args=(scale,), rounds=1, iterations=1)
    record(result)

    theory = [r for r in result.rows if r[0] == "theory"]
    measured = [r for r in result.rows if str(r[0]).startswith("measured")]

    # Theory: efficiency decreases with r/dist and tends to 100% at 0.
    effs = [r[2] for r in theory]
    assert effs == sorted(effs, reverse=True)
    assert effs[0] > 99.9

    # Measured: efficiency improves (or stays ~equal) with resolution and
    # is high in absolute terms — the paper's ~99% regime.
    m_effs = [r[2] for r in measured]
    assert all(b >= a - 0.5 for a, b in zip(m_effs, m_effs[1:]))
    assert m_effs[-1] > 97.0
