"""End-to-end integration tests across the whole pipeline.

These exercise the same paths the examples and benches use: implicit
model -> (mesh ->) voxels -> octree -> path -> pivots -> all five CD
methods -> accessibility map, checking cross-subsystem consistency that
no unit test covers.
"""

import subprocess
import sys

import numpy as np
import pytest

from repro import (
    AICA,
    MICA,
    OrientationGrid,
    PBoxOpt,
    Scene,
    build_from_dense,
    build_from_sdf,
    expand_top,
    paper_tool,
    run_cd,
)
from repro.solids.mesh import extract_mesh
from repro.solids.models import teapot_model
from repro.solids.voxelize import voxelize_mesh, voxelize_sdf


class TestMeshPipeline:
    """The CAM input path: triangle mesh -> voxels -> octree -> AM."""

    @pytest.fixture(scope="class")
    def teapot_scenes(self):
        m = teapot_model()
        # path A: implicit -> octree
        tree_sdf = expand_top(build_from_sdf(m.sdf, m.domain, 32), 5)
        # path B: implicit -> mesh -> parity voxelization -> octree
        V, F = extract_mesh(m.sdf, m.domain, 64)
        grid = voxelize_mesh(V, F, m.domain, 32)
        tree_mesh = expand_top(build_from_dense(grid, m.domain), 5)
        pivot = np.array([0.0, 0.0, 18.0])
        return (
            Scene(tree_sdf, paper_tool(), pivot),
            Scene(tree_mesh, paper_tool(), pivot),
        )

    def test_mesh_and_sdf_maps_nearly_agree(self, teapot_scenes):
        """The two construction paths may differ on boundary voxels, so the
        accessibility maps must agree on almost all orientations."""
        sa, sb = teapot_scenes
        g = OrientationGrid.square(12)
        ma = run_cd(sa, g, AICA()).collides
        mb = run_cd(sb, g, AICA()).collides
        agreement = (ma == mb).mean()
        assert agreement > 0.93, f"mesh-vs-sdf AM agreement {agreement}"

    def test_mesh_tree_methods_agree(self, teapot_scenes):
        _, sb = teapot_scenes
        g = OrientationGrid.square(8)
        ref = run_cd(sb, g, PBoxOpt()).collides
        assert np.array_equal(run_cd(sb, g, AICA()).collides, ref)


class TestWorkloadPipeline:
    def test_full_paper_protocol_one_point(self):
        """Model -> octree -> 1mm path -> sampled pivot -> AM, as §5.1."""
        from repro.bench.runner import build_workload

        wl = build_workload("turbine", 32, n_pivots=2, seed=11)
        assert len(wl.path) > 100
        g = OrientationGrid.square(8)
        r0 = run_cd(wl.scene(0), g, AICA())
        r1 = run_cd(wl.scene(1), g, AICA())
        # pivots differ so maps generally differ; both must be sane
        for r in (r0, r1):
            assert 0 <= r.n_colliding <= g.size
            assert r.counters.ica_efficiency() > 0.9

    def test_table_reuse_across_grids(self):
        """The same scene queried at two map resolutions stays consistent:
        the coarse map must be a subsample-consistent view of the fine one
        in aggregate (accessible fraction within a few points)."""
        from repro.bench.runner import build_workload

        wl = build_workload("head", 32, n_pivots=1, seed=3)
        scene = wl.scene(0)
        fa = run_cd(scene, OrientationGrid.square(8), AICA())
        fb = run_cd(scene, OrientationGrid.square(24), AICA())
        assert abs(
            fa.n_accessible / fa.grid.size - fb.n_accessible / fb.grid.size
        ) < 0.15

    def test_devices_same_map_different_time(self, sphere_scene):
        from repro.engine.device import GTX_1080, GTX_1080_TI

        g = OrientationGrid.square(8)
        a = run_cd(sphere_scene, g, MICA(), device=GTX_1080_TI)
        b = run_cd(sphere_scene, g, MICA(), device=GTX_1080)
        np.testing.assert_array_equal(a.collides, b.collides)
        assert a.timing.total_s != b.timing.total_s


class TestExamples:
    """The shipped examples must run end to end (they are documentation)."""

    @pytest.mark.parametrize(
        "script,args",
        [
            ("examples/quickstart.py", []),
            ("examples/milling_accessibility.py", ["32", "8"]),
        ],
    )
    def test_example_runs(self, script, args):
        proc = subprocess.run(
            [sys.executable, script, *args],
            capture_output=True,
            text=True,
            timeout=900,
            cwd="/root/repo",
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert "accessib" in proc.stdout.lower()
