"""Structured access logging and request identity for the serving tier.

Offline runs get their story told by traces and reports; a *live*
server needs a flight recorder instead: one machine-parseable line per
request, written as the request finishes, that an operator can tail,
grep by request ID, and correlate with trace spans and metrics.

* :func:`new_request_id` — the request identity minted (or honored from
  an inbound ``X-Request-Id`` header) by the HTTP front end and threaded
  through :meth:`repro.service.core.Service.query`, the coalescing
  broker's queue-wait spans, and the access log.
* :class:`AccessLog` — thread-safe JSON-lines writer.  Each record is
  one flat JSON object per line (keys sorted, so lines diff cleanly):
  ``ts`` (epoch seconds), ``id`` (request ID), ``route``, ``method``,
  ``status``, ``ms``, plus whatever the handler stashes (``served``
  disposition, ``scene`` digest prefix, ``error``).

The ambient log is configured once from ``REPRO_ACCESS_LOG``:

========================  =============================================
``REPRO_ACCESS_LOG``      behavior
========================  =============================================
unset / ``1`` / ``on``    enabled, JSON lines to stderr (the default)
``0`` / ``off`` …         disabled (:data:`NULL_ACCESS_LOG`)
anything else             treated as a path; lines appended to that file
========================  =============================================

Like the tracer and metrics registry, tests scope their own instance
with :func:`use_access_log` instead of mutating the environment.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
import uuid
from contextlib import contextmanager

__all__ = [
    "AccessLog",
    "NullAccessLog",
    "NULL_ACCESS_LOG",
    "access_log_from_env",
    "get_access_log",
    "set_access_log",
    "use_access_log",
    "new_request_id",
]

_OFF_WORDS = {"0", "false", "off", "no", "none"}
_ON_WORDS = {"", "1", "true", "on", "yes", "stderr"}


def new_request_id() -> str:
    """A fresh 32-hex-char request ID (uuid4, no dashes)."""
    return uuid.uuid4().hex


class AccessLog:
    """Thread-safe one-JSON-object-per-line request log.

    Exactly one sink: ``path`` opens (and owns) an append-mode file;
    ``stream`` writes to a caller-owned file object; neither means
    "whatever ``sys.stderr`` is at write time" — resolved per write so
    stderr redirection (and pytest capture) keeps working.
    """

    enabled = True

    def __init__(self, path: str | None = None, stream=None) -> None:
        if path is not None and stream is not None:
            raise ValueError("give at most one of path / stream")
        self.path = path
        self._stream = stream
        self._owned = None
        if path is not None:
            self._owned = self._stream = open(path, "a", encoding="utf-8")
        self._lock = threading.Lock()

    def write(self, record: dict) -> None:
        """Append one record as a compact, key-sorted JSON line."""
        line = json.dumps(record, sort_keys=True, separators=(",", ":"), default=str)
        with self._lock:
            stream = self._stream if self._stream is not None else sys.stderr
            stream.write(line + "\n")
            stream.flush()

    def request(
        self,
        *,
        id: str,
        route: str,
        method: str,
        status: int,
        ms: float,
        **fields,
    ) -> None:
        """Log one finished request; ``None``-valued extras are dropped."""
        record = {
            "ts": round(time.time(), 6),
            "id": id,
            "route": route,
            "method": method,
            "status": int(status),
            "ms": round(float(ms), 3),
        }
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        self.write(record)

    def close(self) -> None:
        """Close the file this log opened itself; idempotent."""
        with self._lock:
            if self._owned is not None:
                self._owned.close()
                self._owned = None
                self._stream = None
                self.enabled = False


class NullAccessLog:
    """The disabled log: accepts everything, writes nothing."""

    enabled = False
    path = None

    def write(self, record: dict) -> None:
        pass

    def request(self, **fields) -> None:
        pass

    def close(self) -> None:
        pass


NULL_ACCESS_LOG = NullAccessLog()


def access_log_from_env():
    """Build the log ``REPRO_ACCESS_LOG`` asks for (see module docs)."""
    value = os.environ.get("REPRO_ACCESS_LOG", "").strip()
    if value.lower() in _OFF_WORDS:
        return NULL_ACCESS_LOG
    if value.lower() in _ON_WORDS:
        return AccessLog()
    return AccessLog(path=value)


_CURRENT = None
_CURRENT_LOCK = threading.Lock()


def get_access_log():
    """The ambient access log, built from the environment on first use."""
    global _CURRENT
    if _CURRENT is None:
        with _CURRENT_LOCK:
            if _CURRENT is None:
                _CURRENT = access_log_from_env()
    return _CURRENT


def set_access_log(log) -> object:
    """Install ``log`` (``None`` = disable); returns the previous one."""
    global _CURRENT
    with _CURRENT_LOCK:
        prev = _CURRENT
        _CURRENT = log if log is not None else NULL_ACCESS_LOG
    return prev


@contextmanager
def use_access_log(log):
    """Scoped :func:`set_access_log`: installs for the block, restores after."""
    prev = set_access_log(log)
    try:
        yield log
    finally:
        set_access_log(prev)
