"""Polar orientation grids for accessibility maps.

A tool orientation is a unit direction parameterized by polar
coordinates ``(phi, gamma)`` with ``phi in (0, pi)`` measured from the
``+z`` axis and ``gamma in (0, 2*pi)`` the azimuth, exactly as in
Figure 1 of the paper.  An accessibility map at ``(m, n)`` resolution
discretizes this rectangle uniformly into ``m * n`` sample orientations
(Figure 2); the CD algorithms assign one GPU thread per sample.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "direction_from_angles",
    "angles_from_direction",
    "OrientationGrid",
    "DirectionSet",
    "slerp_directions",
]


def direction_from_angles(phi, gamma) -> np.ndarray:
    """Unit direction(s) for polar angles; broadcasts, returns ``(..., 3)``.

    ``d = (sin(phi) cos(gamma), sin(phi) sin(gamma), cos(phi))``.
    """
    phi, gamma = np.broadcast_arrays(
        np.asarray(phi, dtype=np.float64), np.asarray(gamma, dtype=np.float64)
    )
    sp = np.sin(phi)
    return np.stack([sp * np.cos(gamma), sp * np.sin(gamma), np.cos(phi)], axis=-1)


def angles_from_direction(d) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`direction_from_angles` (``gamma`` in ``[0, 2*pi)``)."""
    d = np.asarray(d, dtype=np.float64)
    phi = np.arccos(np.clip(d[..., 2], -1.0, 1.0))
    gamma = np.arctan2(d[..., 1], d[..., 0]) % (2.0 * np.pi)
    return phi, gamma


@dataclass(frozen=True)
class OrientationGrid:
    """A uniform ``m x n`` discretization of the ``(phi, gamma)`` rectangle.

    ``m`` rows sample ``phi`` (polar), ``n`` columns sample ``gamma``
    (azimuth).  Cell centers are used (``phi_i = pi*(i+0.5)/m``) so that no
    sample sits exactly at the coordinate singularities ``phi = 0, pi``.

    This is the *map resolution* the paper sweeps in Figures 5 and 17: the
    total thread count of the CD stage is ``size = m * n``.
    """

    m: int
    n: int

    def __post_init__(self) -> None:
        if self.m < 1 or self.n < 1:
            raise ValueError(f"grid resolution must be positive, got {self.m}x{self.n}")

    @classmethod
    def square(cls, l: int) -> "OrientationGrid":
        """The paper's ``l^2`` map (e.g. ``square(64)`` is the 64x64 AM)."""
        return cls(l, l)

    @property
    def size(self) -> int:
        """Total number of orientations ``M = m * n`` (one per GPU thread)."""
        return self.m * self.n

    @property
    def shape(self) -> tuple[int, int]:
        return (self.m, self.n)

    def phis(self) -> np.ndarray:
        """The ``m`` sampled polar angles."""
        return np.pi * (np.arange(self.m) + 0.5) / self.m

    def gammas(self) -> np.ndarray:
        """The ``n`` sampled azimuth angles."""
        return 2.0 * np.pi * (np.arange(self.n) + 0.5) / self.n

    def angles(self) -> tuple[np.ndarray, np.ndarray]:
        """Meshgrid of ``(phi, gamma)`` arrays, each of shape ``(m, n)``."""
        return np.meshgrid(self.phis(), self.gammas(), indexing="ij")

    def directions(self) -> np.ndarray:
        """All sample directions, flattened row-major to ``(m*n, 3)``.

        Row-major ("gamma fastest") ordering matches the thread-index
        layout used by the SIMT model, so warp ``k`` covers 32 consecutive
        azimuth samples — adjacent orientations, the coherence the paper's
        GPU mapping relies on.
        """
        phi, gamma = self.angles()
        return direction_from_angles(phi, gamma).reshape(-1, 3)

    def unflatten(self, values: np.ndarray) -> np.ndarray:
        """Reshape a per-orientation vector back into the ``(m, n)`` map."""
        values = np.asarray(values)
        if values.shape[0] != self.size:
            raise ValueError(f"expected {self.size} values, got {values.shape[0]}")
        return values.reshape(self.m, self.n, *values.shape[1:])


class DirectionSet:
    """An explicit list of orientations, drop-in where a grid is expected.

    The CD entry point (:func:`repro.cd.traversal.run_cd`) only needs
    ``size``, ``shape``, ``directions()`` and ``unflatten()`` from its
    orientation argument, so arbitrary direction lists — sweep samples,
    adaptive refinements, externally chosen pose sets — can be queried
    through the same machinery as uniform maps.
    """

    def __init__(self, directions):
        d = np.asarray(directions, dtype=np.float64)
        if d.ndim != 2 or d.shape[1] != 3 or len(d) == 0:
            raise ValueError("directions must be a non-empty (n, 3) array")
        norms = np.linalg.norm(d, axis=1)
        if np.any(np.abs(norms - 1.0) > 1e-9):
            raise ValueError("directions must be unit vectors")
        self._dirs = d

    @property
    def size(self) -> int:
        return len(self._dirs)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.size, 1)

    @property
    def m(self) -> int:
        return self.size

    @property
    def n(self) -> int:
        return 1

    def directions(self) -> np.ndarray:
        return self._dirs

    def unflatten(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        if values.shape[0] != self.size:
            raise ValueError(f"expected {self.size} values, got {values.shape[0]}")
        return values.reshape(self.size, 1, *values.shape[1:])


def slerp_directions(d0, d1, steps: int) -> np.ndarray:
    """``steps`` unit directions along the great circle from d0 to d1
    (endpoints included).  Antipodal inputs are rejected (the great
    circle is ambiguous there)."""
    d0 = np.asarray(d0, dtype=np.float64)
    d1 = np.asarray(d1, dtype=np.float64)
    if steps < 2:
        raise ValueError("need at least 2 steps (the endpoints)")
    c = float(np.clip(d0 @ d1, -1.0, 1.0))
    omega = np.arccos(c)
    t = np.linspace(0.0, 1.0, steps)
    if omega < 1e-12:
        return np.broadcast_to(d0, (steps, 3)).copy()
    if np.pi - omega < 1e-9:
        raise ValueError("antipodal directions have no unique great circle")
    s = np.sin(omega)
    out = (
        (np.sin((1.0 - t) * omega) / s)[:, None] * d0
        + (np.sin(t * omega) / s)[:, None] * d1
    )
    return out / np.linalg.norm(out, axis=1, keepdims=True)
