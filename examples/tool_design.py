#!/usr/bin/env python
"""Tool-design study: how tool geometry limits accessibility.

A use case the paper's introduction motivates: deep concave features
(here the candle holder's cup) can only be reached by sufficiently
slender tools.  This script compares three tool designs on the same
target and pivots and reports the accessible-orientation fraction of
each — the quantity a process engineer uses to choose tooling.

It also demonstrates the ICA table's reuse: the cone bounds depend only
on the tool *profile*, so each tool gets its own table but shares the
octree.

Run:  python examples/tool_design.py
"""

import numpy as np

from repro import (
    AICA,
    OrientationGrid,
    Scene,
    Tool,
    build_from_sdf,
    expand_top,
    offset_path,
    run_cd,
    sample_pivots,
)
from repro.solids import candle_holder_model

def make_tools() -> list[Tool]:
    """Three designs, cutter-to-holder: stubby, standard, slender."""
    return [
        Tool.from_segments(
            [(8.0, 15.0), (16.0, 40.0), (31.5, 25.0)], name="stubby"
        ),
        Tool.from_segments(
            [(6.35, 25.4), (6.225, 76.2), (20.0, 78.0), (31.5, 22.1)], name="standard"
        ),
        Tool.from_segments(
            [(2.0, 30.0), (3.0, 90.0), (12.0, 60.0), (31.5, 22.1)], name="slender"
        ),
    ]

def main() -> None:
    model = candle_holder_model()
    resolution = 64
    tree = expand_top(build_from_sdf(model.sdf, model.domain, resolution))
    path = offset_path(model, resolution)

    # Bias pivots toward the top of the part, where the cup cavity is.
    top = path[path[:, 2] > 0.25 * model.dims[2] / 2.0]
    pivots = sample_pivots(top if len(top) >= 4 else path, 4, seed=3)

    grid = OrientationGrid.square(12)
    print(f"target: {model.name} at {resolution}^3 ({tree.total_nodes} nodes), "
          f"{len(pivots)} pivots near the cup\n")

    print(f"{'tool':10s} {'reach mm':>9s} {'max r mm':>9s} {'accessible %':>13s} "
          f"{'sim ms':>8s}")
    results = {}
    for tool in make_tools():
        fracs = []
        sim = 0.0
        for pivot in pivots:
            r = run_cd(Scene(tree, tool, pivot), grid, AICA())
            fracs.append(r.n_accessible / grid.size)
            sim += r.timing.total_s * 1e3
        results[tool.name] = float(np.mean(fracs))
        print(f"{tool.name:10s} {tool.reach:9.1f} {tool.max_radius:9.2f} "
              f"{100 * results[tool.name]:13.1f} {sim / len(pivots):8.4f}")

    print("\ninterpretation: the slender tool should reach the largest share "
          "of orientations\naround the concave cup; the stubby one the smallest.")
    if not (results["slender"] >= results["standard"] >= results["stubby"]):
        print("note: ordering differs at this resolution/pivot sample — "
              "try more pivots or higher resolution")

if __name__ == "__main__":
    main()
