"""Sliding-window request statistics: semantics under a fake clock.

Every test injects its own clock, so window edges, expiry, and ring
recycling are asserted exactly — no sleeps, no flakiness.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.window import DEFAULT_WINDOWS, RequestWindow, percentile


class FakeClock:
    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def make(horizon_s=60, **kw):
    clock = FakeClock()
    return RequestWindow(horizon_s, clock=clock, **kw), clock


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.50) == 2.0
        assert percentile(values, 0.95) == 4.0
        assert percentile(values, 0.99) == 4.0
        assert percentile([7.0], 0.5) == 7.0


class TestRecordAndStats:
    def test_basic_counts_and_rates(self):
        window, clock = make()
        for _ in range(5):
            window.record(10.0)
        window.record(50.0, error=True)
        stats = window.stats(10)
        assert stats["count"] == 6
        assert stats["errors"] == 1
        assert stats["rps"] == pytest.approx(0.6)
        assert stats["error_rate"] == pytest.approx(1 / 6)
        assert stats["mean_ms"] == pytest.approx(100 / 6)
        assert stats["p99_ms"] == 50.0

    def test_empty_window_is_zeroes(self):
        window, _ = make()
        stats = window.stats(60)
        assert stats["count"] == 0
        assert stats["rps"] == 0.0
        assert stats["error_rate"] == 0.0
        assert stats["p95_ms"] == 0.0

    def test_one_second_window_covers_current_second(self):
        window, clock = make()
        window.record(1.0)
        assert window.stats(1)["count"] == 1
        clock.advance(1.0)  # now in the next wall-clock second
        assert window.stats(1)["count"] == 0
        assert window.stats(10)["count"] == 1

    def test_expiry_beyond_horizon(self):
        window, clock = make(horizon_s=60)
        window.record(5.0)
        clock.advance(59.0)
        assert window.stats(60)["count"] == 1
        clock.advance(2.0)
        assert window.stats(60)["count"] == 0

    def test_ring_slot_recycled_after_a_lap(self):
        window, clock = make(horizon_s=10)
        window.record(1.0)
        window.record(1.0)
        clock.advance(10.0)  # exactly one lap: same slot, new second
        window.record(2.0)
        stats = window.stats(10)
        assert stats["count"] == 1  # the old bucket's contents are gone
        assert stats["p50_ms"] == 2.0

    def test_quantiles_across_buckets(self):
        window, clock = make()
        for second in range(5):
            for ms in (10.0, 20.0, 30.0, 40.0):
                window.record(ms + second)  # distinct values per second
            clock.advance(1.0)
        stats = window.stats(10)
        assert stats["count"] == 20
        assert stats["p50_ms"] == 24.0
        assert stats["p99_ms"] == 44.0

    def test_window_clamped_to_horizon(self):
        window, clock = make(horizon_s=10)
        window.record(1.0)
        assert window.stats(9999)["window_s"] == 10

    def test_sample_cap_keeps_count_exact(self):
        window, _ = make(max_samples_per_bucket=4)
        for i in range(10):
            window.record(float(i))
        stats = window.stats(1)
        assert stats["count"] == 10  # count/sum exact beyond the cap
        assert stats["mean_ms"] == pytest.approx(4.5)
        assert stats["p99_ms"] == 3.0  # quantiles from the capped samples

    def test_validation(self):
        with pytest.raises(ValueError, match="horizon_s"):
            RequestWindow(0)
        with pytest.raises(ValueError, match="max_samples"):
            RequestWindow(10, max_samples_per_bucket=0)


class TestSnapshotAndGauges:
    def test_snapshot_keys(self):
        window, _ = make()
        snap = window.snapshot()
        assert set(snap) == {f"{w}s" for w in DEFAULT_WINDOWS}
        assert snap["10s"]["window_s"] == 10

    def test_export_gauges(self):
        window, _ = make()
        window.record(12.0)
        window.record(8.0, error=True)
        reg = MetricsRegistry()
        window.export_gauges(reg)
        assert reg.gauge("service.window.1s.count").value == 2
        assert reg.gauge("service.window.60s.error_rate").value == pytest.approx(0.5)
        assert reg.gauge("service.window.10s.p95_ms").value == 12.0


class TestThreadSafety:
    def test_concurrent_records_all_counted(self):
        window = RequestWindow(60)  # real clock: records land "now"
        n_threads, per_thread = 8, 2000

        def hammer():
            for i in range(per_thread):
                window.record(1.0, error=(i % 10 == 0))

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = window.stats(60)
        assert stats["count"] == n_threads * per_thread
        assert stats["errors"] == n_threads * (per_thread // 10)
