"""Figure 16: all five methods vs object resolution (the headline result)."""

from repro.bench.experiments import fig16


def test_fig16(benchmark, scale, record):
    result = benchmark.pedantic(fig16, args=(scale,), rounds=1, iterations=1)
    record(result)
    sims = result.extras["sims"]

    for res in scale.resolutions:
        # The paper's ordering at every resolution.
        assert sims[("AICA", res)] <= sims[("MICA", res)] * 1.001
        assert sims[("MICA", res)] <= sims[("PICA", res)] * 1.001
        assert sims[("PICA", res)] < sims[("PBoxOpt", res)]
        assert sims[("PBoxOpt", res)] < sims[("PBox", res)]

    # Headline factors at the largest resolution: the paper reports PICA
    # 23.9x over PBox and 4.8x over PBoxOpt; we require the same order of
    # magnitude (>5x and >2x) — the exact factor depends on scene scale.
    res = scale.resolutions[-1]
    assert sims[("PBox", res)] / sims[("PICA", res)] > 5.0
    assert sims[("PBoxOpt", res)] / sims[("PICA", res)] > 2.0
    assert sims[("PBox", res)] / sims[("AICA", res)] > 10.0
