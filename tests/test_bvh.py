"""BVH construction invariants and CD equivalence (Section 8 extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bvh.build import BVH, build_bvh, bvh_from_octree
from repro.bvh.cd import BvhMethod, run_cd_bvh
from repro.cd import AICA, PBoxOpt, Scene, run_cd
from repro.geometry.orientation import DirectionSet, OrientationGrid
from repro.tool.tool import paper_tool


@st.composite
def box_soup(draw):
    n = draw(st.integers(1, 60))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    centers = rng.uniform(-20, 20, (n, 3))
    halves = rng.uniform(0.1, 3.0, (n, 3))
    return centers, halves


class TestBuild:
    @given(box_soup(), st.integers(1, 8))
    @settings(max_examples=40)
    def test_invariants(self, soup, leaf_size):
        centers, halves = soup
        bvh = build_bvh(centers, halves, leaf_size=leaf_size)
        bvh.validate()
        assert bvh.n_primitives == len(centers)

    def test_empty(self):
        bvh = build_bvh(np.zeros((0, 3)), np.zeros(0))
        bvh.validate()
        assert bvh.n_nodes == 0

    def test_single_box(self):
        bvh = build_bvh(np.array([[1.0, 2.0, 3.0]]), np.array([0.5]))
        bvh.validate()
        assert bvh.n_nodes == 1
        assert bvh.is_leaf(0)

    def test_coincident_centroids_become_leaf(self):
        centers = np.tile([1.0, 1.0, 1.0], (10, 1))
        bvh = build_bvh(centers, np.full(10, 0.3), leaf_size=2)
        bvh.validate()  # cannot split; must still terminate correctly

    def test_scalar_halves_are_cubes(self):
        bvh = build_bvh(np.array([[0.0, 0, 0], [5.0, 0, 0]]), np.array([1.0, 2.0]))
        np.testing.assert_allclose(bvh.halves[1], [2.0, 2.0, 2.0])

    def test_root_bounds_cover_everything(self):
        rng = np.random.default_rng(1)
        centers = rng.uniform(-9, 9, (40, 3))
        halves = rng.uniform(0.1, 1.0, 40)
        bvh = build_bvh(centers, halves)
        assert (bvh.node_lo[0] <= (centers - halves[:, None]).min(0) + 1e-12).all()
        assert (bvh.node_hi[0] >= (centers + halves[:, None]).max(0) - 1e-12).all()

    def test_leaf_size_validation(self):
        with pytest.raises(ValueError):
            build_bvh(np.zeros((1, 3)), np.ones(1), leaf_size=0)

    def test_from_octree_same_solid(self, head_tree_64_expanded):
        bvh = bvh_from_octree(head_tree_64_expanded)
        bvh.validate()
        # total primitive volume equals the octree's solid volume
        vol = float(np.prod(2 * bvh.halves, axis=1).sum())
        assert vol == pytest.approx(head_tree_64_expanded.solid_volume(), rel=1e-9)


class TestBvhCd:
    @pytest.fixture(scope="class")
    def setup(self, head_tree_64_expanded):
        bvh = bvh_from_octree(head_tree_64_expanded)
        pivot = np.array([0.0, -30.0, 5.0])
        scene = Scene(head_tree_64_expanded, paper_tool(), pivot)
        return bvh, scene, pivot

    def test_ica_matches_octree(self, setup):
        bvh, scene, pivot = setup
        grid = OrientationGrid.square(8)
        a = run_cd(scene, grid, AICA()).collides
        b = run_cd_bvh(bvh, paper_tool(), pivot, grid, BvhMethod(use_ica=True)).collides
        np.testing.assert_array_equal(a, b)

    def test_exact_matches_octree(self, setup):
        bvh, scene, pivot = setup
        grid = OrientationGrid.square(6)
        a = run_cd(scene, grid, PBoxOpt()).collides
        b = run_cd_bvh(bvh, paper_tool(), pivot, grid, BvhMethod(use_ica=False)).collides
        np.testing.assert_array_equal(a, b)

    def test_ica_prunes_box_checks(self, setup):
        bvh, _, pivot = setup
        grid = OrientationGrid.square(6)
        ica = run_cd_bvh(bvh, paper_tool(), pivot, grid, BvhMethod(True))
        box = run_cd_bvh(bvh, paper_tool(), pivot, grid, BvhMethod(False))
        assert ica.counters.total_box_checks < 0.2 * box.counters.total_box_checks
        assert ica.table_entries == bvh.n_nodes + bvh.n_primitives

    def test_direction_set_supported(self, setup):
        bvh, _, pivot = setup
        ds = DirectionSet(np.array([[0.0, 0.0, 1.0], [0.0, 1.0, 0.0]]))
        r = run_cd_bvh(bvh, paper_tool(), pivot, ds, BvhMethod(True))
        assert r.collides.shape == (2,)

    def test_empty_bvh_all_accessible(self):
        bvh = build_bvh(np.zeros((0, 3)), np.zeros(0))
        r = run_cd_bvh(bvh, paper_tool(), np.zeros(3), OrientationGrid.square(4))
        assert r.collides.sum() == 0

    def test_leaf_size_invariance(self, head_tree_64_expanded):
        pivot = np.array([0.0, -30.0, 5.0])
        grid = OrientationGrid.square(6)
        maps = []
        for ls in (1, 4, 16):
            bvh = bvh_from_octree(head_tree_64_expanded, leaf_size=ls)
            maps.append(
                run_cd_bvh(bvh, paper_tool(), pivot, grid, BvhMethod(True)).collides
            )
        np.testing.assert_array_equal(maps[0], maps[1])
        np.testing.assert_array_equal(maps[0], maps[2])
