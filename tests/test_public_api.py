"""The public API surface: everything advertised imports and works."""

import importlib

import numpy as np
import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3

    @pytest.mark.parametrize(
        "module",
        [
            "repro.geometry",
            "repro.solids",
            "repro.octree",
            "repro.tool",
            "repro.ica",
            "repro.engine",
            "repro.cd",
            "repro.obs",
            "repro.path",
            "repro.milling",
            "repro.bench",
            "repro.viz",
            "repro.cli",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name} missing"

    def test_docstring_example_runs(self):
        """The package docstring's doctest is the first thing users copy."""
        import doctest

        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0
        assert results.attempted > 0


class TestMinimalUserJourney:
    """The README quickstart, as a test."""

    def test_quickstart_flow(self):
        from repro import (
            AICA,
            OrientationGrid,
            Scene,
            build_from_sdf,
            expand_top,
            paper_tool,
            run_cd,
        )
        from repro.geometry import AABB
        from repro.solids import SphereSDF

        domain = AABB((-40, -40, -40), (40, 40, 40))
        tree = expand_top(build_from_sdf(SphereSDF((0, 0, 0), 20.0), domain, 32))
        scene = Scene(tree, paper_tool(), np.array([0.0, 0.0, 21.0]))
        # 16x16: the smallest sampled phi (5.6 deg) fits inside the ~9 deg
        # clearance cone of the 6.35 mm cutter at a 1 mm standoff; an 8x8
        # map's smallest phi (11.25 deg) would not.
        result = run_cd(scene, OrientationGrid.square(16), AICA())
        assert result.n_accessible > 0
        assert result.n_colliding > 0
        assert "." in result.render_ascii() and "#" in result.render_ascii()
        assert result.summary()["sim_total_ms"] > 0
