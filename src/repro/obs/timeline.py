"""Timeline exports: Chrome/Perfetto trace-event JSON and collapsed stacks.

A finished trace (a live :class:`~repro.obs.trace.Tracer` or the
``spans`` list of a saved run report — both carry the same flat span
dicts) renders into the two formats the profiling ecosystem actually
opens:

* :func:`to_perfetto` — the Chrome trace-event format (``traceEvents``
  with complete ``"X"`` events), loadable in https://ui.perfetto.dev or
  ``chrome://tracing``.  Every span lands on a *track*: ``tid`` 0 is the
  parent process's main timeline, and spans absorbed from pool workers
  (tagged ``pool_worker=k`` on their roots by
  :meth:`repro.obs.trace.Tracer.absorb`) go to ``tid`` ``k+1``, so a
  pooled run reads like the per-thread timelines of the paper's Fig. 14.
  Span attributes become the event's ``args``.
* :func:`to_collapsed` — Brendan Gregg's collapsed-stack format
  (``root;child;leaf <microseconds>`` per line), the input of
  ``flamegraph.pl`` and https://speedscope.app.  Each span contributes
  its *self* time (wall minus direct children), so the flamegraph adds
  up to the root without double counting.

Both consume plain span dicts, so they work on reports written by any
worker count — PR 3's epoch re-basing in ``Tracer.absorb`` guarantees
the ``t0`` offsets of absorbed worker spans are on the parent's epoch.
"""

from __future__ import annotations

import json

__all__ = [
    "span_tracks",
    "to_perfetto",
    "perfetto_json",
    "to_collapsed",
]

_PID = 1  # single logical process per trace; tracks separate the workers


def _spans_of(trace_or_spans) -> list[dict]:
    """Accept a Tracer, a RunReport, or a raw ``to_dicts()`` span list."""
    if hasattr(trace_or_spans, "to_dicts"):  # Tracer
        return trace_or_spans.to_dicts()
    if hasattr(trace_or_spans, "spans"):  # RunReport
        return list(trace_or_spans.spans)
    return list(trace_or_spans)


def span_tracks(spans: list[dict]) -> list[int]:
    """Track (``tid``) per span: 0 = main, ``k+1`` = pool worker ``k``.

    A span inherits the ``pool_worker`` tag of its nearest tagged
    ancestor-or-self — absorb only tags worker roots, but the whole
    absorbed subtree belongs on that worker's track.
    """
    tids: list[int] = []
    for i, s in enumerate(spans):
        j, tid = i, 0
        while j >= 0:
            worker = spans[j].get("attrs", {}).get("pool_worker")
            if worker is not None:
                tid = int(worker) + 1
                break
            j = spans[j].get("parent", -1)
        tids.append(tid)
    return tids


def to_perfetto(trace_or_spans, *, label: str = "repro") -> dict:
    """The trace as a Chrome/Perfetto trace-event JSON document.

    Returns ``{"traceEvents": [...], "displayTimeUnit": "ms"}`` with one
    complete (``"ph": "X"``) event per span — ``ts``/``dur`` in
    microseconds on the trace's epoch — preceded by process/thread
    metadata events naming the tracks.  Events are ordered by
    ``(tid, ts)``, so per-track timestamps are monotone.
    """
    spans = _spans_of(trace_or_spans)
    tids = span_tracks(spans)

    events: list[dict] = [
        {
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": label},
        }
    ]
    for tid in sorted(set(tids)):
        events.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": "main" if tid == 0 else f"pool-worker-{tid - 1}"},
            }
        )

    slices = [
        {
            "ph": "X",
            "pid": _PID,
            "tid": tid,
            "name": s["name"],
            "cat": s["name"].split(".", 1)[0],
            "ts": s["t0"] * 1e6,
            "dur": max(0.0, s["wall_s"]) * 1e6,
            "args": dict(s.get("attrs", {})),
        }
        for s, tid in zip(spans, tids)
    ]
    slices.sort(key=lambda e: (e["tid"], e["ts"]))
    events.extend(slices)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def perfetto_json(trace_or_spans, *, label: str = "repro", indent=None) -> str:
    """:func:`to_perfetto`, serialized (NumPy-safe via the report encoder)."""
    from repro.obs.report import _json_default

    return json.dumps(
        to_perfetto(trace_or_spans, label=label), default=_json_default, indent=indent
    )


def to_collapsed(trace_or_spans) -> str:
    """The trace as collapsed stacks: ``a;b;c <self-microseconds>`` lines.

    Each span is weighted by its self time — wall seconds minus the wall
    seconds of its direct children, clamped at zero (absorbed worker
    subtrees overlap their parent in wall time; the clamp keeps the
    flamegraph consistent) — and identical stacks are merged.  Spans
    whose self time rounds below one microsecond are dropped.
    """
    spans = _spans_of(trace_or_spans)
    child_wall = [0.0] * len(spans)
    for s in spans:
        p = s.get("parent", -1)
        if p >= 0:
            child_wall[p] += max(0.0, s["wall_s"])

    paths: list[str] = []
    for i, s in enumerate(spans):
        parent = s.get("parent", -1)
        prefix = paths[parent] + ";" if parent >= 0 else ""
        paths.append(prefix + s["name"])

    weights: dict[str, int] = {}
    for i, s in enumerate(spans):
        self_us = int(round(max(0.0, s["wall_s"] - child_wall[i]) * 1e6))
        if self_us > 0:
            weights[paths[i]] = weights.get(paths[i], 0) + self_us
    return "\n".join(f"{path} {w}" for path, w in sorted(weights.items()))
