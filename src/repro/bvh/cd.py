"""Accessibility maps over a BVH (ICA-pruned and exact-only variants).

Structural difference from the octree that this module makes measurable:
an octree's interior FULL node is *entirely solid*, so the inscribed-
sphere cone test can prove a collision high up the tree.  A BVH internal
node is only a *bound* — its box contains the primitives but is not
itself solid — so the cone test can only prove *misses* (via the
circumscribed sphere) on internal nodes; definite hits exist only at the
primitive (solid box) level.  The traversal below exploits exactly what
is sound:

* internal node: prune iff ``cos_angle <= cos_hi(circumscribed sphere of
  the node box)``; otherwise descend (no exact test needed);
* leaf primitive: the full two-sphere CHECKICA (hit / miss / corner →
  exact CHECKBOX), identical to the octree leaf handling.

Per-node and per-primitive cone values are memoized per pivot in a
stage-1 pass (the MICA idea transplanted), and costs are charged with
the same :class:`~repro.engine.costs.CostModel` constants so octree and
BVH traversals are compared on equal footing by ``ablation_bvh``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.bvh.build import BVH
from repro.engine.costs import CostModel, DEFAULT_COSTS
from repro.engine.counters import StageBreakdown, ThreadCounters
from repro.engine.device import DeviceSpec, GTX_1080_TI
from repro.engine.simt import simulate_kernel, simulate_stage
from repro.geometry.batch import tool_aabb_batch
from repro.ica.cone import ica_bounds_cos
from repro.ica.table import SQRT3
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.tool.tool import Tool

__all__ = ["BvhMethod", "BvhResult", "run_cd_bvh"]


@dataclass(frozen=True)
class BvhMethod:
    """Traversal flavor: ``use_ica=False`` is the exact-only baseline."""

    use_ica: bool = True

    @property
    def name(self) -> str:
        return "BVH-ICA" if self.use_ica else "BVH-Box"


@dataclass
class BvhResult:
    """Mirror of :class:`repro.cd.result.CDResult` for the BVH traversal."""

    method: str
    collides: np.ndarray
    counters: ThreadCounters
    timing: StageBreakdown
    table_entries: int
    bvh_nodes: int


def _node_tables(bvh: BVH, tool: Tool, pivot: np.ndarray):
    """Memoized cone values: per-node miss bound, per-primitive two bounds."""
    node_c = 0.5 * (bvh.node_lo + bvh.node_hi)
    node_h = 0.5 * (bvh.node_hi - bvh.node_lo)
    nd = np.linalg.norm(node_c - pivot, axis=1)
    node_r_circ = np.linalg.norm(node_h, axis=1)
    _, node_hi = ica_bounds_cos(tool.z0, tool.z1, tool.radius, nd, node_r_circ)

    pd = np.linalg.norm(bvh.centers - pivot, axis=1)
    r_in = bvh.halves.min(axis=1)
    r_circ = np.linalg.norm(bvh.halves, axis=1)
    prim_lo, _ = ica_bounds_cos(tool.z0, tool.z1, tool.radius, pd, r_in)
    _, prim_hi = ica_bounds_cos(tool.z0, tool.z1, tool.radius, pd, r_circ)
    return node_hi, prim_lo, prim_hi


def run_cd_bvh(
    bvh: BVH,
    tool: Tool,
    pivot,
    grid,
    method: BvhMethod = BvhMethod(),
    *,
    device: DeviceSpec = GTX_1080_TI,
    costs: CostModel = DEFAULT_COSTS,
    thread_block: int = 2048,
) -> BvhResult:
    """Generate the accessibility map by traversing ``bvh``.

    ``grid`` is any orientation provider (an
    :class:`~repro.geometry.orientation.OrientationGrid` or
    :class:`~repro.geometry.orientation.DirectionSet`).
    """
    with get_tracer().span(
        "bvh.run", method=method.name, orientations=grid.size, nodes=bvh.n_nodes
    ) as sp:
        result = _run_cd_bvh(
            bvh, tool, pivot, grid, method,
            device=device, costs=costs, thread_block=thread_block,
        )
        sp.set(
            colliding=int(result.collides.sum()),
            total_checks=result.counters.total_checks,
            table_entries=result.table_entries,
        )
    metrics = get_metrics()
    result.counters.export(metrics, prefix="bvh")
    metrics.counter("bvh.runs").inc()
    metrics.counter("bvh.sim_cd_s").inc(result.timing.cd_tests_s)
    metrics.counter("bvh.sim_precompute_s").inc(result.timing.ica_precompute_s)
    metrics.counter("bvh.wall_s").inc(result.timing.wall_s)
    return result


def _run_cd_bvh(
    bvh: BVH,
    tool: Tool,
    pivot,
    grid,
    method: BvhMethod,
    *,
    device: DeviceSpec,
    costs: CostModel,
    thread_block: int,
) -> BvhResult:
    t0 = time.perf_counter()
    tracer = get_tracer()
    pivot = np.asarray(pivot, dtype=np.float64).reshape(3)
    M = grid.size
    all_dirs = grid.directions()
    counters = ThreadCounters(n_threads=M, n_cyl=tool.n_cylinders)
    collides = np.zeros(M, dtype=bool)

    table_entries = 0
    node_hi = prim_lo = prim_hi = None
    if method.use_ica and bvh.n_nodes:
        with tracer.span("bvh.table.build"):
            node_hi, prim_lo, prim_hi = _node_tables(bvh, tool, pivot)
        table_entries = bvh.n_nodes + bvh.n_primitives

    if bvh.n_nodes == 0:
        wall = time.perf_counter() - t0
        return BvhResult(
            method=method.name,
            collides=collides,
            counters=counters,
            timing=StageBreakdown(0.0, 0.0, wall),
            table_entries=0,
            bvh_nodes=0,
        )

    node_c = 0.5 * (bvh.node_lo + bvh.node_hi)
    node_h3 = 0.5 * (bvh.node_hi - bvh.node_lo)

    def _exact_hits(threads, centers, halves3):
        counters.add_threads("box_checks", threads, M)
        return tool_aabb_batch(
            pivot, all_dirs[threads], centers, halves3, tool.z0, tool.z1, tool.radius
        )

    for b0 in range(0, M, thread_block):
        b1 = min(b0 + thread_block, M)
        threads = np.arange(b0, b1, dtype=np.intp)
        nodes = np.zeros(len(threads), dtype=np.intp)  # everyone starts at root

        while len(threads):
            live = ~collides[threads]
            threads = threads[live]
            nodes = nodes[live]
            if not len(threads):
                break
            counters.add_threads("nodes_visited", threads, M)

            if method.use_ica:
                # Internal/leaf alike: prune by the node's miss bound.
                rel = node_c[nodes] - pivot
                dist = np.sqrt(np.einsum("ij,ij->i", rel, rel))
                safe = np.maximum(dist, 1e-300)
                ca = np.clip(
                    np.einsum("ij,ij->i", all_dirs[threads], rel) / safe, -1.0, 1.0
                )
                ca = np.where(dist == 0.0, 1.0, ca)
                counters.add_threads("ica_memo_checks", threads, M)
                possible = ca > node_hi[nodes]
            else:
                possible = _exact_hits(threads, node_c[nodes], node_h3[nodes])

            threads = threads[possible]
            nodes = nodes[possible]
            if not len(threads):
                break

            leaf = bvh.left[nodes] < 0
            # -- leaves: test the owned primitives ------------------------
            if leaf.any():
                lt = threads[leaf]
                ln = nodes[leaf]
                counts = bvh.leaf_count[ln]
                starts = bvh.leaf_start[ln]
                total = int(counts.sum())
                offs = np.arange(total) - np.repeat(
                    np.cumsum(counts) - counts, counts
                )
                prim = bvh.prim_index[np.repeat(starts, counts) + offs]
                pt = np.repeat(lt, counts)

                if method.use_ica:
                    rel = bvh.centers[prim] - pivot
                    dist = np.sqrt(np.einsum("ij,ij->i", rel, rel))
                    safe = np.maximum(dist, 1e-300)
                    ca = np.clip(
                        np.einsum("ij,ij->i", all_dirs[pt], rel) / safe, -1.0, 1.0
                    )
                    ca = np.where(dist == 0.0, 1.0, ca)
                    counters.add_threads("ica_memo_checks", pt, M)
                    counters.add_threads("nodes_visited", pt, M)
                    yes = ca >= prim_lo[prim]
                    no = ~yes & (ca <= prim_hi[prim])
                    corner = ~yes & ~no
                    if corner.any():
                        counters.add_threads("corner_cases", pt[corner], M)
                        hit = _exact_hits(
                            pt[corner], bvh.centers[prim[corner]], bvh.halves[prim[corner]]
                        )
                        yes[np.nonzero(corner)[0][hit]] = True
                else:
                    counters.add_threads("nodes_visited", pt, M)
                    yes = _exact_hits(pt, bvh.centers[prim], bvh.halves[prim])
                if yes.any():
                    collides[np.unique(pt[yes])] = True

            # -- internal nodes: descend to both children ------------------
            internal = ~leaf
            it = threads[internal]
            inn = nodes[internal]
            threads = np.concatenate([it, it])
            nodes = np.concatenate([bvh.left[inn], bvh.right[inn]])

    wall = time.perf_counter() - t0
    cd_s = simulate_kernel(counters.thread_ops(costs), device)
    pre_s = (
        simulate_stage(costs.ica_precompute(tool.n_cylinders), table_entries, device)
        if table_entries
        else 0.0
    )
    return BvhResult(
        method=method.name,
        collides=collides,
        counters=counters,
        timing=StageBreakdown(ica_precompute_s=pre_s, cd_tests_s=cd_s, wall_s=wall),
        table_entries=table_entries,
        bvh_nodes=bvh.n_nodes,
    )
